#!/usr/bin/env python3
"""gcg_lint: project-specific static analysis for the gcgpu sources.

Rules (see docs/CORRECTNESS.md for the rationale):

  raw-mmap        no direct mmap/munmap/madvise/mincore calls outside
                  src/store/ — page-level lifetime must go through
                  store::Mapping so fallback, hints, and unmap stay in
                  one audited place.
  raw-process     no direct fork/vfork/exec*/posix_spawn calls outside
                  src/shard/process.* — child processes must go through
                  shard::ChildProcess so every child is reaped exactly
                  once and signal dispositions stay consistent.
  raw-simd        no <immintrin.h>-family includes or _mm*/__m* vector
                  intrinsics outside src/util/simd.* — SIMD must go
                  through gcg::simd so runtime dispatch, the scalar
                  fallback, and the GCG_FORCE_SCALAR escape hatch stay
                  in one audited place (and every call site stays
                  bit-identical to the scalar path by construction).
  raw-mutex       no std::mutex/std::lock_guard/std::unique_lock/
                  std::condition_variable (or the unannotated lowercase
                  sync::mutex/sync::condition_variable aliases) in
                  src/par/, src/svc/, src/shard/, src/store/ — locking
                  there must go through the capability-annotated
                  sync::Mutex / sync::LockGuard / sync::CondVar wrappers
                  (util/sync.hpp) so clang Thread Safety Analysis sees
                  every acquisition.
  raw-narrow      no integer-target static_cast in the conversion-clean
                  core (src/graph/, src/par/, src/svc/, src/shard/,
                  src/store/, src/check/, src/util/) outside
                  util/narrow.hpp — every cross-width or cross-sign
                  integer conversion must be a named, greppable call:
                  gcg::narrow<T> (checked value-preserving) or
                  gcg::narrow_cast<T> (documented-lossy). The compiler
                  rejects the implicit conversions (-Werror=conversion);
                  this rule closes the "just static_cast it" escape.
  lossy-comment   every `narrow_cast<` site must carry a `// lossy:`
                  justification, with the same placement rules as
                  `// order:` below — a lossy conversion is a design
                  decision, and the reader deserves the reason.
  order-comment   every `memory_order_*` site must carry an `// order:`
                  justification — on the same line, in an `// order:`
                  comment above it with no blank line in between (one
                  comment may cover a contiguous annotated block, e.g. a
                  Chase-Lev pop sequence; max 10 lines of reach), or on
                  a later line of the same statement (multi-line call
                  sites: the comment may sit on the closing line).
  include-cycle   the quoted-include graph of src/ must be acyclic.
  naked-new       no `new` expressions outside smart-pointer factories.
  naked-delete    no `delete` expressions (`= delete` declarations are fine).
  rand            no `rand()` / `srand()` — use util/rng.hpp generators.
  sync-seam       the concurrent core (src/par/, src/svc/, src/util/
                  stress.*) must spell atomics through the sync:: seam
                  (util/sync.hpp) so the model checker can swap them:
                  no direct std::atomic / std::atomic_flag /
                  std::atomic_thread_fence there. std::atomic_ref is
                  deliberately allowed (the seam does not alias it).
  thread-detach   no `.detach()` — every thread must be joined.
  volatile        no `volatile` — it is not a synchronization primitive;
                  use std::atomic.

Suppressions (a justification is mandatory):

  some_code();  // lint: allow(naked-new) interop with C API that frees it
  // lint: allow-next-line(volatile) memory-mapped register access
  volatile uint32_t* reg = ...;

Usage:
  gcg_lint.py [--root DIR] [PATHS...]   lint src/ (default) or PATHS
  gcg_lint.py --self-test               run the built-in rule tests
"""

import argparse
import os
import re
import sys
import tempfile

TOKEN_RULES = {
    "naked-new": (
        re.compile(r"(?<![\w.])new\b"),
        "naked `new` — use std::make_unique/std::vector instead",
    ),
    "naked-delete": (
        # `= delete` declarations are erased before matching (see lint_file).
        re.compile(r"(?<![\w.])delete\b"),
        "naked `delete` — ownership must live in a smart pointer/container",
    ),
    "rand": (
        re.compile(r"(?<![\w.:])s?rand\s*\("),
        "rand()/srand() — use the seeded generators in util/rng.hpp",
    ),
    "thread-detach": (
        re.compile(r"\.\s*detach\s*\(\s*\)"),
        "thread detach — detached threads outlive their invariants; join",
    ),
    "volatile": (
        re.compile(r"(?<!\w)volatile\b"),
        "volatile is not a synchronization primitive — use std::atomic",
    ),
}

ORDER_RULE = "order-comment"
CYCLE_RULE = "include-cycle"
SEAM_RULE = "sync-seam"
MMAP_RULE = "raw-mmap"
PROC_RULE = "raw-process"
SIMD_RULE = "raw-simd"
MUTEX_RULE = "raw-mutex"
NARROW_RULE = "raw-narrow"
LOSSY_RULE = "lossy-comment"
ALL_RULES = sorted(list(TOKEN_RULES) +
                   [ORDER_RULE, CYCLE_RULE, SEAM_RULE, MMAP_RULE, PROC_RULE,
                    SIMD_RULE, MUTEX_RULE, NARROW_RULE, LOSSY_RULE])

# sync-seam: matches std::atomic, std::atomic_flag, std::atomic_thread_fence
# but NOT std::atomic_ref / std::atomic_signal_fence (outside the seam) —
# the optional suffix must consume `_flag`/`_thread_fence` entirely or the
# trailing \b rejects the partial-word match.
SEAM_TOKEN = re.compile(r"\bstd\s*::\s*atomic(?:_flag|_thread_fence)?\b")
SEAM_SCOPE = re.compile(r"(^|/)src/(par|svc)/|(^|/)src/util/stress\.")
SEAM_MESSAGE = ("direct std:: atomic in the concurrent core — spell it "
                "sync:: (util/sync.hpp) so the model checker can swap it")

# raw-mmap: the store owns every page-table interaction. Call-shaped
# matches only (`mmap(...)`) so identifiers like `my_mmap` or prose in
# comments (already stripped) don't fire.
MMAP_TOKEN = re.compile(r"(?<![\w.:])(?:mmap64|mmap|munmap|madvise|mincore)\s*\(")
MMAP_SCOPE_OK = re.compile(r"(^|/)src/store/")
MMAP_MESSAGE = ("raw mmap/munmap/madvise/mincore outside src/store/ — go "
                "through store::Mapping so lifetime, fallback, and paging "
                "hints stay in one place")

# raw-process: shard::ChildProcess owns every fork/exec. Call-shaped
# matches, with an optional global-scope `::` (the `(?<![\w.:])` guard
# still rejects `std::system`-style qualified names and members).
PROC_TOKEN = re.compile(
    r"(?<![\w.:])(?:::\s*)?"
    r"(?:fork|vfork|execl|execle|execlp|execv|execve|execvp|execvpe|"
    r"posix_spawnp?)\s*\(")
PROC_SCOPE_OK = re.compile(r"(^|/)src/shard/process\.")
PROC_MESSAGE = ("raw fork/exec outside src/shard/process.* — spawn through "
                "shard::ChildProcess so children are reaped exactly once")

# raw-simd: gcg::simd owns every vector intrinsic. Matches the intrinsic
# headers (<immintrin.h> and friends, <arm_neon.h>), call-shaped _mm*/
# _mm256*/_mm512* intrinsics, and the __m128/__m256/__m512 vector types.
# The (?<![\w.:]) guard keeps identifiers like `my_mm256_add` quiet.
SIMD_TOKEN = re.compile(
    r"#\s*include\s*<(?:[a-z0-9_]*intrin|arm_neon|arm_sve)\.h>"
    r"|(?<![\w.:])_mm(?:256|512)?_\w+\s*\("
    r"|(?<!\w)__m(?:64|128|256|512)[a-z]*\b")
SIMD_SCOPE_OK = re.compile(r"(^|/)src/util/simd\.")
SIMD_MESSAGE = ("raw SIMD intrinsics outside src/util/simd.* — go through "
                "gcg::simd so runtime dispatch, the scalar fallback, and "
                "GCG_FORCE_SCALAR stay in one audited place")

# raw-mutex: the annotated directories must lock through the
# capability-annotated wrappers. Matches the std:: lockables/guards AND
# the unannotated lowercase seam aliases (sync::mutex /
# sync::condition_variable — those exist for the wrappers' internals,
# not for call sites). sync::Mutex/LockGuard/CondVar are capitalized, so
# the lowercase-only alternation leaves them alone.
MUTEX_TOKEN = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b"
    r"|\bsync\s*::\s*(?:mutex|condition_variable)\b")
MUTEX_SCOPE = re.compile(r"(^|/)src/(par|svc|shard|store)/")
MUTEX_MESSAGE = ("raw mutex/lock in the annotated core — use sync::Mutex / "
                 "sync::LockGuard / sync::CondVar (util/sync.hpp) so clang "
                 "thread safety analysis sees every acquisition")

# raw-narrow: the conversion-clean core spells every integer conversion
# through gcg::narrow / gcg::narrow_cast (util/narrow.hpp, the one exempt
# file). The type alternation names every integer type the tree uses —
# a static_cast to a type NOT listed here (double, enums, pointers) is
# not an integer narrowing and stays legal. The trailing `\s*>` rejects
# pointer targets (`static_cast<int*>`).
NARROW_INT_TYPE = (
    r"(?:un)?signed(?:\s+(?:char|short|int|long(?:\s+long)?))?"
    r"|short|long\s+long|long|int"
    r"|char8_t|char16_t|char32_t|wchar_t|char"
    r"|u?int(?:8|16|32|64|max|ptr)_t"
    r"|u?int_(?:fast|least)(?:8|16|32|64)_t"
    r"|size_t|ssize_t|ptrdiff_t|streamoff|streamsize"
    r"|off_t|pid_t|mode_t|time_t|socklen_t|in_port_t|sa_family_t"
    r"|vid_t|eid_t|color_t")
NARROW_TOKEN = re.compile(
    r"static_cast\s*<\s*(?:const\s+)?(?:(?:std|gcg)\s*::\s*)?"
    r"(?:" + NARROW_INT_TYPE + r")\s*>")
NARROW_SCOPE = re.compile(
    r"(^|/)src/(graph|par|svc|shard|store|check|util)/")
NARROW_SCOPE_OK = re.compile(r"(^|/)src/util/narrow\.")
NARROW_MESSAGE = ("integer-target static_cast in the conversion-clean core "
                  "— spell it gcg::narrow<T> (checked) or "
                  "gcg::narrow_cast<T> (documented-lossy), util/narrow.hpp")

# lossy-comment: narrow_cast sites justify WHY losing bits is correct,
# with the same placement rules as `// order:`.
LOSSY_TOKEN = re.compile(r"\bnarrow_cast\s*<")
LOSSY_COMMENT = re.compile(r"//\s*lossy:")
LOSSY_MESSAGE = ("narrow_cast without a `// lossy:` justification — say why "
                 "truncation/wrapping is the intended semantic")

ORDER_TOKEN = re.compile(r"\bmemory_order_\w+")
ORDER_COMMENT = re.compile(r"//\s*order:")
ORDER_REACH = 10  # max lines an // order: comment covers downward

SUPPRESS_RE = re.compile(
    r"//\s*lint:\s*(allow|allow-next-line)\(([\w\-, ]+)\)\s*(.*)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, so token rules don't fire on prose. Returns a list of
    code-only lines."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append(" ")
                i += 1
            elif c == "/" and nxt == "*":
                state = "block-comment"
                out.append(" ")
                i += 1
            elif c == '"':
                state = "string"
                out.append(" ")
            elif c == "'":
                state = "char"
                out.append(" ")
            else:
                out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(" ")
                if nxt != "\n":
                    out.append(" " if nxt != "\n" else nxt)
                    i += 1
            elif c == quote:
                state = "code"
                out.append(" ")
            elif c == "\n":  # unterminated — bail out of the literal
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out).split("\n")


def suppressions(raw_lines):
    """Map line number (1-based) -> set of rules suppressed there.
    Returns (map, findings-for-bad-suppressions)."""
    allowed = {}
    bad = []
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            if "lint:" in line and ("allow(" in line or "allow-next-line(" in line):
                bad.append((idx, "malformed lint suppression"))
            continue
        kind, rules_str, reason = m.groups()
        rules = {r.strip() for r in rules_str.split(",") if r.strip()}
        unknown = rules - set(ALL_RULES)
        if unknown:
            bad.append((idx, f"suppression names unknown rule(s): "
                             f"{', '.join(sorted(unknown))}"))
            continue
        if not reason.strip():
            bad.append((idx, f"suppression of {', '.join(sorted(rules))} "
                             "has no justification"))
            continue
        target = idx if kind == "allow" else idx + 1
        allowed.setdefault(target, set()).update(rules)
    return allowed, bad


def justification_covered(raw_lines, code_lines, lineno, comment_re):
    """True if the site at 1-based `lineno` carries the justification
    comment `comment_re` demands: on the same line, above it within reach
    (no blank line in between), or — for a call split across lines — on a
    later line of the same statement (up to the `;` that ends it)."""
    if comment_re.search(raw_lines[lineno - 1]):
        return True
    for back in range(1, ORDER_REACH + 1):
        j = lineno - 1 - back
        if j < 0:
            break
        line = raw_lines[j]
        if not line.strip():
            break  # blank line ends the annotated block
        if comment_re.search(line):
            return True
    # Downward within the same statement: a multi-line call site may
    # carry its justification on the closing line. `;` in the *code*
    # (strings/comments stripped) ends the statement.
    j = lineno - 1
    for _ in range(ORDER_REACH):
        if ";" in code_lines[j]:
            return False  # statement ended without a justification
        j += 1
        if j >= len(raw_lines) or not raw_lines[j].strip():
            return False
        if comment_re.search(raw_lines[j]):
            return True
    return False


def lint_file(path, raw_text):
    raw_lines = raw_text.split("\n")
    code_lines = strip_code(raw_text)
    allowed, bad_suppressions = suppressions(raw_lines)
    findings = [Finding(path, ln, "lint-suppression", msg)
                for ln, msg in bad_suppressions]

    in_seam_scope = bool(SEAM_SCOPE.search(path.replace(os.sep, "/")))
    in_store_scope = bool(MMAP_SCOPE_OK.search(path.replace(os.sep, "/")))
    in_process_scope = bool(PROC_SCOPE_OK.search(path.replace(os.sep, "/")))
    in_simd_scope = bool(SIMD_SCOPE_OK.search(path.replace(os.sep, "/")))
    in_mutex_scope = bool(MUTEX_SCOPE.search(path.replace(os.sep, "/")))
    in_narrow_scope = (
        bool(NARROW_SCOPE.search(path.replace(os.sep, "/"))) and
        not NARROW_SCOPE_OK.search(path.replace(os.sep, "/")))

    for idx, (raw, code) in enumerate(zip(raw_lines, code_lines), start=1):
        # Deleted special members (`= delete`) are not delete expressions.
        code = re.sub(r"=\s*delete\b", "", code)
        here = allowed.get(idx, set())
        for rule, (pattern, message) in TOKEN_RULES.items():
            if pattern.search(code) and rule not in here:
                findings.append(Finding(path, idx, rule, message))
        if in_seam_scope and SEAM_RULE not in here and SEAM_TOKEN.search(code):
            findings.append(Finding(path, idx, SEAM_RULE, SEAM_MESSAGE))
        if (not in_store_scope and MMAP_RULE not in here
                and MMAP_TOKEN.search(code)):
            findings.append(Finding(path, idx, MMAP_RULE, MMAP_MESSAGE))
        if (not in_process_scope and PROC_RULE not in here
                and PROC_TOKEN.search(code)):
            findings.append(Finding(path, idx, PROC_RULE, PROC_MESSAGE))
        if (not in_simd_scope and SIMD_RULE not in here
                and SIMD_TOKEN.search(code)):
            findings.append(Finding(path, idx, SIMD_RULE, SIMD_MESSAGE))
        if (in_mutex_scope and MUTEX_RULE not in here
                and MUTEX_TOKEN.search(code)):
            findings.append(Finding(path, idx, MUTEX_RULE, MUTEX_MESSAGE))
        if (in_narrow_scope and NARROW_RULE not in here
                and NARROW_TOKEN.search(code)):
            findings.append(Finding(path, idx, NARROW_RULE, NARROW_MESSAGE))
        if LOSSY_TOKEN.search(code) and LOSSY_RULE not in here:
            if not justification_covered(raw_lines, code_lines, idx,
                                         LOSSY_COMMENT):
                findings.append(Finding(path, idx, LOSSY_RULE, LOSSY_MESSAGE))
        if ORDER_TOKEN.search(code) and ORDER_RULE not in here:
            if not justification_covered(raw_lines, code_lines, idx,
                                         ORDER_COMMENT):
                findings.append(Finding(
                    path, idx, ORDER_RULE,
                    "memory_order use without an `// order:` justification"))
    return findings


def find_include_cycles(files_by_rel):
    """files_by_rel: {include-path: source text}. Returns list of cycles,
    each a list of include paths."""
    graph = {}
    for rel, text in files_by_rel.items():
        deps = []
        for line in text.split("\n"):
            m = INCLUDE_RE.match(line)
            if m and m.group(1) in files_by_rel:
                deps.append(m.group(1))
        graph[rel] = deps

    cycles = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {rel: WHITE for rel in graph}
    stack = []

    def dfs(u):
        color[u] = GRAY
        stack.append(u)
        for v in graph[u]:
            if color[v] == GRAY:
                cycles.append(stack[stack.index(v):] + [v])
            elif color[v] == WHITE:
                dfs(v)
        stack.pop()
        color[u] = BLACK

    for rel in sorted(graph):
        if color[rel] == WHITE:
            dfs(rel)
    return cycles


def include_key(full, root):
    """The path a quoted #include would use for this file: the project
    adds <root>/src to the include path, so files under src/ are keyed
    relative to it."""
    src_root = os.path.join(root, "src")
    rel = os.path.relpath(full, root)
    if rel.startswith("src" + os.sep):
        return os.path.relpath(full, src_root)
    return rel


def collect_files(root, paths):
    """Returns {absolute path: include-style relative path}."""
    out = {}
    if paths:
        for p in paths:
            if os.path.isdir(p):
                for dirpath, _, names in os.walk(p):
                    for name in sorted(names):
                        if name.endswith(EXTENSIONS):
                            full = os.path.join(dirpath, name)
                            out[full] = include_key(full, root)
            elif p.endswith(EXTENSIONS):
                out[p] = include_key(p, root)
    else:
        for dirpath, _, names in os.walk(root):
            for name in sorted(names):
                if name.endswith(EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    out[full] = include_key(full, root)
    return out


def run_lint(root, paths):
    files = collect_files(root, paths)
    findings = []
    texts = {}
    for full, rel in sorted(files.items()):
        try:
            text = open(full, encoding="utf-8").read()
        except OSError as e:
            findings.append(Finding(full, 0, "io", str(e)))
            continue
        texts[rel] = text
        findings.extend(lint_file(full, text))

    for cycle in find_include_cycles(texts):
        findings.append(Finding(
            cycle[0], 0, CYCLE_RULE,
            "include cycle: " + " -> ".join(cycle)))
    return findings


# --------------------------- self test --------------------------------------

SELF_TEST_CASES = [
    # (name, source, expected rules firing)
    ("naked_new", "int main() { auto* p = new int(3); return *p; }\n",
     {"naked-new"}),
    ("naked_delete", "void f(int* p) { delete p; }\n", {"naked-delete"}),
    ("delete_array", "void f(int* p) { delete[] p; }\n", {"naked-delete"}),
    ("deleted_fn_ok", "struct S { S(const S&) = delete; };\n", set()),
    ("placement_new", "void f(void* b) { auto* p = new (b) int; (void)p; }\n",
     {"naked-new"}),
    ("rand_call", "#include <cstdlib>\nint f() { return rand(); }\n",
     {"rand"}),
    ("srand_call", "#include <cstdlib>\nvoid f() { srand(7); }\n", {"rand"}),
    ("random_fn_ok", "int my_rand();\nint f() { return my_rand(); }\n", set()),
    ("detach", "#include <thread>\nvoid f() { std::thread t; t.detach(); }\n",
     {"thread-detach"}),
    ("volatile_kw", "volatile int flag;\n", {"volatile"}),
    ("order_bare",
     "#include <atomic>\n"
     "std::atomic<int> a;\n"
     "int f() { return a.load(std::memory_order_relaxed); }\n",
     {"order-comment"}),
    ("order_same_line",
     "#include <atomic>\n"
     "std::atomic<int> a;\n"
     "int f() { return a.load(std::memory_order_relaxed); }"
     "  // order: counter only\n",
     set()),
    ("order_comment_above",
     "#include <atomic>\n"
     "std::atomic<int> a;\n"
     "int f() {\n"
     "  // order: relaxed — statistics counter, read when quiescent\n"
     "  return a.load(std::memory_order_relaxed);\n"
     "}\n",
     set()),
    ("order_block_coverage",
     "#include <atomic>\n"
     "std::atomic<long> b, t;\n"
     "void f() {\n"
     "  // order: relaxed + fence per PPoPP'13\n"
     "  long x = b.load(std::memory_order_relaxed);\n"
     "  b.store(x - 1, std::memory_order_relaxed);\n"
     "  std::atomic_thread_fence(std::memory_order_seq_cst);\n"
     "}\n",
     set()),
    ("order_blank_line_breaks_coverage",
     "#include <atomic>\n"
     "std::atomic<int> a;\n"
     "// order: this comment does not reach past the blank line\n"
     "\n"
     "int f() { return a.load(std::memory_order_acquire); }\n",
     {"order-comment"}),
    ("order_multiline_trailing_comment",
     # A call split across lines may justify on the closing line: both
     # memory_order sites belong to the statement the comment ends.
     "#include <atomic>\n"
     "std::atomic<int> a;\n"
     "bool f(int& e) {\n"
     "  return a.compare_exchange_strong(\n"
     "      e, e + 1,\n"
     "      std::memory_order_seq_cst,\n"
     "      std::memory_order_relaxed);  // order: CAS races the thieves\n"
     "}\n",
     set()),
    ("order_multiline_unjustified",
     "#include <atomic>\n"
     "std::atomic<int> a;\n"
     "bool f(int& e) {\n"
     "  return a.compare_exchange_strong(\n"
     "      e, e + 1,\n"
     "      std::memory_order_seq_cst,\n"
     "      std::memory_order_relaxed);\n"
     "}\n",
     {"order-comment"}),
    ("order_comment_on_next_statement_does_not_cover",
     # The `;` ends the site's statement, so a comment on the NEXT
     # statement's line must not count as its justification.
     "#include <atomic>\n"
     "std::atomic<int> a, b;\n"
     "int f() {\n"
     "  int x = a.load(std::memory_order_acquire);\n"
     "  x += b.load(std::memory_order_relaxed);  // order: covers b only\n"
     "  return x;\n"
     "}\n",
     {"order-comment"}),
    ("tokens_in_comments_ok",
     "// new delete rand() volatile .detach() memory_order_relaxed\n"
     "/* delete new */\n"
     "int x;\n",
     set()),
    ("tokens_in_strings_ok",
     'const char* s = "new delete rand() volatile";\n',
     set()),
    ("suppressed_new",
     "int* f() { return new int; }"
     "  // lint: allow(naked-new) C API owns and frees this\n",
     set()),
    ("suppressed_next_line",
     "// lint: allow-next-line(volatile) hardware register\n"
     "volatile int reg;\n",
     set()),
    ("suppression_needs_reason",
     "int* f() { return new int; }  // lint: allow(naked-new)\n",
     {"lint-suppression", "naked-new"}),
    ("suppression_unknown_rule",
     "int x;  // lint: allow(not-a-rule) whatever\n",
     {"lint-suppression"}),
    ("suppression_wrong_rule",
     "int* f() { return new int; }  // lint: allow(rand) wrong rule\n",
     {"naked-new"}),
    # sync-seam: scoped to src/par/, src/svc/, src/util/stress.* — the case
    # name doubles as the file path the scope check sees.
    ("src/par/seam_atomic",
     "#include <atomic>\nstd::atomic<int> a{0};\n",
     {"sync-seam"}),
    ("src/svc/detail/seam_flag",
     "#include <atomic>\nstd::atomic_flag f;\n",
     {"sync-seam"}),
    ("src/util/stress",  # lint_file sees "src/util/stress.cpp"
     "#include <atomic>\n"
     "// order: test fixture\n"
     "void f() { std::atomic_thread_fence(std::memory_order_seq_cst); }\n",
     {"sync-seam"}),
    ("src/par/seam_sync_ok",
     '#include "util/sync.hpp"\nsync::atomic<int> a{0};\n',
     set()),
    ("src/par/seam_atomic_ref_ok",
     "#include <atomic>\n"
     "// order: test fixture\n"
     "int f(int& s) { return std::atomic_ref<int>(s)"
     ".load(std::memory_order_relaxed); }\n",
     set()),
    ("src/graph/seam_out_of_scope_ok",
     "#include <atomic>\nstd::atomic<int> a{0};\n",
     set()),
    ("src/par/seam_suppressed_ok",
     "#include <atomic>\n"
     "std::atomic<int> a{0};"
     "  // lint: allow(sync-seam) pre-seam fixture kept verbatim\n",
     set()),
    # raw-mmap: everywhere EXCEPT src/store/ — again the case name is the
    # path the scope check sees.
    ("src/svc/raw_mmap",
     "#include <sys/mman.h>\n"
     "void* f(int fd, long n) "
     "{ return mmap(nullptr, n, 1, 1, fd, 0); }\n",
     {"raw-mmap"}),
    ("src/graph/raw_munmap",
     "#include <sys/mman.h>\nvoid f(void* p, long n) { munmap(p, n); }\n",
     {"raw-mmap"}),
    ("src/par/raw_madvise",
     "#include <sys/mman.h>\nvoid f(void* p, long n) { madvise(p, n, 3); }\n",
     {"raw-mmap"}),
    ("src/store/mmap_in_store_ok",
     "#include <sys/mman.h>\n"
     "void* f(int fd, long n) "
     "{ return mmap(nullptr, n, 1, 1, fd, 0); }\n",
     set()),
    ("src/util/mmap_named_fn_ok",
     "int my_mmap(int);\nint f() { return my_mmap(0); }\n",
     set()),
    ("src/util/mmap_suppressed_ok",
     "#include <sys/mman.h>\n"
     "void f(void* p, long n) { munmap(p, n); }"
     "  // lint: allow(raw-mmap) unmapping a region a C library handed us\n",
     set()),
    # raw-process: everywhere EXCEPT src/shard/process.* — the case name
    # is the path the scope check sees.
    ("src/svc/raw_fork",
     "#include <unistd.h>\nint f() { return fork(); }\n",
     {"raw-process"}),
    ("src/par/raw_global_scope_fork",
     "#include <unistd.h>\nint f() { return ::fork(); }\n",
     {"raw-process"}),
    ("src/graph/raw_execv",
     "#include <unistd.h>\n"
     "void f(char** argv) { ::execv(argv[0], argv); }\n",
     {"raw-process"}),
    ("src/util/raw_posix_spawn",
     "#include <spawn.h>\n"
     "int f(pid_t* p, char** a, char** e) "
     "{ return posix_spawn(p, a[0], nullptr, nullptr, a, e); }\n",
     {"raw-process"}),
    ("src/shard/process",  # lint_file sees "src/shard/process.cpp"
     "#include <unistd.h>\n"
     "int f(char** argv) { if (::fork() == 0) ::execv(argv[0], argv); "
     "return 0; }\n",
     set()),
    ("src/shard/worker_fork_not_exempt",
     "#include <unistd.h>\nint f() { return fork(); }\n",
     {"raw-process"}),
    ("src/util/process_named_fn_ok",
     "int my_fork();\nint f() { return my_fork(); }\n",
     set()),
    ("src/util/process_member_ok",
     # A declaration `int fork();` is call-shaped and would fire, so the
     # type lives elsewhere; this checks the member/qualified-call guards.
     "int f(Proc& p) { return p.fork() + Proc::fork(); }\n",
     set()),
    ("src/util/process_suppressed_ok",
     "#include <unistd.h>\n"
     "int f() { return fork(); }"
     "  // lint: allow(raw-process) daemonizing before the fleet exists\n",
     set()),
    # raw-simd: everywhere EXCEPT src/util/simd.* — the case name is the
    # path the scope check sees.
    ("src/par/raw_simd_include",
     "#include <immintrin.h>\nint x;\n",
     {"raw-simd"}),
    ("src/graph/raw_simd_intrinsic",
     "void f(const long long* p) "
     "{ auto v = _mm256_loadu_si256((const __m256i*)p); (void)v; }\n",
     {"raw-simd"}),
    ("src/svc/raw_simd_sse",
     "void f() { _mm_pause(); }\n",
     {"raw-simd"}),
    ("src/util/simd",  # lint_file sees "src/util/simd.cpp"
     "#include <immintrin.h>\n"
     "long f(const long long* p) "
     "{ return _mm256_movemask_pd(_mm256_castsi256_pd("
     "_mm256_loadu_si256((const __m256i*)p))); }\n",
     set()),
    ("src/util/simd_helpers_not_exempt",  # "simd_helpers.cpp" != "simd.*"
     "#include <immintrin.h>\nint x;\n",
     {"raw-simd"}),
    ("src/graph/simd_named_fn_ok",
     "int x_mm256_add_epi64(int);\n"
     "int f() { return x_mm256_add_epi64(1); }\n",
     set()),
    ("src/par/simd_in_comment_ok",
     "// _mm256_or_si256 and __m256i are discussed here only\n"
     "int x;\n",
     set()),
    ("src/par/simd_suppressed_ok",
     "void f() { _mm_pause(); }"
     "  // lint: allow(raw-simd) spin-wait hint predates the seam\n",
     set()),
    # raw-mutex: scoped to src/par/, src/svc/, src/shard/, src/store/ —
    # the case name doubles as the path the scope check sees.
    ("src/svc/raw_mutex",
     "#include <mutex>\nstd::mutex mu;\n",
     {"raw-mutex"}),
    ("src/par/raw_lock_guard",
     "#include <mutex>\n"
     "void f(std::mutex& m) { std::lock_guard<std::mutex> lock(m); }\n",
     {"raw-mutex"}),
    ("src/shard/raw_condition_variable",
     "#include <condition_variable>\nstd::condition_variable cv;\n",
     {"raw-mutex"}),
    ("src/store/raw_unique_lock",
     "#include <mutex>\n"
     "void f(std::mutex& m) { std::unique_lock<std::mutex> lk(m); }\n",
     {"raw-mutex"}),
    ("src/svc/raw_sync_lowercase",
     # The lowercase seam aliases are unannotated — call sites must use
     # the capability-annotated wrappers instead.
     '#include "util/sync.hpp"\ngcg::sync::mutex mu;\n',
     {"raw-mutex"}),
    ("src/svc/wrapped_mutex_ok",
     '#include "util/sync.hpp"\n'
     "struct S {\n"
     "  void poke() { gcg::sync::LockGuard lock(mu_); ++v_; }\n"
     "  gcg::sync::Mutex mu_;\n"
     "  int v_ GCG_GUARDED_BY(mu_) = 0;\n"
     "};\n",
     set()),
    ("src/graph/raw_mutex_out_of_scope_ok",
     "#include <mutex>\nstd::mutex mu;\n",
     set()),
    ("src/par/raw_mutex_in_comment_ok",
     "// std::mutex and std::lock_guard are discussed here only\n"
     "int x;\n",
     set()),
    ("src/par/raw_mutex_suppressed_ok",
     "#include <mutex>\n"
     "std::mutex mu;"
     "  // lint: allow(raw-mutex) TSan regression fixture bypassing the seam\n",
     set()),
    ("src/par/raw_mutex_escape_no_reason",
     # An escape without a justification is caught twice: the bad
     # suppression AND the raw-mutex site it failed to cover.
     "#include <mutex>\n"
     "std::mutex mu;  // lint: allow(raw-mutex)\n",
     {"lint-suppression", "raw-mutex"}),
    # raw-narrow: integer-target static_cast banned in the
    # conversion-clean core (src/graph, par, svc, shard, store, check,
    # util) outside util/narrow.* — the case name doubles as the path the
    # scope check sees.
    ("src/graph/raw_narrow_vid",
     '#include "graph/csr.hpp"\n'
     "gcg::vid_t f(gcg::eid_t e) { return static_cast<gcg::vid_t>(e); }\n",
     {"raw-narrow"}),
    ("src/par/raw_narrow_unsigned",
     "unsigned f(int x) { return static_cast<unsigned>(x); }\n",
     {"raw-narrow"}),
    ("src/svc/raw_narrow_std_uint64",
     "#include <cstdint>\n"
     "std::uint64_t f(std::int64_t i) "
     "{ return static_cast<std::uint64_t>(i); }\n",
     {"raw-narrow"}),
    ("src/store/raw_narrow_streamoff",
     "#include <ios>\n"
     "std::streamoff f(unsigned long o) "
     "{ return static_cast<std::streamoff>(o); }\n",
     {"raw-narrow"}),
    ("src/check/raw_narrow_size_t",
     "#include <cstddef>\n"
     "std::size_t f(long n) { return static_cast<std::size_t>(n); }\n",
     {"raw-narrow"}),
    ("src/util/raw_narrow_unsigned_long_long",
     "unsigned long long f(long x) "
     "{ return static_cast<unsigned long long>(x); }\n",
     {"raw-narrow"}),
    ("src/util/narrow",  # lint_file sees "src/util/narrow.cpp" — exempt
     "template <class To, class From>\n"
     "To narrow(From x) { return static_cast<To>(static_cast<int>(x)); }\n",
     set()),
    ("src/coloring/narrow_out_of_scope_ok",
     "unsigned f(int x) { return static_cast<unsigned>(x); }\n",
     set()),
    ("src/graph/narrow_double_target_ok",
     "double f(gcg::vid_t v) { return static_cast<double>(v); }\n",
     set()),
    ("src/graph/narrow_pointer_target_ok",
     "int* f(void* p) { return static_cast<int*>(p); }\n",
     set()),
    ("src/graph/narrow_enum_target_ok",
     "enum class Order : int {};\n"
     "Order f(int x) { return static_cast<Order>(x); }\n",
     set()),
    ("src/par/narrow_in_comment_ok",
     "// static_cast<unsigned> is discussed here only\n"
     "int x;\n",
     set()),
    ("src/svc/narrow_suppressed_ok",
     "unsigned f(int x) { return static_cast<unsigned>(x); }"
     "  // lint: allow(raw-narrow) pre-seam fixture kept verbatim\n",
     set()),
    # lossy-comment: narrow_cast sites carry a `// lossy:` justification
    # with the same placement rules as `// order:`.
    ("src/util/lossy_bare",
     '#include "util/narrow.hpp"\n'
     "int f(long x) { return gcg::narrow_cast<int>(x); }\n",
     {"lossy-comment"}),
    ("src/util/lossy_same_line",
     '#include "util/narrow.hpp"\n'
     "unsigned f(long x) { return gcg::narrow_cast<unsigned>(x); }"
     "  // lossy: hash salt, wrapping intended\n",
     set()),
    ("src/util/lossy_comment_above",
     '#include "util/narrow.hpp"\n'
     "int f(long x) {\n"
     "  // lossy: two's-complement transport, cast back bit-for-bit\n"
     "  return gcg::narrow_cast<int>(x);\n"
     "}\n",
     set()),
    ("src/util/lossy_multiline_trailing",
     '#include "util/narrow.hpp"\n'
     "int f(long a, long b) {\n"
     "  return gcg::narrow_cast<int>(\n"
     "      a + b);  // lossy: checksum folds high bits by design\n"
     "}\n",
     set()),
    ("src/util/lossy_blank_line_breaks_coverage",
     '#include "util/narrow.hpp"\n'
     "// lossy: does not reach past the blank line\n"
     "\n"
     "int f(long x) { return gcg::narrow_cast<int>(x); }\n",
     {"lossy-comment"}),
    ("tools/lossy_outside_src_still_required",
     "int f(long x) { return gcg::narrow_cast<int>(x); }\n",
     {"lossy-comment"}),
    ("src/util/lossy_suppressed_ok",
     "int f(long x) { return gcg::narrow_cast<int>(x); }"
     "  // lint: allow(lossy-comment) generated table, justified in header\n",
     set()),
]


def self_test():
    failures = []

    for name, source, expected in SELF_TEST_CASES:
        found = {f.rule for f in lint_file(name + ".cpp", source)}
        if found != expected:
            failures.append(
                f"{name}: expected rules {sorted(expected)}, got {sorted(found)}")

    # Include-cycle detection on a synthetic 3-file cycle + one clean file.
    cyclic = {
        "a/a.hpp": '#include "b/b.hpp"\n',
        "b/b.hpp": '#include "c/c.hpp"\n',
        "c/c.hpp": '#include "a/a.hpp"\n',
        "clean.hpp": '#include "a/a.hpp"\n',
    }
    cycles = find_include_cycles(cyclic)
    if len(cycles) != 1 or set(cycles[0]) != {"a/a.hpp", "b/b.hpp", "c/c.hpp"}:
        failures.append(f"include-cycle: expected one 3-cycle, got {cycles}")
    if find_include_cycles({"a.hpp": '#include "b.hpp"\n', "b.hpp": "\n"}):
        failures.append("include-cycle: false positive on acyclic graph")

    # End-to-end over a temp tree: seeded violations must be reported with
    # the right paths, and a clean tree must come back empty.
    with tempfile.TemporaryDirectory() as tmp:
        bad_dir = os.path.join(tmp, "src")
        os.makedirs(bad_dir)
        with open(os.path.join(bad_dir, "bad.cpp"), "w") as f:
            f.write("void f(int* p) { delete p; }\n")
        findings = run_lint(tmp, [])
        if len(findings) != 1 or findings[0].rule != "naked-delete":
            failures.append(f"end-to-end: expected one naked-delete, got "
                            f"{[str(f) for f in findings]}")

    # End-to-end cycle detection with the real src/-relative include keys.
    with tempfile.TemporaryDirectory() as tmp:
        for rel, text in [("a/a.hpp", '#include "b/b.hpp"\n'),
                          ("b/b.hpp", '#include "a/a.hpp"\n')]:
            full = os.path.join(tmp, "src", rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w") as f:
                f.write(text)
        findings = run_lint(tmp, [])
        if [f.rule for f in findings] != [CYCLE_RULE]:
            failures.append(f"end-to-end cycle: expected one {CYCLE_RULE}, "
                            f"got {[str(f) for f in findings]}")

    if failures:
        print("gcg_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print(f"gcg_lint self-test passed "
          f"({len(SELF_TEST_CASES)} cases, {len(ALL_RULES)} rules)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: <root>/src)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up from this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in rule tests and exit")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    paths = args.paths or [os.path.join(root, "src")]

    findings = run_lint(root, paths)
    for f in findings:
        print(f)
    if findings:
        print(f"gcg_lint: {len(findings)} finding(s)", file=sys.stderr)
        sys.exit(1)
    print("gcg_lint: clean")


if __name__ == "__main__":
    main()
