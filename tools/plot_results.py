#!/usr/bin/env python3
"""Turn bench_* output into figures.

Every experiment binary prints an ASCII table followed by a CSV block
fenced between `--- csv ---` and `--- end csv ---`. This script extracts
those blocks and renders the standard figures of the reproduction:

    # capture everything once
    for b in build/bench/bench_table* build/bench/bench_fig*; do $b; done > results.txt
    # render figures (PNG) into ./figs
    tools/plot_results.py results.txt --out figs

Matplotlib is optional: without it the script still extracts the CSV
blocks to <out>/<experiment>.csv so any plotting stack can consume them.
"""

import argparse
import csv
import io
import os
import re
import sys


def extract_blocks(text):
    """Yield (experiment_id, title, rows) for each CSV block."""
    experiment = "unknown"
    title = ""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        m = re.match(r"# experiment: (\S+)", line)
        if m:
            experiment = m.group(1)
        m = re.match(r"== (.*) ==", line)
        if m:
            title = m.group(1)
        if line.strip() == "--- csv ---":
            j = i + 1
            block = []
            while j < len(lines) and lines[j].strip() != "--- end csv ---":
                block.append(lines[j])
                j += 1
            rows = list(csv.reader(io.StringIO("\n".join(block))))
            if rows:
                yield experiment, title, rows
            i = j
        i += 1


def slug(s):
    return re.sub(r"[^a-zA-Z0-9]+", "_", s).strip("_").lower()


def write_csvs(blocks, outdir):
    written = []
    for experiment, title, rows in blocks:
        path = os.path.join(outdir, f"{slug(experiment)}__{slug(title)}.csv")
        with open(path, "w", newline="") as f:
            csv.writer(f).writerows(rows)
        written.append(path)
    return written


def try_plot(blocks, outdir):
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; CSVs extracted only", file=sys.stderr)
        return []

    made = []

    def save(fig, name):
        path = os.path.join(outdir, name + ".png")
        fig.tight_layout()
        fig.savefig(path, dpi=130)
        plt.close(fig)
        made.append(path)

    for experiment, title, rows in blocks:
        header, data = rows[0], rows[1:]
        if not data:
            continue
        cols = {h: [r[k] for r in data] for k, h in enumerate(header)}

        # Thread-scaling line charts (bench_par_scaling): threads on x,
        # speedup on y, one line per graph/algorithm pair.
        speed_col = next((h for h in header if "speedup" in h), None)
        if (speed_col and "threads" in header and "algorithm" in header
                and header[0] == "graph"):
            tcol = header.index("threads")
            scol = header.index(speed_col)
            pairs = list(dict.fromkeys(zip(cols["graph"], cols["algorithm"])))
            fig, ax = plt.subplots(figsize=(6, 4))
            max_t = 1
            for g, a in pairs:
                xs = [int(r[tcol]) for r in data if (r[0], r[1]) == (g, a)]
                ys = [float(r[scol]) for r in data if (r[0], r[1]) == (g, a)]
                max_t = max(max_t, *xs)
                ax.plot(xs, ys, marker="o", markersize=3, label=f"{g}/{a}")
            ax.plot([1, max_t], [1, max_t], "k--", linewidth=0.6,
                    label="ideal")
            ax.set_xlabel("threads")
            ax.set_ylabel(speed_col)
            ax.set_title(title, fontsize=9)
            ax.legend(fontsize=6)
            save(fig, f"{slug(experiment)}__{slug(title)}")

        # Grouped-bar speedup charts: any table with graph/algorithm-ish
        # first columns and a speedup column. (Thread-scaling tables are
        # handled above — a bar over them would collapse the sweep to the
        # first thread count.)
        elif speed_col and header[0] == "graph" and len(header) > 2:
            series_col = header[1]
            graphs = sorted(set(cols["graph"]), key=cols["graph"].index)
            series = sorted(set(cols[series_col]), key=cols[series_col].index)
            fig, ax = plt.subplots(figsize=(max(6, len(graphs) * 1.2), 4))
            width = 0.8 / max(1, len(series))
            for si, sname in enumerate(series):
                ys = []
                for g in graphs:
                    v = [
                        float(r[header.index(speed_col)])
                        for r in data
                        if r[0] == g and r[1] == sname
                    ]
                    ys.append(v[0] if v else 0.0)
                ax.bar(
                    [gi + si * width for gi in range(len(graphs))],
                    ys,
                    width,
                    label=str(sname)[:24],
                )
            ax.axhline(1.0, color="k", linewidth=0.6)
            ax.set_xticks([gi + 0.4 for gi in range(len(graphs))])
            ax.set_xticklabels(graphs, rotation=30, ha="right", fontsize=8)
            ax.set_ylabel(speed_col)
            ax.set_title(title, fontsize=9)
            ax.legend(fontsize=7)
            save(fig, f"{slug(experiment)}__{slug(title)}")

        # Busy-time skew under scheduling policies (bench_par_imbalance):
        # grouped bars per graph/algorithm, one bar per schedule+hub
        # configuration — left panel worker busy skew, right panel the
        # wall-clock ratio against the vertex-chunked baseline.
        if "busy_max_over_mean" in header and "schedule" in header:
            configs = list(dict.fromkeys(zip(cols["schedule"], cols["hub"])))
            groups = list(dict.fromkeys(zip(cols["graph"], cols["algorithm"])))
            fig, axes = plt.subplots(1, 2,
                                     figsize=(max(8, len(groups) * 2.0), 4))
            width = 0.8 / max(1, len(configs))
            for ax, ycol, ref in ((axes[0], "busy_max_over_mean", None),
                                  (axes[1], "win_vs_vertex", 1.0)):
                ycol_i = header.index(ycol)
                for ci, (sched, hub) in enumerate(configs):
                    ys = []
                    for g, a in groups:
                        v = [float(r[ycol_i]) for r in data
                             if (r[0], r[1]) == (g, a)
                             and (r[header.index("schedule")],
                                  r[header.index("hub")]) == (sched, hub)]
                        ys.append(v[0] if v else 0.0)
                    ax.bar([gi + ci * width for gi in range(len(groups))],
                           ys, width, label=f"{sched}/hub={hub}")
                if ref is not None:
                    ax.axhline(ref, color="k", linewidth=0.6)
                ax.set_xticks([gi + 0.4 for gi in range(len(groups))])
                ax.set_xticklabels([f"{g}\n{a}" for g, a in groups],
                                   fontsize=8)
                ax.set_ylabel(ycol)
                ax.legend(fontsize=6)
            fig.suptitle(title, fontsize=9)
            save(fig, f"{slug(experiment)}__busy_skew")

        # Service latency/throughput curve (bench_svc_throughput):
        # offered QPS on x, p50 and p99 latency on y (log scale), one
        # point per client-count sweep step.
        if "offered_qps" in header and "p50_ms" in header and "p99_ms" in header:
            qcol = header.index("offered_qps")
            order = sorted(range(len(data)), key=lambda k: float(data[k][qcol]))
            xs = [float(data[k][qcol]) for k in order]
            fig, ax = plt.subplots(figsize=(6, 4))
            for pcol, style in (("p50_ms", "o-"), ("p99_ms", "s--")):
                ys = [float(data[k][header.index(pcol)]) for k in order]
                ax.plot(xs, ys, style, markersize=4, label=pcol)
            if "clients" in header:
                ccol = header.index("clients")
                for k in order:
                    ax.annotate(data[k][ccol],
                                (float(data[k][qcol]),
                                 float(data[k][header.index("p99_ms")])),
                                textcoords="offset points", xytext=(0, 5),
                                fontsize=6)
            ax.set_yscale("log")
            ax.set_xlabel("offered load (requests/s)")
            ax.set_ylabel("latency (ms)")
            ax.set_title(title, fontsize=9)
            ax.legend(fontsize=7)
            save(fig, f"{slug(experiment)}__latency_curve")

        # Line charts for per-iteration activity.
        if "iteration" in header and "active" in header:
            graphs = sorted(set(cols["graph"]), key=cols["graph"].index)
            fig, ax = plt.subplots(figsize=(6, 4))
            for g in graphs:
                xs = [int(r[header.index("iteration")]) for r in data if r[0] == g]
                ys = [int(r[header.index("active")]) for r in data if r[0] == g]
                ax.plot(xs, ys, label=g)
            ax.set_yscale("log")
            ax.set_xlabel("iteration")
            ax.set_ylabel("active vertices")
            ax.set_title(title, fontsize=9)
            ax.legend(fontsize=7)
            save(fig, f"{slug(experiment)}__activity")

    return made


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("results", help="captured bench output (text)")
    ap.add_argument("--out", default="figs", help="output directory")
    args = ap.parse_args()

    with open(args.results) as f:
        text = f.read()
    blocks = list(extract_blocks(text))
    if not blocks:
        print("no CSV blocks found — is this bench output?", file=sys.stderr)
        return 1

    os.makedirs(args.out, exist_ok=True)
    csvs = write_csvs(blocks, args.out)
    pngs = try_plot(blocks, args.out)
    print(f"extracted {len(csvs)} csv blocks, rendered {len(pngs)} figures "
          f"into {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
