// Store packer/inspector: convert any loadable graph file into the
// mmap'able .gbin v2 store format (or back down to legacy v1), and
// inspect/verify packed files without loading them.
//
//   graph_pack <input> [output]        pack to .gbin v2
//       [--force]                      repack even if output is valid v2
//       [--v1]                         write legacy v1 instead of v2
//   graph_pack --inspect <file.gbin>   print header/sections/checksums
//   graph_pack --verify <file.gbin>    recompute + compare checksums
//
// Exit codes: 0 = ok, 1 = error (unreadable input, failed verify),
// 2 = usage.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "graph/io/io.hpp"
#include "store/format.hpp"
#include "store/mapped_graph.hpp"
#include "store/writer.hpp"
#include "util/cli.hpp"

namespace {

using namespace gcg;

int usage() {
  std::cerr
      << "usage: graph_pack <input.{mtx,col,el,gbin}> [output.gbin] "
         "[--force] [--v1]\n"
         "       graph_pack --inspect <file.gbin>\n"
         "       graph_pack --verify <file.gbin>\n";
  return 2;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Reads the raw v2 header without validating — --inspect should print
/// whatever is on disk, even for a corrupt file.
store::HeaderV2 read_raw_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  store::HeaderV2 h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in) throw std::runtime_error(path + ": shorter than a v2 header");
  return h;
}

int inspect(const std::string& path) {
  // Sniff the magic first: a legacy v1 file can be smaller than a v2
  // header, so don't demand 128 bytes before knowing the generation.
  char magic[8] = {};
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    in.read(magic, sizeof magic);
    if (!in) throw std::runtime_error(path + ": shorter than a magic tag");
  }
  std::cout << "file:            " << path << '\n'
            << "magic:           " << std::string(magic, magic + sizeof magic)
            << (store::has_v2_magic(magic, sizeof magic) ? "" : "  (NOT v2)")
            << '\n';
  if (!store::has_v2_magic(magic, sizeof magic)) {
    // Might be v1 — say so instead of dumping garbage fields.
    if (std::memcmp(magic, "gcgbin01", 8) == 0) {
      std::cout << "format:          legacy v1 (length-prefixed, "
                   "not mmap'able; repack with graph_pack)\n";
      return 0;
    }
    std::cerr << "error: not a .gbin file\n";
    return 1;
  }
  const store::HeaderV2 h = read_raw_header(path);
  const std::uint64_t expect_header = store::header_checksum(h);
  std::cout << "version:         " << h.version << '\n'
            << "endian tag:      " << hex64(h.endian_tag)
            << (h.endian_tag == store::kEndianTag ? "  (native)"
                                                  : "  (FOREIGN)")
            << '\n'
            << "vertices:        " << h.num_vertices << '\n'
            << "arcs:            " << h.num_arcs << '\n'
            << "rows section:    offset " << h.rows_offset << ", "
            << h.rows_bytes << " bytes, checksum " << hex64(h.rows_checksum)
            << '\n'
            << "cols section:    offset " << h.cols_offset << ", "
            << h.cols_bytes << " bytes, checksum " << hex64(h.cols_checksum)
            << '\n'
            << "header checksum: " << hex64(h.header_checksum)
            << (h.header_checksum == expect_header ? "  (ok)" : "  (BAD)")
            << '\n';
  return h.header_checksum == expect_header ? 0 : 1;
}

int verify(const std::string& path) {
  const store::HeaderV2 h = read_raw_header(path);
  validate_gbin_v2_header(h);  // throws with a precise message
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  auto section_sum = [&](std::uint64_t offset, std::uint64_t bytes) {
    in.seekg(static_cast<std::streamoff>(offset));
    std::vector<char> buf(static_cast<std::size_t>(bytes));
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!in) throw std::runtime_error(path + ": truncated section");
    return store::fnv1a64(buf.data(), buf.size());
  };
  const std::uint64_t rows = section_sum(h.rows_offset, h.rows_bytes);
  const std::uint64_t cols = section_sum(h.cols_offset, h.cols_bytes);
  bool ok = true;
  if (rows != h.rows_checksum) {
    std::cerr << "rows checksum mismatch: stored " << hex64(h.rows_checksum)
              << ", computed " << hex64(rows) << '\n';
    ok = false;
  }
  if (cols != h.cols_checksum) {
    std::cerr << "cols checksum mismatch: stored " << hex64(h.cols_checksum)
              << ", computed " << hex64(cols) << '\n';
    ok = false;
  }
  if (ok) {
    std::cout << path << ": ok (" << h.num_vertices << " vertices, "
              << h.num_arcs << " arcs)\n";
  }
  return ok ? 0 : 1;
}

int pack_v1(const std::string& input, const std::string& output) {
  const Csr g = load_graph(input);
  std::ofstream out(output, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + output);
  save_binary(out, g);
  if (!out) throw std::runtime_error("write failed: " + output);
  std::cout << "wrote " << output << " (legacy v1)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Every flag here is a boolean mode; declaring them keeps gcg::Cli
  // from absorbing the positional after `--v1` or `--inspect` as a
  // value (the bug that once forced this tool to hand-parse argv).
  const Cli cli(argc, argv, {"v1", "force", "inspect", "verify"});
  const bool want_v1 = cli.get_bool("v1");
  const bool force = cli.get_bool("force");
  const bool inspect_mode = cli.get_bool("inspect");
  const bool verify_mode = cli.get_bool("verify");
  const std::vector<std::string>& pos = cli.positional();
  if (!cli.unused().empty()) {
    std::cerr << "error: unknown flag --" << cli.unused().front() << '\n';
    return usage();
  }
  if (pos.empty()) return usage();

  try {
    if (inspect_mode) return inspect(pos[0]);
    if (verify_mode) return verify(pos[0]);

    const std::string& input = pos[0];
    const std::string output =
        pos.size() > 1 ? pos[1] : store::default_pack_target(input);
    if (want_v1) return pack_v1(input, output);

    const store::PackResult r =
        store::pack(input, output, /*reuse_existing=*/!force);
    if (r.reused) {
      std::cout << r.output << " already packed (" << r.output_bytes
                << " bytes) -- use --force to repack\n";
    } else {
      std::cout << "packed " << input << " (" << r.input_bytes
                << " bytes) -> " << r.output << " (" << r.output_bytes
                << " bytes)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
