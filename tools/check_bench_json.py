#!/usr/bin/env python3
"""check_bench_json: validate the machine-readable bench documents.

The bench binaries (bench_par_imbalance, bench_par_scaling, bench_shard)
emit hand-rolled JSON; this checker is the CI tripwire that the documents
stay parseable and keep the columns downstream diffing relies on.

Usage:
  check_bench_json.py FILE [FILE...]

Exit 0 iff every file parses, names a known experiment, and every record
carries that experiment's required keys with sane types/values.
"""

import json
import sys

# experiment -> (required top-level keys, required per-record keys)
SCHEMAS = {
    "par_imbalance": (
        {"scale", "seed", "threads", "repeats", "simd_detected", "records"},
        {"graph", "algorithm", "order", "simd", "schedule", "hub", "threads",
         "wall_ms", "reorder_ms", "busy_max_over_mean", "busy_cv", "colors",
         "win_vs_base"},
    ),
    "par_scaling": (
        {"scale", "seed", "repeats", "priority", "records"},
        {"graph", "algorithm", "threads", "wall_ms", "speedup",
         "busy_max_over_mean", "steal_hits", "colors", "seq_colors"},
    ),
    "shard": (
        {"scale", "seed", "workers", "max_rounds", "records"},
        {"graph", "shards", "workers", "boundary_fraction", "cut_arcs",
         "conflict_rounds", "recolored", "colors", "par_colors", "wall_ms"},
    ),
}

NUMERIC_NONNEG = {"wall_ms", "reorder_ms", "busy_max_over_mean", "busy_cv",
                  "speedup", "win_vs_base", "boundary_fraction"}
INT_POSITIVE = {"colors", "seq_colors", "par_colors", "threads", "shards"}


def check_file(path):
    """Returns (errors, record_count); record_count is 0 unless clean."""
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return [f"{path}: unreadable: {e}"], 0
    except json.JSONDecodeError as e:
        return [f"{path}: invalid JSON ({e}) — an empty or truncated "
                "file usually means the bench was interrupted mid-write; "
                "re-run it"], 0

    if not isinstance(doc, dict):
        return [f"{path}: top-level JSON must be an object, got "
                f"{type(doc).__name__} — a truncated or hand-edited "
                "file? re-run the bench"], 0

    exp = doc.get("experiment")
    if exp not in SCHEMAS:
        return [f"{path}: unknown experiment {exp!r} "
                f"(known: {', '.join(sorted(SCHEMAS))})"], 0
    top_keys, rec_keys = SCHEMAS[exp]

    missing = top_keys - doc.keys()
    if missing:
        errors.append(f"{path}: missing top-level keys: "
                      f"{', '.join(sorted(missing))}")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        errors.append(f"{path}: \"records\" must be a non-empty array")
        return errors, 0

    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            errors.append(f"{path}: records[{i}] is not an object")
            continue
        missing = rec_keys - rec.keys()
        if missing:
            errors.append(f"{path}: records[{i}] missing keys: "
                          f"{', '.join(sorted(missing))}")
        for key in rec_keys & rec.keys():
            val = rec[key]
            if key in NUMERIC_NONNEG:
                if not isinstance(val, (int, float)) or val < 0:
                    errors.append(f"{path}: records[{i}].{key} must be a "
                                  f"non-negative number, got {val!r}")
            elif key in INT_POSITIVE:
                if not isinstance(val, int) or val < 1:
                    errors.append(f"{path}: records[{i}].{key} must be a "
                                  f"positive integer, got {val!r}")
    return errors, len(records)


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in sys.argv[1:]:
        # Single parse: re-reading here would reopen the crash window on
        # a file that changed (or vanished) between the two reads.
        errs, n = check_file(path)
        all_errors.extend(errs)
        if not errs:
            print(f"{path}: ok ({n} records)")
    for e in all_errors:
        print(e, file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
