#include "apps/pagerank.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/common.hpp"
#include "util/expect.hpp"

namespace gcg {

namespace {

/// Shared update rule so host and device agree bit-for-bit in structure:
/// next[v] = (1-d)/n + d * (sum over neighbours u of rank[u]/deg(u))
///           + d * dangling_mass / n
double dangling_mass(const Csr& g, const std::vector<double>& rank) {
  double mass = 0.0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) == 0) mass += rank[v];
  }
  return mass;
}

}  // namespace

PageRankResult pagerank_host(const Csr& g, const PageRankOptions& opts) {
  const vid_t n = g.num_vertices();
  PageRankResult out;
  out.rank.assign(n, n ? 1.0 / n : 0.0);
  if (n == 0) return out;
  std::vector<double> next(n);
  for (unsigned it = 0; it < opts.max_iterations; ++it) {
    const double base =
        (1.0 - opts.damping) / n + opts.damping * dangling_mass(g, out.rank) / n;
    for (vid_t v = 0; v < n; ++v) {
      double sum = 0.0;
      for (vid_t u : g.neighbors(v)) {
        sum += out.rank[u] / g.degree(u);
      }
      next[v] = base + opts.damping * sum;
    }
    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) delta += std::abs(next[v] - out.rank[v]);
    out.rank.swap(next);
    ++out.iterations;
    out.final_delta = delta;
    if (delta < opts.tolerance) break;
  }
  return out;
}

PageRankResult pagerank_device(simgpu::Device& dev, const Csr& g,
                               const PageRankOptions& opts) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;
  const vid_t n = g.num_vertices();
  PageRankResult out;
  out.rank.assign(n, n ? 1.0 / n : 0.0);
  if (n == 0) return out;

  const unsigned gs = std::min(opts.group_size, dev.config().max_group_size);
  const DeviceGraph dg = DeviceGraph::of(g);
  // Precompute 1/deg once (device buffer) — what real kernels do.
  std::vector<double> inv_deg(n, 0.0);
  for (vid_t v = 0; v < n; ++v) {
    if (g.degree(v) > 0) inv_deg[v] = 1.0 / g.degree(v);
  }
  const std::span<const double> inv_deg_c(inv_deg.data(), inv_deg.size());
  std::vector<double> next(n);

  for (unsigned it = 0; it < opts.max_iterations; ++it) {
    const double base =
        (1.0 - opts.damping) / n + opts.damping * dangling_mass(g, out.rank) / n;
    const std::span<const double> rank_c(out.rank.data(), out.rank.size());
    const std::span<double> next_s(next.data(), next.size());

    dev.launch_waves(n, gs, [&](Wave& w) {
      const Mask m = w.valid();
      if (!m.any()) {
        w.salu();
        return;
      }
      const auto rows = w.global_ids();
      Vec<double> acc = Vec<double>::splat(0.0);
      const Vec<eid_t> row_begin = w.load(dg.rows, rows, m);
      Vec<std::uint32_t> rows1;
      for (unsigned i = 0; i < w.width(); ++i) rows1[i] = rows[i] + 1;
      w.valu(m);
      const Vec<eid_t> row_end = w.load(dg.rows, rows1, m);
      Vec<eid_t> cur = row_begin;
      w.valu(m);
      Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
      while (loop.any()) {
        const Vec<vid_t> nbr = w.load(dg.cols, cur, loop);
        const Vec<double> r = w.load(rank_c, nbr, loop);
        const Vec<double> id = w.load(inv_deg_c, nbr, loop);
        w.valu(loop, 2.0);
        for (unsigned i = 0; i < w.width(); ++i) {
          if (loop.test(i)) {
            acc[i] += r[i] * id[i];
            ++cur[i];
          }
        }
        loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
      }
      for (unsigned i = 0; i < w.width(); ++i) {
        if (m.test(i)) acc[i] = base + opts.damping * acc[i];
      }
      w.valu(m, 2.0);
      w.store(next_s, rows, acc, m);
    });

    double delta = 0.0;
    for (vid_t v = 0; v < n; ++v) delta += std::abs(next[v] - out.rank[v]);
    out.rank.swap(next);
    ++out.iterations;
    out.final_delta = delta;
    if (delta < opts.tolerance) break;
  }
  out.device_cycles = dev.total_cycles();
  return out;
}

}  // namespace gcg
