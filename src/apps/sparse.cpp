#include "apps/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "coloring/common.hpp"
#include "graph/gen/grid.hpp"
#include "util/expect.hpp"

namespace gcg {

SparseMatrix make_poisson2d(vid_t nx, vid_t ny) {
  SparseMatrix A;
  A.structure = make_grid2d(nx, ny);
  A.values.assign(A.structure.num_arcs(), -1.0);
  A.diag.assign(A.structure.num_vertices(), 4.0);
  return A;
}

SparseMatrix make_graph_laplacian(const Csr& g, double tau) {
  GCG_EXPECT(tau > 0.0);
  SparseMatrix A;
  A.structure = g;
  A.values.assign(g.num_arcs(), -1.0);
  A.diag.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    A.diag[v] = static_cast<double>(g.degree(v)) + tau;
  }
  return A;
}

void spmv_host(const SparseMatrix& A, std::span<const double> x,
               std::span<double> y) {
  GCG_EXPECT(x.size() == A.n() && y.size() == A.n());
  for (vid_t v = 0; v < A.n(); ++v) {
    double sum = A.diag[v] * x[v];
    for (eid_t e = A.structure.offset(v); e < A.structure.offset(v + 1); ++e) {
      sum += A.values[e] * x[A.structure.col_indices()[e]];
    }
    y[v] = sum;
  }
}

simgpu::LaunchResult spmv_device(simgpu::Device& dev, const SparseMatrix& A,
                                 std::span<const double> x, std::span<double> y,
                                 unsigned group_size) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;
  GCG_EXPECT(x.size() == A.n() && y.size() == A.n());
  const DeviceGraph g = DeviceGraph::of(A.structure);
  const std::span<const double> vals(A.values.data(), A.values.size());
  const std::span<const double> diag(A.diag.data(), A.diag.size());
  const unsigned gs = std::min(group_size, dev.config().max_group_size);

  return dev.launch_waves(A.n(), gs, [&](Wave& w) {
    const Mask m = w.valid();
    if (!m.any()) {
      w.salu();
      return;
    }
    const auto rows = w.global_ids();
    const Vec<double> dv = w.load(diag, rows, m);
    const Vec<double> xv = w.load(x, rows, m);
    Vec<double> acc;
    for (unsigned i = 0; i < w.width(); ++i) acc[i] = dv[i] * xv[i];
    w.valu(m);

    const Vec<eid_t> row_begin = w.load(g.rows, rows, m);
    Vec<std::uint32_t> rows1;
    for (unsigned i = 0; i < w.width(); ++i) rows1[i] = rows[i] + 1;
    w.valu(m);
    const Vec<eid_t> row_end = w.load(g.rows, rows1, m);

    Vec<eid_t> cur = row_begin;
    w.valu(m);
    Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
    while (loop.any()) {
      const Vec<vid_t> col = w.load(g.cols, cur, loop);
      const Vec<double> a = w.load(vals, cur, loop);
      const Vec<double> xc = w.load(x, col, loop);
      w.valu(loop, 2.0);  // fused multiply-add + cursor
      for (unsigned i = 0; i < w.width(); ++i) {
        if (loop.test(i)) {
          acc[i] += a[i] * xc[i];
          ++cur[i];
        }
      }
      loop = where2(cur, row_end, loop, [](eid_t a_, eid_t b) { return a_ < b; });
    }
    w.store(y, rows, acc, m);
  });
}

double residual_inf(const SparseMatrix& A, std::span<const double> x,
                    std::span<const double> b) {
  std::vector<double> ax(A.n());
  spmv_host(A, x, ax);
  double r = 0.0;
  for (vid_t v = 0; v < A.n(); ++v) r = std::max(r, std::abs(ax[v] - b[v]));
  return r;
}

}  // namespace gcg
