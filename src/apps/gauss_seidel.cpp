#include "apps/gauss_seidel.hpp"

#include <algorithm>

#include "check/coloring.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

GsResult gauss_seidel_host(const SparseMatrix& A, std::span<const double> b,
                           const GsOptions& opts) {
  GCG_EXPECT(b.size() == A.n());
  GsResult out;
  out.x.assign(A.n(), 0.0);
  for (unsigned sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    for (vid_t v = 0; v < A.n(); ++v) {
      double sum = b[v];
      for (eid_t e = A.structure.offset(v); e < A.structure.offset(v + 1); ++e) {
        sum -= A.values[e] * out.x[A.structure.col_indices()[e]];
      }
      out.x[v] = sum / A.diag[v];
    }
    ++out.sweeps;
    out.final_residual = residual_inf(A, out.x, b);
    out.residual_history.push_back(out.final_residual);
    if (out.final_residual < opts.tolerance) break;
  }
  return out;
}

GsResult gauss_seidel_multicolor(simgpu::Device& dev, const SparseMatrix& A,
                                 std::span<const double> b,
                                 std::span<const color_t> colors,
                                 const GsOptions& opts) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;
  GCG_EXPECT(b.size() == A.n());
  GCG_EXPECT(colors.size() == A.n());
  GCG_EXPECT(check::is_valid_coloring(A.structure, colors));

  // Group unknowns by color class once (device-side index lists).
  std::vector<color_t> dense(colors.begin(), colors.end());
  const int k = compact_colors(dense);
  std::vector<std::vector<vid_t>> classes(to_unsigned(k));
  for (vid_t v = 0; v < A.n(); ++v) classes[to_unsigned(dense[v])].push_back(v);

  const DeviceGraph g = DeviceGraph::of(A.structure);
  const std::span<const double> vals(A.values.data(), A.values.size());
  const std::span<const double> diag(A.diag.data(), A.diag.size());

  const unsigned gs = std::min(opts.group_size, dev.config().max_group_size);
  GsResult out;
  out.x.assign(A.n(), 0.0);
  const std::span<double> x(out.x.data(), out.x.size());
  const std::span<const double> x_const(out.x.data(), out.x.size());

  for (unsigned sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    for (int c = 0; c < k; ++c) {
      const std::span<const vid_t> members(classes[to_unsigned(c)].data(),
                                          classes[to_unsigned(c)].size());
      // All members of one class are pairwise non-adjacent: each lane can
      // read x and write its own entry with no ordering hazard.
      dev.launch_waves(members.size(), gs, [&](Wave& w) {
        const Mask m = w.valid();
        if (!m.any()) {
          w.salu();
          return;
        }
        const auto rows = w.load(members, w.global_ids(), m);
        const Vec<double> bv = w.load(b, rows, m);
        const Vec<double> dv = w.load(diag, rows, m);
        Vec<double> acc = bv;
        const Vec<eid_t> row_begin = w.load(g.rows, rows, m);
        Vec<std::uint32_t> rows1;
        for (unsigned i = 0; i < w.width(); ++i) rows1[i] = rows[i] + 1;
        w.valu(m);
        const Vec<eid_t> row_end = w.load(g.rows, rows1, m);
        Vec<eid_t> cur = row_begin;
        w.valu(m);
        Mask loop =
            where2(cur, row_end, m, [](eid_t a, eid_t e) { return a < e; });
        while (loop.any()) {
          const Vec<vid_t> col = w.load(g.cols, cur, loop);
          const Vec<double> a = w.load(vals, cur, loop);
          const Vec<double> xc = w.load(x_const, col, loop);
          w.valu(loop, 2.0);
          for (unsigned i = 0; i < w.width(); ++i) {
            if (loop.test(i)) {
              acc[i] -= a[i] * xc[i];
              ++cur[i];
            }
          }
          loop = where2(cur, row_end, loop,
                        [](eid_t a_, eid_t e) { return a_ < e; });
        }
        for (unsigned i = 0; i < w.width(); ++i) {
          if (m.test(i)) acc[i] /= dv[i];
        }
        w.valu(m);
        w.store(x, rows, acc, m);
      });
    }
    ++out.sweeps;
    out.final_residual = residual_inf(A, out.x, b);
    out.residual_history.push_back(out.final_residual);
    if (out.final_residual < opts.tolerance) break;
  }
  out.device_cycles = dev.total_cycles();
  return out;
}

}  // namespace gcg
