#include "apps/bfs.hpp"

#include <algorithm>

#include "coloring/common.hpp"
#include "util/expect.hpp"

namespace gcg {

BfsResult bfs_host(const Csr& g, vid_t source) {
  GCG_EXPECT(source < g.num_vertices());
  BfsResult out;
  out.distance.assign(g.num_vertices(), kUnreached);
  out.parent.assign(g.num_vertices(), ~vid_t{0});
  std::vector<vid_t> frontier{source};
  out.distance[source] = 0;
  while (!frontier.empty()) {
    std::vector<vid_t> next;
    for (vid_t u : frontier) {
      for (vid_t v : g.neighbors(u)) {
        if (out.distance[v] == kUnreached) {
          out.distance[v] = out.distance[u] + 1;
          out.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
    ++out.levels;
  }
  return out;
}

BfsResult bfs_device(simgpu::Device& dev, const Csr& g, vid_t source,
                     unsigned group_size) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;
  GCG_EXPECT(source < g.num_vertices());

  const vid_t n = g.num_vertices();
  const unsigned gs = std::min(group_size, dev.config().max_group_size);
  const DeviceGraph dg = DeviceGraph::of(g);
  BfsResult out;
  out.distance.assign(n, kUnreached);
  out.parent.assign(n, ~vid_t{0});
  out.distance[source] = 0;

  std::vector<vid_t> frontier_in{source};
  frontier_in.resize(n);  // capacity for any level
  std::vector<vid_t> frontier_out(n);
  std::vector<std::uint32_t> counter(1, 0);
  std::uint32_t frontier_size = 1;
  const std::span<std::uint32_t> dist(out.distance.data(), out.distance.size());
  const std::span<const std::uint32_t> dist_c(out.distance.data(),
                                              out.distance.size());
  const std::span<vid_t> parent(out.parent.data(), out.parent.size());

  std::uint32_t level = 0;
  while (frontier_size > 0) {
    GCG_ASSERT(level <= n);
    const std::span<const vid_t> fin(frontier_in.data(), frontier_size);
    counter[0] = 0;
    // Expand: each lane owns one frontier vertex and claims unreached
    // neighbours. A neighbour reachable from two frontier vertices is
    // claimed once (lane order resolves the benign race, as on hardware).
    dev.launch_waves(frontier_size, gs, [&](Wave& w) {
      const Mask m = w.valid();
      if (!m.any()) {
        w.salu();
        return;
      }
      const auto items = w.load(fin, w.global_ids(), m);
      const Vec<eid_t> row_begin = w.load(dg.rows, items, m);
      Vec<std::uint32_t> items1;
      for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
      w.valu(m);
      const Vec<eid_t> row_end = w.load(dg.rows, items1, m);
      Vec<eid_t> cur = row_begin;
      w.valu(m);
      Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
      while (loop.any()) {
        const Vec<vid_t> nbr = w.load(dg.cols, cur, loop);
        const Vec<std::uint32_t> nd = w.load(dist_c, nbr, loop);
        w.valu(loop, 2.0);
        Mask claim = Mask::none();
        for (unsigned i = 0; i < w.width(); ++i) {
          if (!loop.test(i) || nd[i] != kUnreached) continue;
          // Claim immediately in lane order so two lanes (or two waves)
          // discovering the same vertex this level enqueue it exactly once
          // — the atomic-CAS idiom real BFS kernels use for this.
          if (out.distance[nbr[i]] == kUnreached) {
            out.distance[nbr[i]] = level + 1;
            claim.set(i);
          }
        }
        if (claim.any()) {
          w.store(dist, nbr, Vec<std::uint32_t>::splat(level + 1), claim);
          w.store(parent, nbr, items, claim);
          // Append claimed vertices to the next frontier.
          const Vec<std::uint32_t> rank = w.rank_within(claim);
          const std::uint32_t slot = w.atomic_add_uniform(
              std::span<std::uint32_t>(counter), 0,
              static_cast<std::uint32_t>(claim.count()));
          Vec<std::uint32_t> dst;
          for (unsigned i = 0; i < w.width(); ++i) {
            if (claim.test(i)) dst[i] = slot + rank[i];
          }
          w.valu(claim);
          w.store(std::span<vid_t>(frontier_out), dst, nbr, claim);
        }
        for (unsigned i = 0; i < w.width(); ++i) {
          if (loop.test(i)) ++cur[i];
        }
        w.valu(loop);
        loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
      }
    });
    frontier_in.swap(frontier_out);
    frontier_size = counter[0];
    ++level;
    ++out.levels;
  }
  out.device_cycles = dev.total_cycles();
  return out;
}

}  // namespace gcg
