#include "apps/components.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "coloring/common.hpp"
#include "util/expect.hpp"

namespace gcg {

ComponentsResult components_device(simgpu::Device& dev, const Csr& g,
                                   unsigned group_size) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;
  const vid_t n = g.num_vertices();
  const unsigned gs = std::min(group_size, dev.config().max_group_size);
  const DeviceGraph dg = DeviceGraph::of(g);

  ComponentsResult out;
  out.label.resize(n);
  std::iota(out.label.begin(), out.label.end(), vid_t{0});
  if (n == 0) return out;

  std::vector<std::uint32_t> changed(1, 1);
  while (changed[0] != 0) {
    GCG_ASSERT(out.iterations <= n);
    changed[0] = 0;
    const std::span<vid_t> label(out.label.data(), out.label.size());
    const std::span<const vid_t> label_c(out.label.data(), out.label.size());

    dev.launch_waves(n, gs, [&](Wave& w) {
      const Mask m = w.valid();
      if (!m.any()) {
        w.salu();
        return;
      }
      const auto rows = w.global_ids();
      Vec<vid_t> best = w.load(label_c, rows, m);
      const Vec<eid_t> row_begin = w.load(dg.rows, rows, m);
      Vec<std::uint32_t> rows1;
      for (unsigned i = 0; i < w.width(); ++i) rows1[i] = rows[i] + 1;
      w.valu(m);
      const Vec<eid_t> row_end = w.load(dg.rows, rows1, m);
      Vec<eid_t> cur = row_begin;
      w.valu(m);
      Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
      while (loop.any()) {
        const Vec<vid_t> nbr = w.load(dg.cols, cur, loop);
        const Vec<vid_t> nl = w.load(label_c, nbr, loop);
        w.valu(loop, 2.0);
        for (unsigned i = 0; i < w.width(); ++i) {
          if (loop.test(i)) {
            best[i] = std::min(best[i], nl[i]);
            ++cur[i];
          }
        }
        loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
      }
      // Adopt improvements; one wave-level ballot decides the changed flag.
      Mask improved = Mask::none();
      for (unsigned i = 0; i < w.width(); ++i) {
        if (m.test(i) && best[i] < out.label[rows[i]]) improved.set(i);
      }
      w.valu(m);
      if (improved.any()) {
        w.store(label, rows, best, improved);
        w.atomic_add_uniform(std::span<std::uint32_t>(changed), 0, 1u);
      }
    });
    ++out.iterations;
  }

  std::unordered_set<vid_t> roots(out.label.begin(), out.label.end());
  out.num_components = static_cast<vid_t>(roots.size());
  out.device_cycles = dev.total_cycles();
  return out;
}

}  // namespace gcg
