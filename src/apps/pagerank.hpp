// PageRank on the device model — the pull-based (gather) formulation every
// GPU graph framework ships. Included both as a third application over the
// substrate and as another irregular-gather workload whose behaviour the
// imbalance metrics can characterize.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg {

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-8;   ///< L1 change per iteration to stop at
  unsigned max_iterations = 100;
  unsigned group_size = 256;
};

struct PageRankResult {
  std::vector<double> rank;
  unsigned iterations = 0;
  double final_delta = 0.0;  ///< L1 change of the last iteration
  double device_cycles = 0.0;
};

/// Pull-based PageRank on the simulated device. Treats the undirected CSR
/// as a symmetric link graph (every arc contributes both ways); vertices
/// with degree 0 redistribute uniformly, keeping ranks a distribution.
PageRankResult pagerank_device(simgpu::Device& dev, const Csr& g,
                               const PageRankOptions& opts = {});

/// Host reference implementation (same formulation, same semantics).
PageRankResult pagerank_host(const Csr& g, const PageRankOptions& opts = {});

}  // namespace gcg
