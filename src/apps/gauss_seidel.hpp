// Multicolor Gauss–Seidel: the canonical consumer of graph coloring.
// Sequential GS updates unknowns one at a time using the freshest values;
// that dependency chain serializes a GPU. Coloring the matrix graph makes
// every color class dependency-free, so a sweep becomes `num_colors`
// data-parallel kernel launches — bit-identical to *some* sequential GS
// order, hence the same convergence theory applies.
#pragma once

#include <span>
#include <vector>

#include "apps/sparse.hpp"
#include "coloring/common.hpp"

namespace gcg {

struct GsResult {
  std::vector<double> x;
  unsigned sweeps = 0;
  double final_residual = 0.0;
  double device_cycles = 0.0;   ///< 0 for host runs
  std::vector<double> residual_history;  ///< one entry per sweep
};

struct GsOptions {
  unsigned max_sweeps = 200;
  double tolerance = 1e-8;      ///< stop when ||Ax-b||_inf below this
  unsigned group_size = 256;
};

/// Host sequential Gauss–Seidel (natural order).
GsResult gauss_seidel_host(const SparseMatrix& A, std::span<const double> b,
                           const GsOptions& opts = {});

/// Multicolor Gauss–Seidel on the simulated device: one kernel launch per
/// color class per sweep. `colors` must be a valid coloring of A's graph.
GsResult gauss_seidel_multicolor(simgpu::Device& dev, const SparseMatrix& A,
                                 std::span<const double> b,
                                 std::span<const color_t> colors,
                                 const GsOptions& opts = {});

}  // namespace gcg
