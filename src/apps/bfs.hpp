// Frontier-based GPU breadth-first search on the simulated device — a
// second graph application over the same substrate, sharing the frontier
// compaction machinery the worklist coloring uses. BFS is the other half
// of the paper's motivation ("graph and sparse-matrix computation").
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg {

inline constexpr std::uint32_t kUnreached = ~std::uint32_t{0};

struct BfsResult {
  std::vector<std::uint32_t> distance;  ///< kUnreached if not reachable
  std::vector<vid_t> parent;            ///< ~0 for source/unreached
  unsigned levels = 0;
  double device_cycles = 0.0;
};

/// Device BFS from `source` (level-synchronous, frontier-compacted).
BfsResult bfs_device(simgpu::Device& dev, const Csr& g, vid_t source,
                     unsigned group_size = 256);

/// Host reference BFS.
BfsResult bfs_host(const Csr& g, vid_t source);

}  // namespace gcg
