// Minimal sparse linear algebra over CSR graphs — the downstream consumer
// the paper's introduction motivates: graph coloring exists so that sparse
// solvers can update independent unknowns in parallel.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg {

/// Symmetric sparse matrix: the CSR graph gives the off-diagonal pattern,
/// `values` one coefficient per stored arc, `diag` the diagonal.
struct SparseMatrix {
  Csr structure;
  std::vector<double> values;  ///< aligned with structure.col_indices()
  std::vector<double> diag;    ///< one per vertex

  vid_t n() const { return structure.num_vertices(); }
};

/// The 5-point Poisson operator on an nx x ny grid: diag 4, off-diag -1.
/// Strictly diagonally dominant at boundaries, weakly in the interior —
/// Gauss–Seidel converges.
SparseMatrix make_poisson2d(vid_t nx, vid_t ny);

/// A Laplacian-like operator for an arbitrary graph: diag = degree + tau,
/// off-diag -1. tau > 0 makes it strictly diagonally dominant.
SparseMatrix make_graph_laplacian(const Csr& g, double tau = 1.0);

/// Host reference SpMV: y = A x.
void spmv_host(const SparseMatrix& A, std::span<const double> x,
               std::span<double> y);

/// SpMV on the simulated device (one lane per row); returns launch stats.
simgpu::LaunchResult spmv_device(simgpu::Device& dev, const SparseMatrix& A,
                                 std::span<const double> x,
                                 std::span<double> y,
                                 unsigned group_size = 256);

/// ||A x - b||_inf.
double residual_inf(const SparseMatrix& A, std::span<const double> x,
                    std::span<const double> b);

}  // namespace gcg
