// Connected components on the device model via label propagation
// (pointer-jumping-free HookShortcut-lite): every vertex repeatedly adopts
// the minimum label in its closed neighbourhood until a fixpoint. A fourth
// application over the substrate, and a workload whose iteration count
// depends on graph diameter rather than degree — a useful contrast to
// coloring in the characterization experiments.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg {

struct ComponentsResult {
  std::vector<vid_t> label;  ///< min vertex id of the component
  vid_t num_components = 0;
  unsigned iterations = 0;
  double device_cycles = 0.0;
};

/// Min-label propagation on the simulated device.
ComponentsResult components_device(simgpu::Device& dev, const Csr& g,
                                   unsigned group_size = 256);

}  // namespace gcg
