#include "sched/steal_queues.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace gcg {

const char* victim_policy_name(VictimPolicy p) {
  switch (p) {
    case VictimPolicy::kRandom: return "random";
    case VictimPolicy::kRichest: return "richest";
    case VictimPolicy::kRing: return "ring";
  }
  return "?";
}

StealQueues::StealQueues(unsigned workers) : queues_(workers) {
  GCG_EXPECT(workers >= 1);
}

void StealQueues::fill(std::vector<std::vector<Chunk>> per_worker) {
  GCG_EXPECT(per_worker.size() == queues_.size());
  for (std::size_t w = 0; w < queues_.size(); ++w) {
    queues_[w].chunks = std::move(per_worker[w]);
    queues_[w].head = {0};
    queues_[w].tail = {0};
  }
  stats_ = StealStats{};
}

std::uint32_t StealQueues::remaining(unsigned w) const {
  const Queue& q = queues_[w];
  const auto size = static_cast<std::uint32_t>(q.chunks.size());
  const std::uint32_t taken = q.head[0] + q.tail[0];
  return taken >= size ? 0 : size - taken;
}

std::uint32_t StealQueues::total_remaining() const {
  std::uint32_t sum = 0;
  for (unsigned w = 0; w < workers(); ++w) sum += remaining(w);
  return sum;
}

std::optional<Chunk> StealQueues::take_from(simgpu::Wave& wave, unsigned victim,
                                            bool stealing) {
  Queue& q = queues_[victim];
  // Read both cursors (one line each) to see whether work remains. The
  // discrete-event executor makes each step atomic at chunk granularity,
  // so a check-then-claim sequence cannot be interleaved; this idealizes
  // away CAS retry storms (see DESIGN.md §4).
  const std::uint32_t head =
      wave.load_uniform<std::uint32_t>(std::span<const std::uint32_t>(q.head), 0);
  const std::uint32_t tail =
      wave.load_uniform<std::uint32_t>(std::span<const std::uint32_t>(q.tail), 0);
  const auto size = static_cast<std::uint32_t>(q.chunks.size());
  if (head + tail >= size) return std::nullopt;

  std::uint32_t index;
  if (stealing) {
    const std::uint32_t old =
        wave.atomic_add_uniform<std::uint32_t>(std::span<std::uint32_t>(q.tail), 0, 1);
    index = size - 1 - old;  // thieves eat from the far end
  } else {
    index =
        wave.atomic_add_uniform<std::uint32_t>(std::span<std::uint32_t>(q.head), 0, 1);
  }
  GCG_ASSERT(index < size);
  // Fetch the chunk descriptor itself (one line).
  wave.mutable_cost().mem_instructions += 1;
  wave.mutable_cost().mem_transactions += 1;
  return q.chunks[index];
}

std::optional<Chunk> StealQueues::pop_own(simgpu::Wave& wave, unsigned worker) {
  auto c = take_from(wave, worker, /*stealing=*/false);
  if (c) ++stats_.pops;
  return c;
}

std::optional<Chunk> StealQueues::steal(simgpu::Wave& wave, unsigned thief,
                                        VictimPolicy policy, Xoshiro256ss& rng) {
  ++stats_.steal_attempts;
  const unsigned n = workers();

  auto try_victim = [&](unsigned victim) -> std::optional<Chunk> {
    if (victim == thief) return std::nullopt;
    return take_from(wave, victim, /*stealing=*/true);
  };

  std::optional<Chunk> got;
  switch (policy) {
    case VictimPolicy::kRandom: {
      // A few random probes; each failed probe still cost the cursor reads.
      for (int attempt = 0; attempt < 4 && !got; ++attempt) {
        got = try_victim(static_cast<unsigned>(rng.bounded(n)));
      }
      break;
    }
    case VictimPolicy::kRichest: {
      // Sweep every queue's cursors (paid for in loads), then hit the max.
      unsigned best = thief;
      std::uint32_t best_left = 0;
      for (unsigned w = 0; w < n; ++w) {
        if (w == thief) continue;
        const Queue& q = queues_[w];
        wave.load_uniform<std::uint32_t>(std::span<const std::uint32_t>(q.head), 0);
        wave.load_uniform<std::uint32_t>(std::span<const std::uint32_t>(q.tail), 0);
        const std::uint32_t left = remaining(w);
        if (left > best_left) {
          best_left = left;
          best = w;
        }
      }
      if (best != thief) got = try_victim(best);
      break;
    }
    case VictimPolicy::kRing: {
      for (unsigned d = 1; d < n && !got; ++d) {
        got = try_victim((thief + d) % n);
      }
      break;
    }
  }
  if (got) {
    ++stats_.steal_hits;
    ++stats_.chunks_stolen;
  }
  return got;
}

}  // namespace gcg
