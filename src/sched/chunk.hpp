// Work chunks: half-open ranges over a shared work array (the frontier).
// Static partitioning helpers produce the initial distribution the paper's
// baseline uses; the stealing runtime rebalances from there.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"

namespace gcg {

struct Chunk {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool operator==(const Chunk&) const = default;
};

/// Split [0, total) into chunks of `chunk_size` (last may be short).
std::vector<Chunk> make_chunks(std::uint32_t total, std::uint32_t chunk_size);

/// Deal chunks round-robin across `workers` queues (the paper's initial
/// static assignment: contiguous chunks, interleaved owners).
std::vector<std::vector<Chunk>> deal_round_robin(const std::vector<Chunk>& chunks,
                                                 unsigned workers);

/// Contiguous block partition: worker w gets one maximal run of chunks.
std::vector<std::vector<Chunk>> deal_blocked(const std::vector<Chunk>& chunks,
                                             unsigned workers);

}  // namespace gcg
