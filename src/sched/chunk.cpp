#include "sched/chunk.hpp"

namespace gcg {

std::vector<Chunk> make_chunks(std::uint32_t total, std::uint32_t chunk_size) {
  GCG_EXPECT(chunk_size >= 1);
  std::vector<Chunk> out;
  out.reserve((total + chunk_size - 1) / chunk_size);
  for (std::uint32_t b = 0; b < total; b += chunk_size) {
    out.push_back({b, std::min(total, b + chunk_size)});
  }
  return out;
}

std::vector<std::vector<Chunk>> deal_round_robin(const std::vector<Chunk>& chunks,
                                                 unsigned workers) {
  GCG_EXPECT(workers >= 1);
  std::vector<std::vector<Chunk>> out(workers);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    out[i % workers].push_back(chunks[i]);
  }
  return out;
}

std::vector<std::vector<Chunk>> deal_blocked(const std::vector<Chunk>& chunks,
                                             unsigned workers) {
  GCG_EXPECT(workers >= 1);
  std::vector<std::vector<Chunk>> out(workers);
  const std::size_t per = (chunks.size() + workers - 1) / workers;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    out[per ? i / per : 0].push_back(chunks[i]);
  }
  return out;
}

}  // namespace gcg
