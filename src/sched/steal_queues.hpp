// Global-memory work queues with stealing, as built by persistent-thread
// GPU kernels: per-worker chunk arrays with head/tail cursors in device
// memory, advanced by atomics. All operations go through a Wave so their
// memory and atomic costs land on the calling wave's clock.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/chunk.hpp"
#include "simgpu/wave.hpp"
#include "util/rng.hpp"

namespace gcg {

enum class VictimPolicy {
  kRandom,   ///< uniform random victim, retry a few times
  kRichest,  ///< scan all queues, steal from the fullest (costs a sweep)
  kRing,     ///< next non-empty queue clockwise from the thief
};

const char* victim_policy_name(VictimPolicy p);

struct StealStats {
  std::uint64_t pops = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_hits = 0;
  std::uint64_t chunks_stolen = 0;
  StealStats& operator+=(const StealStats& o) {
    pops += o.pops;
    steal_attempts += o.steal_attempts;
    steal_hits += o.steal_hits;
    chunks_stolen += o.chunks_stolen;
    return *this;
  }
};

class StealQueues {
 public:
  explicit StealQueues(unsigned workers);

  /// Load a distribution produced by deal_round_robin/deal_blocked.
  void fill(std::vector<std::vector<Chunk>> per_worker);

  unsigned workers() const { return static_cast<unsigned>(queues_.size()); }
  /// Chunks remaining in worker w's queue (host-side view, free).
  std::uint32_t remaining(unsigned w) const;
  std::uint32_t total_remaining() const;

  /// Owner pop from the head. Charges one uniform atomic + a line read.
  std::optional<Chunk> pop_own(simgpu::Wave& wave, unsigned worker);

  /// Steal one chunk from someone else's tail, per `policy`. Charges the
  /// victim-selection reads plus the steal atomic. Returns nullopt if every
  /// candidate was empty.
  std::optional<Chunk> steal(simgpu::Wave& wave, unsigned thief,
                             VictimPolicy policy, Xoshiro256ss& rng);

  const StealStats& stats() const { return stats_; }

 private:
  struct Queue {
    std::vector<Chunk> chunks;
    // Device-memory cursors (indices into `chunks`), touched via atomics.
    std::vector<std::uint32_t> head = {0};  // owner side
    std::vector<std::uint32_t> tail = {0};  // thief side: steals from end
  };
  std::optional<Chunk> take_from(simgpu::Wave& wave, unsigned victim,
                                 bool stealing);
  std::vector<Queue> queues_;
  StealStats stats_;
};

}  // namespace gcg
