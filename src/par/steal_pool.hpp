// Per-worker Chase–Lev deques plus victim selection — the native-thread
// analogue of the simulated sched::StealQueues, sharing its VictimPolicy
// and StealStats vocabulary so sim and par runs report comparable numbers.
//
// Thread safety: entirely lock-free — coordination is sync::atomic
// top/bottom indices inside the Chase–Lev deques, so there is no mutex
// here and nothing for clang TSA capabilities to annotate. The ordering
// arguments live next to each memory_order at the call sites
// (par/deque.hpp) per the order-comment lint rule.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "par/deque.hpp"
#include "sched/chunk.hpp"
#include "sched/steal_queues.hpp"  // VictimPolicy, StealStats
#include "util/narrow.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace gcg::par {

class StealPool {
 public:
  explicit StealPool(unsigned workers);

  /// Load one round's distribution (from deal_round_robin/deal_blocked).
  /// Callable only while no worker is popping/stealing. Stats accumulate
  /// across fills; see reset_stats().
  void fill(const std::vector<std::vector<Chunk>>& per_worker);

  unsigned workers() const { return narrow<unsigned>(slots_.size()); }

  /// Installs a NUMA node id per worker (ThreadPool::worker_nodes()).
  /// With at least two distinct nodes present, every steal runs its
  /// victim policy over the thief's same-node victims first and falls
  /// back to the remote ones only when the local pass misses — stolen
  /// chunks then mostly touch node-local frontier and color pages.
  /// Victim *order* never affects what kSteal computes (flags are
  /// per-vertex, commits are schedule-independent), only steal latency.
  /// With fewer than two nodes (or never called) behavior is unchanged.
  void set_worker_nodes(const std::vector<unsigned>& nodes);

  /// Owner pop from the bottom of `worker`'s own deque.
  std::optional<Chunk> pop_own(unsigned worker);

  /// One steal attempt per `policy`. nullopt = every candidate looked
  /// empty or the thief lost its race; retry while !drained().
  std::optional<Chunk> steal(unsigned thief, VictimPolicy policy,
                             Xoshiro256ss& rng);

  /// pop_own, falling back to one steal attempt.
  std::optional<Chunk> acquire(unsigned worker, VictimPolicy policy,
                               Xoshiro256ss& rng);

  /// True once every chunk of the current fill has been handed out
  /// (handed out, not necessarily finished — pair with a pool barrier).
  bool drained() const {
    // order: acquire pairs with the release decrements in pop/steal so a
    // worker that sees 0 also sees every handed-out chunk's bookkeeping
    // (the release sequence headed by fill()'s store runs unbroken through
    // the RMW decrements — model-checked as LIT-CNT-1).
    return remaining_.load(std::memory_order_acquire) == 0;
  }

  const StealStats& worker_stats(unsigned w) const { return slots_[w]->stats; }
  StealStats stats() const;  ///< aggregate over workers
  void reset_stats();

 private:
  // Heap-allocate per-worker state so deque cursors and stats counters of
  // different workers never share a cache line.
  struct alignas(64) Slot {
    WorkStealingDeque<Chunk> deque;
    StealStats stats;
  };
  std::optional<Chunk> try_victim(unsigned thief, unsigned victim);
  std::optional<Chunk> steal_from(unsigned thief, VictimPolicy policy,
                                  Xoshiro256ss& rng,
                                  const std::vector<unsigned>& victims);

  std::vector<std::unique_ptr<Slot>> slots_;
  /// Per-thief victim lists in ring order from the thief, split into
  /// same-node and remote; empty vectors unless set_worker_nodes() saw
  /// at least two distinct nodes.
  std::vector<std::vector<unsigned>> local_victims_;
  std::vector<std::vector<unsigned>> remote_victims_;
  bool node_aware_ = false;
  alignas(64) sync::atomic<std::int64_t> remaining_{0};
};

}  // namespace gcg::par
