#include "par/detail/frontier.hpp"
#include "util/narrow.hpp"

#include <algorithm>
#include <cmath>

namespace gcg::par::detail {

namespace {
// Auto hub threshold floor: a cooperative pass costs a pool barrier per
// hub per phase, so only vertices carrying thousands of edges repay it.
constexpr double kMinAutoHubDegree = 2048.0;
}  // namespace

SchedulePlan make_plan(const Csr& g, const ParOptions& opts, unsigned workers) {
  SchedulePlan plan;
  plan.schedule = opts.schedule;
  plan.grain = std::max(opts.grain, 1u);
  const vid_t n = g.num_vertices();
  if (n == 0) return plan;
  // Dense (bitmap) frontier while at least a quarter of the graph is
  // active: scanning everyone costs at most 4x the useful work, and in
  // exchange there is no shared append cursor and the partitioner reads
  // the CSR row offsets as a free degree prefix.
  plan.dense_min = std::max<std::uint32_t>(1, n / 4);
  std::uint32_t threshold = opts.hub_degree_threshold;
  if (threshold == 0) {
    // Auto: far above the typical degree, so only true stragglers — the
    // vertices that would pin one worker for a whole phase — go
    // cooperative.
    threshold = narrow<std::uint32_t>(
        std::max(kMinAutoHubDegree, 16.0 * g.avg_degree()));
  }
  plan.hub_threshold = threshold;
  plan.hubs = workers > 1 && n > 0 && g.max_degree() > threshold;
  return plan;
}

}  // namespace gcg::par::detail
