#include "par/steal_pool.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/stress.hpp"

namespace gcg::par {

StealPool::StealPool(unsigned workers) {
  GCG_EXPECT(workers > 0);
  slots_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void StealPool::set_worker_nodes(const std::vector<unsigned>& nodes) {
  node_aware_ = false;
  local_victims_.clear();
  remote_victims_.clear();
  const unsigned n = workers();
  if (nodes.size() != n || n < 2) return;
  bool multi = false;
  for (unsigned w = 1; w < n; ++w) multi |= nodes[w] != nodes[0];
  if (!multi) return;  // single node: keep the flat victim space
  local_victims_.resize(n);
  remote_victims_.resize(n);
  for (unsigned thief = 0; thief < n; ++thief) {
    for (unsigned step = 1; step < n; ++step) {
      const unsigned victim = (thief + step) % n;
      (nodes[victim] == nodes[thief] ? local_victims_
                                     : remote_victims_)[thief]
          .push_back(victim);
    }
  }
  node_aware_ = true;
}

void StealPool::fill(const std::vector<std::vector<Chunk>>& per_worker) {
  GCG_EXPECT(per_worker.size() == slots_.size());
  std::int64_t total = 0;
  for (unsigned w = 0; w < workers(); ++w) {
    auto& dq = slots_[w]->deque;
    const auto& chunks = per_worker[w];
    if (dq.capacity() < chunks.size()) {
      dq.reserve(narrow<std::uint32_t>(chunks.size()));
    } else {
      dq.reset();
    }
    // Push in reverse so the owner's LIFO pops walk the frontier in
    // order while thieves take from the far end — the same head/tail
    // discipline as the simulated queues.
    for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
      dq.push_bottom(*it);
    }
    total += to_signed(chunks.size());
  }
  // order: release publishes the freshly filled deques to workers whose
  // drained() acquire load observes the new count.
  remaining_.store(total, std::memory_order_release);
}

std::optional<Chunk> StealPool::pop_own(unsigned worker) {
  stress_point(worker);  // schedule-perturbation hook (no-op unless installed)
  auto& slot = *slots_[worker];
  std::optional<Chunk> c = slot.deque.pop_bottom();
  if (c) {
    ++slot.stats.pops;
    // order: release — drained()'s acquire load pairs with the decrement
    // that hits 0 and, through the release sequence the RMWs continue,
    // with every earlier decrement, so the 0-observer sees all handed-out
    // chunks' bookkeeping. The old acq_rel's acquire half synchronized
    // with nothing (no later writes here are read via remaining_) — the
    // model checker flagged it as vacuous; LIT-CNT-1 in
    // tests/mc/test_mc_litmus.cpp shows release suffices and relaxed
    // does not.
    remaining_.fetch_sub(1, std::memory_order_release);
  }
  return c;
}

std::optional<Chunk> StealPool::try_victim(unsigned thief, unsigned victim) {
  if (victim == thief) return std::nullopt;
  std::optional<Chunk> c = slots_[victim]->deque.steal();
  if (c) {
    auto& stats = slots_[thief]->stats;
    ++stats.steal_hits;
    ++stats.chunks_stolen;
    // order: release — same contract as pop_own's decrement (LIT-CNT-1).
    remaining_.fetch_sub(1, std::memory_order_release);
  }
  return c;
}

std::optional<Chunk> StealPool::steal_from(
    unsigned thief, VictimPolicy policy, Xoshiro256ss& rng,
    const std::vector<unsigned>& victims) {
  const auto n = narrow<unsigned>(victims.size());
  if (n == 0) return std::nullopt;
  switch (policy) {
    case VictimPolicy::kRandom: {
      for (unsigned tries = 0; tries < n; ++tries) {
        const unsigned victim = victims[narrow<unsigned>(rng.bounded(n))];
        if (auto c = try_victim(thief, victim)) return c;
      }
      return std::nullopt;
    }
    case VictimPolicy::kRichest: {
      unsigned best = thief;
      std::int64_t best_size = 0;
      for (unsigned victim : victims) {
        const std::int64_t s = slots_[victim]->deque.size_estimate();
        if (s > best_size) {
          best = victim;
          best_size = s;
        }
      }
      if (best == thief) return std::nullopt;
      return try_victim(thief, best);
    }
    case VictimPolicy::kRing: {
      // victims are already in ring order from the thief.
      for (unsigned victim : victims) {
        if (slots_[victim]->deque.size_estimate() == 0) continue;
        if (auto c = try_victim(thief, victim)) return c;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<Chunk> StealPool::steal(unsigned thief, VictimPolicy policy,
                                      Xoshiro256ss& rng) {
  const unsigned n = workers();
  stress_point(thief);  // schedule-perturbation hook (no-op unless installed)
  ++slots_[thief]->stats.steal_attempts;
  if (n < 2) return std::nullopt;
  if (node_aware_) {
    // Node-local pass first; remote victims only when it comes up empty.
    if (auto c = steal_from(thief, policy, rng, local_victims_[thief])) {
      return c;
    }
    return steal_from(thief, policy, rng, remote_victims_[thief]);
  }
  switch (policy) {
    case VictimPolicy::kRandom: {
      // A few uniform probes, like the simulated queues' bounded retry.
      for (unsigned tries = 0; tries < n; ++tries) {
        const auto victim = narrow<unsigned>(rng.bounded(n));
        if (auto c = try_victim(thief, victim)) return c;
      }
      return std::nullopt;
    }
    case VictimPolicy::kRichest: {
      unsigned best = thief;
      std::int64_t best_size = 0;
      for (unsigned v = 0; v < n; ++v) {
        if (v == thief) continue;
        const std::int64_t s = slots_[v]->deque.size_estimate();
        if (s > best_size) {
          best = v;
          best_size = s;
        }
      }
      if (best == thief) return std::nullopt;
      return try_victim(thief, best);
    }
    case VictimPolicy::kRing: {
      for (unsigned step = 1; step < n; ++step) {
        const unsigned victim = (thief + step) % n;
        if (slots_[victim]->deque.size_estimate() == 0) continue;
        if (auto c = try_victim(thief, victim)) return c;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<Chunk> StealPool::acquire(unsigned worker, VictimPolicy policy,
                                        Xoshiro256ss& rng) {
  if (auto c = pop_own(worker)) return c;
  if (drained()) return std::nullopt;
  return steal(worker, policy, rng);
}

StealStats StealPool::stats() const {
  StealStats total;
  for (const auto& slot : slots_) total += slot->stats;
  return total;
}

void StealPool::reset_stats() {
  for (auto& slot : slots_) slot->stats = StealStats{};
}

}  // namespace gcg::par
