// Reusable native thread pool for the multicore backend: a fixed team of
// OS threads executing fork-join parallel regions. The calling thread is
// always worker 0, so a 1-thread pool runs everything inline — that is
// what makes the 1-thread par run bit-identical to a sequential execution.
//
// NUMA: at construction the pool discovers the machine topology
// (util/numa.hpp) and assigns workers to nodes in contiguous blocks
// proportional to node CPU counts. On a genuine multi-node machine the
// helper threads pin themselves to their node's CPU set (the caller,
// worker 0, is never pinned — the pool must not change its creator's
// affinity), so the first-touch arrays of par/detail/arena.hpp land
// node-local. On single-node machines — or under the
// GCG_NUMA_FAKE_NODES test override — nothing is pinned and behavior is
// identical to a topology-oblivious pool. The node map never affects
// what any algorithm computes, only where its memory lives and (via
// StealPool::set_worker_nodes) which victims a thief prefers.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/narrow.hpp"
#include "util/numa.hpp"
#include "util/sync.hpp"

namespace gcg::par {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency(). The pool spawns
  /// threads-1 helpers; the caller participates as worker 0.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return narrow<unsigned>(helpers_.size()) + 1; }

  /// Runs body(worker) exactly once on every worker and returns when all
  /// of them finished (a full barrier). Not reentrant: body must not call
  /// run()/parallel_for() on the same pool.
  void run(const std::function<void(unsigned)>& body);

  /// Chunked parallel-for over [0, n): workers grab `grain`-sized ranges
  /// from a shared cursor until the range is exhausted (self-balancing for
  /// mildly irregular work; use StealPool for heavy-tailed work).
  /// body(begin, end, worker).
  void parallel_for(std::uint32_t n, std::uint32_t grain,
                    const std::function<void(std::uint32_t, std::uint32_t,
                                             unsigned)>& body);

  /// Weighted parallel-for over [0, n): `prefix` is a monotone cumulative
  /// weight array of size n+1 with prefix[0] == 0 — for a graph frontier,
  /// the running sum of vertex degrees (the CSR row-offset array itself
  /// when iterating every vertex). The index space is cut at
  /// binary-searched split points into chunks of ~grain_weight cumulative
  /// weight, so a run of light items is batched while an item heavier
  /// than grain_weight gets a chunk of its own. With degree weights this
  /// is the edge-balanced partitioning of the paper's load-imbalance fix:
  /// every chunk carries a comparable amount of *edge* work no matter how
  /// skewed the degree distribution. body(begin, end, worker).
  void parallel_for_edges(std::uint32_t n, const std::uint64_t* prefix,
                          std::uint64_t grain_weight,
                          const std::function<void(std::uint32_t, std::uint32_t,
                                                   unsigned)>& body);

  /// hardware_concurrency(), never 0.
  static unsigned default_threads();

  /// NUMA node each worker belongs to (size() entries, node-contiguous).
  const std::vector<unsigned>& worker_nodes() const { return worker_nodes_; }
  unsigned node_of(unsigned worker) const { return worker_nodes_[worker]; }
  unsigned num_nodes() const {
    return narrow<unsigned>(topo_.num_nodes());
  }
  const numa::Topology& topology() const { return topo_; }

 private:
  void helper_loop(unsigned worker);

  numa::Topology topo_;
  std::vector<unsigned> worker_nodes_;
  std::vector<std::thread> helpers_;
  sync::Mutex mu_;
  sync::CondVar start_cv_;
  sync::CondVar done_cv_;
  const std::function<void(unsigned)>* job_ GCG_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ GCG_GUARDED_BY(mu_) = 0;
  unsigned outstanding_ GCG_GUARDED_BY(mu_) = 0;
  bool shutdown_ GCG_GUARDED_BY(mu_) = false;
};

}  // namespace gcg::par
