// Degree-aware frontier execution for the vertex-parallel algorithms
// (speculative, jpl): edge-balanced or vertex-count chunking off the
// ParOptions schedule, a cooperative whole-team path for hub vertices,
// and an adaptive dense/sparse frontier representation. Internal header.
//
// Determinism contract: none of the machinery here may change what an
// algorithm computes, only how the work is divided. The frontier switches
// representation (bitmap vs compacted worklist) and partitioning (vertex
// vs edge-balanced) freely because the algorithms' phases are
// order-independent within a phase; the cooperative hub reductions
// (OR-mask first-fit, exists-scan) are commutative, so a hub's result is
// identical to the per-worker path's.
#pragma once

#include <atomic>  // std::memory_order (order args keep their std:: spelling)
#include <span>
#include <vector>

#include "par/detail/driver.hpp"
#include "util/narrow.hpp"
#include "util/simd.hpp"
#include "util/sync.hpp"

namespace gcg::par::detail {

/// Scheduling parameters resolved once per run from ParOptions + graph.
struct SchedulePlan {
  Schedule schedule = Schedule::kEdgeBalanced;
  std::uint32_t grain = 512;     ///< target vertices per chunk
  vid_t hub_threshold = 0;       ///< degree above which a vertex is a hub
  bool hubs = false;             ///< hub path active this run
  std::uint32_t dense_min = 1;   ///< frontier size at/above which the
                                 ///< dense (bitmap) representation is used
};

SchedulePlan make_plan(const Csr& g, const ParOptions& opts, unsigned workers);

/// Neighbours per slice when the team cooperates on one hub's adjacency.
inline constexpr std::uint32_t kHubSliceGrain = 2048;

/// Per-worker forbidden-color masks for cooperative hub first-fit; one
/// stripe per worker, sized once for the largest possible hub. Private
/// stripes mean the slice loop marks colors with plain stores — no
/// per-neighbour atomic RMW traffic on a shared cache line — and the
/// stripes are OR-reduced after the barrier.
struct HubScratch {
  HubScratch(vid_t max_degree, unsigned workers)
      : nwords((std::size_t{max_degree} + 1 + 63) / 64),
        mask(nwords * workers, 0) {}

  std::uint64_t* worker_mask(unsigned w) { return mask.data() + w * nwords; }

  std::size_t nwords;  ///< words per worker stripe
  std::vector<std::uint64_t> mask;
};

/// All workers cooperatively compute the first-fit color of one hub: each
/// scans slices of v's adjacency and ORs forbidden colors into its own
/// mask stripe; the caller OR-reduces the stripes (commutative, so the
/// merged mask — and the returned color — is independent of the slicing)
/// and finds the first zero bit, both through the simd:: seam. Must be
/// called outside any parallel region.
inline color_t coop_first_fit(DriverState& st, HubScratch& hs, vid_t v) {
  const vid_t deg = st.g.degree(v);
  const std::size_t limit = std::size_t{deg} + 1;
  const std::size_t nw = (limit + 63) / 64;
  const unsigned workers = st.pool.size();
  for (unsigned w = 0; w < workers; ++w) {
    simd::clear_words(hs.worker_mask(w), nw);
  }
  const vid_t* nbrs = st.g.col_indices().data() + st.g.offset(v);
  st.pool.parallel_for(
      deg, kHubSliceGrain,
      [&](std::uint32_t b, std::uint32_t e, unsigned w) {
        BusyTimer timer(st.run.workers[w]);
        std::uint64_t* mine = hs.worker_mask(w);
        for (std::uint32_t i = b; i < e; ++i) {
          // lossy: kUncolored (-1) wraps to UINT32_MAX; c < limit rejects it
          const auto c = narrow_cast<std::uint32_t>(load_color(st.colors[nbrs[i]]));
          if (c < limit) mine[c >> 6] |= std::uint64_t{1} << (c & 63);
        }
      });
  // The pool barrier publishes every stripe before these plain reads.
  std::uint64_t* merged = hs.worker_mask(0);
  for (unsigned w = 1; w < workers; ++w) {
    simd::or_words(merged, hs.worker_mask(w), nw);
  }
  // A zero bit below `limit` always exists (deg neighbours, deg+1 slots).
  const std::size_t k = simd::first_not_full_word(merged, nw);
  GCG_ASSERT(k < nw);
  return narrow<color_t>(k * 64 + to_unsigned(std::countr_one(merged[k])));
}

/// True if any neighbour of the hub satisfies pred; workers scan slices
/// and publish into a shared flag, checked per slice for early exit.
/// Existence is independent of the slicing, so the result is
/// deterministic. Must be called outside any parallel region.
template <class Pred>
bool coop_exists(DriverState& st, vid_t v, Pred&& pred) {
  const vid_t deg = st.g.degree(v);
  const vid_t* nbrs = st.g.col_indices().data() + st.g.offset(v);
  sync::atomic<bool> found{false};
  st.pool.parallel_for(
      deg, kHubSliceGrain,
      [&](std::uint32_t b, std::uint32_t e, unsigned w) {
        BusyTimer timer(st.run.workers[w]);
        // order: relaxed — early-exit hint; a missed flag only means one
        // extra slice is scanned.
        if (found.load(std::memory_order_relaxed)) return;
        for (std::uint32_t i = b; i < e; ++i) {
          if (pred(nbrs[i])) {
            // order: relaxed — monotonic flag, published by the barrier.
            found.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
  // order: relaxed — the pool barrier above ordered all stores.
  return found.load(std::memory_order_relaxed);
}

/// The frontier of an iterative vertex-parallel coloring, split into a
/// normal part (per-worker parallel processing under the configured
/// schedule) and a hub part (cooperative, one vertex at a time).
///
/// Representation adapts to density: while the normal frontier holds at
/// least `dense_min` vertices it is an iteration-stamped bitmap over all
/// vertices — survivors mark their own slot, so nothing funnels through a
/// shared append cursor — and the partitioner can use the CSR row-offset
/// array as a ready-made degree prefix. Once the frontier thins out it is
/// compacted into an explicit worklist (frontiers only shrink, so this
/// happens at most once) whose degree prefix is rebuilt per round.
class FrontierExec {
 public:
  FrontierExec(DriverState& st, const SchedulePlan& plan)
      : st_(st), plan_(plan) {
    const vid_t n = st_.g.num_vertices();
    if (plan_.hubs) {
      for (vid_t v = 0; v < n; ++v) {
        if (st_.g.degree(v) > plan_.hub_threshold) hubs_.push_back(v);
      }
    }
    wsize_ = n - narrow<std::uint32_t>(hubs_.size());
    dense_ = wsize_ >= plan_.dense_min;
    if (dense_) {
      // First-touched in worker slices: the stamp bitmap is the densest
      // per-run array after colors and is scanned by the same contiguous
      // vertex ranges the schedulers hand out.
      stamps_ = FirstTouchArray<std::uint32_t>(st_.pool, n, round_);
      for (vid_t v : hubs_) stamps_[v] = 0;  // hubs never take the flat path
    } else {
      worklist_.reserve(wsize_);
      for (vid_t v = 0; v < n; ++v) {
        if (!plan_.hubs || st_.g.degree(v) <= plan_.hub_threshold) {
          worklist_.push_back(v);
        }
      }
      next_.resize(wsize_);
      refresh_prefix();
    }
  }

  /// Active vertices (normal + hub) still uncommitted.
  std::uint32_t active() const {
    return wsize_ + narrow<std::uint32_t>(hubs_.size());
  }

  std::span<const vid_t> hubs() const { return hubs_; }

  /// Read/flag pass: fn(v, worker) on every active normal vertex in
  /// parallel, then hub_fn(v) serially per active hub (hub_fn fans its
  /// own work out over the pool via the coop_* helpers).
  template <class VertexFn, class HubFn>
  void phase(VertexFn&& fn, HubFn&& hub_fn) {
    dispatch([&](std::uint32_t b, std::uint32_t e, unsigned w) {
      ParWorkerStats& ws = st_.run.workers[w];
      BusyTimer timer(ws);
      std::uint64_t seen = 0;
      if (dense_) {
        for (std::uint32_t v = b; v < e; ++v) {
          if (stamps_[v] == round_) {
            fn(vid_t{v}, w);
            ++seen;
          }
        }
      } else {
        for (std::uint32_t i = b; i < e; ++i) fn(worklist_[i], w);
        seen = e - b;
      }
      ws.vertices += seen;
    });
    st_.run.hub_vertices += hubs_.size();
    for (vid_t v : hubs_) hub_fn(v);
  }

  /// Survivor pass: keep(v, worker) -> true keeps v in the next frontier,
  /// keep_hub(v) likewise for hubs; then the frontier advances one round
  /// (representation switch, prefix rebuild).
  template <class KeepFn, class HubKeepFn>
  void rebuild(KeepFn&& keep, HubKeepFn&& keep_hub) {
    std::uint32_t new_size = 0;
    if (dense_) {
      // Survivors stamp their own slot for the next round: no shared
      // append cursor, no scatter into a worklist while the frontier is
      // wide. Only the per-chunk counts meet at an atomic.
      sync::atomic<std::uint32_t> survivors{0};
      dispatch([&](std::uint32_t b, std::uint32_t e, unsigned w) {
        BusyTimer timer(st_.run.workers[w]);
        std::uint32_t kept = 0;
        for (std::uint32_t v = b; v < e; ++v) {
          if (stamps_[v] != round_) continue;
          if (keep(vid_t{v}, w)) {
            stamps_[v] = round_ + 1;
            ++kept;
          }
        }
        // order: relaxed — count aggregation; read after the barrier.
        if (kept > 0) survivors.fetch_add(kept, std::memory_order_relaxed);
      });
      // order: relaxed — the pool barrier ordered the fetch_adds above.
      new_size = survivors.load(std::memory_order_relaxed);
    } else {
      FrontierAppender app{next_};
      dispatch([&](std::uint32_t b, std::uint32_t e, unsigned w) {
        BusyTimer timer(st_.run.workers[w]);
        std::vector<vid_t> kept;
        for (std::uint32_t i = b; i < e; ++i) {
          const vid_t v = worklist_[i];
          if (keep(v, w)) kept.push_back(v);
        }
        if (!kept.empty()) {
          std::uint32_t at = app.claim(narrow<std::uint32_t>(kept.size()));
          for (vid_t v : kept) next_[at++] = v;
        }
      });
      // order: relaxed — the pool barrier ordered all claim() calls.
      new_size = app.counter.load(std::memory_order_relaxed);
      worklist_.swap(next_);
    }

    next_hubs_.clear();
    for (vid_t v : hubs_) {
      if (keep_hub(v)) next_hubs_.push_back(v);
    }
    hubs_.swap(next_hubs_);

    ++round_;
    wsize_ = new_size;
    if (dense_ && wsize_ < plan_.dense_min) compact();
    if (!dense_ && plan_.schedule == Schedule::kEdgeBalanced) refresh_prefix();
  }

 private:
  /// Runs chunk_fn(begin, end, worker) over the active index space with
  /// the configured schedule. Dense mode ranges over vertex ids and uses
  /// the CSR row offsets as the degree prefix; sparse mode ranges over
  /// worklist positions with a per-round prefix.
  template <class ChunkFn>
  void dispatch(ChunkFn&& chunk_fn) {
    if (dense_) {
      const vid_t n = st_.g.num_vertices();
      if (plan_.schedule == Schedule::kEdgeBalanced) {
        st_.pool.parallel_for_edges(n, st_.g.row_offsets().data(),
                                    edge_grain(st_.g.num_arcs(), n), chunk_fn);
      } else {
        st_.pool.parallel_for(n, plan_.grain, chunk_fn);
      }
    } else {
      if (wsize_ == 0) return;
      if (plan_.schedule == Schedule::kEdgeBalanced) {
        st_.pool.parallel_for_edges(wsize_, prefix_.data(),
                                    edge_grain(prefix_[wsize_], wsize_),
                                    chunk_fn);
      } else {
        st_.pool.parallel_for(wsize_, plan_.grain, chunk_fn);
      }
    }
  }

  /// Edge weight per chunk that cuts `items` into the same number of
  /// chunks the vertex schedule would produce.
  std::uint64_t edge_grain(std::uint64_t total_weight,
                           std::uint32_t items) const {
    const std::uint64_t chunks =
        std::max<std::uint64_t>(1, (items + plan_.grain - 1) / plan_.grain);
    return std::max<std::uint64_t>(1, (total_weight + chunks - 1) / chunks);
  }

  /// One-time dense -> sparse transition: gather the stamped survivors
  /// into an explicit worklist (ascending ids, so a 1-thread run keeps
  /// processing in natural order).
  void compact() {
    const vid_t n = st_.g.num_vertices();
    worklist_.clear();
    worklist_.reserve(wsize_);
    for (vid_t v = 0; v < n; ++v) {
      if (stamps_[v] == round_) worklist_.push_back(v);
    }
    next_.resize(worklist_.size());
    dense_ = false;  // caller refreshes the prefix right after
  }

  /// Serial degree prefix over the worklist; sparse mode only, where the
  /// frontier is by definition a small fraction of the graph.
  void refresh_prefix() {
    prefix_.resize(std::size_t{wsize_} + 1);
    prefix_[0] = 0;
    for (std::uint32_t i = 0; i < wsize_; ++i) {
      prefix_[i + 1] = prefix_[i] + st_.g.degree(worklist_[i]);
    }
  }

  DriverState& st_;
  SchedulePlan plan_;
  std::vector<vid_t> worklist_, next_;    ///< sparse mode (normals only)
  std::vector<std::uint64_t> prefix_;     ///< sparse degree prefix (size+1)
  FirstTouchArray<std::uint32_t> stamps_;  ///< dense mode: active-iff ==round_
  std::vector<vid_t> hubs_, next_hubs_;   ///< active hubs, ascending
  std::uint32_t wsize_ = 0;               ///< active normal vertices
  std::uint32_t round_ = 1;               ///< stamp epoch
  bool dense_ = false;
};

}  // namespace gcg::par::detail
