// First-touch allocation for the large per-run arrays of the native
// backend (colors, winner flags, frontier buffers, stamp bitmaps).
// Internal header.
//
// A std::vector constructor touches every page from the constructing
// thread, so on a NUMA machine the whole array lands on that thread's
// node and every other node pays remote-access latency for its share of
// the run. FirstTouchArray allocates raw (untouched) memory and has each
// pool worker write its own contiguous slice; under Linux's default
// first-touch policy, with workers pinned to their nodes (see
// ThreadPool), each slice's pages are then node-local to the worker that
// will predominantly access them — the contiguous worker slices here
// mirror the contiguous vertex ranges the schedulers hand out. On a
// single-node machine this is just a parallel fill and behaves exactly
// like the vector it replaces.
#pragma once

#include <cstddef>
#include <memory>
#include <new>  // lint: allow(naked-new) header name, not a new-expression
#include <span>
#include <type_traits>

#include "par/pool.hpp"

namespace gcg::par::detail {

template <class T>
class FirstTouchArray {
  static_assert(std::is_trivial_v<T>,
                "raw first-touch storage cannot run constructors");

 public:
  FirstTouchArray() = default;

  /// n slots, slot i initialized to gen(i) by the worker owning slice i.
  template <class Gen>
    requires std::is_invocable_r_v<T, Gen, std::size_t>
  FirstTouchArray(ThreadPool& pool, std::size_t n, Gen gen) : size_(n) {
    if (n == 0) return;
    // Raw untouched storage is the whole point: the pages must not be
    // written before the workers first-touch them. Ownership goes
    // straight into buf_ (unique_ptr) on the next line.
    buf_.reset(static_cast<T*>(
        // lint: allow-next-line(naked-new) untouched pages for first-touch
        ::operator new(n * sizeof(T), std::align_val_t{64})));
    T* p = buf_.get();
    const std::size_t workers = pool.size();
    pool.run([&](unsigned w) {
      // Disjoint contiguous slices; the pool barrier publishes them all.
      const std::size_t b = n * w / workers;
      const std::size_t e = n * (w + 1) / workers;
      for (std::size_t i = b; i < e; ++i) p[i] = gen(i);
    });
  }

  /// n slots, all initialized to `value`.
  FirstTouchArray(ThreadPool& pool, std::size_t n, T value)
      : FirstTouchArray(pool, n, [value](std::size_t) { return value; }) {}

  T* data() { return buf_.get(); }
  const T* data() const { return buf_.get(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](std::size_t i) { return buf_[i]; }
  const T& operator[](std::size_t i) const { return buf_[i]; }
  T* begin() { return buf_.get(); }
  T* end() { return buf_.get() + size_; }
  const T* begin() const { return buf_.get(); }
  const T* end() const { return buf_.get() + size_; }
  operator std::span<T>() { return {data(), size_}; }
  operator std::span<const T>() const { return {data(), size_}; }
  /// Explicit const view for contexts where overload resolution would
  /// otherwise weigh the conversion operator against span's range
  /// constructor (gcc reports that tie under -Wconversion).
  std::span<const T> cspan() const { return {data(), size_}; }

  void swap(FirstTouchArray& other) {
    buf_.swap(other.buf_);
    std::swap(size_, other.size_);
  }

 private:
  struct Free {
    void operator()(T* p) const {
      // lint: allow-next-line(naked-delete) pairs the aligned operator new
      ::operator delete(p, std::align_val_t{64});
    }
  };
  std::unique_ptr<T[], Free> buf_;
  std::size_t size_ = 0;
};

}  // namespace gcg::par::detail
