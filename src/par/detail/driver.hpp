// Shared state for the native parallel coloring algorithms — the par
// analogue of coloring/detail/driver.hpp. Internal header.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <vector>

#include "par/detail/appender.hpp"
#include "par/detail/arena.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/narrow.hpp"
#include "util/expect.hpp"
#include "util/simd.hpp"

namespace gcg::par::detail {

/// Palette size at or above which FirstFitScratch switches from the
/// per-call-cleared bitset to the stamped fallback (see below).
inline constexpr std::size_t kFirstFitBitsetCap = 4096;

struct DriverState {
  DriverState(ThreadPool& p, const Csr& graph, const ParOptions& options,
              ParAlgorithm algorithm)
      : g(graph),
        opts(options),
        pool(p),
        prio(make_priorities(graph, options.priority, options.seed)),
        colors(p, graph.num_vertices(), kUncolored) {
    run.algorithm = algorithm;
    run.threads = pool.size();
    run.workers.resize(pool.size());
    // Start-word hints for the stamp-fallback first-fit; only graphs with
    // a vertex whose palette can exceed the bitset cap ever consult them.
    if (std::size_t{graph.max_degree()} + 1 >
        kFirstFitBitsetCap) {
      stamp_hints.assign(graph.num_vertices(), 0);
    }
  }

  /// Per-vertex scratch slot for FirstFitScratch's stamp-fallback scan
  /// hint; null when no vertex can need the fallback. Each vertex is
  /// processed by exactly one worker per phase and phases are separated
  /// by pool barriers, so the slot is never written concurrently.
  std::uint32_t* stamp_hint(vid_t v) {
    return stamp_hints.empty() ? nullptr : &stamp_hints[v];
  }

  const Csr& g;
  const ParOptions& opts;
  ThreadPool& pool;
  std::vector<std::uint32_t> prio;
  FirstTouchArray<color_t> colors;  ///< first-touched by the worker slices
  std::vector<std::uint32_t> stamp_hints;
  ParRun run;
};

/// Polled by worker 0 at iteration boundaries: returns true (and latches
/// run.cancelled) once opts.should_cancel fires. Checking only between
/// iterations keeps the partial coloring phase-consistent.
inline bool cancel_requested(DriverState& st) {
  if (st.run.cancelled) return true;
  if (st.opts.should_cancel && st.opts.should_cancel()) {
    st.run.cancelled = true;
  }
  return st.run.cancelled;
}

/// Relaxed atomic view of a color slot. Phase barriers order everything
/// that matters; the relaxed accesses only make the benign races of the
/// speculative kernel well-defined (and TSan-clean).
inline color_t load_color(const color_t& slot) {
  // order: relaxed — phase barriers publish colors between phases; within
  // a phase a stale read only causes a conflict the next iteration fixes
  // (the speculative algorithms are correct under any interleaving).
  return std::atomic_ref<const color_t>(slot).load(std::memory_order_relaxed);
}
inline void store_color(color_t& slot, color_t c) {
  // order: relaxed — see load_color; the pool barrier is the publisher.
  std::atomic_ref<color_t>(slot).store(c, std::memory_order_relaxed);
}

/// Per-worker first-fit scratch. Two paths share one contract — return
/// the smallest color unused by v's neighbours (read through load_color):
///
///  * bitset: a forbidden-color mask at one bit per color, 64 colors per
///    word. A vertex of degree d has at most d forbidden colors, so only
///    colors < d+1 can matter; the mask is cleared and scanned up to that
///    limit and the answer is the first zero bit (countr_one). This keeps
///    the whole scan for typical vertices inside a handful of words.
///  * stamped bitset: the fallback for ultra-high-degree vertices where
///    clearing the small bitset per call would dominate. One bit per
///    color like the fast path, but words are invalidated lazily by a
///    per-word epoch instead of cleared, and an optional caller-held
///    start-word hint skips the (often fully-forbidden) low words so a
///    pathological high-color vertex recolored many times does not
///    rescan from word 0 each call. Allocated only when the graph can
///    need it.
///
/// The word scans go through the simd:: seam (AVX2 when the CPU has it,
/// scalar otherwise); both levels return the identical first-zero word,
/// so the chosen level can never change a coloring.
struct FirstFitScratch {
  /// Colors at or above this use the stamp fallback (degree >= cap).
  static constexpr std::size_t kBitsetColorCap = kFirstFitBitsetCap;

  explicit FirstFitScratch(vid_t max_degree) {
    const std::size_t colors = std::size_t{max_degree} + 1;
    words.assign((std::min(colors, kBitsetColorCap) + 63) / 64, 0);
    if (colors > kBitsetColorCap) {
      // One slack word so the first-zero scan always terminates in range
      // (the answer is at most max_degree — see first_fit).
      const std::size_t nw = (colors + 63) / 64 + 1;
      fb_bits.assign(nw, 0);
      fb_epoch.assign(nw, 0);
    }
  }

  /// Smallest color unused by v's neighbours. `hint` (optional, owned by
  /// the caller per vertex) carries the fallback path's start word
  /// between successive calls for the same v; it is validated against
  /// the current neighbourhood every call, so a stale hint costs only a
  /// full rescan, never a wrong answer.
  color_t first_fit(const Csr& g, std::span<const color_t> colors, vid_t v,
                    std::uint32_t* hint = nullptr) {
    // At most degree(v) colors are forbidden, so the answer is at most
    // degree(v) and neighbour colors beyond that bound are irrelevant.
    const std::size_t limit = std::size_t{g.degree(v)} + 1;
    return limit <= kBitsetColorCap ? bitset_fit(g, colors, v, limit)
                                    : stamp_fit(g, colors, v, hint);
  }

  std::vector<std::uint64_t> words;     ///< forbidden-color bitset
  std::vector<std::uint64_t> fb_bits;   ///< fallback bitset (big graphs)
  std::vector<std::uint64_t> fb_epoch;  ///< fallback word valid iff ==stamp
  std::uint64_t stamp = 0;

 private:
  color_t bitset_fit(const Csr& g, std::span<const color_t> colors, vid_t v,
                     std::size_t limit) {
    const std::size_t nw = (limit + 63) / 64;
    simd::clear_words(words.data(), nw);
    for (vid_t u : g.neighbors(v)) {
      // kUncolored (-1) wraps to UINT32_MAX, so one compare rejects both
      // uncolored neighbours and colors too large to matter.
      // lossy: see the comment above — the -1 wrap is the mechanism
      const auto c = narrow_cast<std::uint32_t>(load_color(colors[u]));
      if (c < limit) words[c >> 6] |= std::uint64_t{1} << (c & 63);
    }
    // A zero bit below `limit` always exists: at most limit-1 neighbours
    // marked bits among limit candidates.
    const std::size_t k = simd::first_not_full_word(words.data(), nw);
    GCG_ASSERT(k < nw);
    return narrow<color_t>(k * 64 + to_unsigned(std::countr_one(words[k])));
  }

  /// Effective value of fallback word k this call (0 unless re-marked).
  std::uint64_t fb_word(std::size_t k) const {
    return fb_epoch[k] == stamp ? fb_bits[k] : 0;
  }

  color_t stamp_fit(const Csr& g, std::span<const color_t> colors, vid_t v,
                    std::uint32_t* hint) {
    ++stamp;
    // Hint validation: the scan may start at `start` only if this call
    // proves every color below start*64 forbidden. `below` counts the
    // distinct bits this call marks in words before `start`; equality
    // with the bit capacity of that prefix is exactly that proof — so a
    // hint left behind by an earlier call (when neighbours may since
    // have been uncolored by conflict resolution) can never skip a free
    // color.
    const std::size_t start = hint == nullptr ? 0 : *hint;
    std::uint64_t below = 0;
    for (vid_t u : g.neighbors(v)) {
      const color_t c = load_color(colors[u]);
      // lossy: kUncolored wraps to SIZE_MAX; the bounds test rejects it
      const auto idx = narrow_cast<std::size_t>(c);
      if (c == kUncolored || (idx >> 6) >= fb_bits.size()) continue;
      const std::size_t k = idx >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (idx & 63);
      const std::uint64_t w = fb_word(k);
      if ((w & bit) == 0) {
        fb_bits[k] = w | bit;
        fb_epoch[k] = stamp;
        if (k < start) ++below;
      }
    }
    std::size_t k = below == std::uint64_t{start} * 64 ? start : 0;
    for (;; ++k) {
      const std::uint64_t w = fb_word(k);
      if (w != ~std::uint64_t{0}) {
        // Every word before k was saturated this call, so k is a proven
        // start word for the next call on this vertex.
        if (hint != nullptr) *hint = narrow<std::uint32_t>(k);
        return narrow<color_t>(k * 64 + to_unsigned(std::countr_one(w)));
      }
    }
  }
};

/// Accumulates busy time into one worker's stats on scope exit.
class BusyTimer {
 public:
  explicit BusyTimer(ParWorkerStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~BusyTimer() {
    const auto end = std::chrono::steady_clock::now();
    stats_.busy_ms +=
        std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  ParWorkerStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

/// Concurrent append of surviving vertices into a preallocated frontier
/// (the model-checked template in par/detail/appender.hpp).
using FrontierAppender = BasicFrontierAppender<vid_t>;

void run_speculative(DriverState& st);
void run_jpl(DriverState& st);
void run_steal(DriverState& st);

}  // namespace gcg::par::detail
