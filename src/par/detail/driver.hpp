// Shared state for the native parallel coloring algorithms — the par
// analogue of coloring/detail/driver.hpp. Internal header.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <vector>

#include "par/detail/appender.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/expect.hpp"

namespace gcg::par::detail {

struct DriverState {
  DriverState(ThreadPool& p, const Csr& graph, const ParOptions& options,
              ParAlgorithm algorithm)
      : g(graph),
        opts(options),
        pool(p),
        prio(make_priorities(graph, options.priority, options.seed)),
        colors(graph.num_vertices(), kUncolored) {
    run.algorithm = algorithm;
    run.threads = pool.size();
    run.workers.resize(pool.size());
  }

  const Csr& g;
  const ParOptions& opts;
  ThreadPool& pool;
  std::vector<std::uint32_t> prio;
  std::vector<color_t> colors;
  ParRun run;
};

/// Polled by worker 0 at iteration boundaries: returns true (and latches
/// run.cancelled) once opts.should_cancel fires. Checking only between
/// iterations keeps the partial coloring phase-consistent.
inline bool cancel_requested(DriverState& st) {
  if (st.run.cancelled) return true;
  if (st.opts.should_cancel && st.opts.should_cancel()) {
    st.run.cancelled = true;
  }
  return st.run.cancelled;
}

/// Relaxed atomic view of a color slot. Phase barriers order everything
/// that matters; the relaxed accesses only make the benign races of the
/// speculative kernel well-defined (and TSan-clean).
inline color_t load_color(const color_t& slot) {
  // order: relaxed — phase barriers publish colors between phases; within
  // a phase a stale read only causes a conflict the next iteration fixes
  // (the speculative algorithms are correct under any interleaving).
  return std::atomic_ref<const color_t>(slot).load(std::memory_order_relaxed);
}
inline void store_color(color_t& slot, color_t c) {
  // order: relaxed — see load_color; the pool barrier is the publisher.
  std::atomic_ref<color_t>(slot).store(c, std::memory_order_relaxed);
}

/// Per-worker first-fit scratch. Two paths share one contract — return
/// the smallest color unused by v's neighbours (read through load_color):
///
///  * bitset: a forbidden-color mask at one bit per color, 64 colors per
///    word. A vertex of degree d has at most d forbidden colors, so only
///    colors < d+1 can matter; the mask is cleared and scanned up to that
///    limit and the answer is the first zero bit (countr_one). This keeps
///    the whole scan for typical vertices inside a handful of words.
///  * stamp array: the original O(colors) stamped array, kept as the
///    fallback for ultra-high-degree vertices where clearing the bitset
///    per call would dominate. Allocated only when the graph can need it.
struct FirstFitScratch {
  /// Colors at or above this use the stamp fallback (degree >= cap).
  static constexpr std::size_t kBitsetColorCap = 4096;

  explicit FirstFitScratch(vid_t max_degree) {
    const std::size_t colors = static_cast<std::size_t>(max_degree) + 1;
    words.assign((std::min(colors, kBitsetColorCap) + 63) / 64, 0);
    if (colors > kBitsetColorCap) forbidden.assign(colors + 1, 0);
  }

  color_t first_fit(const Csr& g, std::span<const color_t> colors, vid_t v) {
    // At most degree(v) colors are forbidden, so the answer is at most
    // degree(v) and neighbour colors beyond that bound are irrelevant.
    const std::size_t limit = static_cast<std::size_t>(g.degree(v)) + 1;
    return limit <= kBitsetColorCap ? bitset_fit(g, colors, v, limit)
                                    : stamp_fit(g, colors, v);
  }

  std::vector<std::uint64_t> words;      ///< forbidden-color bitset
  std::vector<std::uint64_t> forbidden;  ///< stamp fallback (big graphs only)
  std::uint64_t stamp = 0;

 private:
  color_t bitset_fit(const Csr& g, std::span<const color_t> colors, vid_t v,
                     std::size_t limit) {
    const std::size_t nw = (limit + 63) / 64;
    std::fill_n(words.begin(), nw, std::uint64_t{0});
    for (vid_t u : g.neighbors(v)) {
      // kUncolored (-1) wraps to UINT32_MAX, so one compare rejects both
      // uncolored neighbours and colors too large to matter.
      const auto c = static_cast<std::uint32_t>(load_color(colors[u]));
      if (c < limit) words[c >> 6] |= std::uint64_t{1} << (c & 63);
    }
    for (std::size_t k = 0;; ++k) {
      if (words[k] != ~std::uint64_t{0}) {
        return static_cast<color_t>(k * 64 +
                                    static_cast<std::size_t>(
                                        std::countr_one(words[k])));
      }
    }
  }

  color_t stamp_fit(const Csr& g, std::span<const color_t> colors, vid_t v) {
    ++stamp;
    for (vid_t u : g.neighbors(v)) {
      const color_t c = load_color(colors[u]);
      if (c != kUncolored && static_cast<std::size_t>(c) < forbidden.size()) {
        forbidden[static_cast<std::size_t>(c)] = stamp;
      }
    }
    color_t c = 0;
    while (forbidden[static_cast<std::size_t>(c)] == stamp) ++c;
    return c;
  }
};

/// Accumulates busy time into one worker's stats on scope exit.
class BusyTimer {
 public:
  explicit BusyTimer(ParWorkerStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~BusyTimer() {
    const auto end = std::chrono::steady_clock::now();
    stats_.busy_ms +=
        std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  ParWorkerStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

/// Concurrent append of surviving vertices into a preallocated frontier
/// (the model-checked template in par/detail/appender.hpp).
using FrontierAppender = BasicFrontierAppender<vid_t>;

void run_speculative(DriverState& st);
void run_jpl(DriverState& st);
void run_steal(DriverState& st);

}  // namespace gcg::par::detail
