// Shared state for the native parallel coloring algorithms — the par
// analogue of coloring/detail/driver.hpp. Internal header.
#pragma once

#include <atomic>
#include <chrono>
#include <vector>

#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/expect.hpp"

namespace gcg::par::detail {

struct DriverState {
  DriverState(ThreadPool& p, const Csr& graph, const ParOptions& options,
              ParAlgorithm algorithm)
      : g(graph),
        opts(options),
        pool(p),
        prio(make_priorities(graph, options.priority, options.seed)),
        colors(graph.num_vertices(), kUncolored) {
    run.algorithm = algorithm;
    run.threads = pool.size();
    run.workers.resize(pool.size());
  }

  const Csr& g;
  const ParOptions& opts;
  ThreadPool& pool;
  std::vector<std::uint32_t> prio;
  std::vector<color_t> colors;
  ParRun run;
};

/// Polled by worker 0 at iteration boundaries: returns true (and latches
/// run.cancelled) once opts.should_cancel fires. Checking only between
/// iterations keeps the partial coloring phase-consistent.
inline bool cancel_requested(DriverState& st) {
  if (st.run.cancelled) return true;
  if (st.opts.should_cancel && st.opts.should_cancel()) {
    st.run.cancelled = true;
  }
  return st.run.cancelled;
}

/// Relaxed atomic view of a color slot. Phase barriers order everything
/// that matters; the relaxed accesses only make the benign races of the
/// speculative kernel well-defined (and TSan-clean).
inline color_t load_color(const color_t& slot) {
  return std::atomic_ref<const color_t>(slot).load(std::memory_order_relaxed);
}
inline void store_color(color_t& slot, color_t c) {
  std::atomic_ref<color_t>(slot).store(c, std::memory_order_relaxed);
}

/// Per-worker first-fit scratch: forbidden[c] == stamp marks color c as
/// taken by a neighbour. Stamping avoids clearing between vertices.
struct FirstFitScratch {
  explicit FirstFitScratch(vid_t max_degree)
      : forbidden(static_cast<std::size_t>(max_degree) + 2, 0) {}

  /// Smallest color unused by v's neighbours, read through load_color.
  color_t first_fit(const Csr& g, std::span<const color_t> colors, vid_t v) {
    ++stamp;
    for (vid_t u : g.neighbors(v)) {
      const color_t c = load_color(colors[u]);
      if (c != kUncolored && static_cast<std::size_t>(c) < forbidden.size()) {
        forbidden[static_cast<std::size_t>(c)] = stamp;
      }
    }
    color_t c = 0;
    while (forbidden[static_cast<std::size_t>(c)] == stamp) ++c;
    return c;
  }

  std::vector<std::uint64_t> forbidden;
  std::uint64_t stamp = 0;
};

/// Accumulates busy time into one worker's stats on scope exit.
class BusyTimer {
 public:
  explicit BusyTimer(ParWorkerStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~BusyTimer() {
    const auto end = std::chrono::steady_clock::now();
    stats_.busy_ms +=
        std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  ParWorkerStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

/// Concurrent append of surviving vertices into a preallocated frontier.
struct FrontierAppender {
  std::vector<vid_t>& out;
  std::atomic<std::uint32_t> counter{0};

  /// Reserve `count` slots; returns the first index.
  std::uint32_t claim(std::uint32_t count) {
    const std::uint32_t at =
        counter.fetch_add(count, std::memory_order_relaxed);
    GCG_ASSERT(at + count <= out.size());
    return at;
  }
};

void run_speculative(DriverState& st);
void run_jpl(DriverState& st);
void run_steal(DriverState& st);

}  // namespace gcg::par::detail
