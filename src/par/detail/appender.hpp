// Concurrent frontier append, extracted from driver.hpp so the model
// checker can instantiate the exact production template without pulling
// in the pool/runner headers: tests/mc/test_mc_frontier.cpp compiles this
// file with GCG_MC_MODEL and exhaustively checks that concurrent claim()
// calls hand out disjoint slot ranges. Internal header.
#pragma once

#include <cstdint>
#include <vector>

#include "util/expect.hpp"
#include "util/sync.hpp"

namespace gcg::par::detail {

/// Accumulates survivors into a preallocated output vector: workers claim
/// disjoint index ranges from a shared cursor and scatter into them.
template <class V>
struct BasicFrontierAppender {
  std::vector<V>& out;
  sync::atomic<std::uint32_t> counter{0};

  /// Reserve `count` slots; returns the first index.
  std::uint32_t claim(std::uint32_t count) {
    // order: relaxed — slot reservation only; the appended entries are
    // published by the pool barrier that ends the phase (model-checked:
    // disjointness holds under relaxed, see tests/mc/test_mc_frontier).
    const std::uint32_t at =
        counter.fetch_add(count, std::memory_order_relaxed);
    // Widen before adding: `at + count` in 32 bits can wrap on a huge
    // frontier and sail past the bounds check it is supposed to enforce.
    GCG_ASSERT(std::uint64_t{at} + count <= out.size());
    return at;
  }
};

}  // namespace gcg::par::detail
