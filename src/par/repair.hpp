// Conflict repair on a vertex subset — the speculative color/detect/
// repair primitive (Rokos et al.) factored out so callers other than the
// full colorings can drive it: the shard worker recolors cross-shard
// conflict losers against ghost colors, and the shard coordinator uses
// it as the bounded-round fallback on whatever conflicts survive.
//
// Only vertices in the subset are ever recolored; everything else is
// frozen. Vertices colored kUncolored (inside or outside the subset)
// impose no constraint. The fix order is Jones–Plassmann style — per
// round, every conflicted subset vertex that wins the (hash, id)
// priority among its conflicted subset neighbours recolors first-fit —
// so the result depends only on (graph, colors, subset, seed), never on
// thread count or timing. A vertex that recolors can never become
// conflicted again within the same call (winners avoid the current
// colors of ALL neighbours and no two adjacent vertices recolor in the
// same round), so rounds are bounded by the longest decreasing priority
// path through the subset — a handful in practice.
#pragma once

#include <cstdint>
#include <span>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg::par {

class ThreadPool;

struct RepairOptions {
  std::uint64_t seed = 1;      ///< priority hash seed (losers-first order)
  unsigned max_rounds = 4096;  ///< safety cap; hit only on adversarial input
  /// Optional pool: each round's winner set is an independent set, so
  /// winners recolor in parallel without changing the result. Null runs
  /// the rounds inline.
  ThreadPool* pool = nullptr;
};

struct RepairRun {
  unsigned rounds = 0;             ///< detect/repair rounds executed
  std::uint64_t recolored = 0;     ///< subset vertices assigned a new color
  /// Conflicted subset vertices left when max_rounds was exhausted
  /// (0 on every normal return).
  std::uint64_t remaining_conflicts = 0;
  double wall_ms = 0.0;
};

/// Recolors members of `subset` until no subset vertex shares a color
/// with any neighbour. `colors` is modified in place and must have
/// g.num_vertices() entries; `subset` entries must be valid vertex ids
/// (duplicates are tolerated).
RepairRun repair_subset(const Csr& g, std::span<color_t> colors,
                        std::span<const vid_t> subset,
                        const RepairOptions& opts = {});

}  // namespace gcg::par
