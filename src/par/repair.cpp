#include "par/repair.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "coloring/priorities.hpp"
#include "par/pool.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg::par {

namespace {

/// True if v is uncolored or shares its color with any neighbour.
bool needs_fix(const Csr& g, std::span<const color_t> colors, vid_t v) {
  const color_t c = colors[v];
  if (c == kUncolored) return true;
  for (vid_t u : g.neighbors(v)) {
    if (colors[u] == c) return true;
  }
  return false;
}

/// Smallest color not used by any colored neighbour of v.
color_t first_fit(const Csr& g, std::span<const color_t> colors, vid_t v,
                  std::vector<std::uint8_t>& scratch) {
  const vid_t deg = g.degree(v);
  scratch.assign(deg + 1u, 0);
  for (vid_t u : g.neighbors(v)) {
    const color_t c = colors[u];
    if (c >= 0 && to_unsigned(c) <= deg) scratch[to_unsigned(c)] = 1;
  }
  for (vid_t c = 0; c <= deg; ++c) {
    if (!scratch[c]) return narrow<color_t>(c);
  }
  return narrow<color_t>(deg + 1);  // unreachable: deg+1 slots, deg marks
}

}  // namespace

RepairRun repair_subset(const Csr& g, std::span<color_t> colors,
                        std::span<const vid_t> subset,
                        const RepairOptions& opts) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  const auto t0 = std::chrono::steady_clock::now();
  RepairRun run;

  const CounterHash prio(opts.seed);
  // Candidate set: subset members that still need a new color. The
  // membership bytes are graph-sized so the winner test is O(degree).
  std::vector<std::uint8_t> candidate(g.num_vertices(), 0);
  std::vector<vid_t> frontier;
  frontier.reserve(subset.size());
  for (vid_t v : subset) {
    GCG_EXPECT(v < g.num_vertices());
    if (!candidate[v] && needs_fix(g, colors, v)) {
      candidate[v] = 1;
      frontier.push_back(v);
    }
  }
  std::sort(frontier.begin(), frontier.end());

  std::vector<vid_t> winners;
  std::vector<std::uint8_t> scratch;
  while (!frontier.empty() && run.rounds < opts.max_rounds) {
    ++run.rounds;

    // Winners: candidates maximal under (hash, id) among their candidate
    // neighbours — an independent set, so they recolor without races and
    // the outcome is schedule-free.
    winners.clear();
    for (vid_t v : frontier) {
      const std::uint32_t pv = prio.u32(v);
      bool wins = true;
      for (vid_t u : g.neighbors(v)) {
        if (candidate[u] && priority_less(pv, v, prio.u32(u), u)) {
          wins = false;
          break;
        }
      }
      if (wins) winners.push_back(v);
    }

    if (opts.pool != nullptr && winners.size() > 1) {
      opts.pool->parallel_for(
          narrow<std::uint32_t>(winners.size()), 64,
          [&](std::uint32_t b, std::uint32_t e, unsigned) {
            std::vector<std::uint8_t> local_scratch;
            for (std::uint32_t i = b; i < e; ++i) {
              const vid_t v = winners[i];
              colors[v] = first_fit(g, colors, v, local_scratch);
            }
          });
    } else {
      for (vid_t v : winners) colors[v] = first_fit(g, colors, v, scratch);
    }
    run.recolored += winners.size();

    // A recolored vertex avoids every current neighbour color, so it is
    // done for good; survivors re-test because a neighbour's move may
    // have cleared (or been) their conflict.
    for (vid_t v : winners) candidate[v] = 0;
    std::vector<vid_t> next;
    next.reserve(frontier.size());
    for (vid_t v : frontier) {
      if (!candidate[v]) continue;
      if (needs_fix(g, colors, v)) {
        next.push_back(v);
      } else {
        candidate[v] = 0;
      }
    }
    frontier.swap(next);
  }

  run.remaining_conflicts = frontier.size();
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return run;
}

}  // namespace gcg::par
