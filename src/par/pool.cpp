#include "par/pool.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace gcg::par {

unsigned ThreadPool::default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = threads == 0 ? default_threads() : threads;
  helpers_.reserve(total - 1);
  for (unsigned w = 1; w < total; ++w) {
    helpers_.emplace_back([this, w] { helper_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void ThreadPool::helper_loop(unsigned worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const auto* job = job_;
    lock.unlock();
    (*job)(worker);
    lock.lock();
    if (--outstanding_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& body) {
  if (helpers_.empty()) {
    body(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    GCG_ASSERT(outstanding_ == 0);  // reentrant run() would deadlock
    job_ = &body;
    outstanding_ = static_cast<unsigned>(helpers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  body(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::parallel_for(
    std::uint32_t n, std::uint32_t grain,
    const std::function<void(std::uint32_t, std::uint32_t, unsigned)>& body) {
  if (n == 0) return;
  grain = std::max(grain, 1u);
  std::atomic<std::uint32_t> cursor{0};
  run([&](unsigned worker) {
    while (true) {
      const std::uint32_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      body(begin, std::min(begin + grain, n), worker);
    }
  });
}

}  // namespace gcg::par
