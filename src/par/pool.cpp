#include "par/pool.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/stress.hpp"

namespace gcg::par {

unsigned ThreadPool::default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(unsigned threads)
    : topo_(numa::detect_topology()) {
  const unsigned total = threads == 0 ? default_threads() : threads;
  worker_nodes_ = numa::assign_worker_nodes(total, topo_);
  helpers_.reserve(total - 1);
  for (unsigned w = 1; w < total; ++w) {
    helpers_.emplace_back([this, w] { helper_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::LockGuard lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void ThreadPool::helper_loop(unsigned worker) {
  // Pin helpers (never the caller) to their node's CPUs so the slices
  // they first-touch stay node-local; a no-op off real multi-node
  // machines (pin_current_thread_to_node refuses unless topo_.real).
  numa::pin_current_thread_to_node(topo_, worker_nodes_[worker]);
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      sync::LockGuard lock(mu_);
      while (!shutdown_ && generation_ == seen) start_cv_.wait(mu_);
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    // The job runs outside the lock; run() keeps `body` alive until every
    // helper has decremented outstanding_, so the pointer stays valid.
    (*job)(worker);
    {
      sync::LockGuard lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run(const std::function<void(unsigned)>& body) {
  if (helpers_.empty()) {
    body(0);
    return;
  }
  {
    sync::LockGuard lock(mu_);
    GCG_ASSERT(outstanding_ == 0);  // reentrant run() would deadlock
    job_ = &body;
    outstanding_ = narrow<unsigned>(helpers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  body(0);
  sync::LockGuard lock(mu_);
  while (outstanding_ != 0) done_cv_.wait(mu_);
  job_ = nullptr;
}

void ThreadPool::parallel_for(
    std::uint32_t n, std::uint32_t grain,
    const std::function<void(std::uint32_t, std::uint32_t, unsigned)>& body) {
  if (n == 0) return;
  grain = std::max(grain, 1u);
  sync::atomic<std::uint32_t> cursor{0};
  run([&](unsigned worker) {
    while (true) {
      // order: relaxed — the cursor only partitions the index space;
      // everything the chunks write is ordered by the pool barrier.
      const std::uint32_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      stress_point(worker);  // schedule-perturbation hook (no-op unless installed)
      body(begin, std::min(begin + grain, n), worker);
    }
  });
}

void ThreadPool::parallel_for_edges(
    std::uint32_t n, const std::uint64_t* prefix, std::uint64_t grain_weight,
    const std::function<void(std::uint32_t, std::uint32_t, unsigned)>& body) {
  if (n == 0) return;
  grain_weight = std::max<std::uint64_t>(grain_weight, 1);
  const std::uint64_t total = prefix[n];
  // An all-zero-weight range still gets one chunk so every index is seen.
  const std::uint64_t num_chunks =
      std::max<std::uint64_t>(1, (total + grain_weight - 1) / grain_weight);
  // Chunk k spans [boundary(k), boundary(k+1)): the first indices whose
  // cumulative weight reaches k*grain and (k+1)*grain. The last chunk is
  // pinned to n so a weightless tail (isolated vertices) is not dropped.
  const auto boundary = [&](std::uint64_t k) -> std::uint32_t {
    if (k >= num_chunks) return n;
    const std::uint64_t* it =
        std::lower_bound(prefix, prefix + n + 1, k * grain_weight);
    return narrow<std::uint32_t>(
        std::min<std::size_t>(to_unsigned(it - prefix), n));
  };
  sync::atomic<std::uint64_t> cursor{0};
  run([&](unsigned worker) {
    while (true) {
      // order: relaxed — chunk indices only; the pool barrier orders
      // the chunk bodies' effects.
      const std::uint64_t k = cursor.fetch_add(1, std::memory_order_relaxed);
      if (k >= num_chunks) break;
      stress_point(worker);  // schedule-perturbation hook (no-op unless installed)
      const std::uint32_t begin = boundary(k);
      const std::uint32_t end = boundary(k + 1);
      if (begin < end) body(begin, end, worker);
    }
  });
}

}  // namespace gcg::par
