// Native parallel Jones–Plassmann–Luby: each round selects the vertices
// whose priority beats every uncolored neighbour (an independent set by
// construction of the strict total order) and commits them with first-fit.
// Colors are only read in the winner-flag phase and only written in the
// commit phase, and a committed vertex never has a committed neighbour in
// the same round — so the result is deterministic at any thread count.
#include <numeric>

#include "par/detail/driver.hpp"

namespace gcg::par::detail {

void run_jpl(DriverState& st) {
  const vid_t n = st.g.num_vertices();
  if (n == 0) return;
  std::vector<vid_t> worklist(n);
  std::iota(worklist.begin(), worklist.end(), vid_t{0});
  std::vector<vid_t> next(n);
  std::vector<std::uint8_t> wins(n, 0);
  std::uint32_t wsize = n;

  std::vector<FirstFitScratch> scratch(st.pool.size(),
                                       FirstFitScratch(st.g.max_degree()));
  const std::uint32_t grain = 512;

  while (wsize > 0 && !cancel_requested(st)) {
    GCG_ASSERT(st.run.iterations < st.opts.max_iterations);
    ++st.run.iterations;

    // Phase 1: winner flags against the stable color array.
    st.pool.parallel_for(wsize, grain, [&](std::uint32_t b, std::uint32_t e,
                                           unsigned w) {
      ParWorkerStats& ws = st.run.workers[w];
      BusyTimer timer(ws);
      for (std::uint32_t i = b; i < e; ++i) {
        const vid_t v = worklist[i];
        bool win = true;
        for (vid_t u : st.g.neighbors(v)) {
          if (load_color(st.colors[u]) == kUncolored &&
              !priority_less(st.prio[u], u, st.prio[v], v)) {
            win = false;
            break;
          }
        }
        wins[v] = win ? 1 : 0;
      }
      ws.vertices += e - b;
    });

    // Phase 2: winners commit first-fit (their neighbours cannot be
    // winners, so the reads are stable); losers survive into next round.
    FrontierAppender app{next};
    st.pool.parallel_for(wsize, grain, [&](std::uint32_t b, std::uint32_t e,
                                           unsigned w) {
      BusyTimer timer(st.run.workers[w]);
      std::vector<vid_t> losers;
      for (std::uint32_t i = b; i < e; ++i) {
        const vid_t v = worklist[i];
        if (wins[v]) {
          store_color(st.colors[v], scratch[w].first_fit(st.g, st.colors, v));
        } else {
          losers.push_back(v);
        }
      }
      if (!losers.empty()) {
        std::uint32_t at = app.claim(static_cast<std::uint32_t>(losers.size()));
        for (vid_t v : losers) next[at++] = v;
      }
    });

    wsize = app.counter.load(std::memory_order_relaxed);
    worklist.swap(next);
  }
}

}  // namespace gcg::par::detail
