// Native parallel Jones–Plassmann–Luby: each round selects the vertices
// whose priority beats every uncolored neighbour (an independent set by
// construction of the strict total order) and commits them with first-fit.
// Colors are only read in the winner-flag phase and only written in the
// commit phase, and a committed vertex never has a committed neighbour in
// the same round — so the result is deterministic at any thread count,
// under any schedule, and with the hub path on or off: a hub's winner flag
// is the same exists-reduction the per-worker path computes, and its
// cooperative first-fit builds the same forbidden set (OR is commutative).
#include "par/detail/frontier.hpp"

namespace gcg::par::detail {

void run_jpl(DriverState& st) {
  const vid_t n = st.g.num_vertices();
  if (n == 0) return;
  const SchedulePlan plan = make_plan(st.g, st.opts, st.pool.size());
  FrontierExec frontier(st, plan);
  FirstTouchArray<std::uint8_t> wins(st.pool, n, std::uint8_t{0});
  // Each worker constructs (first-touches) its own scratch so forbidden
  // masks live on the worker's node; the barrier publishes the pointers.
  std::vector<std::unique_ptr<FirstFitScratch>> scratch(st.pool.size());
  st.pool.run([&](unsigned w) {
    scratch[w] = std::make_unique<FirstFitScratch>(st.g.max_degree());
  });
  HubScratch hub_scratch(st.g.max_degree(), st.pool.size());

  while (frontier.active() > 0 && !cancel_requested(st)) {
    GCG_ASSERT(st.run.iterations < st.opts.max_iterations);
    ++st.run.iterations;

    // Phase 1: winner flags against the stable color array.
    frontier.phase(
        [&](vid_t v, unsigned) {
          bool win = true;
          for (vid_t u : st.g.neighbors(v)) {
            if (load_color(st.colors[u]) == kUncolored &&
                !priority_less(st.prio[u], u, st.prio[v], v)) {
              win = false;
              break;
            }
          }
          wins[v] = win ? 1 : 0;
        },
        [&](vid_t v) {
          const bool beaten = coop_exists(st, v, [&](vid_t u) {
            return load_color(st.colors[u]) == kUncolored &&
                   !priority_less(st.prio[u], u, st.prio[v], v);
          });
          wins[v] = beaten ? 0 : 1;
        });

    // Phase 2: winners commit first-fit (their neighbours cannot be
    // winners, so the reads are stable); losers survive into next round.
    frontier.rebuild(
        [&](vid_t v, unsigned w) {
          if (!wins[v]) return true;
          store_color(st.colors[v], scratch[w]->first_fit(st.g, st.colors.cspan(), v,
                                                          st.stamp_hint(v)));
          return false;
        },
        [&](vid_t v) {
          if (!wins[v]) return true;
          store_color(st.colors[v], coop_first_fit(st, hub_scratch, v));
          return false;
        });
  }
}

}  // namespace gcg::par::detail
