// Native speculative greedy coloring (Gebremedhin–Manne): every frontier
// vertex optimistically takes its first-fit color against the *live* color
// array (benign read races, made well-defined with relaxed atomics), then
// a conflict-detection pass uncolors the lower-priority endpoint of every
// monochromatic edge and re-enqueues it. On one thread the speculation
// pass sees every earlier assignment, so no conflicts ever arise and the
// result is exactly sequential first-fit greedy in worklist order (the
// hub path is off on one thread, so the order stays natural).
//
// Scheduling is degree-aware (see detail/frontier.hpp): the frontier is
// chunked by cumulative edge count under ParOptions::schedule, vertices
// above the hub threshold are speculated and conflict-checked
// cooperatively by the whole team, and the frontier itself switches
// between a bitmap and a compacted worklist with density.
#include "par/detail/frontier.hpp"

namespace gcg::par::detail {

void run_speculative(DriverState& st) {
  const vid_t n = st.g.num_vertices();
  if (n == 0) return;
  const SchedulePlan plan = make_plan(st.g, st.opts, st.pool.size());
  FrontierExec frontier(st, plan);
  // Each worker constructs (first-touches) its own scratch so forbidden
  // masks live on the worker's node; the barrier publishes the pointers.
  std::vector<std::unique_ptr<FirstFitScratch>> scratch(st.pool.size());
  st.pool.run([&](unsigned w) {
    scratch[w] = std::make_unique<FirstFitScratch>(st.g.max_degree());
  });
  HubScratch hub_scratch(st.g.max_degree(), st.pool.size());

  while (frontier.active() > 0 && !cancel_requested(st)) {
    GCG_ASSERT(st.run.iterations < st.opts.max_iterations);
    ++st.run.iterations;

    // Phase 1: speculative first-fit against live colors. A hub first-fits
    // cooperatively — the team builds one shared forbidden mask instead of
    // one worker walking a giant neighbour list alone.
    frontier.phase(
        [&](vid_t v, unsigned w) {
          store_color(st.colors[v], scratch[w]->first_fit(st.g, st.colors.cspan(), v,
                                                          st.stamp_hint(v)));
        },
        [&](vid_t v) {
          store_color(st.colors[v], coop_first_fit(st, hub_scratch, v));
        });

    // Phase 2: detect monochromatic edges; the lower-priority endpoint
    // reverts its speculation and re-enters the frontier. Uncoloring in
    // place is safe: a loser that uncolors early only makes neighbours'
    // conflicts disappear, never appear.
    frontier.rebuild(
        [&](vid_t v, unsigned) {
          const color_t cv = load_color(st.colors[v]);
          for (vid_t u : st.g.neighbors(v)) {
            if (load_color(st.colors[u]) == cv &&
                priority_less(st.prio[v], v, st.prio[u], u)) {
              store_color(st.colors[v], kUncolored);
              return true;
            }
          }
          return false;
        },
        [&](vid_t v) {
          const color_t cv = load_color(st.colors[v]);
          const bool lost = coop_exists(st, v, [&](vid_t u) {
            return load_color(st.colors[u]) == cv &&
                   priority_less(st.prio[v], v, st.prio[u], u);
          });
          if (lost) store_color(st.colors[v], kUncolored);
          return lost;
        });
  }
}

}  // namespace gcg::par::detail
