// Native speculative greedy coloring (Gebremedhin–Manne): every worklist
// vertex optimistically takes its first-fit color against the *live* color
// array (benign read races, made well-defined with relaxed atomics), then
// a conflict-detection pass uncolors the lower-priority endpoint of every
// monochromatic edge and re-enqueues it. On one thread the speculation
// pass sees every earlier assignment, so no conflicts ever arise and the
// result is exactly sequential first-fit greedy in worklist order.
#include <numeric>

#include "par/detail/driver.hpp"

namespace gcg::par::detail {

void run_speculative(DriverState& st) {
  const vid_t n = st.g.num_vertices();
  if (n == 0) return;
  std::vector<vid_t> worklist(n);
  std::iota(worklist.begin(), worklist.end(), vid_t{0});
  std::vector<vid_t> next(n);
  std::uint32_t wsize = n;

  std::vector<FirstFitScratch> scratch(st.pool.size(),
                                       FirstFitScratch(st.g.max_degree()));
  const std::uint32_t grain = 512;

  while (wsize > 0 && !cancel_requested(st)) {
    GCG_ASSERT(st.run.iterations < st.opts.max_iterations);
    ++st.run.iterations;

    // Phase 1: speculative first-fit against live colors.
    st.pool.parallel_for(wsize, grain, [&](std::uint32_t b, std::uint32_t e,
                                           unsigned w) {
      ParWorkerStats& ws = st.run.workers[w];
      BusyTimer timer(ws);
      for (std::uint32_t i = b; i < e; ++i) {
        const vid_t v = worklist[i];
        store_color(st.colors[v], scratch[w].first_fit(st.g, st.colors, v));
      }
      ws.vertices += e - b;
    });

    // Phase 2: detect monochromatic edges; the lower-priority endpoint
    // reverts its speculation and re-enters the worklist.
    FrontierAppender app{next};
    st.pool.parallel_for(wsize, grain, [&](std::uint32_t b, std::uint32_t e,
                                           unsigned w) {
      BusyTimer timer(st.run.workers[w]);
      std::vector<vid_t> losers;
      for (std::uint32_t i = b; i < e; ++i) {
        const vid_t v = worklist[i];
        const color_t cv = load_color(st.colors[v]);
        for (vid_t u : st.g.neighbors(v)) {
          if (load_color(st.colors[u]) == cv &&
              priority_less(st.prio[v], v, st.prio[u], u)) {
            losers.push_back(v);
            break;
          }
        }
      }
      if (!losers.empty()) {
        // Uncolor after detection: a loser that uncolors early only makes
        // its neighbours' conflicts disappear, never appear.
        std::uint32_t at = app.claim(static_cast<std::uint32_t>(losers.size()));
        for (vid_t v : losers) {
          store_color(st.colors[v], kUncolored);
          next[at++] = v;
        }
      }
    });

    wsize = app.counter.load(std::memory_order_relaxed);
    worklist.swap(next);
  }
}

}  // namespace gcg::par::detail
