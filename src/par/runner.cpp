#include "par/runner.hpp"

#include <chrono>
#include <stdexcept>

#include "par/detail/driver.hpp"
#include "par/pool.hpp"

namespace gcg::par {

const char* par_algorithm_name(ParAlgorithm a) {
  switch (a) {
    case ParAlgorithm::kSpeculative: return "speculative";
    case ParAlgorithm::kJpl: return "jpl";
    case ParAlgorithm::kSteal: return "steal";
  }
  return "?";
}

ParAlgorithm par_algorithm_from_name(const std::string& name) {
  for (ParAlgorithm a : all_par_algorithms()) {
    if (name == par_algorithm_name(a)) return a;
  }
  throw std::invalid_argument("unknown par algorithm: " + name);
}

std::vector<ParAlgorithm> all_par_algorithms() {
  return {ParAlgorithm::kSpeculative, ParAlgorithm::kJpl, ParAlgorithm::kSteal};
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kVertexChunks: return "vertex";
    case Schedule::kEdgeBalanced: return "edge";
  }
  return "?";
}

Schedule schedule_from_name(const std::string& name) {
  if (name == "vertex") return Schedule::kVertexChunks;
  if (name == "edge") return Schedule::kEdgeBalanced;
  throw std::invalid_argument("unknown schedule: " + name + " (vertex|edge)");
}

ParRun run_par_coloring(ThreadPool& pool, const Csr& g, ParAlgorithm algorithm,
                        const ParOptions& opts) {
  detail::DriverState st(pool, g, opts, algorithm);
  const auto t0 = std::chrono::steady_clock::now();
  switch (algorithm) {
    case ParAlgorithm::kSpeculative:
      detail::run_speculative(st);
      break;
    case ParAlgorithm::kJpl:
      detail::run_jpl(st);
      break;
    case ParAlgorithm::kSteal:
      detail::run_steal(st);
      break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  st.run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  st.run.colors = std::move(st.colors);
  st.run.num_colors = count_colors(st.run.colors);

  std::vector<double> busy;
  busy.reserve(st.run.workers.size());
  for (const ParWorkerStats& w : st.run.workers) busy.push_back(w.busy_ms);
  st.run.imbalance = summarize_worker_times(busy);
  return std::move(st.run);
}

ParRun run_par_coloring(const Csr& g, ParAlgorithm algorithm,
                        const ParOptions& opts) {
  ThreadPool pool(opts.threads);
  return run_par_coloring(pool, g, algorithm, opts);
}

}  // namespace gcg::par
