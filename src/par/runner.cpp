#include "par/runner.hpp"

#include <chrono>
#include <stdexcept>

#include "par/detail/driver.hpp"
#include "par/pool.hpp"

namespace gcg::par {

const char* par_algorithm_name(ParAlgorithm a) {
  switch (a) {
    case ParAlgorithm::kSpeculative: return "speculative";
    case ParAlgorithm::kJpl: return "jpl";
    case ParAlgorithm::kSteal: return "steal";
  }
  return "?";
}

ParAlgorithm par_algorithm_from_name(const std::string& name) {
  for (ParAlgorithm a : all_par_algorithms()) {
    if (name == par_algorithm_name(a)) return a;
  }
  throw std::invalid_argument("unknown par algorithm: " + name);
}

std::vector<ParAlgorithm> all_par_algorithms() {
  return {ParAlgorithm::kSpeculative, ParAlgorithm::kJpl, ParAlgorithm::kSteal};
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kVertexChunks: return "vertex";
    case Schedule::kEdgeBalanced: return "edge";
  }
  return "?";
}

Schedule schedule_from_name(const std::string& name) {
  if (name == "vertex") return Schedule::kVertexChunks;
  if (name == "edge") return Schedule::kEdgeBalanced;
  throw std::invalid_argument("unknown schedule: " + name + " (vertex|edge)");
}

namespace {

/// The core run on the graph exactly as given (no reordering).
ParRun run_here(ThreadPool& pool, const Csr& g, ParAlgorithm algorithm,
                const ParOptions& opts) {
  detail::DriverState st(pool, g, opts, algorithm);
  const auto t0 = std::chrono::steady_clock::now();
  switch (algorithm) {
    case ParAlgorithm::kSpeculative:
      detail::run_speculative(st);
      break;
    case ParAlgorithm::kJpl:
      detail::run_jpl(st);
      break;
    case ParAlgorithm::kSteal:
      detail::run_steal(st);
      break;
  }
  const auto t1 = std::chrono::steady_clock::now();
  st.run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  st.run.colors.assign(st.colors.begin(), st.colors.end());
  st.run.num_colors = count_colors(st.run.colors);

  std::vector<double> busy;
  busy.reserve(st.run.workers.size());
  for (const ParWorkerStats& w : st.run.workers) busy.push_back(w.busy_ms);
  st.run.imbalance = summarize_worker_times(busy);
  return std::move(st.run);
}

}  // namespace

ParRun run_par_coloring(ThreadPool& pool, const Csr& g, ParAlgorithm algorithm,
                        const ParOptions& opts) {
  if (opts.order == Order::kNatural) return run_here(pool, g, algorithm, opts);

  // Reorder pipeline: permute, color the relabeled graph, unmap. The
  // permutation satisfies perm[old] = new, so the color of the caller's
  // vertex v is the relabeled run's color of perm[v]. Unmapping changes
  // neither validity (relabeling preserves adjacency) nor the palette, so
  // num_colors carries over.
  const auto r0 = std::chrono::steady_clock::now();
  const std::vector<vid_t> perm = make_order(g, opts.order, opts.seed);
  const Csr relabeled = apply_order(g, perm);
  const auto r1 = std::chrono::steady_clock::now();

  ParRun run = run_here(pool, relabeled, algorithm, opts);

  const auto r2 = std::chrono::steady_clock::now();
  std::vector<color_t> unmapped(run.colors.size());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    unmapped[v] = run.colors[perm[v]];
  }
  const auto r3 = std::chrono::steady_clock::now();
  run.colors = std::move(unmapped);
  run.order = opts.order;
  run.reorder_ms =
      std::chrono::duration<double, std::milli>(r1 - r0).count() +
      std::chrono::duration<double, std::milli>(r3 - r2).count();
  return run;
}

ParRun run_par_coloring(const Csr& g, ParAlgorithm algorithm,
                        const ParOptions& opts) {
  ThreadPool pool(opts.threads);
  return run_par_coloring(pool, g, algorithm, opts);
}

}  // namespace gcg::par
