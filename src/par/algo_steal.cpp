// Native worklist max-min coloring on work-stealing deques — the mirror
// of the simulated Algorithm::kSteal. Phase A deals the frontier to the
// workers in contiguous chunk blocks (the classic static partition whose
// imbalance the paper measures) and lets drained workers steal from
// laggards' deques; phase B commits the max winners, then the min
// winners, and rebuilds the frontier. Unlike the GPU kernel's
// iteration-indexed colors, the commits are first-fit (each winner set is
// independent, and the two sets commit in separate passes, so first-fit
// reads are race-free) — same max-min schedule, greedy-quality counts.
// Min commits are further gated to dense frontiers and to colors already
// in the palette: an early low-priority vertex grabbing a fresh low color
// cascades extra colors onto the vertices greedy would color first, so a
// min winner that would open a new color defers to a later round instead.
// Flags are per-vertex and colors per-slot, and the palette update is a
// schedule-independent max, so the coloring is deterministic even though
// the steal schedule is not.
#include <algorithm>
#include <numeric>
#include <thread>

#include "par/detail/driver.hpp"
#include "par/steal_pool.hpp"
#include "sched/chunk.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg::par::detail {

namespace {
constexpr std::uint8_t kFlagMax = 1;
constexpr std::uint8_t kFlagMin = 2;
}  // namespace

void run_steal(DriverState& st) {
  const vid_t n = st.g.num_vertices();
  if (n == 0) return;
  const unsigned workers = st.pool.size();
  std::vector<vid_t> frontier(n);
  std::iota(frontier.begin(), frontier.end(), vid_t{0});
  std::vector<vid_t> next(n);
  FirstTouchArray<std::uint8_t> flags(st.pool, n, std::uint8_t{0});
  std::uint32_t fsize = n;

  StealPool spool(workers);
  // Same-node deques are preferred victims (never changes the coloring —
  // flags are per-vertex and the commit phases are schedule-independent).
  spool.set_worker_nodes(st.pool.worker_nodes());
  // Each worker constructs (first-touches) its own scratch so forbidden
  // masks live on the worker's node; the barrier publishes the pointers.
  std::vector<std::unique_ptr<FirstFitScratch>> scratch(workers);
  st.pool.run([&](unsigned w) {
    scratch[w] = std::make_unique<FirstFitScratch>(st.g.max_degree());
  });
  // Commit phases are barriered parallel_fors; the flag phase's imbalance
  // is handled by the deques, so the schedule/hub knobs don't apply here.
  const std::uint32_t grain = std::max(st.opts.grain, 1u);
  color_t palette = 0;  // colors used so far; barriers keep it exact
  std::vector<color_t> wmax(workers);

  while (fsize > 0 && !cancel_requested(st)) {
    GCG_ASSERT(st.run.iterations < st.opts.max_iterations);
    const unsigned iter = st.run.iterations++;
    const auto chunks = make_chunks(fsize, st.opts.chunk_size);
    spool.fill(deal_blocked(chunks, workers));

    // Phase A: flag each frontier vertex as a local max/min of the
    // uncolored neighbourhood. Colors are stable here, and each vertex's
    // flag is written by exactly the worker holding its chunk.
    st.pool.run([&](unsigned w) {
      ParWorkerStats& ws = st.run.workers[w];
      Xoshiro256ss rng(mix64(st.opts.seed ^
                             (std::uint64_t{iter} * workers + w + 1)));
      while (true) {
        std::optional<Chunk> c = spool.acquire(w, st.opts.victim, rng);
        if (!c) {
          if (spool.drained()) break;
          std::this_thread::yield();  // victims still hold their last chunks
          continue;
        }
        BusyTimer timer(ws);
        for (std::uint32_t i = c->begin; i < c->end; ++i) {
          const vid_t v = frontier[i];
          bool is_max = true, is_min = true;
          for (vid_t u : st.g.neighbors(v)) {
            if (load_color(st.colors[u]) != kUncolored) continue;
            if (priority_less(st.prio[v], v, st.prio[u], u)) {
              is_max = false;
            } else {
              is_min = false;
            }
            if (!is_max && !is_min) break;
          }
          flags[v] = (is_max ? kFlagMax : 0) | (is_min ? kFlagMin : 0);
        }
        ++ws.chunks;
        ws.vertices += c->size();
      }
    });

    // Phase B1: the max set commits first-fit (independent, so the reads
    // cannot race with the writes).
    std::fill(wmax.begin(), wmax.end(), palette);
    st.pool.parallel_for(fsize, grain, [&](std::uint32_t b, std::uint32_t e,
                                           unsigned w) {
      BusyTimer timer(st.run.workers[w]);
      for (std::uint32_t i = b; i < e; ++i) {
        const vid_t v = frontier[i];
        if (flags[v] & kFlagMax) {
          const color_t c =
              scratch[w]->first_fit(st.g, st.colors.cspan(), v, st.stamp_hint(v));
          store_color(st.colors[v], c);
          wmax[w] = std::max(wmax[w], c + 1);
        }
      }
    });
    palette = *std::max_element(wmax.begin(), wmax.end());

    // Phase B2: while the frontier is dense the min set also commits
    // first-fit (seeing the max set's colors) — the paper's max-min trick
    // that halves the iteration count. In the sparse tail the min commits
    // cost colors without saving meaningful work, so they are skipped.
    const bool use_min = fsize * 2 >= n;
    FrontierAppender app{next};
    st.pool.parallel_for(fsize, grain, [&](std::uint32_t b, std::uint32_t e,
                                           unsigned w) {
      BusyTimer timer(st.run.workers[w]);
      std::vector<vid_t> survivors;
      for (std::uint32_t i = b; i < e; ++i) {
        const vid_t v = frontier[i];
        if (flags[v] & kFlagMax) continue;
        color_t c;
        if (use_min && (flags[v] & kFlagMin) &&
            (c = scratch[w]->first_fit(st.g, st.colors.cspan(), v,
                                       st.stamp_hint(v))) < palette) {
          store_color(st.colors[v], c);
        } else {
          survivors.push_back(v);
        }
      }
      if (!survivors.empty()) {
        std::uint32_t at =
            app.claim(narrow<std::uint32_t>(survivors.size()));
        for (vid_t v : survivors) next[at++] = v;
      }
    });

    // order: relaxed — read after the pool barrier that ended the phase.
    fsize = app.counter.load(std::memory_order_relaxed);
    frontier.swap(next);
  }

  for (unsigned w = 0; w < workers; ++w) {
    st.run.workers[w].steal = spool.worker_stats(w);
  }
  st.run.steal = spool.stats();
}

}  // namespace gcg::par::detail
