// Public entry point for the native multicore backend: pick a parallel
// algorithm, get a colored graph plus real wall-clock timing, per-worker
// busy times, and steal statistics. The counterpart of coloring/runner.hpp
// for runs on actual hardware threads instead of the simulated GPU.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coloring/common.hpp"
#include "coloring/priorities.hpp"
#include "graph/csr.hpp"
#include "graph/reorder.hpp"
#include "metrics/imbalance.hpp"
#include "sched/steal_queues.hpp"  // VictimPolicy, StealStats

namespace gcg::par {

class ThreadPool;

enum class ParAlgorithm {
  kSpeculative,  ///< speculative greedy + iterative conflict resolution
                 ///< (Gebremedhin–Manne); 1 thread == seq first-fit greedy
  kJpl,          ///< parallel Jones–Plassmann–Luby: priority-maximal
                 ///< independent sets, first-fit commit. Deterministic for
                 ///< a fixed seed at any thread count.
  kSteal,        ///< worklist max-min on per-worker Chase–Lev deques with
                 ///< work stealing — the native mirror of Algorithm::kSteal.
};

const char* par_algorithm_name(ParAlgorithm a);
ParAlgorithm par_algorithm_from_name(const std::string& name);
std::vector<ParAlgorithm> all_par_algorithms();

/// How the vertex-parallel phases of speculative/jpl divide a frontier
/// among workers. (kSteal divides its flag phase with work-stealing
/// deques instead; the schedule still governs its barriered commit
/// phases' grain.)
enum class Schedule {
  kVertexChunks,  ///< fixed vertex-count chunks off a shared cursor — the
                  ///< paper's baseline, degree-oblivious partitioning
  kEdgeBalanced,  ///< chunks of ~equal cumulative degree, split points
                  ///< binary-searched in a degree prefix sum
};

const char* schedule_name(Schedule s);
Schedule schedule_from_name(const std::string& name);

struct ParOptions {
  unsigned threads = 0;  ///< 0 = hardware concurrency
  PriorityMode priority = PriorityMode::kRandom;
  std::uint64_t seed = 1;
  unsigned max_iterations = 1u << 20;  ///< safety cap

  /// Preprocessing vertex reordering (graph/reorder.hpp): the run colors
  /// a relabeled copy of the graph and transparently unmaps the colors
  /// back to the caller's vertex ids, so ParRun::colors[v] always refers
  /// to the input graph's v. Degree-sorted and bandwidth-reducing orders
  /// tighten the frontier's memory locality and group similar degrees
  /// into the same chunks (the paper's layout lever); the permutation
  /// cost is reported separately in ParRun::reorder_ms so the tradeoff
  /// stays visible. kRandom uses `seed`. Note the *coloring* generally
  /// changes with the order (greedy first-fit is order-dependent) but
  /// stays deterministic for a fixed (order, seed, algorithm).
  Order order = Order::kNatural;

  // --- scheduling of the vertex-parallel phases (speculative / jpl) ---
  /// Frontier partitioning policy. kEdgeBalanced keeps the chunk *count*
  /// of kVertexChunks but moves the boundaries so every chunk carries a
  /// comparable number of edges — the load-imbalance fix for skewed
  /// degree distributions. Never changes any coloring, only wall time.
  Schedule schedule = Schedule::kEdgeBalanced;
  /// Target vertices per scheduler chunk (was a hardcoded 512). Under
  /// kEdgeBalanced the same count of chunks is cut by cumulative degree.
  std::uint32_t grain = 512;
  /// Degree above which a frontier vertex leaves the per-worker path and
  /// is processed cooperatively by the whole team (the paper's hybrid
  /// thresholding: one hub's neighbour list is scanned in slices by all
  /// workers with a shared reduction). 0 = auto, scaled from the average
  /// degree; any value >= num_vertices disables the hub path. Ignored on
  /// 1 thread (cooperation needs a team) and by kSteal (its deques
  /// already rebalance). Never changes the jpl coloring.
  std::uint32_t hub_degree_threshold = 0;

  // kSteal only: frontier items per deque chunk and victim selection.
  // (chunk_size sizes the *deque* chunks of the stealing flag phase;
  // `grain` above sizes the barriered commit phases.)
  std::uint32_t chunk_size = 256;
  VictimPolicy victim = VictimPolicy::kRandom;

  /// Cooperative cancellation: polled by worker 0 between iterations
  /// (never mid-phase, so the color array stays phase-consistent). When it
  /// returns true the run stops early and ParRun::cancelled is set; the
  /// partial coloring is returned as-is. Used by the service layer for
  /// per-job deadlines and client-initiated cancellation.
  std::function<bool()> should_cancel;
};

/// What one worker did across the whole run.
struct ParWorkerStats {
  double busy_ms = 0.0;          ///< time inside vertex-processing loops
  std::uint64_t chunks = 0;      ///< deque chunks processed (kSteal)
  std::uint64_t vertices = 0;    ///< frontier vertices scanned
  StealStats steal;              ///< this worker as thief (kSteal)
};

struct ParRun {
  ParAlgorithm algorithm = ParAlgorithm::kSpeculative;
  std::vector<color_t> colors;
  int num_colors = 0;
  unsigned iterations = 0;
  unsigned threads = 1;
  /// True if opts.should_cancel stopped the run before completion; the
  /// coloring is then partial (uncolored slots hold kUncolored).
  bool cancelled = false;
  double wall_ms = 0.0;          ///< steady_clock time for the coloring
                                 ///< itself (excludes reorder_ms)
  /// Preprocessing order applied (kNatural = none) and what the
  /// permutation + relabeling + unmap cost on top of wall_ms.
  Order order = Order::kNatural;
  double reorder_ms = 0.0;
  /// Hub-vertex passes run cooperatively (whole team on one adjacency
  /// list); 0 when the hub path was disabled or never triggered.
  std::uint64_t hub_vertices = 0;
  std::vector<ParWorkerStats> workers;
  StealStats steal;              ///< aggregate across workers (kSteal)
  /// Busy-time skew across workers (cu_* fields read "per worker", and
  /// the *_cycles fields carry milliseconds for this backend).
  ImbalanceReport imbalance;
};

/// Colors `g` on native threads. Spawns (and joins) its own pool.
ParRun run_par_coloring(const Csr& g, ParAlgorithm algorithm,
                        const ParOptions& opts = {});

/// Same, reusing a caller-owned pool (amortizes thread spawn across runs,
/// e.g. in benches). opts.threads is ignored in favor of pool.size().
ParRun run_par_coloring(ThreadPool& pool, const Csr& g, ParAlgorithm algorithm,
                        const ParOptions& opts = {});

}  // namespace gcg::par
