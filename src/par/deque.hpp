// Chase–Lev work-stealing deque: single owner pushes/pops at the bottom,
// any number of thieves steal from the top. Lock-free; memory orderings
// follow Lê, Pop, Cohen, Nardelli ("Correct and Efficient Work-Stealing
// for Weak Memory Models", PPoPP'13).
//
// Fixed capacity, no growth path: each coloring round fills a deque once
// and drains it, so the owner never pushes more than `capacity` items
// between reset()s and ring slots are never recycled while thieves race.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/sync.hpp"

namespace gcg::par {

template <typename T>
class WorkStealingDeque {
 public:
  explicit WorkStealingDeque(std::uint32_t capacity = 256) {
    reserve(capacity);
  }
  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only, while no thief is active. Rounds capacity up to a power
  /// of two and empties the deque.
  void reserve(std::uint32_t capacity) {
    std::uint32_t cap = 1;
    while (cap < capacity) cap <<= 1;
    buffer_.assign(cap, T{});
    mask_ = cap - 1;
    // order: relaxed — owner-only call while no thief is active; the next
    // fill is published by StealPool::fill's release store of remaining_.
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  /// Owner only, while no thief is active: rewind to empty without
  /// touching the buffer (the cheap between-rounds reset).
  void reset() {
    // order: relaxed — owner-only call while no thief is active.
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  std::uint32_t capacity() const {
    return narrow<std::uint32_t>(buffer_.size());
  }

  /// Racy size hint for victim selection — may be stale, never negative.
  std::int64_t size_estimate() const {
    // order: relaxed — advisory victim-selection hint; stale reads only
    // cost a wasted steal probe, never correctness.
    const std::int64_t d = bottom_.load(std::memory_order_relaxed) -
                           top_.load(std::memory_order_relaxed);
    return d > 0 ? d : 0;
  }

  /// Owner only.
  void push_bottom(T item) {
    // order: relaxed — bottom_ is only ever written by this owner thread.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    // order: acquire pairs with thieves' seq_cst CAS on top_ so the
    // capacity assert below sees an up-to-date lower bound (PPoPP'13).
    const std::int64_t t = top_.load(std::memory_order_acquire);
    GCG_ASSERT(b - t < to_signed(buffer_.size()));
    buffer_[to_unsigned(b) & mask_] = item;
    // order: release publishes the buffer slot write above to thieves'
    // acquire load of bottom_ in steal().
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: LIFO pop from the bottom.
  std::optional<T> pop_bottom() {
    // order: relaxed loads/stores + seq_cst fence — Lê et al. PPoPP'13
    // pop: the fence globally orders the bottom_ decrement before the
    // top_ read, which is what prevents owner and thief both taking the
    // last item; the individual accesses need no stronger order.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    sync::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      T item = buffer_[to_unsigned(b) & mask_];
      if (t == b) {
        // Last element: race the thieves for it.
        // order: seq_cst CAS arbitrates owner vs thief on the single
        // remaining item (PPoPP'13); relaxed on failure — the lost race
        // needs no synchronization, the item went to the thief.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          // order: relaxed — owner-only bottom_ restore.
          bottom_.store(b + 1, std::memory_order_relaxed);
          return std::nullopt;
        }
        // order: relaxed — owner-only bottom_ restore.
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return item;
    }
    // order: relaxed — owner-only bottom_ restore.  (was already empty)
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Any thread: FIFO steal from the top. nullopt = empty or lost a race
  /// (callers must distinguish via external remaining-work accounting).
  std::optional<T> steal() {
    // order: acquire top_, seq_cst fence, acquire bottom_ — PPoPP'13
    // steal: the fence orders this thief's top_ read against the owner's
    // pop fence, and acquire on bottom_ pairs with push_bottom's release
    // so the buffer slot read below sees the pushed item.
    std::int64_t t = top_.load(std::memory_order_acquire);
    sync::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      T item = buffer_[to_unsigned(t) & mask_];
      // order: seq_cst CAS claims the slot against the owner and rival
      // thieves; relaxed on failure — a lost race abandons the attempt.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;
      }
      return item;
    }
    return std::nullopt;
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(64) sync::atomic<std::int64_t> top_{0};
  alignas(64) sync::atomic<std::int64_t> bottom_{0};
};

}  // namespace gcg::par
