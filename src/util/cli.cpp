#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace gcg {

Cli::Cli(int argc, const char* const* argv) : Cli(argc, argv, {}) {}

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> flags) {
  if (argc > 0) program_ = argv[0];
  const auto is_flag = [&flags](const std::string& name) {
    return std::find(flags.begin(), flags.end(), name) != flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(std::move(tok));
      continue;
    }
    tok = tok.substr(2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      options_[tok.substr(0, eq)] = tok.substr(eq + 1);
    } else if (!is_flag(tok) && i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[tok] = argv[++i];
    } else {
      options_[tok] = "true";  // bare (or declared) flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  touched_[name] = true;
  return options_.count(name) > 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  touched_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return std::strtoll(s.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return std::strtod(s.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto s = get(name, "");
  if (s.empty()) return def;
  return s == "true" || s == "1" || s == "yes" || s == "on";
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : options_) {
    (void)v;
    if (!touched_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace gcg
