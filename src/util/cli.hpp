// Minimal command-line parser for the bench/example binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`.
//
// Undeclared `--name` followed by a non-`--` token is value-shaped and
// absorbs that token. Names listed in `flags` are boolean: they NEVER
// absorb the next token, so `tool --verify file.gbin` keeps `file.gbin`
// positional. Declare every bare flag a binary mixes with positionals —
// the historical parser had no way to say so and silently ate the
// positional (the bug that once forced tools/graph_pack to hand-parse
// argv).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcg {

class Cli {
 public:
  Cli(int argc, const char* const* argv);
  /// `flags` names options that are boolean switches: `--name` sets them
  /// to "true" without consuming the following token. An explicit
  /// `--name=value` still works for them.
  Cli(int argc, const char* const* argv, std::vector<std::string> flags);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Positional arguments (non `--` tokens) in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Names that were supplied but never queried — for typo detection.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace gcg
