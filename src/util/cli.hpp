// Minimal command-line parser for the bench/example binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gcg {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Positional arguments (non `--` tokens) in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

  /// Names that were supplied but never queried — for typo detection.
  std::vector<std::string> unused() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace gcg
