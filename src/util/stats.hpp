// Summary statistics used by the load-imbalance analytics: running moments,
// percentiles over stored samples, coefficient of variation, Gini index.
#pragma once

#include <cstddef>
#include <vector>

namespace gcg {

/// Streaming mean/variance/min/max (Welford). O(1) space.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  double cv() const;
  /// max/mean ratio — the paper's headline imbalance metric. 0 when empty.
  double max_over_mean() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stats over a stored sample: percentiles, Gini, plus the running summary.
class SampleStats {
 public:
  void add(double x) {
    xs_.push_back(x);
    rs_.add(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }

  const RunningStats& summary() const { return rs_; }
  std::size_t count() const { return xs_.size(); }

  /// p in [0,100]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Gini coefficient of the (non-negative) sample; 0 = perfectly balanced.
  double gini() const;

  const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  RunningStats rs_;
  void ensure_sorted() const;
};

/// Percentiles over a bounded ring of the most recent samples plus a
/// streaming summary over everything ever added. O(capacity) space and
/// O(capacity log capacity) percentile queries regardless of how many
/// samples arrive — safe to feed for the lifetime of a long-running
/// service, unlike SampleStats which stores every sample.
class WindowedStats {
 public:
  explicit WindowedStats(std::size_t capacity = 4096);

  void add(double x);

  std::size_t count() const { return rs_.count(); }  ///< total ever added
  std::size_t window_count() const { return n_; }    ///< samples in window
  std::size_t capacity() const { return ring_.size(); }
  /// All-time mean/min/max/stddev (not windowed).
  const RunningStats& summary() const { return rs_; }
  /// p in [0,100]; over the window (most recent `capacity()` samples).
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  std::vector<double> ring_;
  std::size_t n_ = 0;     // filled slots
  std::size_t head_ = 0;  // next write slot
  RunningStats rs_;
};

/// Geometric mean of a list of (positive) ratios; returns 0 for empty input.
double geomean(const std::vector<double>& xs);

}  // namespace gcg
