#include "util/stress.hpp"

namespace gcg {

namespace detail {
sync::atomic<const StressHook*> g_stress_hook{nullptr};
}  // namespace detail

void install_stress_hook(const StressHook* hook) {
  // order: release publishes the hook object's fields (fn, state) before
  // the pointer becomes visible to workers' acquire loads in stress_point.
  detail::g_stress_hook.store(hook, std::memory_order_release);
}

bool stress_hook_installed() {
  // order: relaxed — diagnostic read, no data is published through it.
  return detail::g_stress_hook.load(std::memory_order_relaxed) != nullptr;
}

}  // namespace gcg
