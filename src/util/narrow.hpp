// Checked integer narrowing/sign-conversion seam — the only place in the
// project allowed to spell an integer-target static_cast (enforced by the
// gcg_lint `raw-narrow` rule). The CSR kernels live on a 32/64-bit seam
// (vid_t is uint32_t, eid_t is uint64_t) and the service protocol moves
// u64 values through two's-complement int64 JSON; every crossing goes
// through one of these four names so each one is greppable, audited, and
// debug-checked:
//
//   gcg::narrow<To>(x)       value-preserving narrowing. GCG_DCHECK's that
//                            the value round-trips (std::in_range) in
//                            Debug; compiles to the bare cast in Release.
//                            Also accepts floating sources: truncation
//                            toward zero is the intended semantic, but the
//                            truncated value must be representable in To —
//                            the case that is undefined behaviour for a
//                            raw static_cast is the case the DCHECK fires
//                            on, so Debug builds are UBSan-clean by
//                            construction.
//   gcg::narrow_cast<To>(x)  documented-lossy cast (wrapping/truncation is
//                            the point: hashes, salts, two's-complement
//                            transport). Never checks. Every call site
//                            must carry a `// lossy:` justification
//                            comment (gcg_lint `lossy-comment` rule),
//                            exactly like `// order:` on memory_order
//                            sites.
//   gcg::to_signed(x)        same-width sign flips; checked like narrow
//   gcg::to_unsigned(x)      (to_unsigned fires on negative inputs,
//                            to_signed on values above the signed max).
//
// When neither fits, the conversion is probably a bug — that is the point.
#pragma once

#include <concepts>
#include <limits>
#include <type_traits>
#include <utility>

#include "util/expect.hpp"

namespace gcg {

/// Integer types the seam converts between. bool is excluded on purpose:
/// a bool "narrowing" is a predicate, write `x != 0`.
template <class T>
concept narrowable_int =
    std::integral<T> && !std::same_as<std::remove_cv_t<T>, bool>;

namespace detail {

/// std::in_range refuses char/wchar_t/char8_t ("not a standard integer
/// type"); map such types to the standard integer with the identical
/// range (make_signed/make_unsigned are identity on int/unsigned/...).
template <narrowable_int T>
using std_integer_t = std::conditional_t<std::is_signed_v<T>,
                                         std::make_signed_t<T>,
                                         std::make_unsigned_t<T>>;

/// True when truncating `x` toward zero yields a value representable in
/// To — i.e. exactly the condition under which static_cast<To>(x) is
/// defined behaviour. Bounds are the exclusive ±2^digits, which every
/// float type represents exactly (powers of two), so there is no
/// rounding subtlety at the edges; NaN fails both comparisons.
template <narrowable_int To, std::floating_point From>
constexpr bool float_fits(From x) {
  constexpr From bound = [] {
    From b = 1;
    for (int i = 0; i < std::numeric_limits<To>::digits; ++i) b *= 2;
    return b;
  }();
  if constexpr (std::signed_integral<To>) {
    return x >= -bound && x < bound;
  } else {
    return x > From{-1} && x < bound;
  }
}

}  // namespace detail

/// Value-preserving checked narrowing (and sign conversion): the result
/// always equals the input. Debug builds abort on a value that does not
/// fit; Release builds compile to the bare cast.
template <narrowable_int To, narrowable_int From>
constexpr To narrow(From x) {
  GCG_DCHECK(std::in_range<detail::std_integer_t<To>>(
      static_cast<detail::std_integer_t<From>>(x)));  // same width+signedness
  return static_cast<To>(x);
}

/// Floating -> integer: truncates toward zero like static_cast, but the
/// truncated value must be representable (the UB case is the checked
/// case).
template <narrowable_int To, std::floating_point From>
constexpr To narrow(From x) {
  GCG_DCHECK(detail::float_fits<To>(x));
  return static_cast<To>(x);
}

/// Documented-lossy conversion: modular wrapping / truncation is the
/// intended semantic. Unchecked in every build mode. Call sites must
/// carry a `// lossy:` justification (gcg_lint `lossy-comment`).
template <narrowable_int To, narrowable_int From>
constexpr To narrow_cast(From x) {
  return static_cast<To>(x);
}

/// Integer -> floating with documented precision loss (values beyond the
/// mantissa round to the nearest representable double/float). Same
/// `// lossy:` comment discipline as the integer form.
template <std::floating_point To, narrowable_int From>
constexpr To narrow_cast(From x) {
  return static_cast<To>(x);
}

/// Checked same-value sign flips. `to_unsigned` is the idiom for
/// known-non-negative differences (iterator distances, validated JSON
/// ints); `to_signed` for sizes handed to APIs that want a signed count.
template <narrowable_int From>
constexpr std::make_signed_t<From> to_signed(From x) {
  return narrow<std::make_signed_t<From>>(x);
}

template <narrowable_int From>
constexpr std::make_unsigned_t<From> to_unsigned(From x) {
  return narrow<std::make_unsigned_t<From>>(x);
}

}  // namespace gcg
