#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

namespace {

/// Linear interpolation between order statistics of an already-sorted,
/// non-empty sample; p in [0,100].
double percentile_of_sorted(const std::vector<double>& xs, double p) {
  GCG_EXPECT(p >= 0.0 && p <= 100.0);
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = narrow<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  return mean() != 0.0 ? stddev() / mean() : 0.0;
}

double RunningStats::max_over_mean() const {
  return mean() != 0.0 ? max() / mean() : 0.0;
}

void SampleStats::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double SampleStats::percentile(double p) const {
  GCG_EXPECT(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  return percentile_of_sorted(xs_, p);
}

double SampleStats::gini() const {
  if (xs_.size() < 2) return 0.0;
  ensure_sorted();
  // G = (2*sum(i*x_i)/(n*sum(x)) - (n+1)/n), with 1-based i over sorted x.
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    weighted += static_cast<double>(i + 1) * xs_[i];
    total += xs_[i];
  }
  if (total == 0.0) return 0.0;
  const double n = static_cast<double>(xs_.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

WindowedStats::WindowedStats(std::size_t capacity)
    : ring_(std::max<std::size_t>(1, capacity)) {}

void WindowedStats::add(double x) {
  ring_[head_] = x;
  head_ = (head_ + 1) % ring_.size();
  if (n_ < ring_.size()) ++n_;
  rs_.add(x);
}

double WindowedStats::percentile(double p) const {
  GCG_EXPECT(p >= 0.0 && p <= 100.0);
  if (n_ == 0) return 0.0;
  std::vector<double> xs(ring_.begin(),
                         ring_.begin() + to_signed(n_));
  std::sort(xs.begin(), xs.end());
  return percentile_of_sorted(xs, p);
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    GCG_EXPECT(x > 0.0);
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

}  // namespace gcg
