#include "util/numa.hpp"
#include "util/narrow.hpp"

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#if defined(GCG_HAVE_LIBNUMA)
#include <numa.h>
#endif

namespace gcg::numa {

namespace {

/// All CPU ids the process could use, as a single-node fallback set.
std::vector<int> all_cpus() {
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) hc = 1;
  std::vector<int> cpus(hc);
  for (unsigned i = 0; i < hc; ++i) cpus[i] = to_signed(i);
  return cpus;
}

Topology single_node_fallback() {
  Topology topo;
  topo.node_cpus.push_back(all_cpus());
  topo.real = false;
  return topo;
}

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; false on garbage.
bool parse_cpulist(const std::string& text, std::vector<int>& out) {
  const char* p = text.data();
  const char* end = p + text.size();
  while (p < end && (*p == '\n' || *p == ' ')) ++p;
  while (p < end) {
    int lo = 0;
    auto r = std::from_chars(p, end, lo);
    if (r.ec != std::errc{}) return false;
    p = r.ptr;
    int hi = lo;
    if (p < end && *p == '-') {
      r = std::from_chars(p + 1, end, hi);
      if (r.ec != std::errc{} || hi < lo) return false;
      p = r.ptr;
    }
    for (int c = lo; c <= hi; ++c) out.push_back(c);
    if (p < end && *p == ',') {
      ++p;
      continue;
    }
    while (p < end && (*p == '\n' || *p == ' ')) ++p;
    break;
  }
  return !out.empty();
}

/// Sysfs scan: /sys/devices/system/node/node<k>/cpulist for k = 0, 1, ...
/// Node ids are assumed dense from 0 (true on Linux for online nodes that
/// matter here); the scan stops at the first missing node directory.
bool detect_from_sysfs(Topology& topo) {
  for (int node = 0;; ++node) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in.is_open()) break;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::vector<int> cpus;
    if (!parse_cpulist(text, cpus)) return false;
    topo.node_cpus.push_back(std::move(cpus));
  }
  return !topo.node_cpus.empty();
}

#if defined(GCG_HAVE_LIBNUMA)
bool detect_from_libnuma(Topology& topo) {
  if (numa_available() < 0) return false;
  const int max_node = numa_max_node();
  struct bitmask* mask = numa_allocate_cpumask();
  if (mask == nullptr) return false;
  for (int node = 0; node <= max_node; ++node) {
    if (numa_node_to_cpus(node, mask) != 0) continue;
    std::vector<int> cpus;
    for (unsigned c = 0; c < mask->size; ++c) {
      if (numa_bitmask_isbitset(mask, c)) cpus.push_back(to_signed(c));
    }
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
  numa_free_cpumask(mask);
  return !topo.node_cpus.empty();
}
#endif

}  // namespace

Topology detect_topology() {
  if (const char* fake = std::getenv("GCG_NUMA_FAKE_NODES")) {
    int k = 0;
    const auto r = std::from_chars(fake, fake + std::string(fake).size(), k);
    if (r.ec == std::errc{} && k >= 1 && k <= 1024) {
      Topology topo;
      for (int i = 0; i < k; ++i) topo.node_cpus.push_back(all_cpus());
      topo.real = false;  // fabricated nodes share CPUs: never pin
      return topo;
    }
  }
  Topology topo;
#if defined(GCG_HAVE_LIBNUMA)
  if (detect_from_libnuma(topo)) {
    topo.real = topo.node_cpus.size() > 1;
    return topo;
  }
  topo.node_cpus.clear();
#endif
  if (detect_from_sysfs(topo)) {
    topo.real = topo.node_cpus.size() > 1;
    return topo;
  }
  return single_node_fallback();
}

std::vector<unsigned> assign_worker_nodes(unsigned workers,
                                          const Topology& topo) {
  std::vector<unsigned> nodes(workers, 0);
  const std::size_t n = topo.num_nodes();
  if (workers == 0 || n <= 1) return nodes;

  std::size_t total_cpus = 0;
  for (const auto& cpus : topo.node_cpus) total_cpus += cpus.size();
  if (total_cpus == 0) return nodes;

  // Largest-remainder apportionment of `workers` over the nodes, weighted
  // by CPU count, then contiguous worker-id blocks in node order.
  std::vector<unsigned> quota(n, 0);
  unsigned assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    quota[i] = narrow<unsigned>(
        (std::uint64_t{workers} * topo.node_cpus[i].size()) /
        total_cpus);
    assigned += quota[i];
  }
  for (std::size_t i = 0; assigned < workers; i = (i + 1) % n) {
    ++quota[i];
    ++assigned;
  }
  unsigned w = 0;
  for (std::size_t i = 0; i < n && w < workers; ++i) {
    for (unsigned k = 0; k < quota[i] && w < workers; ++k) {
      nodes[w++] = narrow<unsigned>(i);
    }
  }
  return nodes;
}

bool pin_current_thread_to_node(const Topology& topo, unsigned node) {
  if (!topo.real || node >= topo.num_nodes()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int cpu : topo.node_cpus[node]) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(to_unsigned(cpu), &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace gcg::numa
