// Minimal NUMA topology discovery for the NUMA-aware ThreadPool. Reads
// the Linux sysfs node tree (or libnuma when the build found it — see
// GCG_HAVE_LIBNUMA in src/util/CMakeLists.txt); on single-node machines,
// non-Linux hosts, or any parse failure it degrades to one node holding
// every CPU, which makes every consumer behave exactly as before this
// seam existed.
//
// Test override: GCG_NUMA_FAKE_NODES=<k> in the environment fabricates a
// k-node topology in which every node owns the full CPU set and
// `real == false`. That exercises the multi-node worker assignment and
// node-local stealing logic on machines (like CI) with one physical node,
// without ever pinning a thread to a CPU it should not run on.
#pragma once

#include <cstddef>
#include <vector>

namespace gcg::numa {

struct Topology {
  /// CPU ids per node, node-indexed; never empty (fallback = 1 node).
  std::vector<std::vector<int>> node_cpus;
  /// True only for a genuine multi-node machine topology — the only case
  /// in which pinning threads to node CPU sets is meaningful.
  bool real = false;

  std::size_t num_nodes() const { return node_cpus.size(); }
};

/// Discovers the topology: GCG_NUMA_FAKE_NODES override first, then
/// libnuma (if built in), then sysfs, then the single-node fallback.
/// Not cached — callers (pool construction, stats) are rare.
Topology detect_topology();

/// Node of each of `workers` workers under `topo`: contiguous blocks,
/// sized proportionally to each node's CPU count (largest-remainder), so
/// workers that share a node get adjacent worker ids — which keeps the
/// contiguous vertex ranges they color adjacent in memory too.
std::vector<unsigned> assign_worker_nodes(unsigned workers,
                                          const Topology& topo);

/// Restricts the calling thread to `node`'s CPUs. Returns false (and
/// does nothing) unless `topo.real` and the syscall succeeds.
bool pin_current_thread_to_node(const Topology& topo, unsigned node);

}  // namespace gcg::numa
