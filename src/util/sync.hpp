// The sync:: seam: the one spelling of the synchronization vocabulary the
// concurrent core (src/par/, src/svc/, src/shard/, util/stress.*) is
// allowed to use. In product builds sync::atomic IS std::atomic — see the
// static_asserts in tests/par/test_sync_seam.cpp — so the seam costs
// nothing. When a TU is compiled with GCG_MC_MODEL defined (the tests/mc/
// models), the same names resolve to the mc:: modeled primitives instead,
// so the exact production templates (WorkStealingDeque,
// BasicFrontierAppender, BasicJobQueue, ...) run under the model checker
// with no forked copies. tools/lint/gcg_lint.py (rule `sync-seam`) bans
// direct std::atomic use in the migrated directories to keep the seam
// airtight.
//
// The aliases live in mode-specific *inline namespaces* so that any
// function compiled against the seam mangles differently in the two
// modes: a test binary that links both std-mode objects (gcg_util) and
// GCG_MC_MODEL objects can never fuse two definitions across modes (ODR).
// The annotated Mutex/CondVar/LockGuard wrappers below live inside the
// same inline namespaces for the same reason (their member types differ
// by mode).
//
// Deliberately NOT aliased: std::atomic_ref (used by the par backend on
// plain color/bitmap arrays; the checker models owned mc::atomic objects,
// not views into foreign memory), std::atomic_signal_fence, and
// std::memory_order itself — order arguments keep their std:: spelling in
// both modes.
//
// --- Thread safety analysis ------------------------------------------------
//
// The GCG_* macros below expose Clang's Thread Safety Analysis
// attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and
// expand to nothing on other compilers. Together with the capability-
// annotated wrappers (sync::Mutex / sync::CondVar / sync::LockGuard)
// they turn the locking protocol of the concurrent core into a
// compile-time contract: every mutex-guarded field carries
// GCG_GUARDED_BY, every must-hold-the-lock function carries
// GCG_REQUIRES, and a clang build with -Wthread-safety
// -Wthread-safety-beta (promoted to errors in CMakeLists.txt and the CI
// `thread-safety` job) refuses to compile an unlocked access, a
// wrong-mutex guard, or a leaked lock. tests/tsa/ negative-compiles ~10
// seeded violations so the analysis itself is regression-tested, and the
// `raw-mutex` lint rule keeps std::mutex/std::lock_guard (and the
// unannotated lowercase aliases) out of the annotated directories.
#pragma once

#include <chrono>              // CondVar::wait_until/wait_for deadlines
#include <condition_variable>  // std::cv_status in CondVar's timed waits
#include <mutex>               // std::unique_lock shim inside CondVar::wait

#if defined(GCG_MC_MODEL)
#include "mc/model.hpp"
#else
#include <atomic>
#endif

// Clang Thread Safety Analysis attributes; no-ops on GCC/MSVC. Kept
// active under GCG_MC_MODEL too — the protocol is the same in both
// modes, and a clang-compiled model-check TU gets the same static pass.
#if defined(__clang__)
#define GCG_TSA_ATTR(x) __attribute__((x))
#else
#define GCG_TSA_ATTR(x)  // no-op outside clang
#endif

#define GCG_CAPABILITY(x) GCG_TSA_ATTR(capability(x))
#define GCG_SCOPED_CAPABILITY GCG_TSA_ATTR(scoped_lockable)
#define GCG_GUARDED_BY(x) GCG_TSA_ATTR(guarded_by(x))
#define GCG_PT_GUARDED_BY(x) GCG_TSA_ATTR(pt_guarded_by(x))
#define GCG_ACQUIRED_BEFORE(...) GCG_TSA_ATTR(acquired_before(__VA_ARGS__))
#define GCG_ACQUIRED_AFTER(...) GCG_TSA_ATTR(acquired_after(__VA_ARGS__))
#define GCG_REQUIRES(...) GCG_TSA_ATTR(requires_capability(__VA_ARGS__))
#define GCG_ACQUIRE(...) GCG_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define GCG_RELEASE(...) GCG_TSA_ATTR(release_capability(__VA_ARGS__))
#define GCG_TRY_ACQUIRE(...) GCG_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define GCG_EXCLUDES(...) GCG_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define GCG_ASSERT_CAPABILITY(x) GCG_TSA_ATTR(assert_capability(x))
#define GCG_RETURN_CAPABILITY(x) GCG_TSA_ATTR(lock_returned(x))
#define GCG_NO_THREAD_SAFETY_ANALYSIS GCG_TSA_ATTR(no_thread_safety_analysis)

namespace gcg::sync {

#if defined(GCG_MC_MODEL)

inline namespace modelled {

template <class T>
using atomic = ::gcg::mc::atomic<T>;
using atomic_flag = ::gcg::mc::atomic_flag;
using mutex = ::gcg::mc::mutex;
using condition_variable = ::gcg::mc::condition_variable;

inline void atomic_thread_fence(std::memory_order mo) {
  ::gcg::mc::atomic_thread_fence(mo);
}

}  // namespace modelled

#else

inline namespace native {

template <class T>
using atomic = ::std::atomic<T>;
using atomic_flag = ::std::atomic_flag;
using mutex = ::std::mutex;
using condition_variable = ::std::condition_variable;

inline void atomic_thread_fence(std::memory_order mo) {
  ::std::atomic_thread_fence(mo);
}

}  // namespace native

#endif

// Reopen the mode's inline namespace for the annotated wrappers: they
// hold a mode-specific `mutex`/`condition_variable` member, so their
// definitions must mangle per-mode exactly like the aliases above.
#if defined(GCG_MC_MODEL)
inline namespace modelled {
#else
inline namespace native {
#endif

/// Capability-annotated mutex: the lockable thing GCG_GUARDED_BY /
/// GCG_REQUIRES / GCG_EXCLUDES name. Prefer sync::LockGuard over calling
/// lock()/unlock() directly; the raw calls exist for the rare manual
/// protocol (and so the negative-compile suite can seed leaked-lock
/// violations).
class GCG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GCG_ACQUIRE() { mu_.lock(); }
  void unlock() GCG_RELEASE() { mu_.unlock(); }
  bool try_lock() GCG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // waits on the underlying primitive
  sync::mutex mu_;
};

/// RAII scoped acquisition of a sync::Mutex (the std::lock_guard of the
/// seam). SCOPED_CAPABILITY: the analysis credits the capability to the
/// enclosing scope for the guard's lifetime.
class GCG_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) GCG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() GCG_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over sync::Mutex. Every wait takes the Mutex the
/// caller already holds (GCG_REQUIRES), re-holds it on return, and — by
/// design — has NO predicate overloads: spell the condition as an
/// explicit `while (!cond) cv.wait(mu);` loop so the analysis sees the
/// guarded reads under the held capability (a predicate lambda would be
/// analyzed as a separate unannotated function).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  void wait(Mutex& mu) GCG_REQUIRES(mu) {
    // Adopt the caller's hold into a unique_lock for the wait protocol,
    // then release() so ownership stays with the caller's LockGuard.
    // (If the wait itself threw, the lock would be released twice; the
    // standard wait only throws on system_error conditions this code
    // treats as fatal anyway.)
    std::unique_lock<sync::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

#if !defined(GCG_MC_MODEL)
  /// wait() with a deadline; false once `tp` has passed (a timeout).
  /// Native-mode only: the model checker has no clock, so timed waits do
  /// not exist under GCG_MC_MODEL (model-checked code must not use them).
  template <class Clock, class Duration>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& tp)
      GCG_REQUIRES(mu) {
    std::unique_lock<sync::mutex> lk(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_until(lk, tp);
    lk.release();
    return status == std::cv_status::no_timeout;
  }

  /// wait() with a timeout; false once `dur` elapsed. Native-mode only.
  template <class Rep, class Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      GCG_REQUIRES(mu) {
    std::unique_lock<sync::mutex> lk(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(lk, dur);
    lk.release();
    return status == std::cv_status::no_timeout;
  }
#endif  // !GCG_MC_MODEL

 private:
  sync::condition_variable cv_;
};

}  // inline namespace (modelled/native)

}  // namespace gcg::sync
