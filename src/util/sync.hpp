// The sync:: seam: the one spelling of the synchronization vocabulary the
// concurrent core (src/par/, src/svc/, util/stress.*) is allowed to use.
// In product builds sync::atomic IS std::atomic — see the static_asserts
// in tests/par/test_sync_seam.cpp — so the seam costs nothing. When a TU
// is compiled with GCG_MC_MODEL defined (the tests/mc/ models), the same
// names resolve to the mc:: modeled primitives instead, so the exact
// production templates (WorkStealingDeque, BasicFrontierAppender,
// BasicJobQueue, ...) run under the model checker with no forked copies.
// tools/lint/gcg_lint.py (rule `sync-seam`) bans direct std::atomic use
// in the migrated directories to keep the seam airtight.
//
// The aliases live in mode-specific *inline namespaces* so that any
// function compiled against the seam mangles differently in the two
// modes: a test binary that links both std-mode objects (gcg_util) and
// GCG_MC_MODEL objects can never fuse two definitions across modes (ODR).
//
// Deliberately NOT aliased: std::atomic_ref (used by the par backend on
// plain color/bitmap arrays; the checker models owned mc::atomic objects,
// not views into foreign memory), std::atomic_signal_fence, and
// std::memory_order itself — order arguments keep their std:: spelling in
// both modes.
#pragma once

#if defined(GCG_MC_MODEL)
#include "mc/model.hpp"
#else
#include <atomic>
#include <condition_variable>
#include <mutex>
#endif

namespace gcg::sync {

#if defined(GCG_MC_MODEL)

inline namespace modelled {

template <class T>
using atomic = ::gcg::mc::atomic<T>;
using atomic_flag = ::gcg::mc::atomic_flag;
using mutex = ::gcg::mc::mutex;
using condition_variable = ::gcg::mc::condition_variable;

inline void atomic_thread_fence(std::memory_order mo) {
  ::gcg::mc::atomic_thread_fence(mo);
}

}  // namespace modelled

#else

inline namespace native {

template <class T>
using atomic = ::std::atomic<T>;
using atomic_flag = ::std::atomic_flag;
using mutex = ::std::mutex;
using condition_variable = ::std::condition_variable;

inline void atomic_thread_fence(std::memory_order mo) {
  ::std::atomic_thread_fence(mo);
}

}  // namespace native

#endif

}  // namespace gcg::sync
