// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Checks stay on in Release builds: the cost is
// negligible next to simulation work and the failure messages have repeatedly
// paid for themselves when debugging kernels.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gcg {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "gcgpu: %s violated: %s at %s:%d\n", kind, cond, file, line);
  std::abort();
}

}  // namespace gcg

#define GCG_EXPECT(cond)                                                    \
  do {                                                                      \
    if (!(cond)) ::gcg::contract_failure("precondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define GCG_ENSURE(cond)                                                    \
  do {                                                                      \
    if (!(cond)) ::gcg::contract_failure("postcondition", #cond, __FILE__, __LINE__); \
  } while (0)

#define GCG_ASSERT(cond)                                                    \
  do {                                                                      \
    if (!(cond)) ::gcg::contract_failure("invariant", #cond, __FILE__, __LINE__); \
  } while (0)

// Debug-only check: compiled out entirely under NDEBUG (Release), so it
// may guard O(n) or hot-loop conditions too expensive to keep on in
// production. The condition is NOT evaluated in Release — never put side
// effects in a GCG_DCHECK.
#ifndef NDEBUG
#define GCG_DCHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) ::gcg::contract_failure("debug check", #cond, __FILE__, __LINE__); \
  } while (0)
#else
#define GCG_DCHECK(cond) \
  do {                   \
  } while (0)
#endif
