// Leveled stderr logger. Quiet by default in benches; tests raise the level
// when diagnosing failures. Not thread-safe by design: the simulator is
// single-threaded (it *models* parallelism rather than using it).
#pragma once

#include <sstream>
#include <string>

namespace gcg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace gcg

#define GCG_LOG(level)                                       \
  if (::gcg::LogLevel::level < ::gcg::log_level()) {         \
  } else                                                     \
    ::gcg::detail::LogLine(::gcg::LogLevel::level)

#define GCG_DEBUG GCG_LOG(kDebug)
#define GCG_INFO GCG_LOG(kInfo)
#define GCG_WARN GCG_LOG(kWarn)
#define GCG_ERROR GCG_LOG(kError)
