// Histograms for degree distributions and work distributions, with an ASCII
// renderer for bench output. Two binnings: linear and power-of-two (the
// natural view for power-law degree distributions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gcg {

class Histogram {
 public:
  /// Linear bins: [lo, hi) divided into `bins` equal cells, plus overflow.
  static Histogram linear(double lo, double hi, std::size_t bins);
  /// Power-of-two bins: [0,1), [1,2), [2,4), [4,8), ... up to `max_log2`.
  static Histogram log2(unsigned max_log2);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const { return total_; }
  /// Human-readable label for a bin, e.g. "[4,8)".
  std::string bin_label(std::size_t bin) const;

  /// Multi-line ASCII bar chart (one row per non-empty bin).
  std::string render(std::size_t width = 50) const;

 private:
  Histogram() = default;
  bool logarithmic_ = false;
  double lo_ = 0.0;
  double hi_ = 0.0;
  double cell_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::size_t index_of(double x) const;
};

}  // namespace gcg
