#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/expect.hpp"

namespace gcg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GCG_EXPECT(!headers_.empty());
}

Table& Table::precision(int digits) {
  GCG_EXPECT(digits >= 0 && digits <= 17);
  precision_ = digits;
  return *this;
}

Table& Table::title(std::string t) {
  title_ = std::move(t);
  return *this;
}

void Table::add_row(std::vector<Cell> cells) {
  GCG_EXPECT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::format(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* i = std::get_if<std::int64_t>(&c)) {
    os << *i;
  } else {
    os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  }
  return os.str();
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      line.push_back(format(row[c]));
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& line) {
    os << '|';
    for (std::size_t c = 0; c < line.size(); ++c) {
      os << ' ' << line[c] << std::string(widths[c] - line[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  emit(headers_);
  rule();
  for (const auto& line : cells) emit(line);
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](std::string s) {
    if (s.find(',') == std::string::npos && s.find('"') == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << escape(format(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  os << to_ascii();
  os << "--- csv ---\n" << to_csv() << "--- end csv ---\n";
}

}  // namespace gcg
