#include "util/simd.hpp"

#include <cstdlib>

#include "util/sync.hpp"

// The only translation unit allowed to include <immintrin.h> (lint rule
// `raw-simd`). AVX2 bodies carry a per-function target attribute instead
// of a global -mavx2 flag, so the rest of the binary stays baseline
// x86-64 and the scalar fallback genuinely runs on pre-AVX2 hardware.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GCG_SIMD_X86 1
#include <immintrin.h>
#else
#define GCG_SIMD_X86 0
#endif

namespace gcg::simd {

namespace {

constexpr int kUnset = -1;

/// Cached dispatch level; kUnset until the first active_level() call.
/// Tests may overwrite it concurrently with idle pool threads reading it,
/// so it is atomic; there is no ordering requirement beyond the value.
sync::atomic<int>& level_cache() {
  static sync::atomic<int> cache{kUnset};
  return cache;
}

std::size_t first_not_full_word_scalar(const std::uint64_t* words,
                                       std::size_t nwords) {
  for (std::size_t k = 0; k < nwords; ++k) {
    if (words[k] != ~std::uint64_t{0}) return k;
  }
  return nwords;
}

#if GCG_SIMD_X86

__attribute__((target("avx2"))) std::size_t first_not_full_word_avx2(
    const std::uint64_t* words, std::size_t nwords) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t k = 0;
  for (; k + 4 <= nwords; k += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + k));
    // Lane = all-ones where the word is saturated; any 0 lane in the
    // movemask marks the first word with a free color bit.
    const int full = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, ones)));
    if (full != 0xF) {
      for (std::size_t j = 0; j < 4; ++j) {
        if (words[k + j] != ~std::uint64_t{0}) return k + j;
      }
    }
  }
  for (; k < nwords; ++k) {
    if (words[k] != ~std::uint64_t{0}) return k;
  }
  return nwords;
}

__attribute__((target("avx2"))) void clear_words_avx2(std::uint64_t* words,
                                                      std::size_t nwords) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t k = 0;
  for (; k + 4 <= nwords; k += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + k), zero);
  }
  for (; k < nwords; ++k) words[k] = 0;
}

__attribute__((target("avx2"))) void or_words_avx2(std::uint64_t* dst,
                                                   const std::uint64_t* src,
                                                   std::size_t nwords) {
  std::size_t k = 0;
  for (; k + 4 <= nwords; k += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + k));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + k));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k),
                        _mm256_or_si256(a, b));
  }
  for (; k < nwords; ++k) dst[k] |= src[k];
}

#endif  // GCG_SIMD_X86

}  // namespace

Level detect_level() {
  const char* force = std::getenv("GCG_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Level::kScalar;
  }
#if GCG_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

Level active_level() {
  // order: relaxed — the cached int is a pure value (no data published
  // through it); every path it selects computes identical results.
  int lvl = level_cache().load(std::memory_order_relaxed);
  if (lvl == kUnset) {
    lvl = static_cast<int>(detect_level());  // lint: allow(raw-narrow) enum -> underlying int
    // order: relaxed — racing first calls all store the same value.
    level_cache().store(lvl, std::memory_order_relaxed);
  }
  return static_cast<Level>(lvl);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

void force_level_for_testing(Level level) {
  const Level cap = detect_level();
  // lint: allow-next-line(raw-narrow) enum -> underlying int ordering compare
  if (static_cast<int>(level) > static_cast<int>(cap)) level = cap;
  // order: relaxed — see active_level(); the level is a pure value.
  // lint: allow-next-line(raw-narrow) enum -> underlying int
  level_cache().store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_level_override_for_testing() {
  // order: relaxed — see active_level().
  level_cache().store(kUnset, std::memory_order_relaxed);
}

std::size_t first_not_full_word(const std::uint64_t* words,
                                std::size_t nwords) {
#if GCG_SIMD_X86
  if (active_level() == Level::kAvx2 && nwords >= 4) {
    return first_not_full_word_avx2(words, nwords);
  }
#endif
  return first_not_full_word_scalar(words, nwords);
}

void clear_words(std::uint64_t* words, std::size_t nwords) {
#if GCG_SIMD_X86
  if (active_level() == Level::kAvx2 && nwords >= 4) {
    clear_words_avx2(words, nwords);
    return;
  }
#endif
  for (std::size_t k = 0; k < nwords; ++k) words[k] = 0;
}

void or_words(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t nwords) {
#if GCG_SIMD_X86
  if (active_level() == Level::kAvx2 && nwords >= 4) {
    or_words_avx2(dst, src, nwords);
    return;
  }
#endif
  for (std::size_t k = 0; k < nwords; ++k) dst[k] |= src[k];
}

}  // namespace gcg::simd
