// Global stress-hook point for schedule perturbation. The concurrent
// backends (par::ThreadPool, par::StealPool) call gcg::stress_point() at
// every chunk boundary; in production the hook is null and the call is a
// single relaxed-ish atomic load plus an untaken branch. Test harnesses
// (check::StressSchedule) install a hook that injects deterministic,
// seeded yields/delays so sanitizers and parity tests explore far more
// interleavings than the OS scheduler would produce on its own.
//
// Install/uninstall MUST happen while the pools are quiescent (no
// parallel region in flight): workers dereference the hook object without
// taking a reference count, so tearing down a hook under running workers
// is a use-after-free. This is a test-only facility; the RAII wrapper in
// check/stress.hpp enforces the pairing.
#pragma once

#include "util/sync.hpp"

namespace gcg {

/// A perturbation callback plus the state it needs. The installer retains
/// ownership of both; the object must outlive the installation.
struct StressHook {
  void (*fn)(void* state, unsigned worker);
  void* state;
};

namespace detail {
extern sync::atomic<const StressHook*> g_stress_hook;
}  // namespace detail

/// Install `hook` (callers keep ownership; pass nullptr to uninstall).
/// Only legal while no parallel region is running.
void install_stress_hook(const StressHook* hook);

/// True if a hook is currently installed (diagnostics/tests).
bool stress_hook_installed();

/// Called by the pools at chunk boundaries. Near-free when no hook is
/// installed.
inline void stress_point(unsigned worker) {
  // order: acquire pairs with the release store in install_stress_hook so
  // a worker that observes the pointer also observes the pointee's fields.
  const StressHook* h = detail::g_stress_hook.load(std::memory_order_acquire);
  if (h != nullptr) h->fn(h->state, worker);
}

}  // namespace gcg
