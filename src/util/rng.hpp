// Deterministic random number generation.
//
// Three generators, each with a distinct job:
//  * SplitMix64  — seeding and one-shot hashing of integers.
//  * Xoshiro256ss — fast sequential stream for generators and shuffles.
//  * CounterHash  — stateless counter-based generator (Philox-flavoured
//    mixing) used for per-vertex priorities: priority(seed, v) must be
//    computable independently on every simulated GPU lane, exactly as the
//    paper's kernels compute a hash of the vertex id.
//
// All are reproducible across platforms; none use std::random_device.
#pragma once

#include <cstdint>
#include <limits>

namespace gcg {

/// SplitMix64 (Steele, Lea, Flood). Good avalanche; used for seeding.
struct SplitMix64 {
  std::uint64_t state = 0;

  constexpr explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// One-shot SplitMix64 finalizer: hash a 64-bit value.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman, Vigna). UniformRandomBitGenerator-compatible.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // 128-bit multiply-shift; rejection keeps the distribution exact.
    while (true) {
      std::uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      // lint: allow-next-line(raw-narrow) low 64 bits of the 128-bit product
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        // lint: allow-next-line(raw-narrow) high word after shift; always fits
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Stateless counter-based generator: value = f(seed, counter).
/// This is what GPU kernels use for per-vertex random priorities — every
/// lane computes its own value with no shared state. Two rounds of
/// SplitMix-style mixing over (seed, counter) gives full 64-bit avalanche.
struct CounterHash {
  std::uint64_t seed;

  constexpr explicit CounterHash(std::uint64_t s) : seed(s) {}

  constexpr std::uint64_t operator()(std::uint64_t counter) const {
    return mix64(mix64(seed ^ 0x632be59bd9b4e019ULL) + counter * 0x9e3779b97f4a7c15ULL);
  }

  /// 32-bit priority as used by the coloring kernels (matches the OpenCL
  /// kernels' uint priorities; ties are broken by vertex id at the call site).
  constexpr std::uint32_t u32(std::uint64_t counter) const {
    // lint: allow-next-line(raw-narrow) high 32 bits after shift; always fits
    return static_cast<std::uint32_t>(operator()(counter) >> 32);
  }
};

}  // namespace gcg
