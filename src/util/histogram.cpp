#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  GCG_EXPECT(hi > lo);
  GCG_EXPECT(bins > 0);
  Histogram h;
  h.logarithmic_ = false;
  h.lo_ = lo;
  h.hi_ = hi;
  h.cell_ = (hi - lo) / static_cast<double>(bins);
  h.counts_.assign(bins + 1, 0);  // last bin = overflow
  return h;
}

Histogram Histogram::log2(unsigned max_log2) {
  Histogram h;
  h.logarithmic_ = true;
  h.counts_.assign(std::size_t{max_log2} + 2, 0);  // +overflow
  return h;
}

std::size_t Histogram::index_of(double x) const {
  if (logarithmic_) {
    if (x < 1.0) return 0;
    // Clamp in the float domain: casting an out-of-range double (inf,
    // or beyond the last bin) would be UB before min() ever ran.
    const double lg = std::floor(std::log2(x));
    if (!(lg < static_cast<double>(counts_.size()))) return counts_.size() - 1;
    return std::min(narrow<std::size_t>(lg) + 1, counts_.size() - 1);
  }
  if (x < lo_) return 0;
  // Same float-domain clamp; NaN fails the comparison and lands in the
  // overflow bin.
  const double cells = (x - lo_) / cell_;
  if (!(cells < static_cast<double>(counts_.size()))) return counts_.size() - 1;
  return narrow<std::size_t>(cells);
}

void Histogram::add(double x, std::uint64_t weight) {
  counts_[index_of(x)] += weight;
  total_ += weight;
}

std::string Histogram::bin_label(std::size_t bin) const {
  std::ostringstream os;
  if (logarithmic_) {
    if (bin == 0) {
      os << "[0,1)";
    } else if (bin == counts_.size() - 1) {
      os << "[" << (1ULL << (bin - 1)) << ",inf)";
    } else {
      os << "[" << (1ULL << (bin - 1)) << "," << (1ULL << bin) << ")";
    }
  } else {
    const double lo = lo_ + cell_ * static_cast<double>(bin);
    if (bin == counts_.size() - 1) {
      os << "[" << hi_ << ",inf)";
    } else {
      os << "[" << lo << "," << lo + cell_ << ")";
    }
  }
  return os.str();
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const auto bar =
        peak ? narrow<std::size_t>(static_cast<double>(counts_[b]) /
                                   static_cast<double>(peak) *
                                   static_cast<double>(width))
             : 0;
    os << "  " << bin_label(b);
    for (std::size_t pad = bin_label(b).size(); pad < 16; ++pad) os << ' ';
    os << std::string(std::max<std::size_t>(bar, 1), '#') << ' ' << counts_[b]
       << '\n';
  }
  return os.str();
}

}  // namespace gcg
