#include "util/log.hpp"

#include <cstdio>

namespace gcg {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_message(LogLevel level, const std::string& msg) {
  // lint: allow-next-line(raw-narrow) enum -> underlying int compare
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace gcg
