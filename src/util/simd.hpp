// Runtime-dispatched SIMD kernels for the 64-bit forbidden-color bitsets
// used by the first-fit scans in src/par/. This is the one sanctioned home
// for CPU-specific vector code: tools/lint/gcg_lint.py (rule `raw-simd`)
// bans <immintrin.h> and raw intrinsics everywhere else, so every caller
// goes through this seam and automatically gets the scalar fallback on
// hardware (or builds) without AVX2.
//
// Dispatch is resolved once per process from cpuid, with two overrides:
//  * GCG_FORCE_SCALAR=1 in the environment pins the scalar path (useful
//    for benchmarking the vector win and for debugging);
//  * force_level_for_testing() pins a level in-process so tests can run
//    both paths on identical inputs and assert bit-identical results.
//
// The kernels operate on plain uint64_t words and are purely word-level
// (clear, OR, first-not-full-word search). They deliberately do NOT touch
// per-vertex color loads: neighbour colors are read through relaxed
// std::atomic_ref (benign-race contract of the speculative kernel), and a
// vector gather would turn those into non-atomic racy loads.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gcg::simd {

/// Instruction-set level a kernel call may use. Levels are totally
/// ordered; kAvx2 implies everything kScalar can do.
enum class Level : int {
  kScalar = 0,  ///< portable C++ (always available)
  kAvx2 = 1,    ///< 256-bit integer SIMD (x86-64, runtime-detected)
};

/// Best level supported by this process: cpuid capped by the
/// GCG_FORCE_SCALAR environment override. Computed once and cached.
Level active_level();

/// Re-detects from cpuid + environment, ignoring the cache and any test
/// override. Exposed so tests can assert detection logic directly.
Level detect_level();

/// Human-readable name ("scalar", "avx2") for stats and bench output.
const char* level_name(Level level);

/// Pins active_level() to `level` (capped at detect_level() — forcing a
/// level the CPU lacks silently degrades to the best supported one, so a
/// test matrix over all levels is portable). Test-only.
void force_level_for_testing(Level level);

/// Removes the force_level_for_testing() override.
void clear_level_override_for_testing();

/// Index of the first word in words[0..nwords) that is != ~0 (i.e. that
/// still has a zero bit), or nwords if every word is saturated.
std::size_t first_not_full_word(const std::uint64_t* words,
                                std::size_t nwords);

/// words[0..nwords) = 0.
void clear_words(std::uint64_t* words, std::size_t nwords);

/// dst[i] |= src[i] for i in [0, nwords).
void or_words(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t nwords);

}  // namespace gcg::simd
