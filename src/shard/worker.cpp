#include "shard/worker.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "coloring/priorities.hpp"
#include "graph/subgraph.hpp"
#include "par/repair.hpp"
#include "par/runner.hpp"

namespace gcg::shard {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Worker::Worker() : Worker(Options()) {}

Worker::Worker(Options opts) : opts_(opts), registry_(opts.registry) {}

std::string Worker::state_key(const std::string& graph_spec, vid_t begin,
                              vid_t end) const {
  return svc::GraphRegistry::canonical_key(graph_spec) + "#" +
         std::to_string(begin) + "-" + std::to_string(end);
}

svc::ShardColorReply Worker::shard_color(const svc::ShardColorRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();
  svc::ShardColorReply reply;

  bool cache_hit = false;
  std::shared_ptr<const Csr> graph = registry_.acquire(req.graph, &cache_hit);
  reply.cache_hit = cache_hit;
  reply.mapped = graph->is_view();
  if (req.end > graph->num_vertices() || req.begin > req.end) {
    throw std::runtime_error("shard_color: range [" +
                             std::to_string(req.begin) + ", " +
                             std::to_string(req.end) + ") outside graph");
  }

  // Ghost-blind interior coloring: the induced range subgraph excludes
  // out-of-range neighbors entirely, so phase 1 cannot depend on colors
  // it has no way of knowing yet.
  const RangeSubgraph sub = extract_subgraph(*graph, req.begin, req.end);
  reply.num_boundary = sub.num_boundary;
  reply.cut_arcs = sub.cut_arcs;

  par::ParOptions popts;
  popts.threads = req.threads != 0 ? req.threads : opts_.threads;
  popts.priority = priority_mode_from_name(req.priority);
  popts.seed = shard_seed(req.seed, req.begin);
  const par::ParAlgorithm algo = par::par_algorithm_from_name(req.algorithm);
  par::ParRun run = par::run_par_coloring(sub.graph, algo, popts);
  reply.num_colors = run.num_colors;

  auto state = std::make_shared<ShardState>();
  state->graph = graph;
  state->colors.assign(graph->num_vertices(), kUncolored);
  for (vid_t i = 0; i < sub.graph.num_vertices(); ++i) {
    state->colors[req.begin + i] = run.colors[i];
  }
  {
    sync::LockGuard lock(mu_);
    states_[state_key(req.graph, req.begin, req.end)] = std::move(state);
  }

  reply.colors = std::move(run.colors);
  reply.run_ms = ms_since(t0);
  return reply;
}

svc::ShardRepairReply Worker::shard_repair(const svc::ShardRepairRequest& req) {
  const auto t0 = std::chrono::steady_clock::now();

  std::shared_ptr<ShardState> state;
  {
    sync::LockGuard lock(mu_);
    const auto it = states_.find(state_key(req.graph, req.begin, req.end));
    if (it != states_.end()) state = it->second;
  }
  if (!state) {
    throw std::runtime_error(
        "shard_repair: no state for this (graph, range) — shard_color it "
        "first");
  }
  const Csr& g = *state->graph;

  for (vid_t v : req.losers) {
    if (v < req.begin || v >= req.end) {
      throw std::runtime_error("shard_repair: loser " + std::to_string(v) +
                               " outside [begin, end)");
    }
  }
  for (std::size_t i = 0; i < req.ghost_ids.size(); ++i) {
    const vid_t gv = req.ghost_ids[i];
    if (gv >= g.num_vertices()) {
      throw std::runtime_error("shard_repair: ghost id out of range");
    }
    state->colors[gv] = req.ghost_colors[i];
  }

  par::RepairOptions ropts;
  ropts.seed = shard_seed(req.seed, req.begin);
  ropts.max_rounds = opts_.repair_max_rounds;
  const par::RepairRun run =
      par::repair_subset(g, state->colors, req.losers, ropts);

  svc::ShardRepairReply reply;
  reply.ids = req.losers;
  reply.colors.reserve(req.losers.size());
  for (vid_t v : req.losers) reply.colors.push_back(state->colors[v]);
  reply.rounds = run.rounds;
  reply.recolored = run.recolored;
  reply.run_ms = ms_since(t0);
  return reply;
}

svc::Json Worker::handle(const svc::Json& req) {
  using svc::Json;
  if (!req.is_object()) {
    return svc::error_reply(svc::kErrProtocol, "request must be a JSON object");
  }
  if (auto unsupported = svc::check_protocol_version(req)) return *unsupported;
  const Json* op = req.find("op");
  if (!op || !op->is_string()) {
    return svc::error_reply(svc::kErrProtocol, "missing \"op\" string");
  }
  const std::string& verb = op->as_string();

  try {
    if (verb == "ping") {
      Json out{svc::JsonObject{}};
      out["ok"] = Json(true);
      out["pong"] = Json(true);
      out["worker"] = Json(true);
      return out;
    }
    if (verb == "shard_color") {
      return shard_color_reply_to_json(
          shard_color(svc::shard_color_request_from_json(req)));
    }
    if (verb == "shard_repair") {
      return shard_repair_reply_to_json(
          shard_repair(svc::shard_repair_request_from_json(req)));
    }
  } catch (const std::exception& e) {
    return svc::error_reply(svc::kErrBadRequest, e.what());
  }
  return svc::error_reply(svc::kErrUnknownOp, "unknown op \"" + verb + "\"");
}

WorkerServer::WorkerServer(std::string socket_path, Worker::Options opts)
    : worker_(std::make_unique<Worker>(opts)),
      server_(
          [&socket_path] {
            svc::ServerOptions so;
            so.socket_path = std::move(socket_path);
            return so;
          }(),
          [w = worker_.get()](const svc::Json& req) { return w->handle(req); }) {
}

}  // namespace gcg::shard
