// Adapter that plugs the shard Coordinator into the service scheduler's
// ShardBackendIf seam. The dependency points this way on purpose: svc
// cannot link shard (shard speaks svc's wire protocol), so color_server
// and tests construct this backend and hand it to SchedulerOptions.
#pragma once

#include <memory>
#include <string>

#include "svc/scheduler.hpp"

namespace gcg::shard {

struct BackendOptions {
  unsigned workers = 2;          ///< fleet size (spawned on first shard job)
  unsigned worker_threads = 0;   ///< 0 = hardware share per worker
  unsigned default_shards = 4;   ///< when the job spec says shards=0
  unsigned max_rounds = 16;      ///< default conflict-round cap
  std::string worker_exec;       ///< "" = shard_worker next to this binary
  std::string socket_dir;        ///< "" = /tmp
  bool in_process = false;       ///< thread fleet instead of processes
};

/// Creates the scheduler-injectable backend. The worker fleet is spawned
/// lazily on the first backend=shard job and lives until the backend is
/// destroyed; concurrent jobs serialize on the fleet (one sharded run
/// owns all workers).
std::shared_ptr<svc::ShardBackendIf> make_shard_backend(
    BackendOptions opts = BackendOptions());

}  // namespace gcg::shard
