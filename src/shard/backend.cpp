#include "shard/backend.hpp"

#include "shard/coordinator.hpp"
#include "util/sync.hpp"

namespace gcg::shard {

namespace {

class ShardBackend final : public svc::ShardBackendIf {
 public:
  explicit ShardBackend(BackendOptions opts) : opts_(std::move(opts)) {}

  std::vector<color_t> run(const svc::JobSpec& spec, const Csr& g,
                           svc::JobResult& result) override {
    sync::LockGuard lock(mu_);
    if (!coordinator_) {
      CoordinatorOptions copts;
      copts.workers = opts_.workers;
      copts.worker_threads = opts_.worker_threads;
      copts.worker_exec = opts_.worker_exec;
      copts.socket_dir = opts_.socket_dir;
      copts.in_process = opts_.in_process;
      copts.max_rounds = opts_.max_rounds;
      coordinator_ = std::make_unique<Coordinator>(copts);
    }

    ShardJob job;
    job.graph = spec.graph;
    job.shards = spec.shards != 0 ? spec.shards : opts_.default_shards;
    job.max_rounds = spec.shard_rounds;  // 0 = coordinator default
    job.seed = spec.seed;
    job.algorithm = spec.algorithm;
    job.priority = spec.priority;

    ShardRunStats stats;
    std::vector<color_t> colors = coordinator_->color(g, job, &stats);

    result.shards = stats.shards;
    result.conflict_rounds = stats.conflict_rounds;
    result.recolored = stats.recolored + stats.fallback_recolored;
    result.boundary_fraction = stats.boundary_fraction;
    result.num_colors = stats.num_colors;
    result.iterations = stats.conflict_rounds;
    result.run_ms = stats.wall_ms;
    result.threads = stats.workers;
    return colors;
  }

 private:
  BackendOptions opts_;
  sync::Mutex mu_;  // one sharded run owns the whole fleet at a time
  std::unique_ptr<Coordinator> coordinator_ GCG_GUARDED_BY(mu_);
};

}  // namespace

std::shared_ptr<svc::ShardBackendIf> make_shard_backend(BackendOptions opts) {
  return std::make_shared<ShardBackend>(std::move(opts));
}

}  // namespace gcg::shard
