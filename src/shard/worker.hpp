// The shard worker: serves shard_color / shard_repair requests against a
// mapped (or generated) view of the full graph. A worker owns no global
// decisions — it colors the interior of whatever vertex range it is
// handed (ghost-blind, so the interior coloring is unconstrained by
// other shards) and later recolors conflict losers against the ghost
// colors the coordinator sends. State is keyed per (graph, range), so
// one worker can serve any number of shards of any number of graphs;
// requests for different shards never share mutable state.
//
// Everything a run produces is a pure function of (graph, range, seed,
// algorithm): the interior runs jpl by default (deterministic at any
// thread count) and repairs use par::repair_subset (schedule-free). This
// is what makes sharded results bit-stable no matter how many worker
// processes the fleet has or which of them serves which shard.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "coloring/common.hpp"
#include "graph/csr.hpp"
#include "svc/graph_registry.hpp"
#include "svc/json.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace gcg::shard {

/// Seed a shard derives its interior-coloring and repair priorities
/// from: a deterministic function of (job seed, range start) only, so
/// the colors a shard produces cannot depend on which worker ran it.
inline std::uint64_t shard_seed(std::uint64_t seed, vid_t begin) {
  return mix64(seed ^ (0x9e3779b97f4a7c15ULL + begin));
}

/// Request-handling core, embeddable in-process (tests, TSan runs) or
/// behind a WorkerServer socket. Thread-safe: the state map is locked,
/// coloring runs are not (distinct shards never share state, and the
/// coordinator serializes requests per shard).
class Worker {
 public:
  struct Options {
    /// par pool threads per shard_color run when the request does not
    /// say; 0 = hardware concurrency (fine for a lone worker; a fleet
    /// coordinator always passes an explicit share).
    unsigned threads = 0;
    unsigned repair_max_rounds = 4096;
    svc::GraphRegistry::Options registry;
  };

  Worker();  ///< default Options
  explicit Worker(Options opts);

  /// Dispatches one parsed request: shard_color, shard_repair, ping.
  /// Never throws — failures come back as svc::error_reply JSON
  /// (bad_request / unknown_op / unsupported_version).
  svc::Json handle(const svc::Json& req);

  // Typed entry points (handle() is a thin JSON shim over these).
  // Throw std::runtime_error on bad ranges/ids or unknown state.
  svc::ShardColorReply shard_color(const svc::ShardColorRequest& req);
  svc::ShardRepairReply shard_repair(const svc::ShardRepairRequest& req);

  svc::GraphRegistry& registry() { return registry_; }

 private:
  /// Per-(graph, range) coloring state. `colors` is full-graph-sized:
  /// [begin, end) holds this shard's current colors, ghost slots hold
  /// whatever the last repair round reported, everything else stays
  /// kUncolored (= unconstrained for repair_subset).
  struct ShardState {
    std::shared_ptr<const Csr> graph;
    std::vector<color_t> colors;
  };

  std::string state_key(const std::string& graph_spec, vid_t begin,
                        vid_t end) const;

  Options opts_;
  svc::GraphRegistry registry_;
  sync::Mutex mu_;
  /// Map structure only: the pointed-to ShardStates are accessed outside
  /// the lock (the coordinator serializes requests per shard).
  std::map<std::string, std::shared_ptr<ShardState>> states_
      GCG_GUARDED_BY(mu_);
};

/// A Worker behind the standard line-JSON Unix-socket server (handler
/// mode — no Scheduler). The shard_worker binary and in-process fleets
/// (TSan-friendly coordinator tests) both use this.
class WorkerServer {
 public:
  explicit WorkerServer(std::string socket_path,
                        Worker::Options opts = Worker::Options());

  void wait() { server_.wait(); }
  bool wait_for(double timeout_ms) { return server_.wait_for(timeout_ms); }
  void request_stop() { server_.request_stop(); }
  void stop() { server_.stop(); }
  const std::string& socket_path() const { return server_.socket_path(); }
  Worker& worker() { return *worker_; }

 private:
  std::unique_ptr<Worker> worker_;  // stable address for the handler
  svc::Server server_;
};

}  // namespace gcg::shard
