// Worker-process lifecycle for the sharded coloring fleet. This is the
// ONLY translation unit in the tree allowed to call fork()/exec*() —
// gcg_lint's raw-process rule enforces that — so every spawned child
// goes through ChildProcess and is reaped exactly once. Children get a
// fresh default SIGPIPE disposition and their own argv; stdio is
// inherited (workers log to the coordinator's stderr).
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace gcg::shard {

/// A spawned child, reaped on destruction. Move-only; the destructor
/// escalates politely (SIGTERM, grace period, SIGKILL) if the child is
/// still alive, so a throwing coordinator never leaks worker processes.
class ChildProcess {
 public:
  ChildProcess() = default;
  /// fork+execv. `exec` must be an absolute or relative path (no PATH
  /// search); args becomes argv[1..]. Throws std::runtime_error when the
  /// fork fails or the exec target is obviously unusable; an exec failure
  /// after fork surfaces as exit code 127 from wait().
  static ChildProcess spawn(const std::string& exec,
                            const std::vector<std::string>& args);
  ~ChildProcess();
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  /// True while the child has not been reaped (non-blocking check).
  bool running();

  /// Blocks until the child exits; returns its exit code, or -signum if
  /// it died to a signal. Idempotent: returns the recorded status after
  /// the first reap.
  int wait();

  /// Polls for exit up to `timeout_ms`; true (and *code filled like
  /// wait()) if the child exited within the budget.
  bool wait_for(double timeout_ms, int* code = nullptr);

  void terminate();  ///< SIGTERM (no-op once reaped)
  void kill_hard();  ///< SIGKILL (no-op once reaped)

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  int status_ = 0;  ///< wait()-style code once reaped
};

/// Path of the shard worker binary a coordinator spawns by default: the
/// file named "shard_worker" next to the current executable (tools and
/// the worker install side by side). Falls back to plain "shard_worker"
/// when /proc/self/exe is unreadable.
std::string default_worker_exec();

}  // namespace gcg::shard
