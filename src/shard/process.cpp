#include "shard/process.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace gcg::shard {

namespace {

int decode_status(int raw) {
  if (WIFEXITED(raw)) return WEXITSTATUS(raw);
  if (WIFSIGNALED(raw)) return -WTERMSIG(raw);
  return -1;
}

}  // namespace

ChildProcess ChildProcess::spawn(const std::string& exec,
                                 const std::vector<std::string>& args) {
  if (exec.empty()) {
    throw std::runtime_error("spawn: empty exec path");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  argv.push_back(const_cast<char*>(exec.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("spawn: fork(): ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Restore default SIGPIPE (the parent ignores it for socket
    // writes) so the worker starts from a clean disposition.
    ::signal(SIGPIPE, SIG_DFL);
    ::execv(exec.c_str(), argv.data());
    // exec failed; 127 is the shell convention for "command not found".
    ::_exit(127);
  }
  ChildProcess child;
  child.pid_ = pid;
  return child;
}

ChildProcess::~ChildProcess() {
  if (pid_ <= 0 || reaped_) return;
  // Polite escalation so a coordinator unwinding on error does not leave
  // orphaned workers (or zombies) behind.
  terminate();
  if (!wait_for(1000.0)) {
    kill_hard();
    wait();
  }
}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_(other.pid_), reaped_(other.reaped_), status_(other.status_) {
  other.pid_ = -1;
  other.reaped_ = false;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    this->~ChildProcess();
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    status_ = other.status_;
    other.pid_ = -1;
    other.reaped_ = false;
  }
  return *this;
}

bool ChildProcess::running() {
  if (pid_ <= 0 || reaped_) return false;
  int raw = 0;
  const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
  if (r == pid_) {
    reaped_ = true;
    status_ = decode_status(raw);
    return false;
  }
  return r == 0;
}

int ChildProcess::wait() {
  if (pid_ <= 0) return -1;
  if (reaped_) return status_;
  int raw = 0;
  while (::waitpid(pid_, &raw, 0) < 0) {
    if (errno != EINTR) return -1;
  }
  reaped_ = true;
  status_ = decode_status(raw);
  return status_;
}

bool ChildProcess::wait_for(double timeout_ms, int* code) {
  if (pid_ <= 0) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  while (true) {
    if (!running()) {
      if (!reaped_) return false;  // never started / lost
      if (code) *code = status_;
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void ChildProcess::terminate() {
  if (pid_ > 0 && !reaped_) ::kill(pid_, SIGTERM);
}

void ChildProcess::kill_hard() {
  if (pid_ > 0 && !reaped_) ::kill(pid_, SIGKILL);
}

std::string default_worker_exec() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "shard_worker";
  buf[n] = '\0';
  std::string self(buf);
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "shard_worker";
  return self.substr(0, slash + 1) + "shard_worker";
}

}  // namespace gcg::shard
