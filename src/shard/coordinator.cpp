#include "shard/coordinator.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "coloring/priorities.hpp"
#include "par/pool.hpp"
#include "par/repair.hpp"
#include "util/log.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace gcg::shard {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Unique-per-fleet socket name component. Two coordinators in one
/// process (in-process tests) must not collide on paths.
unsigned next_fleet_id() {
  static sync::Mutex mu;
  static unsigned counter = 0;  // guarded by mu (function-local: TSA
                                // cannot attach GUARDED_BY to statics)
  sync::LockGuard lock(mu);
  return counter++;
}

/// Runs fn(0..count-1) on up to 16 threads (worklist, not chunks: shard
/// RPCs have wildly different service times). Collects exceptions and
/// rethrows the first after everything joined — a failed shard must not
/// leave sibling RPC threads dangling.
void fan_out(unsigned count, const std::function<void(unsigned)>& fn) {
  if (count == 0) return;
  if (count == 1) {
    fn(0);
    return;
  }
  sync::Mutex mu;  // guards next and errors (locals: no GUARDED_BY)
  unsigned next = 0;
  std::vector<std::string> errors;
  const unsigned team_size = std::min(count, 16u);
  std::vector<std::thread> team;
  team.reserve(team_size);
  for (unsigned t = 0; t < team_size; ++t) {
    team.emplace_back([&] {
      while (true) {
        unsigned i;
        {
          sync::LockGuard lock(mu);
          if (next >= count) return;
          i = next++;
        }
        try {
          fn(i);
        } catch (const std::exception& e) {
          sync::LockGuard lock(mu);
          errors.emplace_back(e.what());
        }
      }
    });
  }
  for (std::thread& t : team) t.join();
  if (!errors.empty()) {
    std::string msg = errors.front();
    if (errors.size() > 1) {
      msg += " (+" + std::to_string(errors.size() - 1) + " more shard errors)";
    }
    throw std::runtime_error(msg);
  }
}

/// One shard RPC round trip; turns error replies into exceptions.
svc::Json rpc(svc::Client& client, const svc::Json& req) {
  svc::Json reply = client.request(req);
  if (!reply.get_bool("ok", false)) {
    throw std::runtime_error("worker replied " +
                             reply.get_string("error", "error") + ": " +
                             reply.get_string("detail", ""));
  }
  return reply;
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions opts) : opts_(std::move(opts)) {
  const unsigned workers = std::max(1u, opts_.workers);
  unsigned threads = opts_.worker_threads;
  if (threads == 0) {
    threads = std::max(1u, par::ThreadPool::default_threads() / workers);
  }
  const std::string dir =
      opts_.socket_dir.empty() ? std::string("/tmp") : opts_.socket_dir;
  const unsigned fleet_id = next_fleet_id();
  const std::string exec =
      opts_.worker_exec.empty() ? default_worker_exec() : opts_.worker_exec;

  fleet_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    WorkerHandle h;
    h.socket = dir + "/gcg-shard-" + std::to_string(::getpid()) + "-" +
               std::to_string(fleet_id) + "-" + std::to_string(w) + ".sock";
    if (opts_.in_process) {
      Worker::Options wopts;
      wopts.threads = threads;
      h.local = std::make_unique<WorkerServer>(h.socket, wopts);
    } else {
      h.process = ChildProcess::spawn(
          exec, {"--socket", h.socket, "--threads", std::to_string(threads)});
    }
    fleet_.push_back(std::move(h));
  }

  // Fail fast and loud: a worker that cannot come up (missing binary,
  // bad socket dir) should fail construction, not the first job. The
  // connect-retry budget absorbs the exec -> listen() startup race.
  svc::Client::Options copt;
  copt.connect_timeout_ms = opts_.connect_timeout_ms;
  copt.request_timeout_ms = opts_.request_timeout_ms;
  try {
    for (WorkerHandle& h : fleet_) {
      svc::Client probe(h.socket, copt);
      if (!probe.ping()) {
        throw std::runtime_error("worker on " + h.socket +
                                 " did not answer ping");
      }
    }
  } catch (...) {
    shutdown_fleet();  // reap whatever did spawn before rethrowing
    throw;
  }
  GCG_LOG(kInfo) << "shard: fleet of " << fleet_.size() << " worker(s), "
                 << threads << " thread(s) each"
                 << (opts_.in_process ? " (in-process)" : "");
}

Coordinator::~Coordinator() { shutdown_fleet(); }

void Coordinator::shutdown_fleet() {
  for (WorkerHandle& h : fleet_) {
    if (h.local) {
      h.local->stop();
      h.local.reset();
      continue;
    }
    if (!h.process.valid()) continue;
    try {
      svc::Client bye(h.socket);  // single connect attempt; it may be dead
      bye.shutdown_server();
    } catch (const std::exception&) {
      // Worker already gone (or never listened); the escalation below
      // and ChildProcess's destructor still guarantee the reap.
    }
    if (!h.process.wait_for(2000.0)) {
      h.process.terminate();
      if (!h.process.wait_for(1000.0)) h.process.kill_hard();
    }
    h.process.wait();
  }
  fleet_.clear();
}

std::vector<color_t> Coordinator::color(const Csr& g, const ShardJob& job,
                                        ShardRunStats* stats_out) {
  const auto t0 = Clock::now();
  ShardRunStats st;
  const Partition part =
      partition_edge_balanced(g, job.shards == 0 ? 4u : job.shards);
  const unsigned num_shards = part.num_shards();
  const unsigned round_cap =
      job.max_rounds != 0 ? job.max_rounds : opts_.max_rounds;
  st.shards = num_shards;
  st.workers = workers();

  // One connection per shard (not per worker): requests on a line-JSON
  // connection are strictly ordered, and shards mapped to the same
  // worker must still overlap in flight.
  svc::Client::Options copt;
  copt.connect_timeout_ms = opts_.connect_timeout_ms;
  copt.request_timeout_ms = opts_.request_timeout_ms;
  std::vector<std::unique_ptr<svc::Client>> clients(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    clients[s] = std::make_unique<svc::Client>(
        fleet_[s % fleet_.size()].socket, copt);
  }

  const vid_t n = g.num_vertices();
  std::vector<color_t> colors(n, kUncolored);

  // --- phase 1: ghost-blind interior coloring, all shards in flight ----
  std::vector<svc::ShardColorReply> replies(num_shards);
  fan_out(num_shards, [&](unsigned s) {
    svc::ShardColorRequest rq;
    rq.graph = job.graph;
    rq.begin = part.begin(s);
    rq.end = part.end(s);
    rq.seed = job.seed;
    rq.algorithm = job.algorithm;
    rq.priority = job.priority;
    svc::ShardColorReply reply = svc::shard_color_reply_from_json(
        rpc(*clients[s], shard_color_request_to_json(rq)));
    if (reply.colors.size() != part.size(s)) {
      throw std::runtime_error("shard " + std::to_string(s) +
                               ": reply color count mismatch");
    }
    replies[s] = std::move(reply);
  });
  for (unsigned s = 0; s < num_shards; ++s) {
    const svc::ShardColorReply& reply = replies[s];
    std::copy(reply.colors.begin(), reply.colors.end(),
              colors.begin() + part.begin(s));
    st.cut_arcs += reply.cut_arcs;
    st.boundary_vertices += reply.num_boundary;
    st.phase1_ms = std::max(st.phase1_ms, reply.run_ms);
  }
  st.boundary_fraction =
      n == 0 ? 0.0 : static_cast<double>(st.boundary_vertices) / n;
  replies.clear();

  // Only boundary vertices can clash (interiors are properly colored by
  // construction), so conflict detection scans this list, not [0, n).
  std::vector<vid_t> boundary;
  boundary.reserve(st.boundary_vertices);
  for (unsigned s = 0; s < num_shards; ++s) {
    const vid_t begin = part.begin(s), end = part.end(s);
    for (vid_t v = begin; v < end; ++v) {
      for (vid_t u : g.neighbors(v)) {
        if (u < begin || u >= end) {
          boundary.push_back(v);
          break;
        }
      }
    }
  }

  // --- conflict rounds -------------------------------------------------
  std::vector<vid_t> conflicted;
  std::vector<std::vector<vid_t>> losers(num_shards);
  unsigned round = 0;
  while (true) {
    // Fresh per-round priorities (part of the deterministic round
    // schedule): a vertex that lost round r can win round r+1, which
    // breaks livelock patterns a fixed priority could sustain.
    const CounterHash prio(mix64(job.seed + 0x0b5e55edULL + round));
    conflicted.clear();
    for (auto& l : losers) l.clear();
    for (vid_t v : boundary) {
      const unsigned sv = part.shard_of(v);
      const vid_t begin = part.begin(sv), end = part.end(sv);
      const std::uint32_t pv = prio.u32(v);
      bool clash = false, lose = false;
      for (vid_t u : g.neighbors(v)) {
        if (u >= begin && u < end) continue;
        if (colors[u] != colors[v]) continue;
        clash = true;
        if (priority_less(pv, v, prio.u32(u), u)) {
          lose = true;
          break;
        }
      }
      if (clash) conflicted.push_back(v);
      if (lose) losers[sv].push_back(v);
    }
    if (conflicted.empty()) break;
    st.round_conflicts.push_back(conflicted.size());
    if (round >= round_cap) break;  // leftovers go to the inline fallback
    ++round;

    // Shards with losers repair concurrently. Each request carries the
    // current colors of every cross-shard neighbor of its losers — the
    // exact ghost knowledge the worker's full-graph repair needs.
    std::vector<unsigned> active;
    for (unsigned s = 0; s < num_shards; ++s) {
      if (!losers[s].empty()) active.push_back(s);
    }
    std::vector<svc::ShardRepairReply> fixes(active.size());
    fan_out(narrow<unsigned>(active.size()), [&](unsigned i) {
      const unsigned s = active[i];
      svc::ShardRepairRequest rq;
      rq.graph = job.graph;
      rq.begin = part.begin(s);
      rq.end = part.end(s);
      rq.seed = mix64(job.seed + 0x0b5e55edULL + round);  // round schedule
      rq.losers = losers[s];
      std::vector<std::pair<vid_t, color_t>> ghosts;
      for (vid_t v : losers[s]) {
        for (vid_t u : g.neighbors(v)) {
          if (u < rq.begin || u >= rq.end) ghosts.emplace_back(u, colors[u]);
        }
      }
      std::sort(ghosts.begin(), ghosts.end());
      ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
      rq.ghost_ids.reserve(ghosts.size());
      rq.ghost_colors.reserve(ghosts.size());
      for (const auto& [id, c] : ghosts) {
        rq.ghost_ids.push_back(id);
        rq.ghost_colors.push_back(c);
      }
      fixes[i] = svc::shard_repair_reply_from_json(
          rpc(*clients[s], shard_repair_request_to_json(rq)));
    });
    for (const svc::ShardRepairReply& fix : fixes) {
      for (std::size_t i = 0; i < fix.ids.size(); ++i) {
        colors[fix.ids[i]] = fix.colors[i];
      }
      st.recolored += fix.recolored;
    }
  }
  st.conflict_rounds = round;

  if (!conflicted.empty()) {
    // Round cap exhausted with clashes left. The coordinator owns the
    // full graph, so it can always finish the job locally — rounds stay
    // bounded AND the result stays valid.
    if (!opts_.fallback_inline) {
      throw std::runtime_error(
          std::to_string(conflicted.size()) +
          " boundary conflicts remain after " + std::to_string(round_cap) +
          " rounds");
    }
    par::RepairOptions ropts;
    ropts.seed = mix64(job.seed ^ 0xfa11bac0ULL);
    const par::RepairRun run =
        par::repair_subset(g, colors, conflicted, ropts);
    st.fallback_recolored = run.recolored;
    GCG_LOG(kInfo) << "shard: inline fallback repaired " << run.recolored
                   << " vertices after " << round_cap << " rounds";
  }

  st.num_colors = count_colors(colors);
  st.wall_ms = ms_since(t0);
  if (stats_out) *stats_out = std::move(st);
  return colors;
}

}  // namespace gcg::shard
