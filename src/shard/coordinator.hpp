// The shard coordinator: partitions a graph into contiguous edge-
// balanced vertex ranges, fans shard_color requests out over a fleet of
// worker processes, then drives bounded rounds of boundary conflict
// detection + speculative recoloring (Bogle–Slota style) until the
// global coloring is conflict-free.
//
// Round structure (docs/SHARDING.md has the full walkthrough):
//   phase 1  every shard colors its interior ghost-blind (deterministic
//            jpl with a per-shard seed).
//   round r  the coordinator scans cross-shard edges for color clashes.
//            For every clashing edge, the endpoint with the lower
//            (per-round hash, id) priority is the loser; winners keep
//            their color, so the highest-priority vertex of any clash
//            cluster never moves and every round makes progress. Losers
//            go back to their shard's worker (shard_repair) along with
//            the current colors of their cross-shard neighbors; the
//            worker recolors them first-fit against full adjacency.
//   cap      after max_rounds the (rare) leftovers are repaired inline
//            by the coordinator itself, which owns the full graph — so
//            the result is always valid and rounds are always bounded.
//
// Results are bit-stable for a fixed (graph, shards, seed, round cap):
// nothing depends on worker count, request timing, or which worker
// serves which shard.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "shard/process.hpp"
#include "shard/worker.hpp"
#include "svc/client.hpp"
#include "util/narrow.hpp"

namespace gcg::shard {

/// Fleet-level configuration: how many workers, where their sockets
/// live, and the per-job defaults. One fleet serves any number of
/// color() calls (and shard counts) over its lifetime.
struct CoordinatorOptions {
  unsigned workers = 2;        ///< worker processes to spawn (min 1)
  /// par threads per worker; 0 = hardware_concurrency / workers (min 1),
  /// so a fleet never oversubscribes the machine by default.
  unsigned worker_threads = 0;
  /// Worker binary; "" = default_worker_exec() (shard_worker next to the
  /// current executable). Ignored with in_process.
  std::string worker_exec;
  /// Directory for the fleet's Unix sockets; "" = "/tmp".
  std::string socket_dir;
  /// Serve shards from WorkerServer threads inside this process instead
  /// of forked workers. Same sockets, same protocol, one address space —
  /// this is what TSan runs use (it cannot follow fork), and it doubles
  /// as a no-exec fallback.
  bool in_process = false;
  unsigned max_rounds = 16;    ///< default conflict-round cap per job
  /// Repair any post-cap leftovers inline (guarantees a valid coloring).
  /// Off only in tests that probe the cap behaviour itself.
  bool fallback_inline = true;
  double connect_timeout_ms = 10000.0;  ///< worker spawn -> listen budget
  double request_timeout_ms = 0.0;      ///< per shard-RPC; 0 = no limit
};

/// Per-job knobs of one sharded coloring.
struct ShardJob {
  std::string graph;        ///< registry spec the workers resolve
  unsigned shards = 4;      ///< clamped to [1, n] by the partitioner
  std::uint64_t seed = 1;
  unsigned max_rounds = 0;  ///< 0 = CoordinatorOptions::max_rounds
  std::string algorithm = "jpl";  ///< par algorithm for shard interiors
  std::string priority = "random";
};

struct ShardRunStats {
  unsigned shards = 0;
  unsigned workers = 0;
  int num_colors = 0;
  unsigned conflict_rounds = 0;     ///< repair fan-outs driven
  std::uint64_t recolored = 0;      ///< by workers, across all rounds
  std::uint64_t fallback_recolored = 0;  ///< by the inline post-cap repair
  vid_t boundary_vertices = 0;
  double boundary_fraction = 0.0;
  eid_t cut_arcs = 0;               ///< directed cross-shard arcs
  /// Conflicted boundary vertices found entering each round (the last
  /// entry is what the final round resolved).
  std::vector<std::uint64_t> round_conflicts;
  double phase1_ms = 0.0;           ///< slowest shard_color round trip
  double wall_ms = 0.0;
};

class Coordinator {
 public:
  /// Spawns the fleet and waits until every worker answers ping; throws
  /// (and reaps whatever did spawn) if any worker fails to come up.
  explicit Coordinator(CoordinatorOptions opts = CoordinatorOptions());
  ~Coordinator();  ///< shuts the fleet down (shutdown verb, then signals)
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Colors `g` (which must be the graph `job.graph` resolves to) across
  /// the fleet. Returns a coloring that check::verify_coloring accepts;
  /// throws on worker/protocol failures. Not thread-safe — callers
  /// serialize (the svc backend wraps this in a mutex).
  std::vector<color_t> color(const Csr& g, const ShardJob& job,
                             ShardRunStats* stats = nullptr);

  unsigned workers() const { return narrow<unsigned>(fleet_.size()); }

 private:
  struct WorkerHandle {
    std::string socket;
    ChildProcess process;                  // !in_process
    std::unique_ptr<WorkerServer> local;   // in_process
  };

  void shutdown_fleet();

  CoordinatorOptions opts_;
  std::vector<WorkerHandle> fleet_;
};

}  // namespace gcg::shard
