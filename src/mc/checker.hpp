// Exhaustive model checker for small concurrent models written against
// the mc:: primitives (mc/model.hpp). check() runs a Model's logical
// threads as cooperative contexts — exactly one runnable at a time — and
// explores every schedule and every legal stale-load result up to a
// preemption bound, with sleep-set pruning. A failure (MC_REQUIRE,
// modeled deadlock, or step-bound hit) stops the search and returns a
// replayable trace.
//
// What is modeled: operations on mc::atomic / mc::atomic_flag /
// mc::mutex / mc::condition_variable and mc::atomic_thread_fence. Plain
// memory accesses between those points run natively and atomically with
// the operation that follows them — data races on plain memory are
// TSan's job, not this checker's.
#pragma once

#include <string>
#include <vector>

namespace gcg::mc {

struct Options {
  /// Max context switches away from a runnable thread per execution
  /// (CHESS-style). Forced switches (current thread blocked or finished)
  /// are free. Most ordering bugs need 1–2 preemptions.
  int preemption_bound = 3;
  /// Hard cap on explored executions; `Result::complete` is false if hit.
  long max_executions = 1000000;
  /// Per-execution step cap; exceeding it fails the execution (livelock).
  int max_steps = 10000;
  /// Sleep-set pruning (prunes schedules that only commute independent
  /// operations). Correct to disable; exploration just re-visits
  /// equivalent interleavings.
  bool sleep_sets = true;
};

struct Result {
  bool ok = true;        ///< no execution failed
  bool complete = true;  ///< search space exhausted (not capped)
  long executions = 0;   ///< executions explored (including pruned)
  std::string failure;   ///< first failure message, empty when ok
  std::string trace;     ///< ordered thread/op/location/value steps
  /// Decision sequence of the failing execution; feed to replay().
  std::vector<int> trail;
};

/// A checkable model: reset() rebuilds state from scratch (called before
/// every execution, unmodeled), thread(tid) is one logical thread's body
/// (modeled), finally() checks postconditions after all threads finish
/// (unmodeled; MC_REQUIRE allowed).
class Model {
 public:
  virtual ~Model();
  virtual int num_threads() const = 0;
  virtual void reset() = 0;
  virtual void thread(int tid) = 0;
  virtual void finally() {}
};

/// Explore the model exhaustively (subject to Options bounds).
Result check(Model& model, const Options& opts = {});

/// Re-run exactly one execution following `trail` (from Result::trail).
/// Deterministic: the same trail reproduces the same trace bit-for-bit.
Result replay(Model& model, const std::vector<int>& trail,
              const Options& opts = {});

}  // namespace gcg::mc
