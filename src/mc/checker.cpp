// Model-checker engine: cooperative scheduler + modeled C++11 memory
// model behind the mc:: primitives in mc/model.hpp.
//
// Execution scheme. The N logical threads of a Model run on N real OS
// threads, but at most one is ever runnable: every mc:: operation first
// *announces* itself (a Pending record) and blocks; the scheduler picks
// one announced thread, which then performs its operation with exclusive
// access to the engine state and runs user code up to its next
// announcement. All engine state is therefore single-threaded by
// construction, and the announce/grant handoff through one host mutex
// provides the cross-thread visibility.
//
// Memory model. Per atomic location the engine keeps the modification
// order as the list of stores in execution order. A load does not simply
// read the newest store: the set of *visible* stores is the contiguous
// suffix that coherence (per-thread floors), happens-before (vector
// clocks), and seq_cst read coherence do not rule out, and which member
// gets read is an explored decision — this is where relaxed stale reads
// come from. Release/acquire edges carry vector clocks; RMWs continue
// release sequences; fences keep per-thread snapshots (release) and a
// global SC clock (seq_cst). Seq_cst *operations* are modeled as acq_rel
// plus SC read coherence (a seq_cst load never reads past the newest
// seq_cst store) — slightly weaker than the full total order S, i.e. the
// model over-approximates behaviors and errs toward reporting bugs.
//
// Exploration. Depth-first over a trail of decision records (scheduling
// picks and load-value picks). Each execution re-runs the model from
// reset() following the trail prefix, then takes default choices;
// advance() bumps the deepest record with untried alternatives. Sleep
// sets prune schedules that only commute independent operations, and a
// CHESS-style preemption bound caps context switches away from runnable
// threads. The combination is a bounded search: every schedule within
// the bound is covered (up to sleep-set equivalence), nothing beyond it.
#include "mc/checker.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mc/model.hpp"
#include "util/expect.hpp"

namespace gcg::mc {

Model::~Model() = default;

namespace detail {
namespace {

// Thrown at a blocked announcement (or an MC_REQUIRE) to unwind a logical
// thread once its execution is being torn down. While unwinding, every
// mc:: hook degrades to a raw-bits no-op so destructors cannot re-enter
// the scheduler.
struct AbortExecution {};

thread_local int tls_tid = -1;
thread_local bool tls_aborting = false;

using Clock = std::vector<unsigned>;

void join(Clock& into, const Clock& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0U);
  for (std::size_t i = 0; i < from.size(); ++i) {
    into[i] = std::max(into[i], from[i]);
  }
}

// order: the memory_order values in this block are *data* — the checker
// interprets them against the modeled memory model; none of these
// functions perform host synchronization.
bool has_acquire(std::memory_order mo) {
  return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}
// order: data, as above.
bool has_release(std::memory_order mo) {
  return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
         mo == std::memory_order_seq_cst;
}
// order: data, as above.
bool is_seq_cst(std::memory_order mo) { return mo == std::memory_order_seq_cst; }
// order: data, as above — trace-formatting names only.
const char* mo_name(std::memory_order mo) {
  switch (mo) {
    case std::memory_order_relaxed: return "relaxed";
    case std::memory_order_consume: return "consume";
    case std::memory_order_acquire: return "acquire";
    case std::memory_order_release: return "release";
    case std::memory_order_acq_rel: return "acq_rel";
    case std::memory_order_seq_cst: return "seq_cst";
  }
  return "?";
}

std::uint64_t width_mask(unsigned width) {
  return width >= 8 ? ~std::uint64_t{0} : (std::uint64_t{1} << (width * 8)) - 1;
}

// Sign-extend a width-byte value for display (top_/bottom_ are int64_t;
// traces read better signed, and small unsigned values are unaffected).
std::string val_str(std::uint64_t v, unsigned width) {
  std::int64_t s = 0;
  if (width >= 8) {
    s = static_cast<std::int64_t>(v);
  } else {
    const std::uint64_t sign = std::uint64_t{1} << (width * 8 - 1);
    s = static_cast<std::int64_t>(((v & width_mask(width)) ^ sign) - sign);
  }
  return std::to_string(s);
}

const char* rmw_name(Rmw op) {
  switch (op) {
    case Rmw::kAdd: return "fetch_add";
    case Rmw::kSub: return "fetch_sub";
    case Rmw::kAnd: return "fetch_and";
    case Rmw::kOr: return "fetch_or";
    case Rmw::kXchg: return "exchange";
  }
  return "?";
}

enum class Kind : std::uint8_t {
  kStart,
  kLoad,
  kStore,
  kRmw,
  kCas,
  kFence,
  kLock,
  kTryLock,
  kUnlock,
  kCvWait,
  kCvWake,
  kCvNotify,
};

struct Pending {
  Kind kind = Kind::kStart;
  const void* a = nullptr;  // primary object: atomic location, mutex, or cv
  const void* b = nullptr;  // secondary object: the mutex of a cv-wait
  // order: default for operations without an order argument (mutex/cv/
  // start records) — modeled data, never host synchronization.
  std::memory_order mo = std::memory_order_seq_cst;
};

bool is_pure_read(const Pending& p) {
  return p.kind == Kind::kLoad;
}

// Conservative dependence for sleep sets: operations commute unless they
// can touch the same object with at least one mutation (fences are
// dependent with everything; thread starts with nothing).
bool dependent(const Pending& x, const Pending& y) {
  if (x.kind == Kind::kStart || y.kind == Kind::kStart) return false;
  if (x.kind == Kind::kFence || y.kind == Kind::kFence) return true;
  const bool share =
      (x.a != nullptr && (x.a == y.a || x.a == y.b)) ||
      (x.b != nullptr && (x.b == y.a || x.b == y.b));
  if (!share) return false;
  if (is_pure_read(x) && is_pure_read(y)) return false;
  return true;
}

struct StoreRec {
  std::uint64_t value = 0;
  int tid = -1;       // -1: initial value
  unsigned time = 0;  // writer's own clock component at the store
  Clock release;      // release clock; empty = plain (breaks the sequence)
  bool sc = false;
};

struct Location {
  std::string name;
  unsigned width = 8;
  std::vector<StoreRec> stores;  // modification order == execution order
  int last_sc = -1;              // index of newest seq_cst store
  std::vector<int> floor;        // per-thread coherence floor (min index)
};

struct MutexRec {
  std::string name;
  bool held = false;
  int owner = -1;
  Clock release;  // published at unlock, joined at lock
};

struct CvRec {
  std::string name;
  std::vector<int> waiters;  // registration order
};

struct TrailRec {
  bool sched = false;
  // sched: candidate thread ids in exploration order, and current index.
  std::vector<int> cands;
  int idx = 0;
  // value: chosen ordinal (0 = newest) out of num alternatives.
  int chosen = 0;
  int num = 0;
};

struct Step {
  int tid = 0;
  std::string text;
};

enum class TState : std::uint8_t { kReady, kRunning, kDone };

constexpr int kSchedulerTurn = -1;
constexpr int kMaxThreads = 8;

class Exec {
 public:
  Exec(Model& model, const Options& opts, const std::vector<int>* replay_in);
  ~Exec();
  Exec(const Exec&) = delete;
  Exec& operator=(const Exec&) = delete;

  void run_one();
  bool advance();

  bool failed() const { return failed_; }
  bool pruned() const { return pruned_; }
  const std::string& fail_msg() const { return fail_msg_; }
  std::string format_trace() const;
  std::vector<int> export_trail() const;

  // --- modeled operations (called from logical threads via the hooks) ---
  std::uint64_t op_load(int tid, const void* addr, const std::uint64_t* bits,
                        std::memory_order mo);
  void op_store(int tid, const void* addr, std::uint64_t* bits,
                std::uint64_t value, unsigned width, std::memory_order mo);
  std::uint64_t op_rmw(int tid, const void* addr, std::uint64_t* bits, Rmw op,
                       std::uint64_t operand, unsigned width,
                       std::memory_order mo);
  bool op_cas(int tid, const void* addr, std::uint64_t* bits,
              std::uint64_t* expected, std::uint64_t desired, unsigned width,
              std::memory_order success, std::memory_order failure);
  void op_fence(int tid, std::memory_order mo);
  // Every seq_cst OPERATION (not just fences) participates in the global
  // seq_cst clock: pull before acting, push after. The execution order of
  // sc ops then forms the total order S, and any op after an sc op in S
  // inherits its knowledge — slightly stronger than the letter of C++
  // for relaxed accesses adjacent to sc ops on other locations, but it
  // is what makes sc-fence/sc-CAS protocols (Chase–Lev pop vs steal)
  // verify without false races; see docs/CORRECTNESS.md.
  void sc_pull(int tid, std::memory_order mo) {
    if (is_seq_cst(mo)) join(clocks_[static_cast<std::size_t>(tid)], sc_clock_);
  }
  void sc_push(int tid, std::memory_order mo) {
    if (is_seq_cst(mo)) join(sc_clock_, clocks_[static_cast<std::size_t>(tid)]);
  }
  void op_mutex_lock(int tid, const void* m, const char* why);
  bool op_mutex_try_lock(int tid, const void* m);
  void op_mutex_unlock(int tid, const void* m);
  void op_cv_wait(int tid, const void* cv, const void* m);
  void op_cv_notify(int tid, const void* cv, bool all);
  [[noreturn]] void op_require_failed(int tid, const std::string& msg);
  void scheduler_require_failed(const std::string& msg);
  void on_location_destroyed(const void* addr);
  void set_location_name(const void* addr, const char* name);

 private:
  void worker_main(int tid);
  void finish_worker(int tid, std::unique_lock<std::mutex>& lk);
  void yield(int tid, const Pending& op);
  int pick(const std::vector<int>& enabled);
  int choose(int num);
  void wake_sleepers(const Pending& executed);
  void abort_all(std::unique_lock<std::mutex>& lk);
  bool is_enabled(const Pending& p, int tid);
  void tick(int tid) { ++clocks_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(tid)]; }
  void step(int tid, std::string text);
  std::string describe(const Pending& p) const;
  std::string object_name(const void* addr) const;
  Location& location(const void* addr, std::uint64_t init_bits);
  MutexRec& mutex_rec(const void* m);
  CvRec& cv_rec(const void* cv);
  void push_store(int tid, Location& loc, std::uint64_t value,
                  std::uint64_t* bits, std::memory_order mo,
                  const Clock* read_from_release);
  void acquire_from(int tid, const StoreRec& s, std::memory_order mo);

  Model& model_;
  const Options opts_;
  const int n_;
  const std::vector<int>* replay_in_;  // non-null: single-execution replay
  std::size_t replay_pos_ = 0;

  // Handoff (guarded by mu_). Everything below it is touched only by
  // whichever context currently holds the turn.
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;
  int turn_ = kSchedulerTurn;
  bool shutdown_ = false;
  bool abort_ = false;
  std::vector<TState> tstate_;
  std::vector<Pending> pending_;

  // Model state, rebuilt every execution.
  std::unordered_map<const void*, Location> locations_;
  std::unordered_map<const void*, MutexRec> mutexes_;
  std::unordered_map<const void*, CvRec> cvs_;
  std::unordered_map<const void*, std::string> names_;
  int loc_count_ = 0;
  int mutex_count_ = 0;
  int cv_count_ = 0;
  std::vector<Clock> clocks_;
  std::vector<Clock> acq_pending_;  // relaxed-load clocks awaiting an acquire fence
  std::vector<Clock> rel_snap_;     // release-fence snapshot (empty = none)
  Clock sc_clock_;
  std::vector<char> cv_woken_;
  std::unordered_map<int, Pending> sleep_;
  std::vector<Step> steps_;
  int step_count_ = 0;
  int preemptions_ = 0;
  int current_ = -1;
  Pending last_op_;
  bool failed_ = false;
  bool pruned_ = false;
  std::string fail_msg_;

  // DFS trail across executions.
  std::vector<TrailRec> trail_;
  std::size_t pos_ = 0;

  std::vector<std::thread> workers_;
};

Exec* g_active = nullptr;

Exec::Exec(Model& model, const Options& opts, const std::vector<int>* replay_in)
    : model_(model), opts_(opts), n_(model.num_threads()), replay_in_(replay_in) {
  GCG_EXPECT(n_ >= 1 && n_ <= kMaxThreads);
  GCG_EXPECT(opts_.preemption_bound >= 0 && opts_.max_steps > 0);
  GCG_EXPECT(g_active == nullptr);  // one check() at a time per process
  g_active = this;
  tstate_.assign(static_cast<std::size_t>(n_), TState::kDone);
  pending_.assign(static_cast<std::size_t>(n_), Pending{});
  workers_.reserve(static_cast<std::size_t>(n_));
  for (int t = 0; t < n_; ++t) {
    workers_.emplace_back([this, t] { worker_main(t); });
  }
}

Exec::~Exec() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  g_active = nullptr;
}

void Exec::worker_main(int tid) {
  tls_tid = tid;
  std::unique_lock<std::mutex> lk(mu_);
  std::uint64_t seen = 0;
  while (true) {
    cv_.wait(lk, [&] { return shutdown_ || (generation_ != seen && turn_ == tid); });
    if (shutdown_) return;
    seen = generation_;
    tls_aborting = false;
    if (abort_) {
      finish_worker(tid, lk);
      continue;
    }
    // Granted the kStart announcement made on our behalf by run_one().
    step(tid, "start");
    lk.unlock();
    try {
      model_.thread(tid);
    } catch (const AbortExecution&) {
      // Torn down (failure elsewhere, prune, or own MC_REQUIRE).
    } catch (...) {
      failed_ = true;
      fail_msg_ = "model thread " + std::to_string(tid) + " threw an exception";
    }
    lk.lock();
    finish_worker(tid, lk);
  }
}

void Exec::finish_worker(int tid, std::unique_lock<std::mutex>& lk) {
  (void)lk;  // must be held; finish is a handoff
  tls_aborting = false;
  if (!abort_ && !failed_) step(tid, "finish");
  tstate_[static_cast<std::size_t>(tid)] = TState::kDone;
  turn_ = kSchedulerTurn;
  cv_.notify_all();
}

void Exec::yield(int tid, const Pending& op) {
  std::unique_lock<std::mutex> lk(mu_);
  pending_[static_cast<std::size_t>(tid)] = op;
  tstate_[static_cast<std::size_t>(tid)] = TState::kReady;
  turn_ = kSchedulerTurn;
  cv_.notify_all();
  cv_.wait(lk, [&] { return turn_ == tid; });
  if (abort_) {
    tls_aborting = true;
    throw AbortExecution{};
  }
  tstate_[static_cast<std::size_t>(tid)] = TState::kRunning;
}

void Exec::run_one() {
  locations_.clear();
  mutexes_.clear();
  cvs_.clear();
  names_.clear();
  loc_count_ = mutex_count_ = cv_count_ = 0;
  clocks_.assign(static_cast<std::size_t>(n_), Clock(static_cast<std::size_t>(n_), 0U));
  acq_pending_.assign(static_cast<std::size_t>(n_), Clock{});
  rel_snap_.assign(static_cast<std::size_t>(n_), Clock{});
  sc_clock_.assign(static_cast<std::size_t>(n_), 0U);
  cv_woken_.assign(static_cast<std::size_t>(n_), 0);
  sleep_.clear();
  steps_.clear();
  step_count_ = 0;
  preemptions_ = 0;
  current_ = -1;
  failed_ = false;
  pruned_ = false;
  fail_msg_.clear();
  pos_ = 0;
  replay_pos_ = 0;

  model_.reset();  // unmodeled: runs on this (scheduler) thread

  std::unique_lock<std::mutex> lk(mu_);
  abort_ = false;
  for (int t = 0; t < n_; ++t) {
    pending_[static_cast<std::size_t>(t)] = Pending{Kind::kStart};
    tstate_[static_cast<std::size_t>(t)] = TState::kReady;
  }
  ++generation_;
  turn_ = kSchedulerTurn;
  cv_.notify_all();

  std::vector<int> enabled;
  while (true) {
    enabled.clear();
    bool all_done = true;
    for (int t = 0; t < n_; ++t) {
      if (tstate_[static_cast<std::size_t>(t)] == TState::kDone) continue;
      all_done = false;
      if (is_enabled(pending_[static_cast<std::size_t>(t)], t)) enabled.push_back(t);
    }
    if (all_done) break;
    if (enabled.empty()) {
      failed_ = true;
      std::string who;
      for (int t = 0; t < n_; ++t) {
        if (tstate_[static_cast<std::size_t>(t)] == TState::kDone) continue;
        if (!who.empty()) who += ", ";
        who += "T" + std::to_string(t) + " waiting: " +
               describe(pending_[static_cast<std::size_t>(t)]);
      }
      fail_msg_ = "deadlock: no enabled thread (" + who + ")";
      break;
    }
    const int t = pick(enabled);
    if (pruned_ || failed_) break;
    if (++step_count_ > opts_.max_steps) {
      failed_ = true;
      fail_msg_ = "step bound exceeded (" + std::to_string(opts_.max_steps) +
                  " steps): possible livelock";
      break;
    }
    if (current_ >= 0 && t != current_ &&
        std::find(enabled.begin(), enabled.end(), current_) != enabled.end()) {
      ++preemptions_;
    }
    last_op_ = pending_[static_cast<std::size_t>(t)];
    current_ = t;
    turn_ = t;
    cv_.notify_all();
    cv_.wait(lk, [&] { return turn_ == kSchedulerTurn; });
    if (failed_) break;
    if (opts_.sleep_sets) wake_sleepers(last_op_);
  }

  if (failed_ || pruned_) abort_all(lk);
  lk.unlock();

  if (!failed_ && !pruned_) {
    try {
      model_.finally();  // unmodeled postcondition checks; MC_REQUIRE ok
    } catch (const AbortExecution&) {
      // scheduler_require_failed() set failed_/fail_msg_
    }
  }
}

void Exec::abort_all(std::unique_lock<std::mutex>& lk) {
  abort_ = true;
  while (true) {
    int t = -1;
    for (int i = 0; i < n_; ++i) {
      if (tstate_[static_cast<std::size_t>(i)] != TState::kDone) {
        t = i;
        break;
      }
    }
    if (t < 0) break;
    turn_ = t;
    cv_.notify_all();
    cv_.wait(lk, [&] { return turn_ == kSchedulerTurn; });
  }
  abort_ = false;
}

bool Exec::is_enabled(const Pending& p, int tid) {
  switch (p.kind) {
    case Kind::kLock:
      return !mutex_rec(p.a).held;
    case Kind::kCvWake:
      return cv_woken_[static_cast<std::size_t>(tid)] != 0;
    default:
      return true;
  }
}

int Exec::pick(const std::vector<int>& enabled) {
  std::vector<int> explorable;
  for (int t : enabled) {
    if (!opts_.sleep_sets || sleep_.find(t) == sleep_.end()) explorable.push_back(t);
  }
  if (explorable.empty()) {
    pruned_ = true;  // every enabled move is covered by a sibling subtree
    return -1;
  }
  const bool cur_enabled =
      std::find(enabled.begin(), enabled.end(), current_) != enabled.end();
  const bool cur_explorable =
      std::find(explorable.begin(), explorable.end(), current_) != explorable.end();

  std::vector<int> cands;
  if (preemptions_ >= opts_.preemption_bound && cur_enabled) {
    if (!cur_explorable) {
      pruned_ = true;  // only covered moves remain within the bound
      return -1;
    }
    cands.push_back(current_);
  } else {
    if (cur_explorable) cands.push_back(current_);
    for (int t : explorable) {
      if (t != current_) cands.push_back(t);
    }
  }

  if (cands.size() == 1) return cands[0];  // forced move: not a decision

  if (replay_in_ != nullptr) {
    int t = cands[0];
    if (replay_pos_ < replay_in_->size()) {
      t = (*replay_in_)[replay_pos_++];
      if (std::find(cands.begin(), cands.end(), t) == cands.end()) {
        failed_ = true;
        fail_msg_ = "replay trail mismatch: T" + std::to_string(t) +
                    " is not a candidate at step " + std::to_string(step_count_);
        return -1;
      }
    }
    if (opts_.sleep_sets) {
      for (int s : cands) {
        if (s == t) break;
        sleep_[s] = pending_[static_cast<std::size_t>(s)];
      }
    }
    return t;
  }

  if (pos_ < trail_.size()) {
    TrailRec& r = trail_[pos_];
    GCG_EXPECT(r.sched && r.idx < static_cast<int>(r.cands.size()));
    const int t = r.cands[static_cast<std::size_t>(r.idx)];
    if (opts_.sleep_sets) {
      for (int j = 0; j < r.idx; ++j) {
        const int s = r.cands[static_cast<std::size_t>(j)];
        sleep_[s] = pending_[static_cast<std::size_t>(s)];
      }
    }
    ++pos_;
    return t;
  }

  TrailRec r;
  r.sched = true;
  r.cands = cands;
  r.idx = 0;
  trail_.push_back(std::move(r));
  ++pos_;
  return cands[0];
}

int Exec::choose(int num) {
  if (num <= 1) return 0;
  if (replay_in_ != nullptr) {
    if (replay_pos_ < replay_in_->size()) {
      const int v = (*replay_in_)[replay_pos_++];
      GCG_EXPECT(v >= 0 && v < num);
      return v;
    }
    return 0;
  }
  if (pos_ < trail_.size()) {
    const TrailRec& r = trail_[pos_];
    GCG_EXPECT(!r.sched && r.num == num);
    ++pos_;
    return r.chosen;
  }
  TrailRec r;
  r.num = num;
  trail_.push_back(std::move(r));
  ++pos_;
  return 0;
}

bool Exec::advance() {
  while (!trail_.empty()) {
    TrailRec& r = trail_.back();
    if (r.sched) {
      if (r.idx + 1 < static_cast<int>(r.cands.size())) {
        ++r.idx;
        return true;
      }
    } else if (r.chosen + 1 < r.num) {
      ++r.chosen;
      return true;
    }
    trail_.pop_back();
  }
  return false;
}

void Exec::wake_sleepers(const Pending& executed) {
  for (auto it = sleep_.begin(); it != sleep_.end();) {
    if (dependent(executed, it->second)) {
      it = sleep_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<int> Exec::export_trail() const {
  std::vector<int> out;
  out.reserve(trail_.size());
  for (const TrailRec& r : trail_) {
    out.push_back(r.sched ? r.cands[static_cast<std::size_t>(r.idx)] : r.chosen);
  }
  return out;
}

void Exec::step(int tid, std::string text) {
  steps_.push_back(Step{tid, std::move(text)});
}

std::string Exec::format_trace() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    os << (i + 1 < 10 ? "  " : i + 1 < 100 ? " " : "") << (i + 1) << ". T"
       << steps_[i].tid << "  " << steps_[i].text << "\n";
  }
  os << "=== " << fail_msg_ << " ===\n";
  return os.str();
}

std::string Exec::object_name(const void* addr) const {
  if (const auto it = locations_.find(addr); it != locations_.end()) {
    return it->second.name;
  }
  if (const auto it = mutexes_.find(addr); it != mutexes_.end()) {
    return it->second.name;
  }
  if (const auto it = cvs_.find(addr); it != cvs_.end()) {
    return it->second.name;
  }
  if (const auto it = names_.find(addr); it != names_.end()) {
    return it->second;
  }
  return "?";
}

std::string Exec::describe(const Pending& p) const {
  switch (p.kind) {
    case Kind::kStart: return "start";
    case Kind::kLoad: return "load " + object_name(p.a);
    case Kind::kStore: return "store " + object_name(p.a);
    case Kind::kRmw: return "rmw " + object_name(p.a);
    case Kind::kCas: return "cas " + object_name(p.a);
    case Kind::kFence: return "fence";
    case Kind::kLock: return "lock " + object_name(p.a);
    case Kind::kTryLock: return "try_lock " + object_name(p.a);
    case Kind::kUnlock: return "unlock " + object_name(p.a);
    case Kind::kCvWait: return "cv-wait " + object_name(p.a);
    case Kind::kCvWake: return "cv-wake " + object_name(p.a);
    case Kind::kCvNotify: return "cv-notify " + object_name(p.a);
  }
  return "?";
}

Location& Exec::location(const void* addr, std::uint64_t init_bits) {
  const auto it = locations_.find(addr);
  if (it != locations_.end()) return it->second;
  Location loc;
  if (const auto nit = names_.find(addr); nit != names_.end()) {
    loc.name = nit->second;
  } else {
    loc.name = "a" + std::to_string(loc_count_);
  }
  ++loc_count_;
  loc.stores.push_back(StoreRec{init_bits, -1, 0, Clock{}, false});
  loc.floor.assign(static_cast<std::size_t>(n_), 0);
  return locations_.emplace(addr, std::move(loc)).first->second;
}

MutexRec& Exec::mutex_rec(const void* m) {
  const auto it = mutexes_.find(m);
  if (it != mutexes_.end()) return it->second;
  MutexRec rec;
  if (const auto nit = names_.find(m); nit != names_.end()) {
    rec.name = nit->second;
  } else {
    rec.name = "m" + std::to_string(mutex_count_);
  }
  ++mutex_count_;
  return mutexes_.emplace(m, std::move(rec)).first->second;
}

CvRec& Exec::cv_rec(const void* cv) {
  const auto it = cvs_.find(cv);
  if (it != cvs_.end()) return it->second;
  CvRec rec;
  if (const auto nit = names_.find(cv); nit != names_.end()) {
    rec.name = nit->second;
  } else {
    rec.name = "c" + std::to_string(cv_count_);
  }
  ++cv_count_;
  return cvs_.emplace(cv, std::move(rec)).first->second;
}

void Exec::set_location_name(const void* addr, const char* name) {
  names_[addr] = name;
  if (const auto it = locations_.find(addr); it != locations_.end()) {
    it->second.name = name;
  }
  if (const auto it = mutexes_.find(addr); it != mutexes_.end()) {
    it->second.name = name;
  }
  if (const auto it = cvs_.find(addr); it != cvs_.end()) {
    it->second.name = name;
  }
}

void Exec::on_location_destroyed(const void* addr) {
  locations_.erase(addr);
  mutexes_.erase(addr);
  cvs_.erase(addr);
}

void Exec::acquire_from(int tid, const StoreRec& s, std::memory_order mo) {
  if (s.release.empty()) return;
  if (has_acquire(mo)) {
    join(clocks_[static_cast<std::size_t>(tid)], s.release);
  } else {
    // Remembered until an acquire fence upgrades this relaxed read.
    join(acq_pending_[static_cast<std::size_t>(tid)], s.release);
  }
}

void Exec::push_store(int tid, Location& loc, std::uint64_t value,
                      std::uint64_t* bits, std::memory_order mo,
                      const Clock* read_from_release) {
  StoreRec s;
  s.value = value;
  s.tid = tid;
  s.time = clocks_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(tid)];
  s.sc = is_seq_cst(mo);
  if (has_release(mo)) {
    s.release = clocks_[static_cast<std::size_t>(tid)];
  } else if (!rel_snap_[static_cast<std::size_t>(tid)].empty()) {
    // A preceding release fence makes this relaxed store a release of
    // everything up to the fence.
    s.release = rel_snap_[static_cast<std::size_t>(tid)];
  }
  if (read_from_release != nullptr && !read_from_release->empty()) {
    // RMW: continues the release sequence of the store it read.
    join(s.release, *read_from_release);
  }
  loc.stores.push_back(std::move(s));
  const int idx = static_cast<int>(loc.stores.size()) - 1;
  loc.floor[static_cast<std::size_t>(tid)] = idx;
  if (is_seq_cst(mo)) loc.last_sc = idx;
  *bits = value;
}

std::uint64_t Exec::op_load(int tid, const void* addr, const std::uint64_t* bits,
                            std::memory_order mo) {
  yield(tid, Pending{Kind::kLoad, addr, nullptr, mo});
  Location& loc = location(addr, *bits);
  sc_pull(tid, mo);
  const int newest = static_cast<int>(loc.stores.size()) - 1;
  int lo = loc.floor[static_cast<std::size_t>(tid)];
  for (int j = newest; j > lo; --j) {
    const StoreRec& s = loc.stores[static_cast<std::size_t>(j)];
    if (s.tid >= 0 &&
        clocks_[static_cast<std::size_t>(tid)][static_cast<std::size_t>(s.tid)] >=
            s.time) {
      lo = j;  // newest store that happens-before the load bounds staleness
      break;
    }
  }
  if (is_seq_cst(mo) && loc.last_sc > lo) lo = loc.last_sc;
  const int ord = choose(newest - lo + 1);  // 0 = newest, explored choice
  const int idx = newest - ord;
  const StoreRec& s = loc.stores[static_cast<std::size_t>(idx)];
  loc.floor[static_cast<std::size_t>(tid)] =
      std::max(loc.floor[static_cast<std::size_t>(tid)], idx);
  tick(tid);
  acquire_from(tid, s, mo);
  sc_push(tid, mo);
  std::string text = "load " + loc.name + " (" + mo_name(mo) + ") = " +
                     val_str(s.value, loc.width);
  if (ord > 0) text += " [stale " + std::to_string(ord) + "]";
  step(tid, std::move(text));
  return s.value;
}

void Exec::op_store(int tid, const void* addr, std::uint64_t* bits,
                    std::uint64_t value, unsigned width, std::memory_order mo) {
  yield(tid, Pending{Kind::kStore, addr, nullptr, mo});
  Location& loc = location(addr, *bits);
  loc.width = width;
  sc_pull(tid, mo);
  tick(tid);
  push_store(tid, loc, value, bits, mo, nullptr);
  sc_push(tid, mo);
  step(tid, "store " + loc.name + " (" + mo_name(mo) + ") = " +
                val_str(value, width));
}

std::uint64_t Exec::op_rmw(int tid, const void* addr, std::uint64_t* bits,
                           Rmw op, std::uint64_t operand, unsigned width,
                           std::memory_order mo) {
  yield(tid, Pending{Kind::kRmw, addr, nullptr, mo});
  Location& loc = location(addr, *bits);
  loc.width = width;
  // An RMW reads the newest store in modification order (atomicity).
  const StoreRec prev = loc.stores.back();
  std::uint64_t next = 0;
  switch (op) {
    case Rmw::kAdd: next = prev.value + operand; break;
    case Rmw::kSub: next = prev.value - operand; break;
    case Rmw::kAnd: next = prev.value & operand; break;
    case Rmw::kOr: next = prev.value | operand; break;
    case Rmw::kXchg: next = operand; break;
  }
  next &= width_mask(width);
  sc_pull(tid, mo);
  tick(tid);
  acquire_from(tid, prev, mo);
  push_store(tid, loc, next, bits, mo, &prev.release);
  sc_push(tid, mo);
  step(tid, std::string(rmw_name(op)) + " " + loc.name + " (" + mo_name(mo) +
                ") " + val_str(prev.value, width) + " -> " + val_str(next, width));
  return prev.value;
}

bool Exec::op_cas(int tid, const void* addr, std::uint64_t* bits,
                  std::uint64_t* expected, std::uint64_t desired, unsigned width,
                  std::memory_order success, std::memory_order failure) {
  yield(tid, Pending{Kind::kCas, addr, nullptr, success});
  Location& loc = location(addr, *bits);
  loc.width = width;
  const StoreRec prev = loc.stores.back();
  sc_pull(tid, success);
  tick(tid);
  if (prev.value != *expected) {
    // Failed CAS = load of the newest store under the failure order (the
    // model does not explore stale failure reads; see CORRECTNESS.md).
    acquire_from(tid, prev, failure);
    loc.floor[static_cast<std::size_t>(tid)] =
        static_cast<int>(loc.stores.size()) - 1;
    sc_push(tid, failure);
    step(tid, "cas " + loc.name + " (" + mo_name(failure) + ") failed: saw " +
                  val_str(prev.value, width) + ", expected " +
                  val_str(*expected, width));
    *expected = prev.value;
    return false;
  }
  acquire_from(tid, prev, success);
  push_store(tid, loc, desired, bits, success, &prev.release);
  sc_push(tid, success);
  step(tid, "cas " + loc.name + " (" + mo_name(success) + ") " +
                val_str(prev.value, width) + " -> " + val_str(desired, width));
  return true;
}

void Exec::op_fence(int tid, std::memory_order mo) {
  yield(tid, Pending{Kind::kFence, nullptr, nullptr, mo});
  tick(tid);
  if (has_acquire(mo)) {
    // Upgrade every earlier relaxed read on this thread to acquire.
    join(clocks_[static_cast<std::size_t>(tid)],
         acq_pending_[static_cast<std::size_t>(tid)]);
    acq_pending_[static_cast<std::size_t>(tid)].clear();
  }
  if (is_seq_cst(mo)) {
    // All seq_cst fences are totally ordered through one global clock.
    join(clocks_[static_cast<std::size_t>(tid)], sc_clock_);
    join(sc_clock_, clocks_[static_cast<std::size_t>(tid)]);
  }
  if (has_release(mo)) {
    rel_snap_[static_cast<std::size_t>(tid)] = clocks_[static_cast<std::size_t>(tid)];
  }
  step(tid, std::string("fence (") + mo_name(mo) + ")");
}

void Exec::op_mutex_lock(int tid, const void* m, const char* why) {
  yield(tid, Pending{Kind::kLock, m});
  MutexRec& rec = mutex_rec(m);
  GCG_EXPECT(!rec.held);  // scheduler only grants enabled lock ops
  rec.held = true;
  rec.owner = tid;
  tick(tid);
  join(clocks_[static_cast<std::size_t>(tid)], rec.release);
  step(tid, "lock " + rec.name + why);
}

bool Exec::op_mutex_try_lock(int tid, const void* m) {
  yield(tid, Pending{Kind::kTryLock, m});
  MutexRec& rec = mutex_rec(m);
  tick(tid);
  if (rec.held) {
    step(tid, "try_lock " + rec.name + " = busy");
    return false;
  }
  rec.held = true;
  rec.owner = tid;
  join(clocks_[static_cast<std::size_t>(tid)], rec.release);
  step(tid, "try_lock " + rec.name + " = acquired");
  return true;
}

void Exec::op_mutex_unlock(int tid, const void* m) {
  // Deliberately NOT a scheduling point: unlock is routinely reached from
  // lock_guard/unique_lock destructors (noexcept frames), where the
  // teardown exception of an aborted execution would std::terminate. The
  // release is bundled with the thread's previous operation instead;
  // nothing observable is lost for plain lock() (a blocked locker has no
  // "busy" outcome to observe), only some try_lock busy windows shrink —
  // see the scope notes in docs/CORRECTNESS.md. The worker holds the turn
  // while running user code, so touching engine state here is safe.
  MutexRec& rec = mutex_rec(m);
  if (!rec.held || rec.owner != tid) {
    op_require_failed(tid, "unlock of " + rec.name +
                               " which this thread does not hold");
  }
  tick(tid);
  join(rec.release, clocks_[static_cast<std::size_t>(tid)]);
  rec.held = false;
  rec.owner = -1;
  step(tid, "unlock " + rec.name);
  // Sleepers caring about this mutex must still be woken: the release
  // does not commute with their pending lock/try_lock.
  if (opts_.sleep_sets) wake_sleepers(Pending{Kind::kUnlock, m});
}

void Exec::op_cv_wait(int tid, const void* cv, const void* m) {
  yield(tid, Pending{Kind::kCvWait, cv, m});
  CvRec& c = cv_rec(cv);
  MutexRec& rec = mutex_rec(m);
  if (!rec.held || rec.owner != tid) {
    op_require_failed(tid, "cv-wait on " + c.name + " without holding " + rec.name);
  }
  // Atomically release the mutex and register as a waiter.
  tick(tid);
  join(rec.release, clocks_[static_cast<std::size_t>(tid)]);
  rec.held = false;
  rec.owner = -1;
  c.waiters.push_back(tid);
  cv_woken_[static_cast<std::size_t>(tid)] = 0;
  step(tid, "cv-wait " + c.name + " (released " + rec.name + ")");

  // Disabled until a notify marks us woken (no spurious wakeups).
  yield(tid, Pending{Kind::kCvWake, cv});
  tick(tid);
  step(tid, "cv-wake " + c.name);

  op_mutex_lock(tid, m, " (cv reacquire)");
}

void Exec::op_cv_notify(int tid, const void* cv, bool all) {
  yield(tid, Pending{Kind::kCvNotify, cv});
  CvRec& c = cv_rec(cv);
  tick(tid);
  if (c.waiters.empty()) {
    step(tid, std::string(all ? "notify-all " : "notify-one ") + c.name +
                  " (no waiters)");
    return;
  }
  if (all) {
    for (int w : c.waiters) cv_woken_[static_cast<std::size_t>(w)] = 1;
    step(tid, "notify-all " + c.name + " (woke " +
                  std::to_string(c.waiters.size()) + ")");
    c.waiters.clear();
    return;
  }
  // Which waiter a notify_one wakes is an explored decision.
  const int k = choose(static_cast<int>(c.waiters.size()));
  const int w = c.waiters[static_cast<std::size_t>(k)];
  cv_woken_[static_cast<std::size_t>(w)] = 1;
  c.waiters.erase(c.waiters.begin() + k);
  step(tid, "notify-one " + c.name + " -> T" + std::to_string(w));
}

void Exec::op_require_failed(int tid, const std::string& msg) {
  failed_ = true;
  fail_msg_ = msg;
  step(tid, "FAILED: " + msg);
  tls_aborting = true;
  throw AbortExecution{};
}

void Exec::scheduler_require_failed(const std::string& msg) {
  failed_ = true;
  fail_msg_ = msg;
  steps_.push_back(Step{-1, "FAILED (finally): " + msg});
  throw AbortExecution{};
}

bool modeled() { return g_active != nullptr && tls_tid >= 0 && !tls_aborting; }

}  // namespace

// ---------------------------------------------------------------------------
// Hooks called from mc/model.hpp (external linkage). A call is modeled
// only when it comes from a logical thread of the active execution;
// everything else (model reset()/finally() on the scheduler thread,
// teardown unwinding, plain use without a checker) falls back to the raw
// mirrored bits.

std::uint64_t atomic_load(const void* addr, const std::uint64_t* bits,
                          std::memory_order mo) {
  if (!modeled()) return *bits;
  return g_active->op_load(tls_tid, addr, bits, mo);
}

void atomic_store(const void* addr, std::uint64_t* bits, std::uint64_t value,
                  unsigned width, std::memory_order mo) {
  if (!modeled()) {
    *bits = value;
    return;
  }
  g_active->op_store(tls_tid, addr, bits, value, width, mo);
}

std::uint64_t atomic_rmw(const void* addr, std::uint64_t* bits, Rmw op,
                         std::uint64_t operand, unsigned width,
                         std::memory_order mo) {
  if (!modeled()) {
    const std::uint64_t old = *bits;
    std::uint64_t next = 0;
    switch (op) {
      case Rmw::kAdd: next = old + operand; break;
      case Rmw::kSub: next = old - operand; break;
      case Rmw::kAnd: next = old & operand; break;
      case Rmw::kOr: next = old | operand; break;
      case Rmw::kXchg: next = operand; break;
    }
    *bits = next & width_mask(width);
    return old;
  }
  return g_active->op_rmw(tls_tid, addr, bits, op, operand, width, mo);
}

bool atomic_cas(const void* addr, std::uint64_t* bits, std::uint64_t* expected,
                std::uint64_t desired, unsigned width,
                std::memory_order success, std::memory_order failure) {
  if (!modeled()) {
    if (*bits != *expected) {
      *expected = *bits;
      return false;
    }
    *bits = desired;
    return true;
  }
  return g_active->op_cas(tls_tid, addr, bits, expected, desired, width,
                          success, failure);
}

void thread_fence(std::memory_order mo) {
  if (!modeled()) return;
  g_active->op_fence(tls_tid, mo);
}

void location_destroyed(const void* addr) {
  if (g_active != nullptr && !tls_aborting) g_active->on_location_destroyed(addr);
}

void mutex_lock(const void* m) {
  if (!modeled()) return;
  g_active->op_mutex_lock(tls_tid, m, "");
}

bool mutex_try_lock(const void* m) {
  if (!modeled()) return true;
  return g_active->op_mutex_try_lock(tls_tid, m);
}

void mutex_unlock(const void* m) {
  if (!modeled()) return;
  g_active->op_mutex_unlock(tls_tid, m);
}

void cv_wait(const void* cv, const void* m) {
  if (!modeled()) return;  // unmodeled predicate loops re-check and move on
  g_active->op_cv_wait(tls_tid, cv, m);
}

void cv_notify(const void* cv, bool all) {
  if (!modeled()) return;
  g_active->op_cv_notify(tls_tid, cv, all);
}

void require_failed(const char* cond, const char* file, int line) {
  const std::string msg = std::string("MC_REQUIRE failed: ") + cond + " at " +
                          file + ":" + std::to_string(line);
  if (g_active != nullptr && tls_tid >= 0 && !tls_aborting) {
    g_active->op_require_failed(tls_tid, msg);
  }
  if (g_active != nullptr && tls_tid < 0) {
    g_active->scheduler_require_failed(msg);
  }
  // No active check (or already unwinding): behave like GCG_EXPECT.
  std::fprintf(stderr, "gcgpu: %s\n", msg.c_str());
  std::abort();
}

}  // namespace detail

void set_name(const void* addr, const char* name) {
  if (detail::g_active != nullptr) detail::g_active->set_location_name(addr, name);
}

Result check(Model& model, const Options& opts) {
  Result res;
  detail::Exec exec(model, opts, nullptr);
  while (true) {
    exec.run_one();
    ++res.executions;
    if (exec.failed()) {
      res.ok = false;
      res.failure = exec.fail_msg();
      res.trace = exec.format_trace();
      res.trail = exec.export_trail();
      break;
    }
    if (!exec.advance()) break;  // search space exhausted
    if (res.executions >= opts.max_executions) {
      res.complete = false;
      break;
    }
  }
  return res;
}

Result replay(Model& model, const std::vector<int>& trail, const Options& opts) {
  Result res;
  detail::Exec exec(model, opts, &trail);
  exec.run_one();
  res.executions = 1;
  if (exec.failed()) {
    res.ok = false;
    res.failure = exec.fail_msg();
    res.trace = exec.format_trace();
  }
  res.trail = trail;
  return res;
}

}  // namespace gcg::mc
