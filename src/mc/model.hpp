// Modeled drop-in stand-ins for the std:: synchronization vocabulary that
// production code reaches through the sync:: seam (util/sync.hpp):
// mc::atomic<T>, mc::atomic_flag, mc::mutex and mc::condition_variable
// mirror the std:: APIs, but every operation is announced to the model
// checker (mc/checker.hpp), which schedules it explicitly and interprets
// its memory order under a modeled C++11 memory model — a relaxed load
// may legally return any store that coherence and happens-before do not
// rule out, not just the newest one, so too-weak orderings fail here even
// though the host CPU (x86) would never exhibit them.
//
// Outside an active check() — during Model::reset()/finally(), or in
// plain single-threaded use — every operation falls back to its raw
// mirrored value, so models can build and inspect state without ceremony.
#pragma once

#include <atomic>  // std::memory_order: the modeled API reuses the std enum
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace gcg::mc {

namespace detail {

enum class Rmw : std::uint8_t { kAdd, kSub, kAnd, kOr, kXchg };

// Engine hooks, implemented in checker.cpp. `bits` is the location's raw
// mirror inside the atomic object; the engine keeps it equal to the
// newest store so that out-of-execution reads (reset/finally) see the
// final value. All hooks fall back to plain `*bits` access when no
// execution is active on the calling thread.
std::uint64_t atomic_load(const void* addr, const std::uint64_t* bits,
                          std::memory_order mo);
void atomic_store(const void* addr, std::uint64_t* bits, std::uint64_t value,
                  unsigned width, std::memory_order mo);
std::uint64_t atomic_rmw(const void* addr, std::uint64_t* bits, Rmw op,
                         std::uint64_t operand, unsigned width,
                         std::memory_order mo);  // returns the old value
bool atomic_cas(const void* addr, std::uint64_t* bits, std::uint64_t* expected,
                std::uint64_t desired, unsigned width,
                std::memory_order success, std::memory_order failure);
void thread_fence(std::memory_order mo);
void location_destroyed(const void* addr);
void mutex_lock(const void* m);
bool mutex_try_lock(const void* m);
void mutex_unlock(const void* m);
void cv_wait(const void* cv, const void* m);
void cv_notify(const void* cv, bool all);
[[noreturn]] void require_failed(const char* cond, const char* file, int line);

// order: modeled defaults/mappings mirroring the std::atomic signatures —
// these named constants are data interpreted by the checker, not host
// synchronization, and exist so call sites below need no annotations.
inline constexpr std::memory_order kSeqCst = std::memory_order_seq_cst;
inline constexpr std::memory_order kRelaxed = std::memory_order_relaxed;
inline constexpr std::memory_order kAcquire = std::memory_order_acquire;
inline constexpr std::memory_order kRelease = std::memory_order_release;
inline constexpr std::memory_order kAcqRel = std::memory_order_acq_rel;

// [atomics.types.operations]/21: the one-order compare_exchange overloads
// derive the failure order by stripping the release half.
constexpr std::memory_order cas_failure_order(std::memory_order success) {
  if (success == kAcqRel) return kAcquire;
  if (success == kRelease) return kRelaxed;
  return success;
}

template <class T>
std::uint64_t to_bits(T v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(T));
  return bits;
}

template <class T>
T from_bits(std::uint64_t bits) {
  T v;
  std::memcpy(&v, &bits, sizeof(T));
  return v;
}

}  // namespace detail

/// Name a modeled location for failure traces: call from Model::reset()
/// after constructing the object (`mc::set_name(&top_, "top")`). Ignored
/// when no check is active.
void set_name(const void* addr, const char* name);

template <class T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "mc::atomic models word-sized trivially copyable types");
  static_assert(std::has_unique_object_representations_v<T>,
                "padding bits would break modeled compare-exchange");

 public:
  atomic() noexcept : atomic(T{}) {}
  atomic(T v) noexcept : bits_(detail::to_bits(v)) {}
  ~atomic() { detail::location_destroyed(this); }
  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = detail::kSeqCst) const {
    return detail::from_bits<T>(detail::atomic_load(this, &bits_, mo));
  }
  void store(T v, std::memory_order mo = detail::kSeqCst) {
    detail::atomic_store(this, &bits_, detail::to_bits(v), sizeof(T), mo);
  }
  operator T() const { return load(); }
  T operator=(T v) {
    store(v);
    return v;
  }

  T exchange(T v, std::memory_order mo = detail::kSeqCst) {
    return detail::from_bits<T>(detail::atomic_rmw(
        this, &bits_, detail::Rmw::kXchg, detail::to_bits(v), sizeof(T), mo));
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    std::uint64_t exp = detail::to_bits(expected);
    const bool ok = detail::atomic_cas(this, &bits_, &exp,
                                       detail::to_bits(desired), sizeof(T),
                                       success, failure);
    expected = detail::from_bits<T>(exp);
    return ok;
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = detail::kSeqCst) {
    return compare_exchange_strong(expected, desired, mo,
                                   detail::cas_failure_order(mo));
  }
  // The model has no spurious failures, so weak == strong. Callers'
  // retry loops still terminate; they just never take the spurious arm.
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return compare_exchange_strong(expected, desired, success, failure);
  }
  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = detail::kSeqCst) {
    return compare_exchange_strong(expected, desired, mo);
  }

  template <class U = T, class = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order mo = detail::kSeqCst) {
    return detail::from_bits<T>(detail::atomic_rmw(
        this, &bits_, detail::Rmw::kAdd, detail::to_bits(delta), sizeof(T), mo));
  }
  template <class U = T, class = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order mo = detail::kSeqCst) {
    return detail::from_bits<T>(detail::atomic_rmw(
        this, &bits_, detail::Rmw::kSub, detail::to_bits(delta), sizeof(T), mo));
  }
  template <class U = T, class = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_and(T mask, std::memory_order mo = detail::kSeqCst) {
    return detail::from_bits<T>(detail::atomic_rmw(
        this, &bits_, detail::Rmw::kAnd, detail::to_bits(mask), sizeof(T), mo));
  }
  template <class U = T, class = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_or(T mask, std::memory_order mo = detail::kSeqCst) {
    return detail::from_bits<T>(detail::atomic_rmw(
        this, &bits_, detail::Rmw::kOr, detail::to_bits(mask), sizeof(T), mo));
  }

 private:
  mutable std::uint64_t bits_;
};

class atomic_flag {
 public:
  constexpr atomic_flag() noexcept = default;
  ~atomic_flag() { detail::location_destroyed(this); }
  atomic_flag(const atomic_flag&) = delete;
  atomic_flag& operator=(const atomic_flag&) = delete;

  bool test_and_set(std::memory_order mo = detail::kSeqCst) {
    return detail::atomic_rmw(this, &bits_, detail::Rmw::kXchg, 1,
                              sizeof(std::uint64_t), mo) != 0;
  }
  void clear(std::memory_order mo = detail::kSeqCst) {
    detail::atomic_store(this, &bits_, 0, sizeof(std::uint64_t), mo);
  }
  bool test(std::memory_order mo = detail::kSeqCst) const {
    return detail::atomic_load(this, &bits_, mo) != 0;
  }

 private:
  mutable std::uint64_t bits_ = 0;
};

inline void atomic_thread_fence(std::memory_order mo) {
  detail::thread_fence(mo);
}

/// Modeled std::mutex: lock is a scheduling point (disabled while held),
/// unlock→lock edges carry happens-before. Non-recursive; unlocking a
/// mutex the calling thread does not hold fails the execution.
class mutex {
 public:
  mutex() = default;
  ~mutex() { detail::location_destroyed(this); }
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() { detail::mutex_lock(this); }
  bool try_lock() { return detail::mutex_try_lock(this); }
  void unlock() { detail::mutex_unlock(this); }
};

/// Modeled std::condition_variable (over mc::mutex, via any Lock with a
/// .mutex() accessor, e.g. std::unique_lock<mc::mutex>). No spurious
/// wakeups: a wait only resumes after a notify, so lost-wakeup bugs
/// surface as modeled deadlocks instead of being masked by spurious
/// retries. notify_one picks each eligible waiter in turn across
/// executions.
class condition_variable {
 public:
  condition_variable() = default;
  ~condition_variable() { detail::location_destroyed(this); }
  condition_variable(const condition_variable&) = delete;
  condition_variable& operator=(const condition_variable&) = delete;

  void notify_one() { detail::cv_notify(this, false); }
  void notify_all() { detail::cv_notify(this, true); }
  template <class Lock>
  void wait(Lock& lk) {
    detail::cv_wait(this, lk.mutex());
  }
  template <class Lock, class Pred>
  void wait(Lock& lk, Pred pred) {
    while (!pred()) wait(lk);
  }
};

}  // namespace gcg::mc

/// Model-level assertion: fails the current execution (recording the
/// trace that led here) instead of aborting the process, so the checker
/// can report the interleaving. Outside a check it aborts like GCG_EXPECT.
#define MC_REQUIRE(cond)                                                \
  do {                                                                  \
    if (!(cond)) ::gcg::mc::detail::require_failed(#cond, __FILE__, __LINE__); \
  } while (0)
