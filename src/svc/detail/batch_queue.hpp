// Bounded MPMC batching queue, extracted from job_queue.hpp as a template
// over the job handle + a Traits policy so the model checker can
// instantiate the exact production code on a tiny test job type:
// tests/mc/test_mc_queue.cpp compiles this file with GCG_MC_MODEL and
// exhaustively checks FIFO-per-producer batching and shutdown. The
// service front door (svc::JobQueue) is an instantiation over JobPtr.
// Internal header.
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace gcg::svc::detail {

/// Bounded queue with batch-by-key pops and explicit backpressure: a full
/// queue rejects at push time instead of buffering unboundedly, and
/// pop_batch drains all queued entries sharing the front's batching key.
///
/// Traits must provide, for a `const JobT& j`:
///   * `Traits::key(j)` — the batching key (equality-comparable),
///   * `Traits::id(j)`  — the removal id (equality-comparable).
/// JobT must be movable; a moved-from JobT is returned as the "not found"
/// value from remove()/remove_front(), so JobT{} should be falsy-testable
/// by callers (shared_ptr, optional, ...).
template <class JobT, class Traits>
class BasicBatchQueue {
 public:
  using id_type = std::decay_t<decltype(Traits::id(std::declval<const JobT&>()))>;


  /// capacity = max queued (not yet dispatched) jobs before push rejects.
  explicit BasicBatchQueue(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("job queue capacity must be >= 1");
    }
  }

  /// Non-blocking; false means the queue is full (backpressure) or closed.
  bool try_push(JobT job) {
    {
      sync::LockGuard lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
  }

  /// Pops the oldest job plus up to `batch_limit - 1` younger jobs whose
  /// key matches the front's. Blocks while empty; returns an empty vector
  /// once closed and drained.
  std::vector<JobT> pop_batch(std::size_t batch_limit) {
    sync::LockGuard lock(mu_);
    while (!closed_ && q_.empty()) cv_.wait(mu_);
    std::vector<JobT> batch;
    if (q_.empty()) return batch;  // closed and drained

    batch.push_back(std::move(q_.front()));
    q_.pop_front();
    const auto& key = Traits::key(batch.front());
    for (auto it = q_.begin();
         it != q_.end() &&
         batch.size() < std::max<std::size_t>(batch_limit, 1);) {
      if (Traits::key(*it) == key) {
        batch.push_back(std::move(*it));
        it = q_.erase(it);
      } else {
        ++it;
      }
    }
    return batch;
  }

  /// Removes a queued job by id (for cancellation before dispatch).
  /// Returns the job if it was still queued, JobT{} otherwise.
  JobT remove(const id_type& id) {
    sync::LockGuard lock(mu_);
    const auto it = std::find_if(q_.begin(), q_.end(), [&](const JobT& j) {
      return Traits::id(j) == id;
    });
    if (it == q_.end()) return JobT{};
    JobT job = std::move(*it);
    q_.erase(it);
    return job;
  }

  /// Pops the oldest queued job without blocking; JobT{} when empty.
  /// Used by non-draining shutdown to retire the backlog.
  JobT remove_front() {
    sync::LockGuard lock(mu_);
    if (q_.empty()) return JobT{};
    JobT job = std::move(q_.front());
    q_.pop_front();
    return job;
  }

  /// No further pushes; blocked pop_batch calls drain then return empty.
  void close() {
    {
      sync::LockGuard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    sync::LockGuard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    sync::LockGuard lock(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  std::deque<JobT> q_ GCG_GUARDED_BY(mu_);
  bool closed_ GCG_GUARDED_BY(mu_) = false;
};

}  // namespace gcg::svc::detail
