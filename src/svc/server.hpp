// Concurrent line-delimited-JSON request server over a Unix-domain stream
// socket. One acceptor thread plus one thread per connection; every verb
// except "shutdown" is delegated to svc::handle_request. Graceful
// shutdown (stop() or the shutdown verb) stops accepting, unblocks and
// joins connection threads, drains the scheduler, and unlinks the socket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "svc/json.hpp"
#include "svc/scheduler.hpp"
#include "util/sync.hpp"

namespace gcg::svc {

struct ServerOptions {
  std::string socket_path;  ///< required; unlinked+rebound on start
  SchedulerOptions scheduler;
  int backlog = 64;
};

class Server {
 public:
  /// Replaces the scheduler protocol for handler-mode servers: called
  /// once per parsed request (never for the shutdown verb, which the
  /// server keeps intercepting); the return value is the reply. Runs on
  /// connection threads, so it must be thread-safe. Exceptions become
  /// bad_request replies.
  using Handler = std::function<Json(const Json&)>;

  /// Binds and starts serving immediately; throws std::runtime_error on
  /// socket/bind/listen failure (e.g. path too long for sockaddr_un).
  explicit Server(ServerOptions opts);

  /// Handler-mode server: same socket/framing/lifecycle, but every
  /// request is dispatched to `handler` instead of a Scheduler (none is
  /// created; scheduler() must not be called). The shard worker serves
  /// its verbs this way.
  Server(ServerOptions opts, Handler handler);
  ~Server();  ///< equivalent to stop()
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Blocks until stop() is called or a client sends the shutdown verb.
  /// Does NOT tear down — call stop() after (the destructor also does).
  void wait();

  /// Like wait() but returns after `timeout_ms` at the latest. True once
  /// stop has been requested — lets callers poll a signal flag between
  /// waits (std::signal handlers can't notify a condition variable).
  bool wait_for(double timeout_ms);

  /// Async-signal-friendly: just flags the server to stop; wait() wakes.
  void request_stop();

  /// Full graceful teardown: stop accepting, unblock + join connection
  /// threads, drain the scheduler, unlink the socket. Idempotent.
  void stop();

  const std::string& socket_path() const { return opts_.socket_path; }
  /// Scheduler-mode only; undefined in handler mode.
  Scheduler& scheduler() { return *scheduler_; }
  std::uint64_t connections_served() const;

 private:
  void start();
  void accept_loop();
  void serve_connection(int fd, std::uint64_t conn_id);
  void reap_finished();
  void close_listener();

  ServerOptions opts_;
  std::unique_ptr<Scheduler> scheduler_;  // null in handler mode
  Handler handler_;                       // null in scheduler mode
  int listen_fd_ = -1;

  std::thread acceptor_;

  // Lock ordering: mu_ (acceptor/connection state) is always acquired
  // BEFORE done_mu_ (the finished-thread parking list). The only path
  // holding both is a connection thread's exit, which moves its own
  // handle from connections_ (under mu_) onto finished_ (under
  // done_mu_). reap_finished() takes done_mu_ alone, so the acceptor can
  // drain exited threads without contending with connection setup. The
  // order is declared to clang TSA via GCG_ACQUIRED_AFTER and asserted
  // at runtime in debug builds (GCG_SVC_LOCK_RANK in server.cpp).
  mutable sync::Mutex mu_;
  sync::CondVar stop_cv_;
  bool stop_requested_ GCG_GUARDED_BY(mu_) = false;
  bool stopped_ GCG_GUARDED_BY(mu_) = false;
  /// Still serving.
  std::map<std::uint64_t, std::thread> connections_ GCG_GUARDED_BY(mu_);
  std::uint64_t next_conn_id_ GCG_GUARDED_BY(mu_) = 1;
  std::uint64_t connections_served_ GCG_GUARDED_BY(mu_) = 0;
  /// shutdown()'d to unblock reads.
  std::map<std::uint64_t, int> open_fds_ GCG_GUARDED_BY(mu_);

  mutable sync::Mutex done_mu_ GCG_ACQUIRED_AFTER(mu_);
  /// Exited; acceptor/stop joins them.
  std::vector<std::thread> finished_ GCG_GUARDED_BY(done_mu_);
};

}  // namespace gcg::svc
