// Job model for the coloring service: what a client asks for (JobSpec),
// what the service records about it (JobRecord), and what comes back
// (JobResult). JobRecords are shared between the queue, the scheduler's
// dispatcher threads, and any number of waiting/polling clients, so all
// mutable state is guarded by the record's own mutex (except the cancel
// flag, which the par backend polls lock-free mid-run).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coloring/common.hpp"
#include "util/sync.hpp"

namespace gcg::svc {

/// Which execution backend colors the graph.
enum class Backend {
  kPar,    ///< native multicore (par::run_par_coloring) — the serving path
  kSim,    ///< simulated GPU (run_coloring) — characterization jobs
  kShard,  ///< multi-process sharded coloring (src/shard/ coordinator)
};

const char* backend_name(Backend b);
Backend backend_from_name(const std::string& name);

struct JobSpec {
  std::string graph;            ///< registry spec: path or gen:name?...
  Backend backend = Backend::kPar;
  std::string algorithm = "steal";  ///< backend-specific algorithm name
  std::string priority = "random";  ///< PriorityMode name
  std::uint64_t seed = 1;
  unsigned threads = 0;         ///< par only: 0 = scheduler's per-job pool
  std::uint32_t grain = 0;      ///< par only: chunk grain; 0 = backend default
  std::string schedule;         ///< par only: "vertex"|"edge"; "" = default
  std::uint32_t hub_threshold = 0;  ///< par only: hub degree cutoff; 0 = auto
  /// par only: preprocessing vertex order ("degree-desc", "rcm", ...;
  /// graph/reorder.hpp names); "" = natural. Colors come back in the
  /// graph's original vertex ids regardless. For kShard use a gen: spec
  /// with an order= parameter instead (the workers must resolve the
  /// reordered graph themselves).
  std::string order;
  double deadline_ms = 0.0;     ///< from submit; 0 = no deadline
  bool keep_colors = false;     ///< retain the full color array in the result
  unsigned shards = 0;          ///< shard only: partition count; 0 = default
  unsigned shard_rounds = 0;    ///< shard only: conflict-round cap; 0 = default
};

enum class JobStatus {
  kQueued,
  kRunning,
  kDone,       ///< completed, result valid
  kFailed,     ///< load/run/verify error; result.error says why
  kCancelled,  ///< cancel verb or deadline fired before completion
};

const char* job_status_name(JobStatus s);

struct JobResult {
  int num_colors = 0;
  unsigned iterations = 0;
  double run_ms = 0.0;        ///< wall time inside the coloring run
  double latency_ms = 0.0;    ///< submit -> terminal state
  double queue_ms = 0.0;      ///< submit -> dispatch
  unsigned threads = 0;       ///< threads the run actually used
  bool verified = false;      ///< conflict-free per check::verify_coloring
  bool cache_hit = false;     ///< graph came from the registry cache
  bool mapped = false;        ///< graph served zero-copy off the mmap store
  std::string error;          ///< set for kFailed / kCancelled
  std::vector<color_t> colors;  ///< only when spec.keep_colors
  // --- shard backend only (shards == 0 otherwise) --------------------------
  unsigned shards = 0;            ///< shards the graph was partitioned into
  unsigned conflict_rounds = 0;   ///< boundary conflict rounds driven
  std::uint64_t recolored = 0;    ///< vertices recolored across all rounds
  double boundary_fraction = 0.0; ///< boundary vertices / total vertices
};

/// One job's full lifetime. Status/result transitions happen under `mu`
/// and are announced on `cv`; `cancel` is an atomic so the running
/// coloring can poll it without locking.
struct JobRecord {
  JobRecord(std::uint64_t job_id, JobSpec s, std::string key,
            std::chrono::steady_clock::time_point now)
      : id(job_id), spec(std::move(s)), graph_key(std::move(key)),
        submitted(now) {}

  const std::uint64_t id;
  const JobSpec spec;
  const std::string graph_key;  ///< canonical registry key (batching key)
  const std::chrono::steady_clock::time_point submitted;
  sync::atomic<bool> cancel{false};

  mutable sync::Mutex mu;
  mutable sync::CondVar cv;
  JobStatus status GCG_GUARDED_BY(mu) = JobStatus::kQueued;
  JobResult result GCG_GUARDED_BY(mu);

  bool terminal_locked() const GCG_REQUIRES(mu) {
    return status == JobStatus::kDone || status == JobStatus::kFailed ||
           status == JobStatus::kCancelled;
  }
};

using JobPtr = std::shared_ptr<JobRecord>;

/// Immutable copy of a job's externally visible state, safe to serialize
/// after the record has moved on.
struct JobSnapshot {
  std::uint64_t id = 0;
  JobSpec spec;
  JobStatus status = JobStatus::kQueued;
  JobResult result;
};

JobSnapshot snapshot(const JobRecord& rec);

}  // namespace gcg::svc
