#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "svc/protocol.hpp"
#include "util/expect.hpp"
#include "util/log.hpp"
#include "util/narrow.hpp"

namespace gcg::svc {

namespace {

#if !defined(NDEBUG)
// Runtime check of the documented mu_ -> done_mu_ lock order (server.hpp).
// Clang TSA proves the order statically via GCG_ACQUIRED_AFTER, but only
// on clang builds; this thread-local rank stack catches an inversion on
// any debug build, under TSan, and in the model-check lanes. Each lock
// site declares its rank right after acquiring; acquiring a rank not
// strictly above the one already held aborts.
thread_local int t_held_rank = 0;

class LockRank {
 public:
  explicit LockRank(int rank) : prev_(t_held_rank) {
    GCG_DCHECK(prev_ < rank);  // lock-order inversion (see server.hpp)
    t_held_rank = rank;
  }
  ~LockRank() { t_held_rank = prev_; }
  LockRank(const LockRank&) = delete;
  LockRank& operator=(const LockRank&) = delete;

 private:
  int prev_;
};

#define GCG_SVC_LOCK_RANK(var, rank) const LockRank var(rank)
#else
#define GCG_SVC_LOCK_RANK(var, rank) ((void)0)
#endif

[[maybe_unused]] constexpr int kRankAcceptor = 1;  // mu_
[[maybe_unused]] constexpr int kRankDoneList = 2;  // done_mu_ (nests inside mu_)

/// Writes all of `data` + '\n'; false on a broken connection.
/// MSG_NOSIGNAL: a client that disconnects before its reply arrives must
/// yield EPIPE here, not a process-killing SIGPIPE.
bool write_line(int fd, const std::string& data) {
  std::string line = data;
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE/ECONNRESET: peer is gone
    }
    off += to_unsigned(n);
  }
  return true;
}

/// Buffered line reader over a blocking fd.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF / error; strips the trailing '\n' (and '\r').
  bool next(std::string& line) {
    line.clear();
    while (true) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // EOF; any partial line is dropped
      buf_.append(chunk, to_unsigned(n));
      if (buf_.size() > kMaxLine) return false;  // oversized request
    }
  }

 private:
  static constexpr std::size_t kMaxLine = 16u << 20;  // 16 MiB
  int fd_;
  std::string buf_;
};

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  start();
  scheduler_ = std::make_unique<Scheduler>(opts_.scheduler);
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::Server(ServerOptions opts, Handler handler)
    : opts_(std::move(opts)), handler_(std::move(handler)) {
  if (!handler_) {
    throw std::runtime_error("server: handler must be callable");
  }
  start();
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::start() {
  if (opts_.socket_path.empty()) {
    throw std::runtime_error("server: socket_path is required");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("server: socket path too long: " +
                             opts_.socket_path);
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("server: socket(): ") +
                             std::strerror(errno));
  }
  ::unlink(opts_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    throw std::runtime_error("server: bind(" + opts_.socket_path +
                             "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, opts_.backlog) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    ::unlink(opts_.socket_path.c_str());
    throw std::runtime_error(std::string("server: listen(): ") +
                             std::strerror(err));
  }
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  while (true) {
    reap_finished();
    {
      sync::LockGuard lock(mu_);
      GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
      if (stop_requested_) return;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);  // 100 ms stop-flag poll
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (r == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener closed
    }
    sync::LockGuard lock(mu_);
    GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
    if (stop_requested_) {
      ::close(fd);
      return;
    }
    const std::uint64_t id = next_conn_id_++;
    ++connections_served_;
    open_fds_[id] = fd;
    connections_[id] = std::thread([this, fd, id] {
      serve_connection(fd, id);
    });
  }
}

void Server::serve_connection(int fd, std::uint64_t conn_id) {
  LineReader reader(fd);
  std::string line;
  bool shutdown_verb = false;
  while (!shutdown_verb && reader.next(line)) {
    if (line.empty()) continue;

    std::string reply;
    Json req;
    bool parsed = true;
    try {
      req = Json::parse(line);
    } catch (const std::exception& e) {
      reply = error_reply(kErrProtocol, e.what()).dump();
      parsed = false;
    }

    if (parsed) {
      // Intercept the lifecycle verb; everything else is protocol-layer.
      if (req.is_object() && req.get_string("op", "") == "shutdown") {
        Json out{JsonObject{}};
        out["ok"] = Json(true);
        out["stopping"] = Json(true);
        reply = out.dump();
        shutdown_verb = true;
      } else if (handler_) {
        try {
          reply = handler_(req).dump();
        } catch (const std::exception& e) {
          reply = error_reply(kErrBadRequest, e.what()).dump();
        }
      } else {
        reply = handle_request(*scheduler_, req).dump();
      }
    }
    if (!write_line(fd, reply)) break;
  }

  ::close(fd);
  {
    // The one place both locks are held: mu_ first, done_mu_ nested —
    // the documented order (server.hpp).
    sync::LockGuard lock(mu_);
    GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
    open_fds_.erase(conn_id);
    // Park our own thread handle on the done-list for the acceptor (or
    // stop()) to join — a long-running server must not accumulate one
    // unjoined thread per connection ever served. stop() may already
    // have claimed the handle, in which case it joins us directly.
    const auto it = connections_.find(conn_id);
    if (it != connections_.end()) {
      sync::LockGuard done_lock(done_mu_);
      GCG_SVC_LOCK_RANK(done_rank, kRankDoneList);
      finished_.push_back(std::move(it->second));
      connections_.erase(it);
    }
  }
  if (shutdown_verb) request_stop();
}

void Server::reap_finished() {
  std::vector<std::thread> done;
  {
    sync::LockGuard lock(done_mu_);
    GCG_SVC_LOCK_RANK(rank, kRankDoneList);
    done.swap(finished_);
  }
  // Joins happen outside the lock: the threads' own exit path locks
  // mu_ and done_mu_.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::request_stop() {
  {
    sync::LockGuard lock(mu_);
    GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  sync::LockGuard lock(mu_);
  GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
  while (!stop_requested_) stop_cv_.wait(mu_);
}

bool Server::wait_for(double timeout_ms) {
  using Clock = std::chrono::steady_clock;
  // Deadline-based so a spurious wakeup cannot stretch the timeout.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(timeout_ms));
  sync::LockGuard lock(mu_);
  GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
  while (!stop_requested_ && stop_cv_.wait_until(mu_, deadline)) {}
  return stop_requested_;
}

void Server::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::stop() {
  request_stop();

  if (acceptor_.joinable()) acceptor_.join();
  close_listener();

  // Unblock connection threads stuck in read()/wait and join them. The
  // map is drained under the lock but joins happen outside it, since the
  // threads themselves lock mu_ on exit.
  while (true) {
    std::thread victim;
    {
      sync::LockGuard lock(mu_);
      GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
      if (connections_.empty()) break;
      const auto it = connections_.begin();
      const auto fd_it = open_fds_.find(it->first);
      if (fd_it != open_fds_.end()) {
        ::shutdown(fd_it->second, SHUT_RDWR);  // wakes the blocked read
      }
      victim = std::move(it->second);
      connections_.erase(it);
    }
    if (victim.joinable()) victim.join();
  }
  reap_finished();  // threads that exited on their own since the last reap

  {
    sync::LockGuard lock(mu_);
    GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
    if (stopped_) return;
    stopped_ = true;
  }
  if (scheduler_) scheduler_->shutdown(/*drain=*/true);
  ::unlink(opts_.socket_path.c_str());
  GCG_LOG(kInfo) << "svc: server on " << opts_.socket_path << " stopped";
}

std::uint64_t Server::connections_served() const {
  sync::LockGuard lock(mu_);
  GCG_SVC_LOCK_RANK(rank, kRankAcceptor);
  return connections_served_;
}

}  // namespace gcg::svc
