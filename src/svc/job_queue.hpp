// Bounded MPMC queue of coloring jobs with explicit backpressure: a full
// queue rejects at submit time (the server turns that into a distinct
// `queue_full` reply) instead of buffering unboundedly — the service-layer
// mirror of the paper's bounded per-CU work queues. Dispatchers pop in
// FIFO order but drain *all* queued jobs for the same graph key in one
// batch, so a hot graph is looked up once and stays cache-resident across
// the whole batch.
//
// The queue machinery itself lives in svc/detail/batch_queue.hpp as a
// template so the model checker can instantiate the identical code on a
// tiny job type (tests/mc/test_mc_queue.cpp); this header only binds it
// to JobPtr.
#pragma once

#include <cstdint>
#include <string>

#include "svc/detail/batch_queue.hpp"
#include "svc/job.hpp"

namespace gcg::svc {

/// How BasicBatchQueue reads a JobRecord: batches share a graph_key so a
/// hot graph is looked up once; removal is by job id.
struct JobQueueTraits {
  static const std::string& key(const JobPtr& j) { return j->graph_key; }
  static std::uint64_t id(const JobPtr& j) { return j->id; }
};

// The one shared instantiation lives in job_queue.cpp.
extern template class detail::BasicBatchQueue<JobPtr, JobQueueTraits>;

class JobQueue : public detail::BasicBatchQueue<JobPtr, JobQueueTraits> {
  using Base = detail::BasicBatchQueue<JobPtr, JobQueueTraits>;

 public:
  using Base::Base;
};

}  // namespace gcg::svc
