// Bounded MPMC queue of coloring jobs with explicit backpressure: a full
// queue rejects at submit time (the server turns that into a distinct
// `queue_full` reply) instead of buffering unboundedly — the service-layer
// mirror of the paper's bounded per-CU work queues. Dispatchers pop in
// FIFO order but drain *all* queued jobs for the same graph key in one
// batch, so a hot graph is looked up once and stays cache-resident across
// the whole batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace gcg::svc {

class JobQueue {
 public:
  /// capacity = max queued (not yet dispatched) jobs before push rejects.
  explicit JobQueue(std::size_t capacity);

  /// Non-blocking; false means the queue is full (backpressure) or closed.
  bool try_push(JobPtr job);

  /// Pops the oldest job plus up to `batch_limit - 1` younger jobs whose
  /// JobRecord::graph_key matches the front's. Blocks while empty;
  /// returns an empty vector once closed and drained.
  std::vector<JobPtr> pop_batch(std::size_t batch_limit);

  /// Removes a queued job by id (for cancellation before dispatch).
  /// Returns the record if it was still queued.
  JobPtr remove(std::uint64_t id);

  /// Pops the oldest queued job without blocking; nullptr when empty.
  /// Used by non-draining shutdown to retire the backlog.
  JobPtr remove_front();

  /// No further pushes; blocked pop_batch calls drain then return empty.
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<JobPtr> q_;
  bool closed_ = false;
};

}  // namespace gcg::svc
