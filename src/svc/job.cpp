#include "svc/job.hpp"

#include <stdexcept>

namespace gcg::svc {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kPar: return "par";
    case Backend::kSim: return "sim";
    case Backend::kShard: return "shard";
  }
  return "?";
}

Backend backend_from_name(const std::string& name) {
  if (name == "par") return Backend::kPar;
  if (name == "sim") return Backend::kSim;
  if (name == "shard") return Backend::kShard;
  throw std::invalid_argument("unknown backend: " + name + " (par|sim|shard)");
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "?";
}

JobSnapshot snapshot(const JobRecord& rec) {
  JobSnapshot s;
  s.id = rec.id;
  s.spec = rec.spec;
  sync::LockGuard lock(rec.mu);
  s.status = rec.status;
  s.result = rec.result;
  return s;
}

}  // namespace gcg::svc
