#include "svc/job_queue.hpp"

namespace gcg::svc::detail {

// Pin the service instantiation into one object file so every user of
// JobQueue shares it instead of re-instantiating the template per TU.
template class BasicBatchQueue<JobPtr, JobQueueTraits>;

}  // namespace gcg::svc::detail
