#include "svc/job_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace gcg::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("job queue capacity must be >= 1");
  }
}

bool JobQueue::try_push(JobPtr job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || q_.size() >= capacity_) return false;
    q_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

std::vector<JobPtr> JobQueue::pop_batch(std::size_t batch_limit) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  std::vector<JobPtr> batch;
  if (q_.empty()) return batch;  // closed and drained

  batch.push_back(std::move(q_.front()));
  q_.pop_front();
  const std::string& key = batch.front()->graph_key;
  for (auto it = q_.begin();
       it != q_.end() && batch.size() < std::max<std::size_t>(batch_limit, 1);) {
    if ((*it)->graph_key == key) {
      batch.push_back(std::move(*it));
      it = q_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

JobPtr JobQueue::remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(q_.begin(), q_.end(),
                               [&](const JobPtr& j) { return j->id == id; });
  if (it == q_.end()) return nullptr;
  JobPtr job = std::move(*it);
  q_.erase(it);
  return job;
}

JobPtr JobQueue::remove_front() {
  std::lock_guard<std::mutex> lock(mu_);
  if (q_.empty()) return nullptr;
  JobPtr job = std::move(q_.front());
  q_.pop_front();
  return job;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

}  // namespace gcg::svc
