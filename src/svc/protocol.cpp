#include "svc/protocol.hpp"

#include <stdexcept>

#include "par/runner.hpp"

namespace gcg::svc {

namespace {

std::uint64_t require_id(const Json& req) {
  const Json* id = req.find("id");
  if (!id || !id->is_number()) {
    throw std::runtime_error("missing or non-numeric \"id\"");
  }
  const std::int64_t v = id->as_int();
  if (v < 0) throw std::runtime_error("\"id\" must be >= 0");
  return static_cast<std::uint64_t>(v);
}

Json result_to_json(const JobResult& r, bool include_colors) {
  Json out{JsonObject{}};
  out["num_colors"] = Json(r.num_colors);
  out["iterations"] = Json(static_cast<std::int64_t>(r.iterations));
  out["run_ms"] = Json(r.run_ms);
  out["latency_ms"] = Json(r.latency_ms);
  out["queue_ms"] = Json(r.queue_ms);
  out["threads"] = Json(static_cast<std::int64_t>(r.threads));
  out["verified"] = Json(r.verified);
  out["cache_hit"] = Json(r.cache_hit);
  out["mapped"] = Json(r.mapped);
  if (!r.error.empty()) out["error"] = Json(r.error);
  if (include_colors && !r.colors.empty()) {
    JsonArray colors;
    colors.reserve(r.colors.size());
    for (color_t c : r.colors) {
      colors.push_back(Json(static_cast<std::int64_t>(c)));
    }
    out["colors"] = Json(std::move(colors));
  }
  return out;
}

}  // namespace

Json error_reply(const std::string& code, const std::string& detail) {
  Json out{JsonObject{}};
  out["ok"] = Json(false);
  out["error"] = Json(code);
  if (!detail.empty()) out["detail"] = Json(detail);
  return out;
}

JobSpec job_spec_from_json(const Json& req) {
  JobSpec spec;
  const Json* graph = req.find("graph");
  if (!graph || !graph->is_string() || graph->as_string().empty()) {
    throw std::runtime_error("submit requires a non-empty \"graph\" string");
  }
  spec.graph = graph->as_string();
  spec.backend = backend_from_name(req.get_string("backend", "par"));
  spec.algorithm = req.get_string(
      "algorithm", spec.backend == Backend::kPar ? "steal" : "hybrid+steal");
  spec.priority = req.get_string("priority", "random");
  const std::int64_t seed = req.get_int("seed", 1);
  if (seed < 0) throw std::runtime_error("\"seed\" must be >= 0");
  spec.seed = static_cast<std::uint64_t>(seed);
  const std::int64_t threads = req.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    throw std::runtime_error("\"threads\" must be in [0, 4096]");
  }
  spec.threads = static_cast<unsigned>(threads);
  const std::int64_t grain = req.get_int("grain", 0);
  if (grain < 0 || grain > 0xFFFFFFFFll) {
    throw std::runtime_error("\"grain\" must be in [0, 4294967295]");
  }
  spec.grain = static_cast<std::uint32_t>(grain);
  spec.schedule = req.get_string("schedule", "");
  if (!spec.schedule.empty()) {
    par::schedule_from_name(spec.schedule);  // throws on unknown names
  }
  const std::int64_t hub = req.get_int("hub_threshold", 0);
  if (hub < 0 || hub > 0xFFFFFFFFll) {
    throw std::runtime_error("\"hub_threshold\" must be in [0, 4294967295]");
  }
  spec.hub_threshold = static_cast<std::uint32_t>(hub);
  spec.deadline_ms = req.get_double("deadline_ms", 0.0);
  if (spec.deadline_ms < 0.0) {
    throw std::runtime_error("\"deadline_ms\" must be >= 0");
  }
  spec.keep_colors = req.get_bool("keep_colors", false);
  return spec;
}

Json job_spec_to_json(const JobSpec& spec) {
  Json out{JsonObject{}};
  out["graph"] = Json(spec.graph);
  out["backend"] = Json(backend_name(spec.backend));
  out["algorithm"] = Json(spec.algorithm);
  out["priority"] = Json(spec.priority);
  out["seed"] = Json(spec.seed);
  out["threads"] = Json(static_cast<std::int64_t>(spec.threads));
  out["grain"] = Json(static_cast<std::int64_t>(spec.grain));
  if (!spec.schedule.empty()) out["schedule"] = Json(spec.schedule);
  out["hub_threshold"] = Json(static_cast<std::int64_t>(spec.hub_threshold));
  out["deadline_ms"] = Json(spec.deadline_ms);
  out["keep_colors"] = Json(spec.keep_colors);
  return out;
}

Json snapshot_reply(const JobSnapshot& snap, bool include_colors) {
  Json out{JsonObject{}};
  out["ok"] = Json(true);
  out["id"] = Json(snap.id);
  out["status"] = Json(job_status_name(snap.status));
  out["graph"] = Json(snap.spec.graph);
  out["algorithm"] = Json(snap.spec.algorithm);
  out["backend"] = Json(backend_name(snap.spec.backend));
  const bool terminal = snap.status == JobStatus::kDone ||
                        snap.status == JobStatus::kFailed ||
                        snap.status == JobStatus::kCancelled;
  if (terminal) out["result"] = result_to_json(snap.result, include_colors);
  return out;
}

Json stats_reply(const SchedulerStats& s) {
  Json out{JsonObject{}};
  out["ok"] = Json(true);
  out["submitted"] = Json(s.submitted);
  out["rejected"] = Json(s.rejected);
  out["completed"] = Json(s.completed);
  out["failed"] = Json(s.failed);
  out["cancelled"] = Json(s.cancelled);
  out["batches"] = Json(s.batches);
  out["batched_jobs"] = Json(s.batched_jobs);
  out["queue_depth"] = Json(static_cast<std::int64_t>(s.queue_depth));
  out["queue_capacity"] = Json(static_cast<std::int64_t>(s.queue_capacity));
  out["jobs_tracked"] = Json(static_cast<std::int64_t>(s.jobs_tracked));
  out["latency_samples"] =
      Json(static_cast<std::int64_t>(s.latency_samples));
  out["latency_p50_ms"] = Json(s.latency_p50_ms);
  out["latency_p90_ms"] = Json(s.latency_p90_ms);
  out["latency_p99_ms"] = Json(s.latency_p99_ms);
  out["latency_mean_ms"] = Json(s.latency_mean_ms);
  out["latency_max_ms"] = Json(s.latency_max_ms);
  Json reg{JsonObject{}};
  reg["hits"] = Json(s.registry.hits);
  reg["misses"] = Json(s.registry.misses);
  reg["evictions"] = Json(s.registry.evictions);
  reg["load_errors"] = Json(s.registry.load_errors);
  reg["entries"] = Json(static_cast<std::int64_t>(s.registry.entries));
  reg["bytes"] = Json(static_cast<std::int64_t>(s.registry.bytes));
  reg["mapped_entries"] =
      Json(static_cast<std::int64_t>(s.registry.mapped_entries));
  reg["mapped_bytes"] =
      Json(static_cast<std::int64_t>(s.registry.mapped_bytes));
  out["registry"] = std::move(reg);
  return out;
}

Json handle_request(Scheduler& sched, const Json& req) {
  if (!req.is_object()) {
    return error_reply(kErrProtocol, "request must be a JSON object");
  }
  const Json* op = req.find("op");
  if (!op || !op->is_string()) {
    return error_reply(kErrProtocol, "missing \"op\" string");
  }
  const std::string& verb = op->as_string();

  try {
    if (verb == "ping") {
      Json out{JsonObject{}};
      out["ok"] = Json(true);
      out["pong"] = Json(true);
      return out;
    }
    if (verb == "submit") {
      JobSpec spec;
      try {
        spec = job_spec_from_json(req);
      } catch (const std::exception& e) {
        return error_reply(kErrBadRequest, e.what());
      }
      const Scheduler::Submit sub = sched.submit(std::move(spec));
      if (!sub.accepted) return error_reply(sub.error, sub.detail);
      if (req.get_bool("wait", false)) {
        // Closed-loop clients: block until terminal, reply with result.
        const auto snap = sched.wait(sub.id);
        if (snap) return snapshot_reply(*snap);
      }
      Json out{JsonObject{}};
      out["ok"] = Json(true);
      out["id"] = Json(sub.id);
      out["status"] = Json("queued");
      return out;
    }
    if (verb == "status" || verb == "result") {
      const std::uint64_t id = require_id(req);
      std::optional<JobSnapshot> snap;
      if (verb == "result" || req.get_bool("wait", false)) {
        snap = sched.wait(id, req.get_double("timeout_ms", 0.0));
      } else {
        snap = sched.status(id);
      }
      if (!snap) {
        return error_reply(kErrUnknownId,
                           "no job " + std::to_string(id) +
                               " (completed jobs are retained up to the "
                               "scheduler's retain_jobs bound)");
      }
      return snapshot_reply(*snap);
    }
    if (verb == "cancel") {
      const std::uint64_t id = require_id(req);
      Json out{JsonObject{}};
      out["ok"] = Json(true);
      out["id"] = Json(id);
      out["cancelled"] = Json(sched.cancel(id));
      return out;
    }
    if (verb == "stats") {
      return stats_reply(sched.stats());
    }
  } catch (const std::exception& e) {
    return error_reply(kErrBadRequest, e.what());
  }
  return error_reply(kErrUnknownOp, "unknown op \"" + verb + "\"");
}

Json handle_request_line(Scheduler& sched, const std::string& line) {
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    return error_reply(kErrProtocol, e.what());
  }
  return handle_request(sched, req);
}

}  // namespace gcg::svc
