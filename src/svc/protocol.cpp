#include "svc/protocol.hpp"

#include <stdexcept>

#include "par/runner.hpp"
#include "util/narrow.hpp"

namespace gcg::svc {

namespace {

std::uint64_t require_u64(const Json& req, const char* key) {
  const Json* v = req.find(key);
  if (!v || !v->is_number()) {
    throw std::runtime_error(std::string("missing or non-numeric \"") + key +
                             "\"");
  }
  const std::int64_t i = v->as_int();
  if (i < 0) throw std::runtime_error(std::string("\"") + key +
                                      "\" must be >= 0");
  return to_unsigned(i);
}

/// Array of non-negative integers bounded by `max` -> vector<T>.
template <typename T>
std::vector<T> u32_array(const Json& req, const char* key, std::int64_t max) {
  const Json* v = req.find(key);
  if (!v || !v->is_array()) {
    throw std::runtime_error(std::string("missing or non-array \"") + key +
                             "\"");
  }
  std::vector<T> out;
  out.reserve(v->as_array().size());
  for (const Json& e : v->as_array()) {
    if (!e.is_number()) {
      throw std::runtime_error(std::string("\"") + key +
                               "\" entries must be numbers");
    }
    const std::int64_t i = e.as_int();
    if (i < 0 || i > max) {
      throw std::runtime_error(std::string("\"") + key +
                               "\" entry out of range");
    }
    out.push_back(narrow<T>(i));
  }
  return out;
}

/// Color array; allows kUncolored (-1) through, rejects other negatives.
std::vector<color_t> color_array(const Json& req, const char* key) {
  const Json* v = req.find(key);
  if (!v || !v->is_array()) {
    throw std::runtime_error(std::string("missing or non-array \"") + key +
                             "\"");
  }
  std::vector<color_t> out;
  out.reserve(v->as_array().size());
  for (const Json& e : v->as_array()) {
    if (!e.is_number()) {
      throw std::runtime_error(std::string("\"") + key +
                               "\" entries must be numbers");
    }
    const std::int64_t i = e.as_int();
    if (i < kUncolored || i > 0x7FFFFFFFll) {
      throw std::runtime_error(std::string("\"") + key +
                               "\" entry out of range");
    }
    out.push_back(narrow<color_t>(i));
  }
  return out;
}

/// Counter/id -> JSON integer. Everything the protocol emits fits JSON's
/// exact-int64 range by construction; narrow keeps that claim checked in
/// debug instead of assumed.
template <typename T>
Json count_json(T x) {
  return Json(narrow<std::int64_t>(x));
}

template <typename T>
Json int_array_to_json(const std::vector<T>& v) {
  JsonArray out;
  out.reserve(v.size());
  for (const T x : v) out.push_back(count_json(x));
  return Json(std::move(out));
}

std::string require_graph(const Json& req) {
  const Json* graph = req.find("graph");
  if (!graph || !graph->is_string() || graph->as_string().empty()) {
    throw std::runtime_error("requires a non-empty \"graph\" string");
  }
  return graph->as_string();
}

/// begin <= end as vid_t range bounds.
void require_range(const Json& req, vid_t& begin, vid_t& end) {
  const std::int64_t b = to_signed(require_u64(req, "begin"));
  const std::int64_t e = to_signed(require_u64(req, "end"));
  if (b > e || e > 0xFFFFFFFFll) {
    throw std::runtime_error("bad vertex range [begin, end)");
  }
  begin = narrow<vid_t>(b);
  end = narrow<vid_t>(e);
}

std::uint64_t require_id(const Json& req) { return require_u64(req, "id"); }

/// Shard seeds are full 64-bit hash outputs; JSON has no u64, so they
/// travel as two's-complement int64 and cast back bit-for-bit. Any
/// integral number (negative included) is therefore valid here.
std::uint64_t require_seed(const Json& req) {
  const Json* v = req.find("seed");
  if (!v || !v->is_number()) {
    throw std::runtime_error("missing or non-numeric \"seed\"");
  }
  // lossy: u64 seeds travel as two's-complement int64; cast back bit-for-bit
  return narrow_cast<std::uint64_t>(v->as_int());
}

Json result_to_json(const JobResult& r, bool include_colors) {
  Json out{JsonObject{}};
  out["num_colors"] = Json(r.num_colors);
  out["iterations"] = count_json(r.iterations);
  out["run_ms"] = Json(r.run_ms);
  out["latency_ms"] = Json(r.latency_ms);
  out["queue_ms"] = Json(r.queue_ms);
  out["threads"] = count_json(r.threads);
  out["verified"] = Json(r.verified);
  out["cache_hit"] = Json(r.cache_hit);
  out["mapped"] = Json(r.mapped);
  if (r.shards > 0) {
    out["shards"] = count_json(r.shards);
    out["conflict_rounds"] = count_json(r.conflict_rounds);
    out["recolored"] = count_json(r.recolored);
    out["boundary_fraction"] = Json(r.boundary_fraction);
  }
  if (!r.error.empty()) out["error"] = Json(r.error);
  if (include_colors && !r.colors.empty()) {
    JsonArray colors;
    colors.reserve(r.colors.size());
    for (color_t c : r.colors) {
      colors.push_back(count_json(c));
    }
    out["colors"] = Json(std::move(colors));
  }
  return out;
}

}  // namespace

Json error_reply(const std::string& code, const std::string& detail) {
  Json out{JsonObject{}};
  out["ok"] = Json(false);
  out["error"] = Json(code);
  if (!detail.empty()) out["detail"] = Json(detail);
  return out;
}

std::optional<Json> check_protocol_version(const Json& req) {
  if (!req.is_object()) return std::nullopt;  // protocol_error elsewhere
  const Json* v = req.find("protocol_version");
  if (!v) return std::nullopt;  // pre-versioning peer: version 1 schema
  const std::int64_t version = v->is_number() ? v->as_int() : -1;
  if (version == kProtocolVersion) return std::nullopt;
  Json out = error_reply(
      kErrUnsupportedVersion,
      "this server speaks protocol_version " +
          std::to_string(kProtocolVersion));
  out["protocol_version"] = Json(kProtocolVersion);
  return out;
}

JobSpec job_spec_from_json(const Json& req) {
  JobSpec spec;
  const Json* graph = req.find("graph");
  if (!graph || !graph->is_string() || graph->as_string().empty()) {
    throw std::runtime_error("submit requires a non-empty \"graph\" string");
  }
  spec.graph = graph->as_string();
  spec.backend = backend_from_name(req.get_string("backend", "par"));
  // Per-backend algorithm defaults: shard wants jpl because it is
  // deterministic — sharded results must be bit-stable across worker
  // counts (docs/SHARDING.md).
  const char* default_algorithm =
      spec.backend == Backend::kPar
          ? "steal"
          : (spec.backend == Backend::kShard ? "jpl" : "hybrid+steal");
  spec.algorithm = req.get_string("algorithm", default_algorithm);
  spec.priority = req.get_string("priority", "random");
  const std::int64_t seed = req.get_int("seed", 1);
  if (seed < 0) throw std::runtime_error("\"seed\" must be >= 0");
  spec.seed = to_unsigned(seed);
  const std::int64_t threads = req.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    throw std::runtime_error("\"threads\" must be in [0, 4096]");
  }
  spec.threads = narrow<unsigned>(threads);
  const std::int64_t grain = req.get_int("grain", 0);
  if (grain < 0 || grain > 0xFFFFFFFFll) {
    throw std::runtime_error("\"grain\" must be in [0, 4294967295]");
  }
  spec.grain = narrow<std::uint32_t>(grain);
  spec.schedule = req.get_string("schedule", "");
  if (!spec.schedule.empty()) {
    par::schedule_from_name(spec.schedule);  // throws on unknown names
  }
  const std::int64_t hub = req.get_int("hub_threshold", 0);
  if (hub < 0 || hub > 0xFFFFFFFFll) {
    throw std::runtime_error("\"hub_threshold\" must be in [0, 4294967295]");
  }
  spec.hub_threshold = narrow<std::uint32_t>(hub);
  spec.order = req.get_string("order", "");
  if (!spec.order.empty()) {
    try {
      order_from_name(spec.order);
    } catch (const std::exception&) {
      throw std::runtime_error(
          "\"order\" must be one of natural, random, degree-desc, "
          "degree-asc, bfs, rcm");
    }
    if (spec.backend != Backend::kPar) {
      throw std::runtime_error(
          "\"order\" requires backend par — for shard, put an order= "
          "parameter in a gen: graph spec instead");
    }
  }
  spec.deadline_ms = req.get_double("deadline_ms", 0.0);
  if (spec.deadline_ms < 0.0) {
    throw std::runtime_error("\"deadline_ms\" must be >= 0");
  }
  spec.keep_colors = req.get_bool("keep_colors", false);
  const std::int64_t shards = req.get_int("shards", 0);
  if (shards < 0 || shards > 4096) {
    throw std::runtime_error("\"shards\" must be in [0, 4096]");
  }
  spec.shards = narrow<unsigned>(shards);
  const std::int64_t rounds = req.get_int("shard_rounds", 0);
  if (rounds < 0 || rounds > 0xFFFF) {
    throw std::runtime_error("\"shard_rounds\" must be in [0, 65535]");
  }
  spec.shard_rounds = narrow<unsigned>(rounds);
  return spec;
}

Json job_spec_to_json(const JobSpec& spec) {
  Json out{JsonObject{}};
  out["graph"] = Json(spec.graph);
  out["backend"] = Json(backend_name(spec.backend));
  out["algorithm"] = Json(spec.algorithm);
  out["priority"] = Json(spec.priority);
  out["seed"] = Json(spec.seed);
  out["threads"] = count_json(spec.threads);
  out["grain"] = count_json(spec.grain);
  if (!spec.schedule.empty()) out["schedule"] = Json(spec.schedule);
  out["hub_threshold"] = count_json(spec.hub_threshold);
  if (!spec.order.empty()) out["order"] = Json(spec.order);
  out["deadline_ms"] = Json(spec.deadline_ms);
  out["keep_colors"] = Json(spec.keep_colors);
  if (spec.shards != 0) {
    out["shards"] = count_json(spec.shards);
  }
  if (spec.shard_rounds != 0) {
    out["shard_rounds"] = count_json(spec.shard_rounds);
  }
  return out;
}

// --- shard worker DTO codecs -----------------------------------------------

ShardColorRequest shard_color_request_from_json(const Json& req) {
  ShardColorRequest r;
  r.graph = require_graph(req);
  require_range(req, r.begin, r.end);
  r.seed = require_seed(req);
  r.algorithm = req.get_string("algorithm", "jpl");
  r.priority = req.get_string("priority", "random");
  const std::int64_t threads = req.get_int("threads", 0);
  if (threads < 0 || threads > 4096) {
    throw std::runtime_error("\"threads\" must be in [0, 4096]");
  }
  r.threads = narrow<unsigned>(threads);
  return r;
}

Json shard_color_request_to_json(const ShardColorRequest& r) {
  Json out{JsonObject{}};
  out["op"] = Json("shard_color");
  out["graph"] = Json(r.graph);
  out["begin"] = count_json(r.begin);
  out["end"] = count_json(r.end);
  out["seed"] = Json(r.seed);
  out["algorithm"] = Json(r.algorithm);
  out["priority"] = Json(r.priority);
  if (r.threads != 0) {
    out["threads"] = count_json(r.threads);
  }
  return out;
}

ShardColorReply shard_color_reply_from_json(const Json& reply) {
  ShardColorReply r;
  r.colors = color_array(reply, "colors");
  r.num_colors = narrow<int>(require_u64(reply, "num_colors"));
  r.num_boundary = narrow<vid_t>(require_u64(reply, "num_boundary"));
  r.cut_arcs = require_u64(reply, "cut_arcs");
  r.run_ms = reply.get_double("run_ms", 0.0);
  r.cache_hit = reply.get_bool("cache_hit", false);
  r.mapped = reply.get_bool("mapped", false);
  return r;
}

Json shard_color_reply_to_json(const ShardColorReply& r) {
  Json out{JsonObject{}};
  out["ok"] = Json(true);
  out["colors"] = int_array_to_json(r.colors);
  out["num_colors"] = Json(r.num_colors);
  out["num_boundary"] = count_json(r.num_boundary);
  out["cut_arcs"] = count_json(r.cut_arcs);
  out["run_ms"] = Json(r.run_ms);
  out["cache_hit"] = Json(r.cache_hit);
  out["mapped"] = Json(r.mapped);
  return out;
}

ShardRepairRequest shard_repair_request_from_json(const Json& req) {
  ShardRepairRequest r;
  r.graph = require_graph(req);
  require_range(req, r.begin, r.end);
  r.seed = require_seed(req);
  r.losers = u32_array<vid_t>(req, "losers", 0xFFFFFFFFll);
  r.ghost_ids = u32_array<vid_t>(req, "ghost_ids", 0xFFFFFFFFll);
  r.ghost_colors = color_array(req, "ghost_colors");
  if (r.ghost_ids.size() != r.ghost_colors.size()) {
    throw std::runtime_error(
        "\"ghost_ids\" and \"ghost_colors\" must be the same length");
  }
  return r;
}

Json shard_repair_request_to_json(const ShardRepairRequest& r) {
  Json out{JsonObject{}};
  out["op"] = Json("shard_repair");
  out["graph"] = Json(r.graph);
  out["begin"] = count_json(r.begin);
  out["end"] = count_json(r.end);
  out["seed"] = Json(r.seed);
  out["losers"] = int_array_to_json(r.losers);
  out["ghost_ids"] = int_array_to_json(r.ghost_ids);
  out["ghost_colors"] = int_array_to_json(r.ghost_colors);
  return out;
}

ShardRepairReply shard_repair_reply_from_json(const Json& reply) {
  ShardRepairReply r;
  r.ids = u32_array<vid_t>(reply, "ids", 0xFFFFFFFFll);
  r.colors = color_array(reply, "colors");
  if (r.ids.size() != r.colors.size()) {
    throw std::runtime_error(
        "\"ids\" and \"colors\" must be the same length");
  }
  r.rounds = narrow<unsigned>(require_u64(reply, "rounds"));
  r.recolored = require_u64(reply, "recolored");
  r.run_ms = reply.get_double("run_ms", 0.0);
  return r;
}

Json shard_repair_reply_to_json(const ShardRepairReply& r) {
  Json out{JsonObject{}};
  out["ok"] = Json(true);
  out["ids"] = int_array_to_json(r.ids);
  out["colors"] = int_array_to_json(r.colors);
  out["rounds"] = count_json(r.rounds);
  out["recolored"] = count_json(r.recolored);
  out["run_ms"] = Json(r.run_ms);
  return out;
}

Json snapshot_reply(const JobSnapshot& snap, bool include_colors) {
  Json out{JsonObject{}};
  out["ok"] = Json(true);
  out["id"] = Json(snap.id);
  out["status"] = Json(job_status_name(snap.status));
  out["graph"] = Json(snap.spec.graph);
  out["algorithm"] = Json(snap.spec.algorithm);
  out["backend"] = Json(backend_name(snap.spec.backend));
  const bool terminal = snap.status == JobStatus::kDone ||
                        snap.status == JobStatus::kFailed ||
                        snap.status == JobStatus::kCancelled;
  if (terminal) out["result"] = result_to_json(snap.result, include_colors);
  return out;
}

Json stats_reply(const SchedulerStats& s) {
  Json out{JsonObject{}};
  out["ok"] = Json(true);
  out["submitted"] = Json(s.submitted);
  out["rejected"] = Json(s.rejected);
  out["completed"] = Json(s.completed);
  out["failed"] = Json(s.failed);
  out["cancelled"] = Json(s.cancelled);
  out["batches"] = Json(s.batches);
  out["batched_jobs"] = Json(s.batched_jobs);
  out["queue_depth"] = count_json(s.queue_depth);
  out["queue_capacity"] = count_json(s.queue_capacity);
  out["jobs_tracked"] = count_json(s.jobs_tracked);
  out["latency_samples"] =
      count_json(s.latency_samples);
  out["latency_p50_ms"] = Json(s.latency_p50_ms);
  out["latency_p90_ms"] = Json(s.latency_p90_ms);
  out["latency_p99_ms"] = Json(s.latency_p99_ms);
  out["latency_mean_ms"] = Json(s.latency_mean_ms);
  out["latency_max_ms"] = Json(s.latency_max_ms);
  Json reg{JsonObject{}};
  reg["hits"] = Json(s.registry.hits);
  reg["misses"] = Json(s.registry.misses);
  reg["evictions"] = Json(s.registry.evictions);
  reg["load_errors"] = Json(s.registry.load_errors);
  reg["entries"] = count_json(s.registry.entries);
  reg["bytes"] = count_json(s.registry.bytes);
  reg["mapped_entries"] =
      count_json(s.registry.mapped_entries);
  reg["mapped_bytes"] =
      count_json(s.registry.mapped_bytes);
  out["registry"] = std::move(reg);
  return out;
}

Json handle_request(Scheduler& sched, const Json& req) {
  if (!req.is_object()) {
    return error_reply(kErrProtocol, "request must be a JSON object");
  }
  if (auto unsupported = check_protocol_version(req)) return *unsupported;
  const Json* op = req.find("op");
  if (!op || !op->is_string()) {
    return error_reply(kErrProtocol, "missing \"op\" string");
  }
  const std::string& verb = op->as_string();

  try {
    if (verb == "ping") {
      Json out{JsonObject{}};
      out["ok"] = Json(true);
      out["pong"] = Json(true);
      return out;
    }
    if (verb == "submit") {
      JobSpec spec;
      try {
        spec = job_spec_from_json(req);
      } catch (const std::exception& e) {
        return error_reply(kErrBadRequest, e.what());
      }
      const Scheduler::Submit sub = sched.submit(std::move(spec));
      if (!sub.accepted) return error_reply(sub.error, sub.detail);
      if (req.get_bool("wait", false)) {
        // Closed-loop clients: block until terminal, reply with result.
        const auto snap = sched.wait(sub.id);
        if (snap) return snapshot_reply(*snap);
      }
      Json out{JsonObject{}};
      out["ok"] = Json(true);
      out["id"] = Json(sub.id);
      out["status"] = Json("queued");
      return out;
    }
    if (verb == "status" || verb == "result") {
      const std::uint64_t id = require_id(req);
      std::optional<JobSnapshot> snap;
      if (verb == "result" || req.get_bool("wait", false)) {
        snap = sched.wait(id, req.get_double("timeout_ms", 0.0));
      } else {
        snap = sched.status(id);
      }
      if (!snap) {
        return error_reply(kErrUnknownId,
                           "no job " + std::to_string(id) +
                               " (completed jobs are retained up to the "
                               "scheduler's retain_jobs bound)");
      }
      return snapshot_reply(*snap);
    }
    if (verb == "cancel") {
      const std::uint64_t id = require_id(req);
      Json out{JsonObject{}};
      out["ok"] = Json(true);
      out["id"] = Json(id);
      out["cancelled"] = Json(sched.cancel(id));
      return out;
    }
    if (verb == "stats") {
      return stats_reply(sched.stats());
    }
  } catch (const std::exception& e) {
    return error_reply(kErrBadRequest, e.what());
  }
  return error_reply(kErrUnknownOp, "unknown op \"" + verb + "\"");
}

Json handle_request_line(Scheduler& sched, const std::string& line) {
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    return error_reply(kErrProtocol, e.what());
  }
  return handle_request(sched, req);
}

}  // namespace gcg::svc
