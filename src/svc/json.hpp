// Minimal JSON value type + strict parser/serializer for the service
// protocol (docs/SERVICE.md). Deliberately tiny: objects, arrays, strings,
// numbers (int64 kept exact, otherwise double), booleans, null. No
// external dependencies — the container images this runs on only carry the
// C++ toolchain.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/narrow.hpp"

namespace gcg::svc {

class Json;
using JsonObject = std::map<std::string, Json>;
using JsonArray = std::vector<Json>;

/// One JSON value. std::map keeps object keys sorted, so dump() output is
/// canonical — handy for tests and for line-oriented logs.
class Json {
 public:
  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(std::int64_t i) : v_(i) {}
  Json(int i) : v_(std::int64_t{i}) {}
  Json(unsigned i) : v_(std::int64_t{i}) {}
  // lossy: u64 values (seeds) travel as two's-complement int64 on the wire
  Json(std::uint64_t i) : v_(narrow_cast<std::int64_t>(i)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(JsonArray a) : v_(std::move(a)) {}
  Json(JsonObject o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;     ///< doubles with integral value coerce
  double as_double() const;        ///< ints widen
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  // --- object conveniences (throw if not an object) ---
  bool has(const std::string& key) const;
  /// Pointer to the member or nullptr (no insertion).
  const Json* find(const std::string& key) const;
  /// Mutable member access, inserting null (object only).
  Json& operator[](const std::string& key);

  /// Member with a fallback when missing (type mismatch still throws).
  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Compact single-line serialization (never emits raw newlines, so one
  /// value is always one protocol line).
  std::string dump() const;

  /// Strict parse of exactly one JSON value (trailing whitespace allowed).
  /// Throws std::runtime_error with byte offset on malformed input.
  static Json parse(const std::string& text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      v_;
};

}  // namespace gcg::svc
