// Blocking client for the coloring service: connects to the server's
// Unix-domain socket, sends one JSON request per line, reads one JSON
// reply per line. Used by examples/color_client, the end-to-end tests,
// and the throughput bench. Not thread-safe; use one Client per thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "svc/job.hpp"
#include "svc/json.hpp"

namespace gcg::svc {

struct ClientOptions {
  /// Total budget for connect retries. A fresh server (or a forked
  /// worker) needs a moment between exec and listen(); retrying under
  /// this budget with capped exponential backoff absorbs that race.
  /// 0 = single attempt, fail immediately.
  double connect_timeout_ms = 0.0;
  double backoff_initial_ms = 5.0;  ///< first retry delay; doubles per try
  double backoff_max_ms = 200.0;    ///< backoff cap
  /// Deadline for each request's reply (send + read). 0 = wait forever.
  /// On expiry request() throws and the connection is left in an
  /// undefined protocol state — drop the Client.
  double request_timeout_ms = 0.0;
};

class Client {
 public:
  using Options = ClientOptions;

  /// Connects immediately; throws std::runtime_error on failure (after
  /// exhausting opts.connect_timeout_ms if retries are enabled).
  explicit Client(const std::string& socket_path, const Options& opts = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Sends `req` and returns the server's reply. Stamps the protocol
  /// version into the request when the caller did not. Throws on broken
  /// connections, malformed replies, or an expired request timeout.
  Json request(const Json& req);

  // --- verb conveniences ---------------------------------------------------
  /// Returns the reply as-is; check reply.get_bool("ok", false) and
  /// reply.get_string("error", "") for rejections (e.g. "queue_full").
  Json submit(const JobSpec& spec, bool wait = false);
  Json status(std::uint64_t id);
  /// Blocks server-side until the job is terminal (or timeout_ms expires).
  Json result(std::uint64_t id, double timeout_ms = 0.0);
  Json cancel(std::uint64_t id);
  Json stats();
  bool ping();
  /// Asks the server to stop; returns true if it acknowledged.
  bool shutdown_server();

 private:
  Options opts_;
  int fd_ = -1;
  std::string buf_;  // partial-line carry between replies
};

}  // namespace gcg::svc
