// Blocking client for the coloring service: connects to the server's
// Unix-domain socket, sends one JSON request per line, reads one JSON
// reply per line. Used by examples/color_client, the end-to-end tests,
// and the throughput bench. Not thread-safe; use one Client per thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "svc/job.hpp"
#include "svc/json.hpp"

namespace gcg::svc {

class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Sends `req` and returns the server's reply. Throws on broken
  /// connections or malformed replies.
  Json request(const Json& req);

  // --- verb conveniences ---------------------------------------------------
  /// Returns the reply as-is; check reply.get_bool("ok", false) and
  /// reply.get_string("error", "") for rejections (e.g. "queue_full").
  Json submit(const JobSpec& spec, bool wait = false);
  Json status(std::uint64_t id);
  /// Blocks server-side until the job is terminal (or timeout_ms expires).
  Json result(std::uint64_t id, double timeout_ms = 0.0);
  Json cancel(std::uint64_t id);
  Json stats();
  bool ping();
  /// Asks the server to stop; returns true if it acknowledged.
  bool shutdown_server();

 private:
  int fd_ = -1;
  std::string buf_;  // partial-line carry between replies
};

}  // namespace gcg::svc
