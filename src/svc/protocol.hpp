// Wire protocol of the coloring service: line-delimited JSON over a
// Unix-domain stream socket. One request object per line, one reply
// object per line, strictly in order per connection. docs/SERVICE.md has
// the full verb reference and an example session.
//
// Requests:  {"op":"submit","graph":"gen:rmat-like?scale=0.25", ...}
//            {"op":"status","id":7}   {"op":"result","id":7}
//            {"op":"cancel","id":7}   {"op":"stats"}
//            {"op":"ping"}            {"op":"shutdown"}
// Replies:   {"ok":true, ...}  or  {"ok":false,"error":"<code>",
//            "detail":"<human text>"} with stable machine-readable codes:
//            queue_full | bad_request | unknown_op | unknown_id |
//            shutting_down | protocol_error.
#pragma once

#include <string>

#include "svc/job.hpp"
#include "svc/json.hpp"
#include "svc/scheduler.hpp"

namespace gcg::svc {

// --- error codes (stable strings clients key off) --------------------------
inline constexpr const char* kErrQueueFull = "queue_full";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownOp = "unknown_op";
inline constexpr const char* kErrUnknownId = "unknown_id";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrProtocol = "protocol_error";

/// {"ok":false,"error":code,"detail":detail}
Json error_reply(const std::string& code, const std::string& detail);

/// Parses the submit-verb fields of `req` into a JobSpec. Throws
/// std::runtime_error on missing/ill-typed fields (the server maps that to
/// a bad_request reply).
JobSpec job_spec_from_json(const Json& req);
Json job_spec_to_json(const JobSpec& spec);

/// {"ok":true,"id":...,"status":...,"result":{...}} — result fields only
/// present once terminal. `include_colors` additionally inlines the color
/// array (spec.keep_colors jobs only).
Json snapshot_reply(const JobSnapshot& snap, bool include_colors = true);

Json stats_reply(const SchedulerStats& stats);

/// Dispatches one already-parsed request against a scheduler. Handles
/// every verb except "shutdown" (the server intercepts that one — it owns
/// the lifecycle). Unknown ops yield an unknown_op error reply.
Json handle_request(Scheduler& sched, const Json& req);

/// Parses `line` and dispatches; malformed JSON yields a protocol_error
/// reply instead of throwing.
Json handle_request_line(Scheduler& sched, const std::string& line);

}  // namespace gcg::svc
