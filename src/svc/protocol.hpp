// Wire protocol of the coloring service: line-delimited JSON over a
// Unix-domain stream socket. One request object per line, one reply
// object per line, strictly in order per connection. docs/SERVICE.md has
// the full verb reference and an example session.
//
// Requests:  {"op":"submit","graph":"gen:rmat-like?scale=0.25", ...}
//            {"op":"status","id":7}   {"op":"result","id":7}
//            {"op":"cancel","id":7}   {"op":"stats"}
//            {"op":"ping"}            {"op":"shutdown"}
//            {"op":"shard_color",...} {"op":"shard_repair",...}  (workers)
// Replies:   {"ok":true, ...}  or  {"ok":false,"error":"<code>",
//            "detail":"<human text>"} with stable machine-readable codes:
//            queue_full | bad_request | unknown_op | unknown_id |
//            shutting_down | protocol_error | unsupported_version.
//
// Every request may carry "protocol_version" (svc::Client stamps it).
// Absent means version 1 — the schema before the field existed. A version
// the server does not speak yields the stable unsupported_version code
// plus a "protocol_version" field naming what the server does speak, so
// old/new peers fail loud instead of misparsing each other.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "svc/job.hpp"
#include "svc/json.hpp"
#include "svc/scheduler.hpp"

namespace gcg::svc {

/// Version of the line-JSON request/reply schema this build speaks.
inline constexpr std::int64_t kProtocolVersion = 1;

// --- error codes (stable strings clients key off) --------------------------
inline constexpr const char* kErrQueueFull = "queue_full";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownOp = "unknown_op";
inline constexpr const char* kErrUnknownId = "unknown_id";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrProtocol = "protocol_error";
inline constexpr const char* kErrUnsupportedVersion = "unsupported_version";

/// {"ok":false,"error":code,"detail":detail}
Json error_reply(const std::string& code, const std::string& detail);

/// Inspects req["protocol_version"] (absent = version 1, the pre-field
/// schema). Returns nullopt when this build speaks it, otherwise an
/// unsupported_version error reply carrying the supported version.
/// handle_request applies this to every scheduler-facing verb; handler-
/// mode servers (the shard worker) call it themselves.
std::optional<Json> check_protocol_version(const Json& req);

/// Parses the submit-verb fields of `req` into a JobSpec. Throws
/// std::runtime_error on missing/ill-typed fields (the server maps that to
/// a bad_request reply).
JobSpec job_spec_from_json(const Json& req);
Json job_spec_to_json(const JobSpec& spec);

/// {"ok":true,"id":...,"status":...,"result":{...}} — result fields only
/// present once terminal. `include_colors` additionally inlines the color
/// array (spec.keep_colors jobs only).
Json snapshot_reply(const JobSnapshot& snap, bool include_colors = true);

Json stats_reply(const SchedulerStats& stats);

// --- shard worker verbs ----------------------------------------------------
// Spoken between the shard coordinator and its worker processes (see
// docs/SHARDING.md). The coordinator is the only intended client, but the
// schema is part of the wire protocol proper: workers are plain svc
// servers and the DTO codecs below are the single source of truth for
// both sides.

/// {"op":"shard_color"}: color the interior of vertex range [begin, end)
/// of `graph` and remember the colors for later shard_repair calls.
struct ShardColorRequest {
  std::string graph;        ///< registry spec: path or gen:name?...
  vid_t begin = 0;
  vid_t end = 0;
  std::uint64_t seed = 1;   ///< job seed; worker derives the per-shard seed
  std::string algorithm = "jpl";  ///< par algorithm for the interior
  std::string priority = "random";
  unsigned threads = 0;     ///< worker pool threads; 0 = worker default
};

struct ShardColorReply {
  std::vector<color_t> colors;  ///< local colors; colors[i] = vertex begin+i
  int num_colors = 0;           ///< distinct colors used in the range
  vid_t num_boundary = 0;       ///< range vertices with out-of-range edges
  std::uint64_t cut_arcs = 0;   ///< range -> out-of-range arcs
  double run_ms = 0.0;
  bool cache_hit = false;
  bool mapped = false;          ///< graph served zero-copy off the mmap store
};

/// {"op":"shard_repair"}: recolor this round's conflict losers (global
/// ids inside the worker's range) against the ghost colors in
/// ghost_ids/ghost_colors (parallel arrays). Requires a prior
/// shard_color for the same (graph, begin, end).
struct ShardRepairRequest {
  std::string graph;
  vid_t begin = 0;
  vid_t end = 0;
  std::uint64_t seed = 1;
  std::vector<vid_t> losers;
  std::vector<vid_t> ghost_ids;
  std::vector<color_t> ghost_colors;
};

struct ShardRepairReply {
  std::vector<vid_t> ids;        ///< recolored global ids (= losers)
  std::vector<color_t> colors;   ///< their new colors, parallel to ids
  unsigned rounds = 0;           ///< intra-shard repair rounds
  std::uint64_t recolored = 0;
  double run_ms = 0.0;
};

/// DTO codecs. *_from_json throw std::runtime_error on missing or
/// ill-typed fields (servers map that to a bad_request reply);
/// *_to_json(reply) emit {"ok":true, ...}.
ShardColorRequest shard_color_request_from_json(const Json& req);
Json shard_color_request_to_json(const ShardColorRequest& r);
ShardColorReply shard_color_reply_from_json(const Json& reply);
Json shard_color_reply_to_json(const ShardColorReply& r);
ShardRepairRequest shard_repair_request_from_json(const Json& req);
Json shard_repair_request_to_json(const ShardRepairRequest& r);
ShardRepairReply shard_repair_reply_from_json(const Json& reply);
Json shard_repair_reply_to_json(const ShardRepairReply& r);

/// Dispatches one already-parsed request against a scheduler. Handles
/// every verb except "shutdown" (the server intercepts that one — it owns
/// the lifecycle). Unknown ops yield an unknown_op error reply.
Json handle_request(Scheduler& sched, const Json& req);

/// Parses `line` and dispatches; malformed JSON yields a protocol_error
/// reply instead of throwing.
Json handle_request_line(Scheduler& sched, const std::string& line);

}  // namespace gcg::svc
