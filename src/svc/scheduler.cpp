#include "svc/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "coloring/priorities.hpp"
#include "coloring/runner.hpp"
#include "check/check.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Validates the spec's enumerated fields; returns an error detail or "".
std::string validate_spec(const JobSpec& spec, bool have_shard_backend) {
  try {
    priority_mode_from_name(spec.priority);
    if (spec.backend == Backend::kPar || spec.backend == Backend::kShard) {
      // Shard interiors run on the par backend inside each worker.
      par::par_algorithm_from_name(spec.algorithm);
    } else {
      algorithm_from_name(spec.algorithm);
    }
  } catch (const std::exception& e) {
    return e.what();
  }
  if (spec.backend == Backend::kShard && !have_shard_backend) {
    return "backend \"shard\" is not configured on this scheduler";
  }
  if (spec.deadline_ms < 0.0) return "deadline_ms must be >= 0";
  return "";
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions opts)
    : opts_(opts),
      registry_(opts.registry),
      queue_(opts.queue_capacity),
      latency_ms_(opts.latency_window) {
  const unsigned dispatchers = std::max(1u, opts_.dispatchers);
  unsigned per_job = opts_.threads_per_job;
  if (per_job == 0) {
    per_job = std::max(1u, par::ThreadPool::default_threads() / dispatchers);
  }
  dispatchers_.reserve(dispatchers);
  for (unsigned d = 0; d < dispatchers; ++d) {
    dispatchers_.emplace_back([this, d, per_job] {
      par::ThreadPool pool(per_job);
      (void)d;
      while (true) {
        std::vector<JobPtr> batch = queue_.pop_batch(opts_.batch_limit);
        if (batch.empty()) return;  // closed and drained
        run_batch(pool, batch);
      }
    });
  }
}

Scheduler::~Scheduler() { shutdown(false); }

Scheduler::Submit Scheduler::submit(JobSpec spec) {
  Submit out;

  std::string key;
  try {
    key = GraphRegistry::canonical_key(spec.graph);
  } catch (const std::exception& e) {
    out.error = "bad_request";
    out.detail = e.what();
  }
  if (out.error.empty()) {
    const std::string detail =
        validate_spec(spec, opts_.shard_backend != nullptr);
    if (!detail.empty()) {
      out.error = "bad_request";
      out.detail = detail;
    }
  }
  if (!out.error.empty()) {
    sync::LockGuard lock(stats_mu_);
    ++counters_.rejected;
    return out;
  }

  JobPtr job;
  {
    sync::LockGuard lock(jobs_mu_);
    if (!accepting_) {
      out.error = "shutting_down";
      out.detail = "scheduler is shutting down";
    } else {
      job = std::make_shared<JobRecord>(next_id_++, std::move(spec),
                                        std::move(key), Clock::now());
      // Tracked before the push: a dispatcher may pop and finish() the
      // job the instant it hits the queue, and finish() expects the
      // record to already be in jobs_ (status/wait do too).
      jobs_.emplace(job->id, job);
    }
  }
  if (!job) {
    sync::LockGuard lock(stats_mu_);
    ++counters_.rejected;
    return out;
  }

  if (!queue_.try_push(job)) {
    {
      sync::LockGuard lock(jobs_mu_);
      jobs_.erase(job->id);  // never queued; drop the record again
    }
    // Backpressure: the distinct error code clients key off to back off.
    out.error = "queue_full";
    out.detail = "job queue at capacity (" +
                 std::to_string(queue_.capacity()) + ")";
    sync::LockGuard lock(stats_mu_);
    ++counters_.rejected;
    return out;
  }

  {
    sync::LockGuard lock(stats_mu_);
    ++counters_.submitted;
  }
  out.accepted = true;
  out.id = job->id;
  return out;
}

std::optional<JobSnapshot> Scheduler::status(std::uint64_t id) const {
  JobPtr job;
  {
    sync::LockGuard lock(jobs_mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
  }
  return snapshot(*job);
}

std::optional<JobSnapshot> Scheduler::wait(std::uint64_t id,
                                           double timeout_ms) {
  JobPtr job;
  {
    sync::LockGuard lock(jobs_mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
  }
  sync::LockGuard lock(job->mu);
  if (timeout_ms > 0.0) {
    // Deadline-based so a spurious wakeup cannot stretch the timeout.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               timeout_ms));
    while (!job->terminal_locked() && job->cv.wait_until(job->mu, deadline)) {
    }
  } else {
    while (!job->terminal_locked()) job->cv.wait(job->mu);
  }
  JobSnapshot s;
  s.id = job->id;
  s.spec = job->spec;
  s.status = job->status;
  s.result = job->result;
  return s;
}

bool Scheduler::cancel(std::uint64_t id) {
  JobPtr job;
  {
    sync::LockGuard lock(jobs_mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
  }
  {
    sync::LockGuard lock(job->mu);
    if (job->terminal_locked()) return false;
  }
  // order: relaxed — standalone flag; the worker only polls it and no
  // data is published through it.
  job->cancel.store(true, std::memory_order_relaxed);
  // If it is still queued, retire it immediately; if it already left the
  // queue the running dispatcher observes the flag at the next iteration.
  if (JobPtr queued = queue_.remove(id)) {
    fail_terminal(queued, JobStatus::kCancelled, "cancelled");
  }
  return true;
}

void Scheduler::run_batch(par::ThreadPool& pool,
                          const std::vector<JobPtr>& batch) {
  {
    sync::LockGuard lock(stats_mu_);
    ++counters_.batches;
    if (batch.size() > 1) counters_.batched_jobs += batch.size();
  }

  std::shared_ptr<const Csr> graph;
  bool cache_hit = false;
  std::string load_error;
  try {
    graph = registry_.acquire(batch.front()->graph_key, &cache_hit);
  } catch (const std::exception& e) {
    load_error = e.what();
  }

  bool first = true;
  for (const JobPtr& job : batch) {
    if (!graph) {
      fail_terminal(job, JobStatus::kFailed,
                    std::string("bad_graph: ") + load_error);
      continue;
    }
    // Every job after the first in a batch is a cache hit by construction:
    // the batch exists because the graph was already resident.
    run_one(pool, job, graph, cache_hit || !first);
    first = false;
  }
}

void Scheduler::run_one(par::ThreadPool& pool, const JobPtr& job,
                        const std::shared_ptr<const Csr>& graph,
                        bool cache_hit) {
  const Clock::time_point dispatched = Clock::now();
  const bool has_deadline = job->spec.deadline_ms > 0.0;
  const Clock::time_point deadline =
      job->submitted + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               job->spec.deadline_ms));

  // order: relaxed — poll of the standalone cancel flag.
  if (job->cancel.load(std::memory_order_relaxed)) {
    fail_terminal(job, JobStatus::kCancelled, "cancelled");
    return;
  }
  if (has_deadline && dispatched > deadline) {
    fail_terminal(job, JobStatus::kCancelled, "deadline_exceeded");
    return;
  }

  {
    sync::LockGuard lock(job->mu);
    job->status = JobStatus::kRunning;
  }
  job->cv.notify_all();

  JobResult result;
  result.queue_ms = ms_since(job->submitted, dispatched);
  result.cache_hit = cache_hit;
  result.mapped = graph->is_view();  // zero-copy: served off the mmap store

  try {
    if (opts_.verify) {
      // A malformed graph would make every downstream "valid coloring"
      // claim meaningless, so the certificate check starts at the input.
      if (const auto issue = check::validate_csr(*graph)) {
        JobResult r = std::move(result);
        r.error = "invalid_graph: " + issue->to_string();
        finish(job, JobStatus::kFailed, std::move(r));
        return;
      }
    }
    const PriorityMode prio = priority_mode_from_name(job->spec.priority);
    std::vector<color_t> colors;
    bool cancelled = false;

    if (job->spec.backend == Backend::kPar) {
      par::ParOptions popts;
      popts.priority = prio;
      popts.seed = job->spec.seed;
      if (job->spec.grain != 0) popts.grain = job->spec.grain;
      if (!job->spec.schedule.empty()) {
        popts.schedule = par::schedule_from_name(job->spec.schedule);
      }
      if (!job->spec.order.empty()) {
        // Validated at the protocol boundary; the runner reorders, colors
        // the relabeled graph, and unmaps back to the caller's vertex ids.
        popts.order = order_from_name(job->spec.order);
      }
      popts.hub_degree_threshold = job->spec.hub_threshold;
      JobRecord* rec = job.get();
      popts.should_cancel = [rec, has_deadline, deadline] {
        // order: relaxed — poll of the standalone cancel flag.
        return rec->cancel.load(std::memory_order_relaxed) ||
               (has_deadline && Clock::now() > deadline);
      };
      const par::ParAlgorithm algo =
          par::par_algorithm_from_name(job->spec.algorithm);
      par::ParRun run;
      if (job->spec.threads != 0 && job->spec.threads != pool.size()) {
        popts.threads = job->spec.threads;  // ad-hoc pool for this job
        run = par::run_par_coloring(*graph, algo, popts);
      } else {
        run = par::run_par_coloring(pool, *graph, algo, popts);
      }
      result.num_colors = run.num_colors;
      result.iterations = run.iterations;
      result.run_ms = run.wall_ms;
      result.threads = run.threads;
      cancelled = run.cancelled;
      colors = std::move(run.colors);
    } else if (job->spec.backend == Backend::kShard) {
      // Sharded multi-process run via the injected coordinator. No
      // mid-run cancellation hook (the fleet round-trip is the unit of
      // progress); the deadline was checked at dispatch.
      colors = opts_.shard_backend->run(job->spec, *graph, result);
    } else {
      // Characterization job on the simulated device. No mid-run
      // cancellation hook; the deadline was checked at dispatch.
      ColoringOptions copts;
      copts.priority = prio;
      copts.seed = job->spec.seed;
      copts.collect_launches = false;
      const Algorithm algo = algorithm_from_name(job->spec.algorithm);
      ColoringRun run = run_coloring(simgpu::tahiti(), *graph, algo, copts);
      result.num_colors = run.num_colors;
      result.iterations = run.iterations;
      result.run_ms = run.total_ms;  // model time, not wall time
      result.threads = 1;
      colors = std::move(run.colors);
    }

    if (cancelled) {
      // order: relaxed — poll of the standalone cancel flag.
      const char* why = job->cancel.load(std::memory_order_relaxed)
                            ? "cancelled"
                            : "deadline_exceeded";
      finish(job, JobStatus::kCancelled, [&] {
        JobResult r = std::move(result);
        r.error = why;
        return r;
      }());
      return;
    }

    if (opts_.verify) {
      if (const auto violation = check::verify_coloring(*graph, colors)) {
        JobResult r = std::move(result);
        r.error = "invalid_coloring: " + violation->to_string();
        finish(job, JobStatus::kFailed, std::move(r));
        return;
      }
      result.verified = true;
    }
    if (job->spec.keep_colors) result.colors = std::move(colors);
    finish(job, JobStatus::kDone, std::move(result));
  } catch (const std::exception& e) {
    JobResult r = std::move(result);
    r.error = e.what();
    finish(job, JobStatus::kFailed, std::move(r));
  }
}

void Scheduler::finish(const JobPtr& job, JobStatus status, JobResult result) {
  result.latency_ms = ms_since(job->submitted, Clock::now());
  // Counters first: anyone whom the cv below wakes must already see this
  // job reflected in stats().
  {
    sync::LockGuard lock(stats_mu_);
    switch (status) {
      case JobStatus::kDone: ++counters_.completed; break;
      case JobStatus::kFailed: ++counters_.failed; break;
      case JobStatus::kCancelled: ++counters_.cancelled; break;
      default: break;
    }
    latency_ms_.add(result.latency_ms);
  }
  {
    sync::LockGuard lock(job->mu);
    job->status = status;
    job->result = std::move(result);
  }
  job->cv.notify_all();

  // Bound the record table: retire the oldest terminal records.
  sync::LockGuard lock(jobs_mu_);
  terminal_order_.push_back(job->id);
  while (terminal_order_.size() > opts_.retain_jobs) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
}

void Scheduler::fail_terminal(const JobPtr& job, JobStatus status,
                              const std::string& error) {
  JobResult r;
  r.error = error;
  finish(job, status, std::move(r));
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  {
    sync::LockGuard lock(stats_mu_);
    s = counters_;
    s.latency_samples = latency_ms_.count();
    if (s.latency_samples > 0) {
      s.latency_p50_ms = latency_ms_.percentile(50.0);
      s.latency_p90_ms = latency_ms_.percentile(90.0);
      s.latency_p99_ms = latency_ms_.percentile(99.0);
      s.latency_mean_ms = latency_ms_.summary().mean();
      s.latency_max_ms = latency_ms_.summary().max();
    }
  }
  s.queue_depth = queue_.size();
  s.queue_capacity = queue_.capacity();
  {
    sync::LockGuard lock(jobs_mu_);
    s.jobs_tracked = jobs_.size();
  }
  s.registry = registry_.stats();
  return s;
}

void Scheduler::shutdown(bool drain) {
  {
    sync::LockGuard lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  {
    sync::LockGuard lock(jobs_mu_);
    accepting_ = false;
  }
  if (!drain) {
    // Retire everything still queued before the dispatchers get to it.
    std::vector<JobPtr> doomed;
    for (JobPtr j; (j = queue_.remove_front()) != nullptr;) {
      doomed.push_back(std::move(j));
    }
    for (const JobPtr& j : doomed) {
      fail_terminal(j, JobStatus::kCancelled, "shutting_down");
    }
  }
  queue_.close();
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace gcg::svc
