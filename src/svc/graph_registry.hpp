// Thread-safe, LRU-bounded cache of loaded/generated graphs — the service
// layer's answer to "every request re-parses the graph". Keys are either
// file paths (canonicalized, so ./g.mtx and /abs/g.mtx share one entry) or
// generator specs of the form
//
//     gen:<suite-name>?scale=<S>&seed=<N>     e.g. gen:rmat-like?scale=0.25
//
// naming an entry of the paper-evaluation suite (graph/gen/suite.hpp).
// Concurrent requests for the same key share a single load: latecomers
// block on the in-flight load instead of duplicating I/O or generation.
// Entries are handed out as shared_ptr<const Csr>, so eviction never
// invalidates a graph a running job still holds.
//
// Store integration: a path carrying the .gbin v2 magic is opened
// through store::MappedGraph and served as a zero-copy Csr view off the
// page cache. Mapped entries are charged their FILE size against their
// own budget (max_mapped_bytes), not the heap budget — a mapped graph
// far larger than RAM stays servable because the kernel, not the
// registry, decides which of its pages are resident.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "store/mapped_graph.hpp"
#include "util/sync.hpp"

namespace gcg::svc {

class GraphRegistry {
 public:
  struct Options {
    std::size_t max_entries = 16;  ///< LRU capacity in graphs
    /// LRU capacity in (approximate) heap CSR bytes across resident
    /// heap-loaded entries; whichever bound trips first evicts.
    /// Default 1 GiB. Mapped entries do not count here.
    std::size_t max_bytes = std::size_t{1} << 30;
    /// LRU capacity in file bytes across mapped (.gbin v2) entries.
    /// Deliberately huge by default: mapped bytes are page-cache
    /// backed, so this bounds address space, not RAM. Default 256 GiB.
    std::size_t max_mapped_bytes = std::size_t{1} << 38;
    /// Serve .gbin v2 files as zero-copy mapped views (false = heap-load
    /// everything, the pre-store behaviour).
    bool mmap_store = true;
    /// Forwarded to store::MappedGraph::open for mapped entries
    /// (advice, huge pages, checksum verify, warmup threads).
    store::OpenOptions store;
  };

  struct Stats {
    std::uint64_t hits = 0;      ///< served from cache (incl. in-flight joins)
    std::uint64_t misses = 0;    ///< required a load/generate
    std::uint64_t evictions = 0;
    std::uint64_t load_errors = 0;
    std::size_t entries = 0;     ///< resident graphs right now
    std::size_t bytes = 0;       ///< resident heap CSR bytes (heap entries)
    std::size_t mapped_entries = 0;  ///< of `entries`, served off mmap
    std::size_t mapped_bytes = 0;    ///< file bytes charged by mapped entries
  };

  GraphRegistry();  ///< default Options (GCC can't take `Options{}` as a
                    ///< default argument while the enclosing class is open)
  explicit GraphRegistry(Options opts);

  /// Returns the graph for `spec` (path or gen: spec), loading it on first
  /// use. Throws std::runtime_error / std::invalid_argument on bad specs
  /// or unreadable files; a failed load is not cached, so a later retry
  /// (e.g. after the file appears) attempts again. When `cache_hit` is
  /// non-null it reports whether this call was served from cache (resident
  /// entry or joining an in-flight load).
  std::shared_ptr<const Csr> acquire(const std::string& spec,
                                     bool* cache_hit = nullptr);

  /// The cache key `spec` normalizes to: weakly-canonical absolute path
  /// for files, defaults filled in and parameters ordered for gen: specs.
  /// Throws std::invalid_argument on malformed gen: specs.
  static std::string canonical_key(const std::string& spec);

  Stats stats() const;
  void clear();  ///< drop all resident entries (outstanding refs stay valid)

 private:
  using Lru = std::list<std::string>;  // front = most recent

  struct Entry {
    /// Resolves to the graph; carries the load exception on failure.
    /// shared_future so any number of waiters can join one load.
    std::shared_future<std::shared_ptr<const Csr>> future;
    std::size_t bytes = 0;    ///< LRU charge: heap bytes, or file bytes
                              ///< for mapped entries. 0 until loaded.
    bool mapped = false;      ///< charge counts against max_mapped_bytes
    bool ready = false;       ///< future resolved successfully
    Lru::iterator lru_it;
  };

  void touch(Entry& e) GCG_REQUIRES(mu_);
  void evict_to_capacity() GCG_REQUIRES(mu_);

  const Options opts_;
  mutable sync::Mutex mu_;
  std::map<std::string, Entry> entries_ GCG_GUARDED_BY(mu_);
  Lru lru_ GCG_GUARDED_BY(mu_);
  Stats stats_ GCG_GUARDED_BY(mu_);
};

}  // namespace gcg::svc
