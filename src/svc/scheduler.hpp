// The service's execution core: a team of dispatcher threads pulls
// same-graph batches off the bounded JobQueue, resolves the graph through
// the GraphRegistry, and runs each job on the native par backend (or the
// simulated GPU for characterization jobs). Handles admission control
// (queue-full rejection), per-job deadlines and cancellation (via the par
// backend's should_cancel hook), and keeps per-request latency and batch
// statistics for the `stats` verb. Protocol-agnostic: the socket server
// (svc/server.hpp) and in-process users (tests, bench_svc_throughput)
// drive the same API.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "svc/graph_registry.hpp"
#include "svc/job.hpp"
#include "svc/job_queue.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"

namespace gcg::par {
class ThreadPool;
}

namespace gcg::svc {

/// Execution seam for the sharded multi-process backend (src/shard/).
/// svc cannot depend on shard — shard depends on svc for its wire
/// protocol — so the coordinator is injected through this interface via
/// SchedulerOptions::shard_backend. Without one installed, backend=shard
/// submissions are rejected as bad_request.
class ShardBackendIf {
 public:
  virtual ~ShardBackendIf() = default;
  /// Colors spec.graph (already resolved to `graph`), fills the shard
  /// fields of `result` (shards, conflict_rounds, recolored,
  /// boundary_fraction, run_ms, threads, num_colors, iterations) and
  /// returns the full color array for verification. Throws on failure.
  virtual std::vector<color_t> run(const JobSpec& spec, const Csr& graph,
                                   JobResult& result) = 0;
};

struct SchedulerOptions {
  unsigned dispatchers = 2;     ///< jobs running concurrently
  /// Worker threads per dispatcher pool; 0 splits hardware_concurrency
  /// evenly across dispatchers (min 1). A job's spec.threads overrides
  /// with an ad-hoc pool for that job only.
  unsigned threads_per_job = 0;
  std::size_t queue_capacity = 64;   ///< queued jobs before submit rejects
  std::size_t batch_limit = 8;       ///< max same-graph jobs per dispatch
  std::size_t retain_jobs = 1024;    ///< terminal records kept for queries
  /// Latency samples kept for percentile reporting (sliding window, so
  /// memory and stats-query cost stay bounded on a long-running service).
  std::size_t latency_window = 4096;
  bool verify = true;                ///< check colorings before reporting
  GraphRegistry::Options registry;
  /// Sharded-backend coordinator; null = backend=shard jobs rejected.
  std::shared_ptr<ShardBackendIf> shard_backend;
};

/// Counters the `stats` verb reports. Latency covers terminal jobs
/// (submit -> done/failed/cancelled); mean/max are all-time, percentiles
/// are over the most recent `latency_window` samples.
struct SchedulerStats {
  std::uint64_t submitted = 0;   ///< accepted into the queue
  std::uint64_t rejected = 0;    ///< refused: queue full or bad request
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t batches = 0;        ///< dispatch batches executed
  std::uint64_t batched_jobs = 0;   ///< jobs that rode a batch of size > 1
  std::size_t queue_depth = 0;      ///< queued right now
  std::size_t queue_capacity = 0;
  std::size_t jobs_tracked = 0;     ///< records queryable right now
  std::size_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_max_ms = 0.0;
  GraphRegistry::Stats registry;
};

class Scheduler {
 public:
  /// Outcome of submit: on rejection `error` is a stable machine-readable
  /// code ("queue_full", "bad_request", "shutting_down") and `detail` a
  /// human explanation.
  struct Submit {
    bool accepted = false;
    std::uint64_t id = 0;
    std::string error;
    std::string detail;
  };

  explicit Scheduler(SchedulerOptions opts = {});
  ~Scheduler();  ///< shutdown(false)
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Submit submit(JobSpec spec);

  /// Snapshot of a job, or nullopt if the id is unknown / already evicted.
  std::optional<JobSnapshot> status(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal state (or `timeout_ms`
  /// elapses; 0 = wait forever). nullopt on unknown id; a snapshot in a
  /// non-terminal state on timeout.
  std::optional<JobSnapshot> wait(std::uint64_t id, double timeout_ms = 0.0);

  /// Cancels a job: a queued job terminates immediately, a running one is
  /// stopped at its next iteration boundary. False if the id is unknown
  /// or the job already reached a terminal state.
  bool cancel(std::uint64_t id);

  SchedulerStats stats() const;
  GraphRegistry& registry() { return registry_; }
  const SchedulerOptions& options() const { return opts_; }

  /// Stops admission; `drain` decides whether queued jobs still run or
  /// are cancelled with error "shutting_down". Joins the dispatchers.
  /// Idempotent; running jobs always finish (they hold pool threads).
  void shutdown(bool drain = true);

 private:
  void dispatcher_loop(unsigned index);
  void run_batch(par::ThreadPool& pool, const std::vector<JobPtr>& batch);
  void run_one(par::ThreadPool& pool, const JobPtr& job,
               const std::shared_ptr<const Csr>& graph, bool cache_hit);
  void finish(const JobPtr& job, JobStatus status, JobResult result);
  void fail_terminal(const JobPtr& job, JobStatus status,
                     const std::string& error);

  const SchedulerOptions opts_;
  GraphRegistry registry_;
  JobQueue queue_;
  std::vector<std::thread> dispatchers_;

  mutable sync::Mutex jobs_mu_;
  std::map<std::uint64_t, JobPtr> jobs_ GCG_GUARDED_BY(jobs_mu_);
  /// Eviction order for terminal records.
  std::deque<std::uint64_t> terminal_order_ GCG_GUARDED_BY(jobs_mu_);
  std::uint64_t next_id_ GCG_GUARDED_BY(jobs_mu_) = 1;
  bool accepting_ GCG_GUARDED_BY(jobs_mu_) = true;

  mutable sync::Mutex stats_mu_;
  /// Counter fields only; gauges filled on read.
  SchedulerStats counters_ GCG_GUARDED_BY(stats_mu_);
  /// Bounded: percentiles over a window.
  WindowedStats latency_ms_ GCG_GUARDED_BY(stats_mu_);

  sync::Mutex shutdown_mu_;
  bool shut_down_ GCG_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace gcg::svc
