#include "svc/graph_registry.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "graph/gen/suite.hpp"
#include "graph/io/io.hpp"
#include "graph/reorder.hpp"
#include "util/narrow.hpp"

namespace gcg::svc {

namespace {

constexpr const char* kGenPrefix = "gen:";

bool is_gen_spec(const std::string& spec) {
  return spec.rfind(kGenPrefix, 0) == 0;
}

struct GenSpec {
  std::string name;
  double scale = 1.0;
  std::uint64_t seed = 1;
  /// Deterministic relabeling applied after generation (kRandom uses
  /// `seed`). Part of the spec — and so of the canonical cache key —
  /// which is what lets every shard worker resolve the *identical*
  /// reordered graph from the spec string alone.
  Order order = Order::kNatural;
};

/// Parses "gen:<name>[?scale=S][&seed=N][&order=O]" (params in any
/// order).
GenSpec parse_gen_spec(const std::string& spec) {
  GenSpec out;
  std::string rest = spec.substr(std::string(kGenPrefix).size());
  const auto q = rest.find('?');
  out.name = rest.substr(0, q);
  if (out.name.empty()) {
    throw std::invalid_argument("registry: empty generator name in \"" +
                                spec + "\"");
  }
  if (q == std::string::npos) return out;
  std::string params = rest.substr(q + 1);
  std::size_t pos = 0;
  while (pos < params.size()) {
    auto amp = params.find('&', pos);
    if (amp == std::string::npos) amp = params.size();
    const std::string kv = params.substr(pos, amp - pos);
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == kv.size()) {
      throw std::invalid_argument("registry: malformed parameter \"" + kv +
                                  "\" in \"" + spec + "\"");
    }
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    const char* b = val.data();
    const char* e = b + val.size();
    if (key == "scale") {
      auto [p, ec] = std::from_chars(b, e, out.scale);
      if (ec != std::errc() || p != e || out.scale <= 0.0) {
        throw std::invalid_argument("registry: bad scale \"" + val + "\"");
      }
      // Overflow-harden here, at spec-parse time: a scale whose vertex or
      // arc count would wrap vid_t/eid_t (or "inf"/"nan", which
      // from_chars happily parses) must come back as a stable
      // bad_request from submit, not truncate a generated graph — or
      // trip a contract abort inside the registry's load path later.
      validate_suite_scale(out.scale);
    } else if (key == "seed") {
      auto [p, ec] = std::from_chars(b, e, out.seed);
      if (ec != std::errc() || p != e) {
        throw std::invalid_argument("registry: bad seed \"" + val + "\"");
      }
    } else if (key == "order") {
      try {
        out.order = order_from_name(val);
      } catch (const std::exception&) {
        throw std::invalid_argument("registry: bad order \"" + val +
                                    "\" in \"" + spec + "\"");
      }
    } else {
      throw std::invalid_argument("registry: unknown parameter \"" + key +
                                  "\" in \"" + spec +
                                  "\" (supported: scale, seed, order)");
    }
    pos = amp + 1;
  }
  return out;
}

std::string format_scale(double scale) {
  // Shortest round-trip representation keeps keys canonical: 0.50 == 0.5.
  char buf[32];
  const auto [p, ec] =
      std::to_chars(buf, buf + sizeof buf, scale,
                    std::chars_format::general);
  return std::string(buf, p);
}

std::size_t graph_bytes(const Csr& g) {
  return g.heap_bytes() + sizeof(Csr);
}

/// Case-insensitive ".gbin" suffix check on a canonical key.
bool has_gbin_extension(const std::string& key) {
  const auto dot = key.rfind('.');
  if (dot == std::string::npos) return false;
  std::string ext = key.substr(dot + 1);
  std::transform(ext.begin(), ext.end(), ext.begin(), [](unsigned char c) {
    // lossy: tolower of an ASCII byte round-trips through int
    return narrow_cast<char>(std::tolower(c));
  });
  return ext == "gbin";
}

}  // namespace

GraphRegistry::GraphRegistry() : GraphRegistry(Options{}) {}

GraphRegistry::GraphRegistry(Options opts) : opts_(opts) {
  if (opts_.max_entries == 0) {
    throw std::invalid_argument("registry: max_entries must be >= 1");
  }
}

std::string GraphRegistry::canonical_key(const std::string& spec) {
  if (spec.empty()) {
    throw std::invalid_argument("registry: empty graph spec");
  }
  if (is_gen_spec(spec)) {
    const GenSpec g = parse_gen_spec(spec);
    std::string key = std::string(kGenPrefix) + g.name + "?scale=" +
                      format_scale(g.scale) + "&seed=" + std::to_string(g.seed);
    // kNatural is omitted so pre-order specs keep their exact old keys.
    if (g.order != Order::kNatural) {
      key += std::string("&order=") + order_name(g.order);
    }
    return key;
  }
  // Absolutize first: weakly_canonical leaves a relative path untouched
  // when no prefix of it exists, which would make "x.mtx" and "./x.mtx"
  // distinct keys.
  std::error_code ec;
  std::filesystem::path abs = std::filesystem::absolute(spec, ec);
  if (ec) abs = spec;
  std::filesystem::path canon = std::filesystem::weakly_canonical(abs, ec);
  if (ec) canon = abs.lexically_normal();
  return canon.string();
}

std::shared_ptr<const Csr> GraphRegistry::acquire(const std::string& spec,
                                                  bool* cache_hit) {
  const std::string key = canonical_key(spec);

  std::shared_future<std::shared_ptr<const Csr>> fut;
  std::promise<std::shared_ptr<const Csr>> promise;
  bool loader = false;
  {
    sync::LockGuard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;  // resident or in-flight: either way the load is shared
      touch(it->second);
      fut = it->second.future;
    } else {
      ++stats_.misses;
      loader = true;
      Entry e;
      e.future = promise.get_future().share();
      lru_.push_front(key);
      e.lru_it = lru_.begin();
      fut = e.future;
      entries_.emplace(key, std::move(e));
    }
  }

  if (cache_hit) *cache_hit = !loader;
  if (!loader) return fut.get();  // may rethrow the loader's exception

  // Load outside the lock so a slow parse/generate never stalls hits on
  // other graphs.
  std::shared_ptr<const Csr> graph;
  std::size_t charge = 0;
  bool mapped = false;
  try {
    if (is_gen_spec(key)) {
      const GenSpec g = parse_gen_spec(key);
      SuiteOptions sopts;
      sopts.scale = g.scale;
      sopts.seed = g.seed;
      Csr generated = make_suite_graph(g.name, sopts).graph;
      if (g.order != Order::kNatural) {
        generated = reorder(generated, g.order, g.seed);
      }
      graph = std::make_shared<const Csr>(std::move(generated));
    } else if (opts_.mmap_store && has_gbin_extension(key) &&
               store::is_gbin_v2_file(key)) {
      // Zero-copy path: the cached shared_ptr aliases the MappedGraph's
      // view, so this entry (and every job holding it) pins the mapping,
      // never a heap copy. v1 .gbin files miss the magic sniff and take
      // the heap branch below unchanged.
      auto mg = store::MappedGraph::open(key, opts_.store);
      mapped = mg->is_mapped();
      charge = mg->file_bytes();
      graph = store::graph_view(std::move(mg));
    } else {
      graph = std::make_shared<const Csr>(load_graph(key));
    }
  } catch (...) {
    {
      sync::LockGuard lock(mu_);
      ++stats_.load_errors;
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        lru_.erase(it->second.lru_it);
        entries_.erase(it);  // failed loads are not cached
      }
    }
    promise.set_exception(std::current_exception());
    fut.get();  // rethrow for this caller
    throw;      // unreachable; keeps control flow obvious
  }

  {
    sync::LockGuard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {  // may have been clear()ed meanwhile
      it->second.bytes = mapped ? charge : graph_bytes(*graph);
      it->second.mapped = mapped;
      it->second.ready = true;
      evict_to_capacity();
    }
  }
  promise.set_value(graph);
  return graph;
}

void GraphRegistry::touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru_it);
}

void GraphRegistry::evict_to_capacity() {
  if (lru_.size() < 2) return;  // never evict the only (just-loaded) entry
  std::size_t heap_bytes = 0;
  std::size_t mapped_bytes = 0;
  for (const auto& [k, e] : entries_) {
    (e.mapped ? mapped_bytes : heap_bytes) += e.bytes;
  }
  // Walk from the cold end toward (but never onto) the MRU entry,
  // skipping in-flight loads — they have waiters — and entries whose
  // eviction would not relieve any exceeded bound (evicting a mapped
  // entry cannot fix a heap overage, and vice versa).
  auto it = std::prev(lru_.end());
  while ((entries_.size() > opts_.max_entries ||
          heap_bytes > opts_.max_bytes ||
          mapped_bytes > opts_.max_mapped_bytes) &&
         it != lru_.begin()) {
    const auto cur = it--;
    const auto eit = entries_.find(*cur);
    if (eit == entries_.end() || !eit->second.ready) continue;
    const Entry& e = eit->second;
    const bool helps = entries_.size() > opts_.max_entries ||
                       (e.mapped ? mapped_bytes > opts_.max_mapped_bytes
                                 : heap_bytes > opts_.max_bytes);
    if (!helps) continue;
    (e.mapped ? mapped_bytes : heap_bytes) -= e.bytes;
    entries_.erase(eit);
    lru_.erase(cur);
    ++stats_.evictions;
  }
}

GraphRegistry::Stats GraphRegistry::stats() const {
  sync::LockGuard lock(mu_);
  Stats s = stats_;
  s.entries = 0;
  s.bytes = 0;
  s.mapped_entries = 0;
  s.mapped_bytes = 0;
  for (const auto& [k, e] : entries_) {
    if (!e.ready) continue;
    ++s.entries;
    if (e.mapped) {
      ++s.mapped_entries;
      s.mapped_bytes += e.bytes;
    } else {
      s.bytes += e.bytes;
    }
  }
  return s;
}

void GraphRegistry::clear() {
  sync::LockGuard lock(mu_);
  // Drop only resolved entries; in-flight loads keep their slot so their
  // waiters still resolve.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.ready) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace gcg::svc
