#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "svc/protocol.hpp"
#include "util/narrow.hpp"

namespace gcg::svc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_until(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

/// Server not there (yet): worth retrying under a connect budget. ENOENT
/// covers the socket file not existing yet; ECONNREFUSED a bound-but-
/// not-listening (or just-died) server.
bool connect_retriable(int err) {
  return err == ECONNREFUSED || err == ENOENT || err == EAGAIN ||
         err == EINTR;
}

}  // namespace

Client::Client(const std::string& socket_path, const Options& opts)
    : opts_(opts) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             opts_.connect_timeout_ms));
  double backoff_ms = std::max(0.1, opts_.backoff_initial_ms);
  while (true) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("client: socket(): ") +
                               std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
        0) {
      return;
    }
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    const double left = ms_until(give_up);
    if (!connect_retriable(err) || left <= 0.0) {
      throw std::runtime_error("client: connect(" + socket_path +
                               "): " + std::strerror(err));
    }
    // Capped exponential backoff, never sleeping past the budget.
    const double nap = std::min(backoff_ms, left);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(nap));
    backoff_ms = std::min(backoff_ms * 2.0, opts_.backoff_max_ms);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : opts_(other.opts_), fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Json Client::request(const Json& req) {
  std::string line;
  if (req.is_object() && !req.has("protocol_version")) {
    Json stamped = req;
    stamped["protocol_version"] = Json(kProtocolVersion);
    line = stamped.dump();
  } else {
    line = req.dump();
  }
  line += '\n';

  const bool timed = opts_.request_timeout_ms > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             opts_.request_timeout_ms));

  std::size_t off = 0;
  while (off < line.size()) {
    // MSG_NOSIGNAL: a server that died mid-request must surface as EPIPE
    // (exception below), not a SIGPIPE that kills the client process.
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw std::runtime_error("client: server closed the connection");
      }
      throw std::runtime_error(std::string("client: write(): ") +
                               std::strerror(errno));
    }
    off += to_unsigned(n);
  }

  while (true) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      const std::string reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return Json::parse(reply);
    }
    if (timed) {
      // Bounded wait for readability; a reply that misses the deadline
      // leaves this connection mid-protocol, so callers must not reuse
      // the Client after this throw.
      const double left = ms_until(deadline);
      if (left <= 0.0) {
        throw std::runtime_error("client: request timed out");
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int r = ::poll(&pfd, 1,
                           narrow<int>(std::min(left + 1.0, 1.0e9)));
      if (r < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("client: poll(): ") +
                                 std::strerror(errno));
      }
      if (r == 0) continue;  // re-check the deadline
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("client: read(): ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error("client: server closed the connection");
    }
    buf_.append(chunk, to_unsigned(n));
  }
}

Json Client::submit(const JobSpec& spec, bool wait) {
  Json req = job_spec_to_json(spec);
  req["op"] = Json("submit");
  if (wait) req["wait"] = Json(true);
  return request(req);
}

Json Client::status(std::uint64_t id) {
  Json req{JsonObject{}};
  req["op"] = Json("status");
  req["id"] = Json(id);
  return request(req);
}

Json Client::result(std::uint64_t id, double timeout_ms) {
  Json req{JsonObject{}};
  req["op"] = Json("result");
  req["id"] = Json(id);
  if (timeout_ms > 0.0) req["timeout_ms"] = Json(timeout_ms);
  return request(req);
}

Json Client::cancel(std::uint64_t id) {
  Json req{JsonObject{}};
  req["op"] = Json("cancel");
  req["id"] = Json(id);
  return request(req);
}

Json Client::stats() {
  Json req{JsonObject{}};
  req["op"] = Json("stats");
  return request(req);
}

bool Client::ping() {
  Json req{JsonObject{}};
  req["op"] = Json("ping");
  return request(req).get_bool("ok", false);
}

bool Client::shutdown_server() {
  Json req{JsonObject{}};
  req["op"] = Json("shutdown");
  return request(req).get_bool("ok", false);
}

}  // namespace gcg::svc
