#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "svc/protocol.hpp"

namespace gcg::svc {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("client: bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("client: socket(): ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("client: connect(" + socket_path +
                             "): " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Json Client::request(const Json& req) {
  std::string line = req.dump();
  line += '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    // MSG_NOSIGNAL: a server that died mid-request must surface as EPIPE
    // (exception below), not a SIGPIPE that kills the client process.
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw std::runtime_error("client: server closed the connection");
      }
      throw std::runtime_error(std::string("client: write(): ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }

  while (true) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      const std::string reply = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return Json::parse(reply);
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("client: read(): ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      throw std::runtime_error("client: server closed the connection");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

Json Client::submit(const JobSpec& spec, bool wait) {
  Json req = job_spec_to_json(spec);
  req["op"] = Json("submit");
  if (wait) req["wait"] = Json(true);
  return request(req);
}

Json Client::status(std::uint64_t id) {
  Json req{JsonObject{}};
  req["op"] = Json("status");
  req["id"] = Json(id);
  return request(req);
}

Json Client::result(std::uint64_t id, double timeout_ms) {
  Json req{JsonObject{}};
  req["op"] = Json("result");
  req["id"] = Json(id);
  if (timeout_ms > 0.0) req["timeout_ms"] = Json(timeout_ms);
  return request(req);
}

Json Client::cancel(std::uint64_t id) {
  Json req{JsonObject{}};
  req["op"] = Json("cancel");
  req["id"] = Json(id);
  return request(req);
}

Json Client::stats() {
  Json req{JsonObject{}};
  req["op"] = Json("stats");
  return request(req);
}

bool Client::ping() {
  Json req{JsonObject{}};
  req["op"] = Json("ping");
  return request(req).get_bool("ok", false);
}

bool Client::shutdown_server() {
  Json req{JsonObject{}};
  req["op"] = Json("shutdown");
  return request(req).get_bool("ok", false);
}

}  // namespace gcg::svc
