#include "svc/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/narrow.hpp"

namespace gcg::svc {

namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

/// JSON text is handled byte-wise; <cctype> classifiers and the control-
/// character checks need the raw byte value, not a (possibly negative)
/// char.
constexpr unsigned char byte_of(char c) {
  return narrow_cast<unsigned char>(c);  // lossy: raw byte reinterpretation
}

/// UTF-8 encoding emits raw bytes back into the string; the high bit is
/// intentionally set for continuation/lead bytes.
constexpr char utf8_byte(unsigned b) {
  return narrow_cast<char>(b);  // lossy: raw byte, high bit intended
}

void escape_into(const std::string& s, std::string& out) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte_of(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (i_ != s_.size()) fail("trailing garbage after value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(i_) + ": " + why);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (i_ >= s_.size() || s_[i_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++i_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array(int depth) {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      char c = s_[i_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("unterminated escape");
        char e = s_[i_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = s_[i_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= to_unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= to_unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= to_unsigned(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // Encode the code point as UTF-8 (BMP only; surrogate pairs
            // are not needed by the protocol and parse as two code units).
            if (code < 0x80) {
              out += narrow<char>(code);
            } else if (code < 0x800) {
              out += utf8_byte(0xC0 | (code >> 6));
              out += utf8_byte(0x80 | (code & 0x3F));
            } else {
              out += utf8_byte(0xE0 | (code >> 12));
              out += utf8_byte(0x80 | ((code >> 6) & 0x3F));
              out += utf8_byte(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else if (byte_of(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() && std::isdigit(byte_of(s_[i_]))) ++i_;
    bool integral = true;
    if (i_ < s_.size() && s_[i_] == '.') {
      integral = false;
      ++i_;
      while (i_ < s_.size() && std::isdigit(byte_of(s_[i_]))) ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      integral = false;
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      while (i_ < s_.size() && std::isdigit(byte_of(s_[i_]))) ++i_;
    }
    if (i_ == start || (i_ == start + 1 && s_[start] == '-')) {
      fail("malformed number");
    }
    const std::string_view tok(s_.data() + start, i_ - start);
    if (integral) {
      std::int64_t iv = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(iv);
      // fall through to double on overflow
    }
    double dv = 0.0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("malformed number");
    }
    return Json(dv);
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(v_);
}

std::int64_t Json::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_double()) {
    const double d = std::get<double>(v_);
    // Only integral doubles inside int64 range convert: casting e.g. a
    // client-supplied 1e300 would be undefined behavior. 2^63 is exactly
    // representable; INT64_MAX is not, hence the half-open bound.
    constexpr double kLo = -9223372036854775808.0;  // -2^63
    constexpr double kHi = 9223372036854775808.0;   // 2^63
    if (std::nearbyint(d) == d && d >= kLo && d < kHi) {
      return narrow<std::int64_t>(d);
    }
  }
  type_error("an integer");
}

double Json::as_double() const {
  if (is_double()) return std::get<double>(v_);
  // lossy: int64 values beyond 2^53 round to the nearest double here,
  // exactly as a standards-conforming JSON reader would.
  if (is_int()) return narrow_cast<double>(std::get<std::int64_t>(v_));
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(v_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<JsonArray>(v_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(v_);
}

bool Json::has(const std::string& key) const { return find(key) != nullptr; }

const Json* Json::find(const std::string& key) const {
  const JsonObject& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) type_error("an object");
  return std::get<JsonObject>(v_)[key];
}

std::string Json::get_string(const std::string& key,
                             const std::string& def) const {
  const Json* j = find(key);
  return j ? j->as_string() : def;
}

std::int64_t Json::get_int(const std::string& key, std::int64_t def) const {
  const Json* j = find(key);
  return j ? j->as_int() : def;
}

double Json::get_double(const std::string& key, double def) const {
  const Json* j = find(key);
  return j ? j->as_double() : def;
}

bool Json::get_bool(const std::string& key, bool def) const {
  const Json* j = find(key);
  return j ? j->as_bool() : def;
}

std::string Json::dump() const {
  std::string out;
  struct Visitor {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(std::int64_t i) const { out += std::to_string(i); }
    void operator()(double d) const {
      if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
        out += "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
    }
    void operator()(const std::string& s) const { escape_into(s, out); }
    void operator()(const JsonArray& a) const {
      out += '[';
      bool first = true;
      for (const Json& v : a) {
        if (!first) out += ',';
        first = false;
        out += v.dump();
      }
      out += ']';
    }
    void operator()(const JsonObject& o) const {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out += ',';
        first = false;
        escape_into(k, out);
        out += ':';
        out += v.dump();
      }
      out += '}';
    }
  };
  std::visit(Visitor{out}, v_);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace gcg::svc
