// Seeded schedule-perturbation harness. While an instance is alive, the
// native pools (par::ThreadPool, par::StealPool) call back into it at
// every chunk boundary and it injects randomized yields and short spin
// delays. The decision stream is a stateless counter hash of
// (seed, worker, per-worker counter), so a given (seed, thread-count)
// pair perturbs the same chunk boundaries on every run — TSan jobs and
// parity tests explore far more interleavings than an unperturbed run,
// and a failure reproduces from its seed.
//
// Scope: one StressSchedule at a time, installed while the pools are
// quiescent (construct before the parallel region, destroy after). The
// constructor aborts if a hook is already installed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "util/stress.hpp"

namespace gcg::check {

struct StressOptions {
  std::uint64_t seed = 1;
  /// Probability that a chunk boundary yields the thread.
  double yield_probability = 0.2;
  /// Probability that a chunk boundary spins (busy-waits) instead.
  double spin_probability = 0.2;
  /// Spin length is uniform in [1, max_spin] pause iterations.
  std::uint32_t max_spin = 512;
};

class StressSchedule {
 public:
  explicit StressSchedule(StressOptions opts);
  explicit StressSchedule(std::uint64_t seed = 1)
      : StressSchedule(StressOptions{.seed = seed}) {}
  ~StressSchedule();
  StressSchedule(const StressSchedule&) = delete;
  StressSchedule& operator=(const StressSchedule&) = delete;

  /// Chunk boundaries observed so far (all workers). Read when quiescent.
  std::uint64_t boundaries_seen() const;
  /// Perturbations (yields + spins) actually injected so far.
  std::uint64_t perturbations() const;

  const StressOptions& options() const { return opts_; }

 private:
  static constexpr unsigned kMaxLanes = 64;

  // One cache line per worker lane: the counter is the only mutable state
  // and only its own worker increments it, so lanes never contend.
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> boundaries{0};
    std::atomic<std::uint64_t> perturbed{0};
  };

  static void hook_fn(void* state, unsigned worker);
  void perturb(unsigned worker);

  StressOptions opts_;
  std::uint64_t yield_cut_ = 0;  ///< decision thresholds on the hash value
  std::uint64_t spin_cut_ = 0;
  std::unique_ptr<Lane[]> lanes_;
  StressHook hook_{};
};

}  // namespace gcg::check
