// Coloring certificate checking — the single shared verifier. Every
// consumer of a coloring (tests, benches, examples, the service layer)
// validates results through check::verify_coloring; there are no private
// re-implementations of the conflict scan.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg::check {

struct Violation {
  vid_t u = 0;
  vid_t v = 0;
  color_t color = kUncolored;
  std::string to_string() const;
};

/// Certificate check: first adjacent pair sharing a color, or first
/// uncolored vertex (when require_complete). nullopt = valid coloring.
std::optional<Violation> verify_coloring(const Csr& g,
                                         std::span<const color_t> colors,
                                         bool require_complete = true);

/// True iff colors is a proper (and, by default, complete) coloring.
bool is_valid_coloring(const Csr& g, std::span<const color_t> colors,
                       bool require_complete = true);

}  // namespace gcg::check
