#include "check/coloring.hpp"

#include <sstream>

#include "util/expect.hpp"

namespace gcg::check {

std::string Violation::to_string() const {
  std::ostringstream os;
  if (u == v) {
    os << "vertex " << u << " is uncolored";
  } else {
    os << "edge (" << u << "," << v << ") has both endpoints color " << color;
  }
  return os.str();
}

std::optional<Violation> verify_coloring(const Csr& g,
                                         std::span<const color_t> colors,
                                         bool require_complete) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (colors[u] == kUncolored) {
      if (require_complete) return Violation{u, u, kUncolored};
      continue;
    }
    for (vid_t v : g.neighbors(u)) {
      if (v > u) break;  // sorted lists: check each edge once via v < u side
      if (colors[v] != kUncolored && colors[v] == colors[u]) {
        return Violation{v, u, colors[u]};
      }
    }
  }
  return std::nullopt;
}

bool is_valid_coloring(const Csr& g, std::span<const color_t> colors,
                       bool require_complete) {
  return !verify_coloring(g, colors, require_complete).has_value();
}

}  // namespace gcg::check
