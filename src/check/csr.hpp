// Structural validation of CSR adjacency data. Unlike Csr::validate()
// (which runs in the constructor and only guards against memory-unsafe
// shapes), these checks cover the full set of invariants the coloring
// algorithms rely on — monotone offsets, in-range/sorted/deduplicated
// neighbour lists, no self loops, and symmetry for undirected graphs —
// and report the first violation with enough context to debug a broken
// loader or generator.
//
// The span overload deliberately takes raw arrays so tests can feed
// malformed data that the Csr constructor would refuse to build.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>

#include "graph/csr.hpp"

namespace gcg::check {

enum class CsrDefect {
  kEmptyOffsets,       ///< row-offset array is empty (need at least [0])
  kBadFirstOffset,     ///< rows[0] != 0
  kNonMonotoneOffsets, ///< rows[i] < rows[i-1]
  kArcCountMismatch,   ///< rows[n] != cols.size()
  kColumnOutOfRange,   ///< cols[k] >= n
  kUnsortedNeighbors,  ///< adjacency list not strictly ascending
  kDuplicateNeighbor,  ///< repeated vertex in one adjacency list
  kSelfLoop,           ///< v appears in its own list
  kAsymmetricEdge,     ///< u->v present but v->u missing (undirected check)
};

const char* csr_defect_name(CsrDefect d);

struct CsrIssue {
  CsrDefect defect;
  /// Row being scanned when the defect was found (0 for offset-shape
  /// defects that are not attributable to a row).
  vid_t row = 0;
  /// Offending value: the column index, offset value, or arc count,
  /// depending on the defect.
  std::uint64_t value = 0;
  /// Flat position in the offending array (index into rows or cols).
  std::size_t index = 0;

  std::string to_string() const;
};

struct CsrCheckOptions {
  bool require_sorted = true;      ///< adjacency lists strictly ascending
  bool require_unique = true;      ///< no duplicate neighbours
  bool require_symmetric = true;   ///< undirected: every arc has a mate
  bool allow_self_loops = false;
};

/// Validate raw CSR arrays. Returns the first issue found, or nullopt if
/// the arrays form a well-formed graph under `opts`.
std::optional<CsrIssue> validate_csr(std::span<const eid_t> rows,
                                     std::span<const vid_t> cols,
                                     const CsrCheckOptions& opts = {});

/// Validate an already-constructed Csr (constructor guarantees the shape
/// invariants; this still re-checks everything, including symmetry).
std::optional<CsrIssue> validate_csr(const Csr& g,
                                     const CsrCheckOptions& opts = {});

}  // namespace gcg::check
