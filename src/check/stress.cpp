#include "check/stress.hpp"

#include <algorithm>
#include <thread>

#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg::check {

namespace {

// Map a probability to a threshold on a uniform 64-bit hash value.
// p >= 1 saturates explicitly: the double->uint64 cast of 2^64 would be
// undefined behaviour, and "always fire" must mean always.
std::uint64_t probability_cut(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p >= 1.0) return ~std::uint64_t{0};
  return narrow<std::uint64_t>(p * 0x1.0p64);
}

// draw < cut, with the saturated cut meaning "every draw hits".
bool cut_hit(std::uint64_t draw, std::uint64_t cut) {
  return cut == ~std::uint64_t{0} || draw < cut;
}

}  // namespace

StressSchedule::StressSchedule(StressOptions opts)
    : opts_(opts),
      yield_cut_(probability_cut(opts.yield_probability)),
      spin_cut_(probability_cut(
          std::min(1.0, opts.yield_probability + opts.spin_probability))),
      lanes_(std::make_unique<Lane[]>(kMaxLanes)) {
  GCG_EXPECT(!stress_hook_installed());  // one harness at a time
  hook_.fn = &StressSchedule::hook_fn;
  hook_.state = this;
  install_stress_hook(&hook_);
}

StressSchedule::~StressSchedule() { install_stress_hook(nullptr); }

void StressSchedule::hook_fn(void* state, unsigned worker) {
  static_cast<StressSchedule*>(state)->perturb(worker);
}

void StressSchedule::perturb(unsigned worker) {
  Lane& lane = lanes_[worker % kMaxLanes];
  // order: relaxed — the counter is a per-lane decision stream, only this
  // worker's thread increments it and totals are read when quiescent.
  const std::uint64_t k = lane.boundaries.fetch_add(1, std::memory_order_relaxed);
  const CounterHash hash(opts_.seed ^ (std::uint64_t{worker} << 32));
  const std::uint64_t draw = hash(k);
  if (cut_hit(draw, yield_cut_)) {
    // order: relaxed — statistics counter, read when quiescent.
    lane.perturbed.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  } else if (cut_hit(draw, spin_cut_)) {
    // order: relaxed — statistics counter, read when quiescent.
    lane.perturbed.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t spins =
        1 + narrow<std::uint32_t>(hash(~k) % opts_.max_spin);
    for (std::uint32_t i = 0; i < spins; ++i) {
      // order: seq_cst signal fence — compiler-only barrier that keeps the
      // empty delay loop alive; no inter-thread ordering is implied.
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
  }
}

std::uint64_t StressSchedule::boundaries_seen() const {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kMaxLanes; ++i) {
    // order: relaxed — quiescent aggregate of per-lane counters.
    total += lanes_[i].boundaries.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t StressSchedule::perturbations() const {
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kMaxLanes; ++i) {
    // order: relaxed — quiescent aggregate of per-lane counters.
    total += lanes_[i].perturbed.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace gcg::check
