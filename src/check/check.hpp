// Umbrella header for the correctness-checking library: CSR structural
// validation, the shared coloring verifier, and the schedule-stress
// harness. See docs/CORRECTNESS.md for the full tooling story.
#pragma once

#include "check/coloring.hpp"  // IWYU pragma: export
#include "check/csr.hpp"       // IWYU pragma: export
#include "check/stress.hpp"    // IWYU pragma: export
