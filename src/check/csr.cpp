#include "check/csr.hpp"

#include <algorithm>
#include <sstream>

#include "util/narrow.hpp"

namespace gcg::check {

const char* csr_defect_name(CsrDefect d) {
  switch (d) {
    case CsrDefect::kEmptyOffsets: return "empty_offsets";
    case CsrDefect::kBadFirstOffset: return "bad_first_offset";
    case CsrDefect::kNonMonotoneOffsets: return "non_monotone_offsets";
    case CsrDefect::kArcCountMismatch: return "arc_count_mismatch";
    case CsrDefect::kColumnOutOfRange: return "column_out_of_range";
    case CsrDefect::kUnsortedNeighbors: return "unsorted_neighbors";
    case CsrDefect::kDuplicateNeighbor: return "duplicate_neighbor";
    case CsrDefect::kSelfLoop: return "self_loop";
    case CsrDefect::kAsymmetricEdge: return "asymmetric_edge";
  }
  return "unknown";
}

std::string CsrIssue::to_string() const {
  std::ostringstream os;
  os << csr_defect_name(defect);
  switch (defect) {
    case CsrDefect::kEmptyOffsets:
      os << ": row-offset array is empty";
      break;
    case CsrDefect::kBadFirstOffset:
      os << ": rows[0] = " << value << ", expected 0";
      break;
    case CsrDefect::kNonMonotoneOffsets:
      os << ": rows[" << index << "] = " << value << " is below rows["
         << (index - 1) << "]";
      break;
    case CsrDefect::kArcCountMismatch:
      os << ": rows[n] = " << value << " but |cols| = " << index;
      break;
    case CsrDefect::kColumnOutOfRange:
      os << ": cols[" << index << "] = " << value << " out of range in row "
         << row;
      break;
    case CsrDefect::kUnsortedNeighbors:
      os << ": row " << row << " not ascending at cols[" << index << "] = "
         << value;
      break;
    case CsrDefect::kDuplicateNeighbor:
      os << ": row " << row << " repeats neighbour " << value;
      break;
    case CsrDefect::kSelfLoop:
      os << ": vertex " << row << " lists itself";
      break;
    case CsrDefect::kAsymmetricEdge:
      os << ": arc " << row << "->" << value << " has no reverse arc";
      break;
  }
  return os.str();
}

std::optional<CsrIssue> validate_csr(std::span<const eid_t> rows,
                                     std::span<const vid_t> cols,
                                     const CsrCheckOptions& opts) {
  if (rows.empty()) {
    return CsrIssue{CsrDefect::kEmptyOffsets, 0, 0, 0};
  }
  if (rows.front() != 0) {
    return CsrIssue{CsrDefect::kBadFirstOffset, 0, rows.front(), 0};
  }
  const vid_t n = narrow<vid_t>(rows.size() - 1);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i] < rows[i - 1]) {
      return CsrIssue{CsrDefect::kNonMonotoneOffsets,
                      narrow<vid_t>(i - 1), rows[i], i};
    }
  }
  if (rows.back() != cols.size()) {
    return CsrIssue{CsrDefect::kArcCountMismatch, n, rows.back(), cols.size()};
  }

  for (vid_t u = 0; u < n; ++u) {
    for (eid_t k = rows[u]; k < rows[u + 1]; ++k) {
      const vid_t v = cols[k];
      if (v >= n) {
        return CsrIssue{CsrDefect::kColumnOutOfRange, u, v,
                        narrow<std::size_t>(k)};
      }
      if (v == u && !opts.allow_self_loops) {
        return CsrIssue{CsrDefect::kSelfLoop, u, v,
                        narrow<std::size_t>(k)};
      }
      if (k > rows[u]) {
        const vid_t prev = cols[k - 1];
        if (opts.require_unique && v == prev) {
          return CsrIssue{CsrDefect::kDuplicateNeighbor, u, v,
                          narrow<std::size_t>(k)};
        }
        if (opts.require_sorted && v < prev) {
          return CsrIssue{CsrDefect::kUnsortedNeighbors, u, v,
                          narrow<std::size_t>(k)};
        }
      }
    }
  }

  if (opts.require_symmetric) {
    for (vid_t u = 0; u < n; ++u) {
      for (eid_t k = rows[u]; k < rows[u + 1]; ++k) {
        const vid_t v = cols[k];
        if (v == u) continue;  // self loop (only reachable when allowed)
        const vid_t* first = cols.data() + rows[v];
        const vid_t* last = cols.data() + rows[v + 1];
        const bool found = opts.require_sorted
                               ? std::binary_search(first, last, u)
                               : std::find(first, last, u) != last;
        if (!found) {
          return CsrIssue{CsrDefect::kAsymmetricEdge, u, v,
                          narrow<std::size_t>(k)};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<CsrIssue> validate_csr(const Csr& g, const CsrCheckOptions& opts) {
  return validate_csr(g.row_offsets(), g.col_indices(), opts);
}

}  // namespace gcg::check
