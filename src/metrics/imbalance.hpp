// Load-imbalance analytics aggregated over a whole coloring run (many
// kernel launches). These are the quantities the paper's evaluation plots.
#pragma once

#include <vector>

#include "simgpu/dispatch.hpp"

namespace gcg {

struct ImbalanceReport {
  double simd_efficiency = 1.0;   ///< lane-slot utilization, work-weighted
  double cu_max_over_mean = 1.0;  ///< per-CU busy-time skew, cycle-weighted
  double cu_cv = 0.0;             ///< coefficient of variation of CU busy
  double group_cycles_p50 = 0.0;  ///< median workgroup time
  double group_cycles_p99 = 0.0;
  double group_cycles_max = 0.0;
  double total_cycles = 0.0;      ///< sum of kernel times
  double mem_transactions_per_lane_op = 0.0;  ///< coalescing quality proxy
};

/// Aggregate launches (e.g. all iterations of one algorithm on one graph).
ImbalanceReport summarize_launches(const std::vector<simgpu::LaunchResult>& launches,
                                   unsigned wavefront_size);

/// Skew of per-worker busy times from the native multicore backend. The
/// cu_* fields read "per worker" and the *_cycles fields carry the input
/// unit (milliseconds); simd/memory fields stay at their defaults.
ImbalanceReport summarize_worker_times(const std::vector<double>& busy_ms);

/// Per-iteration activity trace of an iterative coloring run.
struct ActivityPoint {
  unsigned iteration = 0;
  std::uint64_t active_vertices = 0;   ///< frontier size entering the iter
  std::uint64_t colored_this_iter = 0;
  double cycles = 0.0;                 ///< device time spent on the iter
  double simd_efficiency = 1.0;
  double cu_imbalance = 1.0;
};

}  // namespace gcg
