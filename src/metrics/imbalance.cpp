#include "metrics/imbalance.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace gcg {

ImbalanceReport summarize_launches(
    const std::vector<simgpu::LaunchResult>& launches, unsigned wavefront_size) {
  ImbalanceReport rep;
  if (launches.empty()) return rep;

  double lane_ops = 0.0, issued_slots = 0.0, transactions = 0.0;
  std::vector<double> cu(launches.front().cu_busy_cycles.size(), 0.0);
  SampleStats groups;

  for (const auto& l : launches) {
    lane_ops += l.total.valu_lane_ops;
    issued_slots += l.total.valu_instructions * wavefront_size;
    transactions += static_cast<double>(l.total.mem_transactions);
    rep.total_cycles += l.kernel_cycles;
    for (std::size_t c = 0; c < cu.size() && c < l.cu_busy_cycles.size(); ++c) {
      cu[c] += l.cu_busy_cycles[c];
    }
    for (double g : l.group_cycles) groups.add(g);
  }

  rep.simd_efficiency = issued_slots > 0 ? lane_ops / issued_slots : 1.0;
  RunningStats cu_stats;
  for (double c : cu) cu_stats.add(c);
  rep.cu_max_over_mean =
      cu_stats.count() ? std::max(1.0, cu_stats.max_over_mean()) : 1.0;
  rep.cu_cv = cu_stats.cv();
  if (groups.count()) {
    rep.group_cycles_p50 = groups.percentile(50);
    rep.group_cycles_p99 = groups.percentile(99);
    rep.group_cycles_max = groups.summary().max();
  }
  rep.mem_transactions_per_lane_op =
      lane_ops > 0 ? transactions / lane_ops : 0.0;
  return rep;
}

ImbalanceReport summarize_worker_times(const std::vector<double>& busy_ms) {
  ImbalanceReport rep;
  if (busy_ms.empty()) return rep;
  RunningStats stats;
  SampleStats samples;
  for (double b : busy_ms) {
    stats.add(b);
    samples.add(b);
    rep.total_cycles += b;
  }
  rep.cu_max_over_mean = std::max(1.0, stats.max_over_mean());
  rep.cu_cv = stats.cv();
  rep.group_cycles_p50 = samples.percentile(50);
  rep.group_cycles_p99 = samples.percentile(99);
  rep.group_cycles_max = samples.summary().max();
  return rep;
}

}  // namespace gcg
