// NDRange dispatch: functionally executes a kernel over a grid, then prices
// the recorded events with the occupancy-aware cost model and schedules
// workgroups onto compute units (list scheduling in submission order — the
// hardware workgroup dispatcher). See DESIGN.md §4.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "simgpu/cache.hpp"
#include "simgpu/counters.hpp"
#include "simgpu/group.hpp"

namespace gcg::simgpu {

using GroupKernel = std::function<void(Group&)>;
using WaveKernel = std::function<void(Wave&)>;

struct LaunchResult {
  double kernel_cycles = 0.0;        ///< max CU busy + launch overhead
  double launch_overhead_cycles = 0.0;
  std::vector<double> cu_busy_cycles;   ///< per-CU accumulated busy time
  std::vector<double> group_cycles;     ///< per-workgroup time
  WaveCost total;                    ///< summed event counts
  std::uint64_t num_groups = 0;
  std::uint64_t num_waves = 0;
  double simd_efficiency = 1.0;
  double mem_latency_cost = 0.0;     ///< cycles charged per memory instruction

  /// max/mean over per-CU busy cycles (1.0 = perfectly balanced).
  double cu_imbalance() const;
};

/// Memory pricing (see DESIGN.md §4): every vector memory *instruction*
/// pays an exposed-latency component — the DRAM round trip divided by the
/// waves available per SIMD to hide it — because a wave's dependent loop
/// iterations serialize on their loads. Every 64-byte *line* additionally
/// pays the bandwidth roof. This is what makes SIMT divergence expensive:
/// a lane looping d times alone issues d latency-bound instructions, while
/// a wave-per-vertex loop issues d/64 of them.
double latency_cost(const DeviceConfig& cfg, double resident_waves_per_cu);

/// Cycles per 64-byte line at the bandwidth roof.
double bandwidth_cost(const DeviceConfig& cfg);

/// Price a wave's recorded events in cycles.
double wave_cycles(const DeviceConfig& cfg, const WaveCost& c, double lat_cost);

/// Execute `kernel` over `grid_size` work-items in workgroups of
/// `group_size`. Deterministic: groups run in id order. `cache` routes
/// line traffic through an L2 model when provided.
LaunchResult dispatch(const DeviceConfig& cfg, std::uint64_t grid_size,
                      unsigned group_size, const GroupKernel& kernel,
                      CacheSim* cache = nullptr);

/// Convenience for kernels with no cross-wave cooperation.
LaunchResult dispatch_waves(const DeviceConfig& cfg, std::uint64_t grid_size,
                            unsigned group_size, const WaveKernel& kernel,
                            CacheSim* cache = nullptr);

/// A device: a config plus an accumulating command-queue timeline, and
/// (when enabled) the L2 cache state that persists across launches.
class Device {
 public:
  explicit Device(DeviceConfig cfg);

  const DeviceConfig& config() const { return cfg_; }
  /// The device's L2 model, or nullptr when caching is disabled.
  CacheSim* l2() { return l2_.get(); }

  LaunchResult& launch(std::uint64_t grid_size, unsigned group_size,
                       const GroupKernel& kernel);
  LaunchResult& launch_waves(std::uint64_t grid_size, unsigned group_size,
                             const WaveKernel& kernel);
  /// Record cycles produced outside dispatch (persistent-mode launches).
  void record_external(double cycles) { total_cycles_ += cycles; }

  /// Record a pre-built launch (e.g. from to_launch_record) on the
  /// timeline, so metrics aggregation sees persistent-mode work too.
  LaunchResult& record_launch(LaunchResult r) {
    total_cycles_ += r.kernel_cycles;
    history_.push_back(std::move(r));
    return history_.back();
  }

  double total_cycles() const { return total_cycles_; }
  double total_ms() const { return cfg_.cycles_to_ms(total_cycles_); }
  std::size_t launch_count() const { return history_.size(); }
  const std::vector<LaunchResult>& history() const { return history_; }
  void reset() {
    total_cycles_ = 0;
    history_.clear();
  }

 private:
  DeviceConfig cfg_;
  std::unique_ptr<CacheSim> l2_;
  double total_cycles_ = 0.0;
  std::vector<LaunchResult> history_;
};

}  // namespace gcg::simgpu
