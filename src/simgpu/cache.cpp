#include "simgpu/cache.hpp"

#include <bit>

namespace gcg::simgpu {

CacheSim::CacheSim(std::uint64_t capacity_bytes, unsigned line_bytes,
                   unsigned ways)
    : ways_(ways) {
  GCG_EXPECT(line_bytes > 0 && ways > 0);
  const std::uint64_t lines = capacity_bytes / line_bytes;
  GCG_EXPECT(lines >= ways);
  sets_ = std::bit_floor(lines / ways);  // power-of-two sets for cheap index
  GCG_EXPECT(sets_ >= 1);
  slots_.assign(sets_ * ways_, Way{});
}

bool CacheSim::access(std::uint64_t line_key) {
  // Scramble the key so strided access patterns spread across sets.
  std::uint64_t h = line_key * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  const std::uint64_t set = h & (sets_ - 1);
  Way* row = slots_.data() + set * ways_;
  ++clock_;

  unsigned victim = 0;
  for (unsigned w = 0; w < ways_; ++w) {
    if (row[w].tag == line_key) {
      row[w].lru = clock_;
      ++hits_;
      return true;
    }
    if (row[w].lru < row[victim].lru) victim = w;
  }
  row[victim].tag = line_key;
  row[victim].lru = clock_;
  ++misses_;
  return false;
}

std::uint64_t CacheSim::buffer_key(const void* base) {
  const auto [it, inserted] = buffers_.emplace(base, buffers_.size());
  (void)inserted;
  // 2^40 lines (64 TiB) per buffer keeps keys collision-free.
  return it->second << 40;
}

void CacheSim::reset() {
  slots_.assign(slots_.size(), Way{});
  clock_ = hits_ = misses_ = 0;
}

}  // namespace gcg::simgpu
