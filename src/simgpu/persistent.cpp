#include "simgpu/persistent.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace gcg::simgpu {

double PersistentResult::wave_imbalance() const {
  if (wave_busy.empty()) return 1.0;
  double mx = 0.0, sum = 0.0;
  for (double b : wave_busy) {
    mx = std::max(mx, b);
    sum += b;
  }
  const double mean = sum / static_cast<double>(wave_busy.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

PersistentResult run_persistent(const DeviceConfig& cfg,
                                const PersistentOptions& opts,
                                const PersistentStep& step) {
  GCG_EXPECT(opts.waves_per_cu >= 1);
  const unsigned n = cfg.num_cus * opts.waves_per_cu;
  double busy_per_cu = opts.waves_per_cu;
  if (opts.busy_waves_hint > 0) {
    busy_per_cu = std::min(
        busy_per_cu, std::max(1.0, static_cast<double>(opts.busy_waves_hint) /
                                       static_cast<double>(cfg.num_cus)));
  }
  const double lcost = latency_cost(cfg, busy_per_cu);

  PersistentResult r;
  r.mem_latency_cost = lcost;
  r.wave_clock.assign(n, 0.0);
  r.wave_busy.assign(n, 0.0);
  r.steps_worked.assign(n, 0);
  r.steps_idle.assign(n, 0);
  std::vector<bool> done(n, false);
  unsigned alive = n;

  std::uint64_t steps = 0;
  while (alive > 0) {
    // Earliest-clock live wave steps next (linear scan: n is ~100).
    unsigned w = n;
    for (unsigned i = 0; i < n; ++i) {
      if (!done[i] && (w == n || r.wave_clock[i] < r.wave_clock[w])) w = i;
    }
    GCG_ASSERT(w < n);

    Wave wave(cfg, static_cast<std::uint64_t>(w) * cfg.wavefront_size,
              cfg.wavefront_size, /*grid_size=*/~std::uint64_t{0});
    if (opts.cache) wave.attach_cache(opts.cache);
    const StepStatus st = step(w, wave);
    const double cycles = wave_cycles(cfg, wave.cost(), lcost);
    r.total += wave.cost();
    r.wave_clock[w] += cycles;

    switch (st) {
      case StepStatus::kWorked:
        r.wave_busy[w] += cycles;
        ++r.steps_worked[w];
        break;
      case StepStatus::kIdle:
        r.wave_clock[w] += opts.idle_cycles;
        ++r.steps_idle[w];
        break;
      case StepStatus::kDone:
        done[w] = true;
        --alive;
        break;
    }

    if (opts.max_steps && ++steps > opts.max_steps) {
      GCG_ASSERT(false && "persistent executor exceeded max_steps");
    }
  }

  r.makespan_cycles =
      *std::max_element(r.wave_clock.begin(), r.wave_clock.end()) +
      cfg.kernel_launch_cycles;
  r.simd_efficiency = simd_efficiency(r.total, cfg.wavefront_size);
  return r;
}

LaunchResult to_launch_record(const DeviceConfig& cfg,
                              const PersistentResult& pres,
                              unsigned waves_per_cu) {
  GCG_EXPECT(waves_per_cu >= 1);
  LaunchResult r;
  r.kernel_cycles = pres.makespan_cycles;
  r.launch_overhead_cycles = cfg.kernel_launch_cycles;
  r.cu_busy_cycles.assign(cfg.num_cus, 0.0);
  for (std::size_t w = 0; w < pres.wave_busy.size(); ++w) {
    const std::size_t cu = std::min<std::size_t>(w / waves_per_cu, cfg.num_cus - 1);
    r.cu_busy_cycles[cu] += pres.wave_busy[w];
  }
  r.total = pres.total;
  r.num_waves = pres.wave_clock.size();
  r.simd_efficiency = pres.simd_efficiency;
  r.mem_latency_cost = pres.mem_latency_cost;
  return r;
}

}  // namespace gcg::simgpu
