// Persistent-wave execution: the substrate for work stealing. Instead of an
// NDRange, a fixed set of wavefronts stays resident and repeatedly asks a
// runtime for work. Execution is discrete-event over per-wave virtual
// clocks: the globally-earliest wave always steps next, so queue pops and
// steals interleave deterministically in virtual-time order — the property
// the paper's OpenCL persistent-thread queues get from real concurrency.
#pragma once

#include <functional>
#include <vector>

#include "simgpu/dispatch.hpp"

namespace gcg::simgpu {

enum class StepStatus {
  kWorked,  ///< did useful work; call again
  kIdle,    ///< found nothing this step (failed steal); call again
  kDone,    ///< worker retires
};

/// One scheduling step of a persistent wave. The Wave's cost counters are
/// fresh on entry; whatever the step records is priced and added to the
/// wave's virtual clock afterwards.
using PersistentStep =
    std::function<StepStatus(unsigned worker_id, Wave& wave)>;

struct PersistentResult {
  double makespan_cycles = 0.0;      ///< max wave clock + launch overhead
  std::vector<double> wave_clock;    ///< per-wave final virtual time
  std::vector<double> wave_busy;     ///< per-wave time spent in kWorked steps
  std::vector<std::uint64_t> steps_worked;
  std::vector<std::uint64_t> steps_idle;
  WaveCost total;
  double simd_efficiency = 1.0;
  double mem_latency_cost = 0.0;

  /// max/mean over per-wave busy time.
  double wave_imbalance() const;
};

struct PersistentOptions {
  unsigned waves_per_cu = 4;    ///< resident waves per CU
  /// Waves expected to have work concurrently (e.g. the number of queued
  /// chunks). Latency hiding comes only from waves with requests in
  /// flight, so a nearly-drained queue must not enjoy full-occupancy
  /// pricing. 0 = assume all resident waves are busy.
  std::uint64_t busy_waves_hint = 0;
  double idle_cycles = 200.0;   ///< penalty for an unproductive step
  std::uint64_t max_steps = 0;  ///< 0 = unlimited; safety valve for tests
  CacheSim* cache = nullptr;    ///< optional L2 model (usually Device::l2())
};

/// Runs waves until every worker returns kDone. Worker w's lanes cover
/// global ids [w*W, (w+1)*W) — persistent kernels derive identity from the
/// worker id, not from an NDRange.
PersistentResult run_persistent(const DeviceConfig& cfg,
                                const PersistentOptions& opts,
                                const PersistentStep& step);

/// Repackage a persistent run as a LaunchResult so the same metrics
/// pipeline (per-CU imbalance, SIMD efficiency, cycle totals) covers both
/// execution modes. Worker w maps to CU w / waves_per_cu.
LaunchResult to_launch_record(const DeviceConfig& cfg,
                              const PersistentResult& pres,
                              unsigned waves_per_cu);

}  // namespace gcg::simgpu
