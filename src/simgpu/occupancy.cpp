#include "simgpu/occupancy.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace gcg::simgpu {

OccupancyReport occupancy(const DeviceConfig& cfg, const KernelResources& res,
                          const OccupancyLimits& limits) {
  GCG_EXPECT(res.group_size >= 1 && res.group_size <= cfg.max_group_size);
  GCG_EXPECT(res.vgprs_per_lane >= 1);

  OccupancyReport rep;
  const unsigned waves_per_group = cfg.waves_per_group(res.group_size);

  // Per-SIMD wave limits from each resource, scaled to the CU.
  const unsigned vgpr_waves_per_simd =
      std::min(limits.max_waves_per_simd,
               (limits.vgprs_per_simd / std::max(1u, res.vgprs_per_lane)));
  rep.limit_by_vgprs = vgpr_waves_per_simd * cfg.simds_per_cu;

  const unsigned sgpr_waves_per_simd =
      std::min(limits.max_waves_per_simd,
               limits.sgprs_per_simd / std::max(1u, res.sgprs_per_wave));
  rep.limit_by_sgprs = sgpr_waves_per_simd * cfg.simds_per_cu;

  rep.limit_by_wave_slots =
      std::min(cfg.max_waves_per_cu, limits.max_waves_per_simd * cfg.simds_per_cu);

  // LDS bounds whole groups per CU. The device exposes lds_bytes_per_group
  // as the per-group ceiling; a CU has simds_per_cu x that to share (GCN:
  // 64 KiB per CU, 32 KiB visible per group).
  const std::uint64_t lds_per_cu =
      static_cast<std::uint64_t>(cfg.lds_bytes_per_group) * 2;
  const unsigned lds_groups =
      res.lds_bytes_per_group == 0
          ? limits.max_groups_per_cu
          : static_cast<unsigned>(
                std::min<std::uint64_t>(limits.max_groups_per_cu,
                                        lds_per_cu / res.lds_bytes_per_group));
  rep.limit_by_lds = lds_groups * waves_per_group;

  // Hardware allocates whole groups: take the binding wave limit, round
  // down to groups, then re-express in waves.
  const unsigned wave_limit =
      std::min({rep.limit_by_vgprs, rep.limit_by_sgprs, rep.limit_by_wave_slots,
                rep.limit_by_lds});
  rep.groups_per_cu = std::min(limits.max_groups_per_cu,
                               wave_limit / std::max(1u, waves_per_group));
  rep.waves_per_cu = rep.groups_per_cu * waves_per_group;

  // Ties go to the most generic explanation (the hardware wave-slot cap).
  if (wave_limit == rep.limit_by_wave_slots) {
    rep.limiting_factor = "wave-slots";
  } else if (wave_limit == rep.limit_by_lds) {
    rep.limiting_factor = "lds";
  } else if (wave_limit == rep.limit_by_vgprs) {
    rep.limiting_factor = "vgprs";
  } else {
    rep.limiting_factor = "sgprs";
  }
  if (rep.waves_per_cu == 0) rep.limiting_factor = "group-does-not-fit";
  return rep;
}

}  // namespace gcg::simgpu
