// Chrome-trace (chrome://tracing / Perfetto) export of a Device timeline:
// one duration event per kernel launch plus counter tracks for SIMD
// efficiency and CU imbalance. Lets a user *see* where the baseline's
// time goes versus the hybrid's — launch by launch.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simgpu/dispatch.hpp"

namespace gcg::simgpu {

/// Optional labels for the launches (e.g. "scanA iter 3"); when shorter
/// than the history, remaining launches are labeled "kernel <index>".
void write_chrome_trace(std::ostream& os, const Device& dev,
                        const std::vector<std::string>& labels = {});

/// Convenience: trace to a file; throws std::runtime_error on I/O failure.
void write_chrome_trace_file(const std::string& path, const Device& dev,
                             const std::vector<std::string>& labels = {});

}  // namespace gcg::simgpu
