#include "simgpu/config.hpp"

namespace gcg::simgpu {

DeviceConfig tahiti() { return DeviceConfig{}; }

DeviceConfig test_device() {
  DeviceConfig cfg;
  cfg.name = "sim-test (4 CU, 8-lane)";
  cfg.num_cus = 4;
  cfg.wavefront_size = 8;
  cfg.simds_per_cu = 2;
  cfg.max_waves_per_cu = 8;
  cfg.lds_bytes_per_group = 4096;
  cfg.max_group_size = 64;
  cfg.kernel_launch_cycles = 100.0;
  return cfg;
}

}  // namespace gcg::simgpu
