// Set-associative LRU cache simulator — models the GPU's shared L2
// (GCN's per-CU L1s are tiny and mostly streaming; the L2 is what graph
// workloads actually hit). Opt-in via DeviceConfig::enable_l2_cache; the
// default model prices everything at DRAM, which matches the paper-era
// assumption that irregular gathers are memory-bound.
//
// Line keys must be globally unique per 64-byte line of host memory —
// Wave derives them from the buffer's base address, so distinct device
// buffers never alias in the cache.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/expect.hpp"

namespace gcg::simgpu {

class CacheSim {
 public:
  /// capacity_bytes / line_bytes lines, organized into `ways`-way sets.
  CacheSim(std::uint64_t capacity_bytes, unsigned line_bytes, unsigned ways);

  /// Touch a line; returns true on hit. Misses fill (allocate-on-miss, LRU
  /// eviction).
  bool access(std::uint64_t line_key);

  /// Stable identity for a device buffer: ids are assigned in first-use
  /// order, so identical simulations produce identical key streams even
  /// when the host allocator returns different addresses. The returned
  /// value is pre-shifted to compose with line offsets: key = buffer_key
  /// + line_offset.
  std::uint64_t buffer_key(const void* base);

  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  std::uint64_t sets() const { return sets_; }
  unsigned ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t lru = 0;  ///< last-touch stamp
  };
  std::uint64_t sets_;
  unsigned ways_;
  std::vector<Way> slots_;  ///< sets_ x ways_, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::unordered_map<const void*, std::uint64_t> buffers_;
};

}  // namespace gcg::simgpu
