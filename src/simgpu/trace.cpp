#include "simgpu/trace.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace gcg::simgpu {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

void write_chrome_trace(std::ostream& os, const Device& dev,
                        const std::vector<std::string>& labels) {
  // Timestamps in microseconds of *model* time at the device clock.
  const auto us = [&](double cycles) {
    return dev.config().cycles_to_ms(cycles) * 1000.0;
  };

  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ',';
    first = false;
  };

  comma();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"" << escape(dev.config().name) << "\"}}";

  double clock = 0.0;
  for (std::size_t i = 0; i < dev.history().size(); ++i) {
    const LaunchResult& l = dev.history()[i];
    const std::string name =
        i < labels.size() ? labels[i] : "kernel " + std::to_string(i);

    comma();
    os << "{\"name\":\"" << escape(name)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" << us(clock)
       << ",\"dur\":" << us(l.kernel_cycles)
       << ",\"args\":{\"groups\":" << l.num_groups
       << ",\"waves\":" << l.num_waves
       << ",\"transactions\":" << l.total.mem_transactions << "}}";

    comma();
    os << "{\"name\":\"simd efficiency\",\"ph\":\"C\",\"pid\":1,\"ts\":"
       << us(clock) << ",\"args\":{\"value\":" << l.simd_efficiency << "}}";
    comma();
    os << "{\"name\":\"cu imbalance\",\"ph\":\"C\",\"pid\":1,\"ts\":"
       << us(clock) << ",\"args\":{\"value\":" << l.cu_imbalance() << "}}";

    clock += l.kernel_cycles;
  }
  os << "]}";
}

void write_chrome_trace_file(const std::string& path, const Device& dev,
                             const std::vector<std::string>& labels) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open trace file " + path);
  write_chrome_trace(os, dev, labels);
}

}  // namespace gcg::simgpu
