// Cost counters. Waves accumulate raw event counts while a kernel runs;
// the dispatcher converts them to cycles afterwards (memory cost depends on
// occupancy, which is only known per launch).
#pragma once

#include <cstdint>

namespace gcg::simgpu {

/// Raw per-wave event counts, accumulated during functional execution.
struct WaveCost {
  double valu_instructions = 0;    ///< vector instructions issued
  double valu_lane_ops = 0;        ///< sum over instructions of active lanes
  double salu_instructions = 0;
  std::uint64_t mem_transactions = 0;  ///< 64B lines touched (loads+stores)
  std::uint64_t mem_instructions = 0;  ///< vector memory instructions issued
  std::uint64_t mem_lines_hit = 0;     ///< lines served by the L2 model
  std::uint64_t mem_instructions_hit = 0;  ///< instructions with all lines hit
  std::uint64_t atomic_instructions = 0;
  std::uint64_t atomic_extra_serializations = 0;  ///< same-address conflicts
  std::uint64_t barriers = 0;

  WaveCost& operator+=(const WaveCost& o) {
    valu_instructions += o.valu_instructions;
    valu_lane_ops += o.valu_lane_ops;
    salu_instructions += o.salu_instructions;
    mem_transactions += o.mem_transactions;
    mem_instructions += o.mem_instructions;
    mem_lines_hit += o.mem_lines_hit;
    mem_instructions_hit += o.mem_instructions_hit;
    atomic_instructions += o.atomic_instructions;
    atomic_extra_serializations += o.atomic_extra_serializations;
    barriers += o.barriers;
    return *this;
  }
};

/// SIMD efficiency: fraction of issued vector lane-slots that were active.
/// 1.0 = no divergence; 1/64 = one live lane per instruction.
inline double simd_efficiency(const WaveCost& c, unsigned wavefront_size) {
  const double issued = c.valu_instructions * wavefront_size;
  return issued > 0.0 ? c.valu_lane_ops / issued : 1.0;
}

}  // namespace gcg::simgpu
