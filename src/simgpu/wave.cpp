#include "simgpu/wave.hpp"

#include <cmath>

namespace gcg::simgpu {

Wave::Wave(const DeviceConfig& cfg, std::uint64_t first_global_id,
           unsigned width, std::uint64_t grid_size)
    : cfg_(cfg), first_id_(first_global_id), width_(width) {
  GCG_EXPECT(width_ >= 1 && width_ <= kMaxLanes);
  for (unsigned i = 0; i < width_; ++i) {
    const std::uint64_t gid = first_id_ + i;
    gids_[i] = static_cast<std::uint32_t>(gid);
    lids_[i] = i;
    if (gid < grid_size) valid_.set(i);
  }
}

void Wave::valu(Mask m, double instructions) {
  cost_.valu_instructions += instructions;
  cost_.valu_lane_ops += instructions * m.count();
}

void Wave::salu(double instructions) {
  cost_.salu_instructions += instructions;
}

double Wave::reduce_cost() const {
  return std::ceil(std::log2(static_cast<double>(width_)));
}

}  // namespace gcg::simgpu
