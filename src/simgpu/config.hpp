// Device model parameters. The default instance approximates the AMD Radeon
// HD 7950 (Tahiti, GCN 1.0) the paper evaluates on: 28 CUs, 64-lane
// wavefronts, 4 SIMD units per CU, up to 40 resident waves per CU.
// The *absolute* numbers only set scale; the experiments report ratios.
#pragma once

#include <string>

namespace gcg::simgpu {

inline constexpr unsigned kMaxLanes = 64;

struct DeviceConfig {
  std::string name = "sim-tahiti (AMD Radeon HD 7950 model)";

  unsigned num_cus = 28;            ///< compute units
  unsigned wavefront_size = 64;     ///< lanes per wavefront (<= kMaxLanes)
  unsigned simds_per_cu = 4;        ///< concurrent wave issue slots per CU
  unsigned max_waves_per_cu = 40;   ///< occupancy cap (10 per SIMD on GCN)
  unsigned lds_bytes_per_group = 32768;  ///< LDS available to one workgroup
  unsigned max_group_size = 1024;   ///< work-items per workgroup

  unsigned cacheline_bytes = 64;    ///< memory transaction granularity

  // Optional shared L2 model (off by default: the primary model prices all
  // traffic at DRAM, the paper-era assumption for irregular gathers; the
  // cache ablation bench turns this on).
  bool enable_l2_cache = false;
  std::uint64_t l2_bytes = 768 * 1024;  ///< Tahiti: 768 KiB shared L2
  unsigned l2_ways = 16;
  double l2_hit_latency_cycles = 80.0;  ///< vs mem_latency_cycles on miss
  double l2_bytes_per_cycle_per_cu = 32.0;  ///< L2 bandwidth roof

  // Cost model (all in wave-cycles; see DESIGN.md §4).
  double cpi_valu = 1.0;            ///< per vector instruction
  double cpi_salu = 0.25;           ///< scalar unit runs alongside
  double mem_latency_cycles = 350.0;///< uncontended DRAM round trip
  double mem_bytes_per_cycle_per_cu = 8.0;  ///< BW roof per CU
  double atomic_base_cycles = 12.0; ///< first atomic in a wave op
  double atomic_conflict_cycles = 12.0;  ///< each additional same-address lane
  double barrier_cycles = 16.0;
  double kernel_launch_cycles = 3000.0;  ///< host->device launch overhead
  double clock_ghz = 0.925;         ///< for cycles -> milliseconds

  /// Waves in one full workgroup.
  unsigned waves_per_group(unsigned group_size) const {
    return (group_size + wavefront_size - 1) / wavefront_size;
  }
  double cycles_to_ms(double cycles) const {
    return cycles / (clock_ghz * 1e6);
  }
};

/// The paper's GPU.
DeviceConfig tahiti();

/// A small 4-CU device for unit tests: same mechanisms, tiny scale, and
/// an 8-lane wavefront so divergence cases are easy to construct by hand.
DeviceConfig test_device();

}  // namespace gcg::simgpu
