// The wavefront execution context: the "ISA" kernels are written against.
// Every method both performs the functional effect on host memory and
// charges the corresponding cost to the wave's counters — so divergence,
// coalescing and atomic contention are measured, not estimated.
#pragma once

#include <cstdint>
#include <span>

#include "simgpu/cache.hpp"
#include "simgpu/config.hpp"
#include "simgpu/counters.hpp"
#include "simgpu/lanevec.hpp"
#include "util/expect.hpp"

namespace gcg::simgpu {

class Wave {
 public:
  Wave(const DeviceConfig& cfg, std::uint64_t first_global_id, unsigned width,
       std::uint64_t grid_size);

  // --- identity -----------------------------------------------------------
  unsigned width() const { return width_; }
  std::uint64_t first_global_id() const { return first_id_; }
  /// Lanes whose global work-item id is inside the NDRange.
  Mask valid() const { return valid_; }
  /// Per-lane global work-item ids.
  const Vec<std::uint32_t>& global_ids() const { return gids_; }
  /// Per-lane lane indices 0..width-1.
  const Vec<std::uint32_t>& lane_ids() const { return lids_; }

  // --- compute cost -------------------------------------------------------
  /// Issue `instructions` vector ALU instructions under mask `m`.
  void valu(Mask m, double instructions = 1.0);
  /// Issue scalar (wave-uniform) instructions.
  void salu(double instructions = 1.0);

  // --- memory -------------------------------------------------------------
  /// Gather mem[idx[lane]] for active lanes. Counts one memory instruction
  /// and as many 64B-line transactions as distinct lines touched.
  template <class T, class I>
  Vec<T> load(std::span<const T> mem, const Vec<I>& idx, Mask m) {
    charge_gather(mem.data(), idx, sizeof(T), m, mem.size());
    Vec<T> out;
    for (unsigned i = 0; i < width_; ++i) {
      if (m.test(i)) out[i] = mem[static_cast<std::size_t>(idx[i])];
    }
    return out;
  }

  /// Scatter val[lane] -> mem[idx[lane]] for active lanes. Lane order within
  /// the wave resolves same-address collisions (higher lane wins), matching
  /// the unspecified-but-consistent behaviour of real hardware.
  template <class T, class I>
  void store(std::span<T> mem, const Vec<I>& idx, const Vec<T>& val, Mask m) {
    charge_gather(mem.data(), idx, sizeof(T), m, mem.size());
    for (unsigned i = 0; i < width_; ++i) {
      if (m.test(i)) mem[static_cast<std::size_t>(idx[i])] = val[i];
    }
  }

  /// Wave-uniform load of a single element (scalar memory path).
  template <class T>
  T load_uniform(std::span<const T> mem, std::size_t idx) {
    GCG_EXPECT(idx < mem.size());
    cost_.mem_instructions += 1;
    cost_.mem_transactions += 1;
    cost_.salu_instructions += 1;
    touch_uniform(mem.data(), idx, sizeof(T));
    return mem[idx];
  }

  /// Wave-uniform store of a single element (e.g. one result per wave).
  template <class T>
  void store_uniform(std::span<T> mem, std::size_t idx, T val) {
    GCG_EXPECT(idx < mem.size());
    cost_.mem_instructions += 1;
    cost_.mem_transactions += 1;
    touch_uniform(mem.data(), idx, sizeof(T));
    mem[idx] = val;
  }

  // --- atomics (functionally immediate; cost models serialization) --------
  /// Per-lane fetch-add; returns the pre-add value per lane. Lanes hitting
  /// the same address serialize (and see each other's updates in lane order).
  template <class T, class I>
  Vec<T> atomic_add(std::span<T> mem, const Vec<I>& idx, const Vec<T>& val, Mask m) {
    charge_atomic(idx, m);
    Vec<T> out;
    for (unsigned i = 0; i < width_; ++i) {
      if (!m.test(i)) continue;
      T& cell = mem[static_cast<std::size_t>(idx[i])];
      out[i] = cell;
      cell = static_cast<T>(cell + val[i]);
    }
    return out;
  }

  /// Per-lane atomic AND (bit-clearing flags, e.g. knock-out votes).
  template <class T, class I>
  Vec<T> atomic_and(std::span<T> mem, const Vec<I>& idx, const Vec<T>& val, Mask m) {
    charge_atomic(idx, m);
    Vec<T> out;
    for (unsigned i = 0; i < width_; ++i) {
      if (!m.test(i)) continue;
      T& cell = mem[static_cast<std::size_t>(idx[i])];
      out[i] = cell;
      cell = static_cast<T>(cell & val[i]);
    }
    return out;
  }

  /// Per-lane atomic min (used by e.g. priority updates).
  template <class T, class I>
  Vec<T> atomic_min(std::span<T> mem, const Vec<I>& idx, const Vec<T>& val, Mask m) {
    charge_atomic(idx, m);
    Vec<T> out;
    for (unsigned i = 0; i < width_; ++i) {
      if (!m.test(i)) continue;
      T& cell = mem[static_cast<std::size_t>(idx[i])];
      out[i] = cell;
      if (val[i] < cell) cell = val[i];
    }
    return out;
  }

  /// Wave-uniform fetch-add executed by one lane (the idiom kernels use to
  /// reserve a block of queue slots for the whole wave).
  template <class T>
  T atomic_add_uniform(std::span<T> mem, std::size_t idx, T val) {
    GCG_EXPECT(idx < mem.size());
    cost_.atomic_instructions += 1;
    const T old = mem[idx];
    mem[idx] = static_cast<T>(old + val);
    return old;
  }

  // --- cross-lane ---------------------------------------------------------
  /// Max over active lanes; identity when none active.
  template <class T>
  T reduce_max(const Vec<T>& v, Mask m, T identity) {
    valu(m, reduce_cost());
    T best = identity;
    for (unsigned i = 0; i < width_; ++i) {
      if (m.test(i) && v[i] > best) best = v[i];
    }
    return best;
  }

  template <class T>
  T reduce_sum(const Vec<T>& v, Mask m) {
    valu(m, reduce_cost());
    T sum{};
    for (unsigned i = 0; i < width_; ++i) {
      if (m.test(i)) sum = static_cast<T>(sum + v[i]);
    }
    return sum;
  }

  /// Exclusive prefix sum of ones under mask: out[lane] = #active lanes
  /// before `lane`. The compaction primitive.
  Vec<std::uint32_t> rank_within(Mask m) {
    valu(m, reduce_cost());
    Vec<std::uint32_t> out;
    std::uint32_t r = 0;
    for (unsigned i = 0; i < width_; ++i) {
      if (m.test(i)) out[i] = r++;
    }
    return out;
  }

  void barrier_marker() { cost_.barriers += 1; }

  // --- accounting ---------------------------------------------------------
  const WaveCost& cost() const { return cost_; }
  WaveCost& mutable_cost() { return cost_; }
  void reset_cost() { cost_ = WaveCost{}; }
  const DeviceConfig& config() const { return cfg_; }

  /// Route this wave's line traffic through an L2 model (owned elsewhere,
  /// typically by the Device). Null = no cache (everything misses).
  void attach_cache(CacheSim* cache) { cache_ = cache; }

 private:
  double reduce_cost() const;  ///< log2(width) instructions

  template <class T, class I>
  std::uint64_t charge_gather(const T* base, const Vec<I>& idx,
                              std::size_t elem, Mask m, std::size_t limit) {
    // Charges one memory instruction plus one transaction per distinct
    // cache line touched by active lanes; returns the line count. Lines
    // are computed from buffer *offsets* (device buffers are line-aligned)
    // so counts do not depend on host allocator addresses.
    cost_.mem_instructions += 1;
    std::uint64_t lines_seen = 0;
    // Degenerate-free small-set dedup: collect line ids, O(active^2) worst
    // case but active <= 64 and typical access patterns hit few lines.
    std::uint64_t lines[kMaxLanes];
    for (unsigned i = 0; i < width_; ++i) {
      if (!m.test(i)) continue;
      const auto a = static_cast<std::uint64_t>(idx[i]);
      GCG_EXPECT(a < limit);
      const std::uint64_t line = a * elem / cfg_.cacheline_bytes;
      bool dup = false;
      for (std::uint64_t k = 0; k < lines_seen; ++k) dup |= (lines[k] == line);
      if (!dup) lines[lines_seen++] = line;
    }
    cost_.mem_transactions += lines_seen;
    if (cache_ && lines_seen > 0) {
      const std::uint64_t buffer = cache_->buffer_key(base);
      std::uint64_t hit = 0;
      for (std::uint64_t k = 0; k < lines_seen; ++k) {
        if (cache_->access(buffer + lines[k])) ++hit;
      }
      cost_.mem_lines_hit += hit;
      if (hit == lines_seen) cost_.mem_instructions_hit += 1;
    }
    return lines_seen;
  }

  template <class T>
  void touch_uniform(const T* base, std::size_t idx, std::size_t elem) {
    if (!cache_) return;
    const std::uint64_t line = idx * elem / cfg_.cacheline_bytes;
    if (cache_->access(cache_->buffer_key(base) + line)) {
      cost_.mem_lines_hit += 1;
      cost_.mem_instructions_hit += 1;
    }
  }

  template <class I>
  void charge_atomic(const Vec<I>& idx, Mask m) {
    cost_.atomic_instructions += 1;
    // Conflict degree: lanes beyond the first touching each address.
    unsigned extra = 0;
    for (unsigned i = 0; i < width_; ++i) {
      if (!m.test(i)) continue;
      for (unsigned j = 0; j < i; ++j) {
        if (m.test(j) && idx[j] == idx[i]) {
          ++extra;
          break;
        }
      }
    }
    cost_.atomic_extra_serializations += extra;
  }

  const DeviceConfig& cfg_;
  CacheSim* cache_ = nullptr;
  std::uint64_t first_id_;
  unsigned width_;
  Mask valid_;
  Vec<std::uint32_t> gids_;
  Vec<std::uint32_t> lids_;
  WaveCost cost_;
};

}  // namespace gcg::simgpu
