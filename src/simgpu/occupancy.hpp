// Occupancy calculator for the modeled GCN device: how many wavefronts a
// compute unit can keep resident given a kernel's register and LDS
// appetite — the standard pre-launch tuning tool. The simulator's memory
// pricing takes resident waves as an input; this utility computes that
// number from kernel resources instead of assuming the device maximum.
#pragma once

#include "simgpu/config.hpp"

namespace gcg::simgpu {

/// Resources one work-item/wave of a kernel consumes.
struct KernelResources {
  unsigned vgprs_per_lane = 32;   ///< vector registers per work-item
  unsigned sgprs_per_wave = 48;   ///< scalar registers per wavefront
  unsigned lds_bytes_per_group = 0;
  unsigned group_size = 256;
};

/// GCN-flavoured per-SIMD register files (Tahiti values).
struct OccupancyLimits {
  unsigned vgprs_per_simd = 65536 / 64;  ///< 256 VGPRs x 64 lanes per SIMD
  unsigned sgprs_per_simd = 512;
  unsigned max_waves_per_simd = 10;
  unsigned max_groups_per_cu = 40;
};

struct OccupancyReport {
  unsigned waves_per_cu = 0;       ///< achieved residency
  unsigned groups_per_cu = 0;
  unsigned limit_by_vgprs = 0;     ///< waves/CU if only VGPRs bound
  unsigned limit_by_sgprs = 0;
  unsigned limit_by_lds = 0;
  unsigned limit_by_wave_slots = 0;
  const char* limiting_factor = "";
};

/// Computes achievable residency for `res` on `cfg` (using `limits` for
/// the register files). Waves are allocated group-at-a-time, as hardware
/// does: a group only becomes resident if *all* its waves fit.
OccupancyReport occupancy(const DeviceConfig& cfg, const KernelResources& res,
                          const OccupancyLimits& limits = {});

}  // namespace gcg::simgpu
