// Workgroup context: the waves of one workgroup plus its LDS scratchpad.
// Kernels that need cross-wave cooperation (workgroup-per-vertex in the
// hybrid algorithm) are written as phases separated by barrier(); the
// simulator executes waves of a phase sequentially, which is equivalent to
// any hardware interleaving for race-free (barrier-synchronized) kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simgpu/wave.hpp"

namespace gcg::simgpu {

class Group {
 public:
  Group(const DeviceConfig& cfg, std::uint64_t group_id, unsigned group_size,
        std::uint64_t grid_size);

  std::uint64_t group_id() const { return id_; }
  unsigned group_size() const { return size_; }
  std::vector<Wave>& waves() { return waves_; }
  const std::vector<Wave>& waves() const { return waves_; }

  /// Workgroup barrier: charges every wave. Functionally a no-op because
  /// waves already execute phases in order.
  void barrier();

  /// Route all waves' line traffic through an L2 model.
  void attach_cache(CacheSim* cache) {
    for (auto& w : waves_) w.attach_cache(cache);
  }

  /// Bump-allocate `count` T's of LDS for this group; zero-initialized.
  /// Enforces the device's per-group LDS capacity.
  template <class T>
  std::span<T> lds_alloc(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    const std::size_t aligned = (lds_used_ + alignof(T) - 1) / alignof(T) * alignof(T);
    GCG_EXPECT(aligned + bytes <= lds_.size());
    lds_used_ = aligned + bytes;
    auto* p = reinterpret_cast<T*>(lds_.data() + aligned);
    for (std::size_t i = 0; i < count; ++i) p[i] = T{};
    return {p, count};
  }
  std::size_t lds_used() const { return lds_used_; }

 private:
  std::uint64_t id_;
  unsigned size_;
  std::vector<Wave> waves_;
  std::vector<std::byte> lds_;
  std::size_t lds_used_ = 0;
};

}  // namespace gcg::simgpu
