// SIMT register file primitives: a per-lane value vector (`Vec<T>`) and an
// execution mask (`Mask`). Kernels are written against these exactly as GPU
// vector ISA operates: every operation is masked, divergence is explicit.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "simgpu/config.hpp"
#include "util/expect.hpp"

namespace gcg::simgpu {

/// Execution mask over up to kMaxLanes lanes.
class Mask {
 public:
  constexpr Mask() = default;
  constexpr explicit Mask(std::uint64_t bits) : bits_(bits) {}

  static constexpr Mask none() { return Mask(0); }
  static constexpr Mask full(unsigned width) {
    return Mask(width >= 64 ? ~std::uint64_t{0}
                            : ((std::uint64_t{1} << width) - 1));
  }
  static constexpr Mask lane(unsigned i) { return Mask(std::uint64_t{1} << i); }

  constexpr bool test(unsigned i) const { return (bits_ >> i) & 1u; }
  constexpr void set(unsigned i) { bits_ |= std::uint64_t{1} << i; }
  constexpr void clear(unsigned i) { bits_ &= ~(std::uint64_t{1} << i); }

  constexpr bool any() const { return bits_ != 0; }
  constexpr bool none_set() const { return bits_ == 0; }
  constexpr unsigned count() const {
    return static_cast<unsigned>(std::popcount(bits_));
  }
  constexpr std::uint64_t bits() const { return bits_; }

  constexpr Mask operator&(Mask o) const { return Mask(bits_ & o.bits_); }
  constexpr Mask operator|(Mask o) const { return Mask(bits_ | o.bits_); }
  constexpr Mask operator^(Mask o) const { return Mask(bits_ ^ o.bits_); }
  /// Complement *within* `width` lanes.
  constexpr Mask andnot(Mask o) const { return Mask(bits_ & ~o.bits_); }
  constexpr Mask& operator&=(Mask o) { bits_ &= o.bits_; return *this; }
  constexpr Mask& operator|=(Mask o) { bits_ |= o.bits_; return *this; }
  constexpr bool operator==(const Mask&) const = default;

  /// Index of lowest set lane; undefined when none_set().
  constexpr unsigned first() const {
    return static_cast<unsigned>(std::countr_zero(bits_));
  }

 private:
  std::uint64_t bits_ = 0;
};

/// Per-lane register: one T per lane. Plain aggregate; arithmetic is done
/// through Wave methods (which charge cycle costs) or explicit lane loops.
template <class T>
struct Vec {
  std::array<T, kMaxLanes> lane{};

  constexpr T& operator[](unsigned i) { return lane[i]; }
  constexpr const T& operator[](unsigned i) const { return lane[i]; }

  /// Broadcast constructor helper.
  static constexpr Vec splat(T v) {
    Vec out;
    out.lane.fill(v);
    return out;
  }
};

/// Build a mask from a per-lane predicate over active lanes.
template <class T, class Pred>
constexpr Mask where(const Vec<T>& v, Mask active, Pred&& pred) {
  Mask out;
  for (unsigned i = 0; i < kMaxLanes; ++i) {
    if (active.test(i) && pred(v[i])) out.set(i);
  }
  return out;
}

/// Build a mask from a two-operand per-lane predicate.
template <class A, class B, class Pred>
constexpr Mask where2(const Vec<A>& a, const Vec<B>& b, Mask active, Pred&& pred) {
  Mask out;
  for (unsigned i = 0; i < kMaxLanes; ++i) {
    if (active.test(i) && pred(a[i], b[i])) out.set(i);
  }
  return out;
}

/// select(m, a, b): a where m is set, b elsewhere.
template <class T>
constexpr Vec<T> select(Mask m, const Vec<T>& a, const Vec<T>& b) {
  Vec<T> out;
  for (unsigned i = 0; i < kMaxLanes; ++i) out[i] = m.test(i) ? a[i] : b[i];
  return out;
}

}  // namespace gcg::simgpu
