#include "simgpu/group.hpp"
#include "util/narrow.hpp"

namespace gcg::simgpu {

Group::Group(const DeviceConfig& cfg, std::uint64_t group_id,
             unsigned group_size, std::uint64_t grid_size)
    : id_(group_id), size_(group_size), lds_(cfg.lds_bytes_per_group) {
  GCG_EXPECT(group_size >= 1 && group_size <= cfg.max_group_size);
  const unsigned wf = cfg.wavefront_size;
  const unsigned nwaves = cfg.waves_per_group(group_size);
  waves_.reserve(nwaves);
  for (unsigned w = 0; w < nwaves; ++w) {
    const std::uint64_t first = group_id * group_size + w * wf;
    const unsigned width = narrow<unsigned>(
        std::min<std::uint64_t>(wf, group_size - w * std::uint64_t{wf}));
    // Lanes past the grid edge exist but are invalid (masked off), exactly
    // like a partially-filled trailing wavefront on hardware.
    waves_.emplace_back(cfg, first, width, grid_size);
  }
}

void Group::barrier() {
  for (auto& w : waves_) w.barrier_marker();
}

}  // namespace gcg::simgpu
