#include "simgpu/dispatch.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace gcg::simgpu {

double LaunchResult::cu_imbalance() const {
  if (cu_busy_cycles.empty()) return 1.0;
  double mx = 0.0, sum = 0.0;
  for (double b : cu_busy_cycles) {
    mx = std::max(mx, b);
    sum += b;
  }
  const double mean = sum / static_cast<double>(cu_busy_cycles.size());
  return mean > 0.0 ? mx / mean : 1.0;
}

double latency_cost(const DeviceConfig& cfg, double resident_waves_per_cu) {
  const double hiding =
      std::max(1.0, resident_waves_per_cu / cfg.simds_per_cu);
  return cfg.mem_latency_cycles / hiding;
}

double bandwidth_cost(const DeviceConfig& cfg) {
  return static_cast<double>(cfg.cacheline_bytes) /
         cfg.mem_bytes_per_cycle_per_cu;
}

double wave_cycles(const DeviceConfig& cfg, const WaveCost& c, double lat_cost) {
  double cycles = 0.0;
  cycles += c.valu_instructions * cfg.cpi_valu;
  cycles += c.salu_instructions * cfg.cpi_salu;
  // Instructions whose lines all hit the L2 model pay the (occupancy-
  // scaled) L2 latency; the rest pay DRAM. With no cache attached the hit
  // counters are zero and this reduces to the pure-DRAM model.
  const auto hit_i = static_cast<double>(c.mem_instructions_hit);
  const auto miss_i = static_cast<double>(c.mem_instructions) - hit_i;
  const double hiding_scale = lat_cost / cfg.mem_latency_cycles;
  cycles += miss_i * (cfg.cpi_valu + lat_cost);
  cycles += hit_i * (cfg.cpi_valu + cfg.l2_hit_latency_cycles * hiding_scale);
  const auto hit_l = static_cast<double>(c.mem_lines_hit);
  const auto miss_l = static_cast<double>(c.mem_transactions) - hit_l;
  cycles += miss_l * bandwidth_cost(cfg);
  cycles += hit_l * (static_cast<double>(cfg.cacheline_bytes) /
                     cfg.l2_bytes_per_cycle_per_cu);
  cycles += static_cast<double>(c.atomic_instructions) * cfg.atomic_base_cycles;
  cycles += static_cast<double>(c.atomic_extra_serializations) *
            cfg.atomic_conflict_cycles;
  cycles += static_cast<double>(c.barriers) * cfg.barrier_cycles;
  return cycles;
}

LaunchResult dispatch(const DeviceConfig& cfg, std::uint64_t grid_size,
                      unsigned group_size, const GroupKernel& kernel,
                      CacheSim* cache) {
  GCG_EXPECT(group_size >= 1 && group_size <= cfg.max_group_size);
  LaunchResult r;
  r.launch_overhead_cycles = cfg.kernel_launch_cycles;
  r.cu_busy_cycles.assign(cfg.num_cus, 0.0);
  if (grid_size == 0) {
    r.kernel_cycles = r.launch_overhead_cycles;
    return r;
  }

  const std::uint64_t num_groups = (grid_size + group_size - 1) / group_size;
  r.num_groups = num_groups;
  r.group_cycles.reserve(num_groups);

  // Occupancy for the memory model: how many waves a CU has resident to
  // hide latency with, over the whole launch (steady-state approximation).
  const unsigned waves_per_grp = cfg.waves_per_group(group_size);
  const double total_waves = static_cast<double>(num_groups) * waves_per_grp;
  const double resident = std::min<double>(
      cfg.max_waves_per_cu,
      std::max(1.0, total_waves / static_cast<double>(cfg.num_cus)));
  const double lcost = latency_cost(cfg, resident);
  r.mem_latency_cost = lcost;

  for (std::uint64_t gid = 0; gid < num_groups; ++gid) {
    Group group(cfg, gid, group_size, grid_size);
    if (cache) group.attach_cache(cache);
    kernel(group);

    // Price this group: waves run concurrently on the CU's SIMDs.
    double longest = 0.0, sum = 0.0;
    for (auto& w : group.waves()) {
      const double wc = wave_cycles(cfg, w.cost(), lcost);
      longest = std::max(longest, wc);
      sum += wc;
      r.total += w.cost();
    }
    const double gcycles =
        std::max(longest, sum / static_cast<double>(cfg.simds_per_cu));
    r.group_cycles.push_back(gcycles);
    r.num_waves += group.waves().size();

    // List scheduling: this group goes to the earliest-free CU.
    auto it = std::min_element(r.cu_busy_cycles.begin(), r.cu_busy_cycles.end());
    *it += gcycles;
  }

  r.kernel_cycles =
      *std::max_element(r.cu_busy_cycles.begin(), r.cu_busy_cycles.end()) +
      r.launch_overhead_cycles;
  r.simd_efficiency = simd_efficiency(r.total, cfg.wavefront_size);
  return r;
}

LaunchResult dispatch_waves(const DeviceConfig& cfg, std::uint64_t grid_size,
                            unsigned group_size, const WaveKernel& kernel,
                            CacheSim* cache) {
  return dispatch(
      cfg, grid_size, group_size,
      [&kernel](Group& g) {
        for (auto& w : g.waves()) kernel(w);
      },
      cache);
}

Device::Device(DeviceConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.enable_l2_cache) {
    l2_ = std::make_unique<CacheSim>(cfg_.l2_bytes, cfg_.cacheline_bytes,
                                     cfg_.l2_ways);
  }
}

LaunchResult& Device::launch(std::uint64_t grid_size, unsigned group_size,
                             const GroupKernel& kernel) {
  history_.push_back(dispatch(cfg_, grid_size, group_size, kernel, l2_.get()));
  total_cycles_ += history_.back().kernel_cycles;
  return history_.back();
}

LaunchResult& Device::launch_waves(std::uint64_t grid_size, unsigned group_size,
                                   const WaveKernel& kernel) {
  history_.push_back(
      dispatch_waves(cfg_, grid_size, group_size, kernel, l2_.get()));
  total_cycles_ += history_.back().kernel_cycles;
  return history_.back();
}

}  // namespace gcg::simgpu
