#include "store/mapping.hpp"
#include "util/narrow.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace gcg::store {

namespace {

int advice_flag(Advice a) {
  switch (a) {
    case Advice::kWillNeed:
      return MADV_WILLNEED;
    case Advice::kRandom:
      return MADV_RANDOM;
    case Advice::kNormal:
      break;
  }
  return MADV_NORMAL;
}

/// Closes the descriptor on every exit path out of open().
struct ScopedFd {
  int fd = -1;
  ~ScopedFd() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

const char* advice_name(Advice a) {
  switch (a) {
    case Advice::kWillNeed:
      return "willneed";
    case Advice::kRandom:
      return "random";
    case Advice::kNormal:
      break;
  }
  return "normal";
}

Advice advice_from_name(const std::string& name) {
  if (name == "normal") return Advice::kNormal;
  if (name == "willneed") return Advice::kWillNeed;
  if (name == "random") return Advice::kRandom;
  throw std::invalid_argument("unknown madvise hint \"" + name +
                              "\" (normal|willneed|random)");
}

std::shared_ptr<const Mapping> Mapping::open(const std::string& path) {
  return open(path, Options{});
}

std::shared_ptr<const Mapping> Mapping::open(const std::string& path,
                                             const Options& opts) {
  ScopedFd fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.fd < 0) {
    throw std::runtime_error("store: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd.fd, &st) != 0) {
    throw std::runtime_error("store: cannot stat " + path + ": " +
                             std::strerror(errno));
  }
  if (st.st_size == 0) {
    throw std::runtime_error("store: " + path + " is empty");
  }

  const auto size = to_unsigned(std::int64_t{st.st_size});
  void* base = MAP_FAILED;
  bool huge = false;
  if (opts.huge_pages) {
#ifdef MAP_HUGETLB
    // Only works for hugetlbfs-backed files; a regular file returns
    // EINVAL, in which case we quietly take the normal-page path.
    base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED | MAP_HUGETLB,
                  fd.fd, 0);
    huge = base != MAP_FAILED;
#endif
  }
  if (base == MAP_FAILED) {
    base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd.fd, 0);
  }
  if (base == MAP_FAILED) {
    throw MappingError("store: mmap failed for " + path + ": " +
                       std::strerror(errno));
  }

  // shared_ptr owns the Mapping; ~Mapping owns the munmap. The fd can
  // close now — the mapping keeps the file referenced.
  auto m = std::shared_ptr<Mapping>(new Mapping());  // lint: allow(naked-new) private ctor — make_shared cannot reach it
  m->data_ = static_cast<const std::uint8_t*>(base);
  m->size_ = size;
  m->path_ = path;
  m->huge_ = huge;
  if (opts.advice != Advice::kNormal) m->advise(opts.advice);
  return m;
}

Mapping::~Mapping() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

void Mapping::advise(Advice a) const {
  // Best-effort: a hint the kernel refuses must never fail a load.
  (void)::madvise(const_cast<std::uint8_t*>(data_), size_, advice_flag(a));
}

ResidencyStats Mapping::residency() const {
  ResidencyStats out;
  const std::size_t psz = page_size();
  out.total_pages = (size_ + psz - 1) / psz;
  std::vector<unsigned char> vec(out.total_pages);
  if (::mincore(const_cast<std::uint8_t*>(data_), size_, vec.data()) == 0) {
    for (unsigned char b : vec) {
      if (b & 1) ++out.resident_pages;
    }
  }
  return out;
}

std::size_t Mapping::page_size() {
  const long ps = ::sysconf(_SC_PAGESIZE);
  return ps > 0 ? to_unsigned(ps) : std::size_t{4096};
}

}  // namespace gcg::store
