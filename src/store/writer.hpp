// Producing side of the graph store: serialize a Csr as .gbin v2, or
// convert ("pack") any loadable graph file into the store format so the
// service can mmap it from then on. Writes go through a temp file +
// rename so a crash mid-write never leaves a half-written store file
// behind for a later mmap to trip over.
#pragma once

#include <string>

#include "graph/csr.hpp"

namespace gcg::store {

/// Writes `g` to `path` in .gbin v2 layout (atomic: temp file + rename).
/// Throws std::runtime_error on I/O failure.
void write_gbin_v2(const std::string& path, const Csr& g);

/// Result of pack(): where the packed file landed and what it cost.
struct PackResult {
  std::string output;        ///< the v2 file written (or reused)
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  bool reused = false;       ///< output already existed as valid v2
};

/// Converts `input` (any extension load_graph accepts) into a .gbin v2
/// file at `output`. With `reuse_existing`, an `output` that already
/// carries the v2 magic is kept as-is — the pack-on-first-load fast
/// path for tools and the registry.
PackResult pack(const std::string& input, const std::string& output,
                bool reuse_existing = false);

/// The conventional pack target for `input`: "<input>.gbin" when the
/// input is not already a .gbin, "<stem>.v2.gbin" when it is (so a v1
/// .gbin upgrade does not overwrite its source).
std::string default_pack_target(const std::string& input);

}  // namespace gcg::store
