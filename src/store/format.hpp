// On-disk layout of the mmap'able gcgpu binary graph format, .gbin v2.
//
//   offset 0      HeaderV2 (128 bytes, 64-byte aligned struct)
//   offset 4096   row_offsets section: (n+1) x uint64, page-aligned
//   (page-aligned) col_indices section: num_arcs x uint32, page-aligned
//
// Both sections start on a page boundary (kSectionAlign) so an
// mmap(PROT_READ, MAP_SHARED) of the whole file yields naturally aligned
// array pointers that a Csr view can borrow with zero copies. All fields
// are written in the producing machine's native byte order; the
// endianness tag lets a reader on a foreign-endian machine fail with a
// clear error instead of serving garbage. Per-section FNV-1a checksums
// catch torn writes and bit rot — verifying them is optional on open
// because a full verify faults in every page, which defeats lazy paging.
//
// v1 (magic "gcgbin01": magic + raw length-prefixed arrays, unaligned)
// stays readable through graph/io's load_binary; only the store's mmap
// path requires v2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace gcg::store {

inline constexpr char kMagicV2[8] = {'g', 'c', 'g', 'b', 'i', 'n', '0', '2'};
inline constexpr std::uint32_t kFormatVersion = 2;
/// Written natively; a reader seeing the byte-swapped value knows the
/// file came from a foreign-endian machine.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Section alignment: one page on every platform we serve. The header
/// padding out to the first section absorbs any future header growth.
inline constexpr std::uint64_t kSectionAlign = 4096;

/// Fixed-size v2 file header. POD on purpose: written and read with
/// memcpy-style I/O, and overlaid directly onto the mapped file.
struct alignas(64) HeaderV2 {
  char magic[8];                 ///< kMagicV2
  std::uint32_t version;         ///< kFormatVersion
  std::uint32_t endian_tag;      ///< kEndianTag as seen by the writer
  std::uint64_t num_vertices;    ///< n
  std::uint64_t num_arcs;        ///< rows[n] == |cols|
  std::uint64_t rows_offset;     ///< byte offset of row_offsets section
  std::uint64_t rows_bytes;      ///< (n+1) * sizeof(uint64)
  std::uint64_t cols_offset;     ///< byte offset of col_indices section
  std::uint64_t cols_bytes;      ///< num_arcs * sizeof(uint32)
  std::uint64_t rows_checksum;   ///< FNV-1a 64 of the rows section bytes
  std::uint64_t cols_checksum;   ///< FNV-1a 64 of the cols section bytes
  std::uint64_t header_checksum; ///< FNV-1a 64 of this struct with this
                                 ///< field zeroed — catches header rot
  std::uint8_t reserved[40];     ///< zero; pads the struct to 128 bytes
};
static_assert(sizeof(HeaderV2) == 128, "v2 header layout is frozen");

/// FNV-1a 64-bit over a byte range — the format's checksum function.
/// Chosen for having no dependencies and a one-line incremental form,
/// not for cryptographic strength.
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Rounds `offset` up to the next kSectionAlign boundary.
inline std::uint64_t align_up(std::uint64_t offset) {
  return (offset + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

/// The checksum stored in header_checksum: the header bytes with the
/// header_checksum field itself zeroed.
inline std::uint64_t header_checksum(const HeaderV2& h) {
  HeaderV2 copy = h;
  copy.header_checksum = 0;
  return fnv1a64(&copy, sizeof copy);
}

/// True if the first 8 bytes carry the v2 magic.
inline bool has_v2_magic(const void* bytes, std::size_t size) {
  return size >= sizeof(kMagicV2) &&
         std::memcmp(bytes, kMagicV2, sizeof(kMagicV2)) == 0;
}

}  // namespace gcg::store
