#include "store/writer.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "graph/io/io.hpp"
#include "store/mapped_graph.hpp"
#include "util/narrow.hpp"

namespace gcg::store {

namespace {

std::size_t size_or_zero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : narrow<std::size_t>(size);
}

}  // namespace

void write_gbin_v2(const std::string& path, const Csr& g) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("store: cannot open " + tmp + " for writing");
    }
    save_binary_v2(out, g);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("store: write failed for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("store: cannot move " + tmp + " to " + path +
                             ": " + ec.message());
  }
}

PackResult pack(const std::string& input, const std::string& output,
                bool reuse_existing) {
  PackResult out;
  out.output = output;
  out.input_bytes = size_or_zero(input);
  if (reuse_existing && is_gbin_v2_file(output)) {
    out.reused = true;
    out.output_bytes = size_or_zero(output);
    return out;
  }
  const Csr g = load_graph(input);
  write_gbin_v2(output, g);
  out.output_bytes = size_or_zero(output);
  return out;
}

std::string default_pack_target(const std::string& input) {
  const std::filesystem::path p(input);
  std::string ext = p.extension().string();
  // lossy: tolower of an ASCII byte round-trips through int
  for (char& c : ext) c = narrow_cast<char>(std::tolower(c));
  if (ext == ".gbin") {
    std::filesystem::path target = p;
    target.replace_extension(".v2.gbin");
    return target.string();
  }
  return input + ".gbin";
}

}  // namespace gcg::store
