// Zero-copy graph handle: opens a .gbin v2 file via mmap(PROT_READ,
// MAP_SHARED) and serves its CSR arrays as a borrowed-storage Csr view —
// no parse, no heap copy, load time independent of graph size. The
// second open of the same file is near-instant because the sections are
// already in the page cache, and graphs far larger than RAM stay
// servable: the kernel pages sections in and out on demand.
//
// When mmap itself fails (exotic filesystem, sandbox) the open falls
// back to an ordinary heap read of the same file, so callers always get
// a working graph; is_mapped() reports which path was taken.
//
// Thread safety: like store::Mapping, a MappedGraph is immutable after
// open() returns — the view, header, and backing bytes never change, so
// concurrent readers need no lock and this layer deliberately has no
// sync::Mutex or capability annotations. Lifetime, not locking, is the
// contract: hold the shared_ptr while reading the view.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "graph/csr.hpp"
#include "store/format.hpp"
#include "store/mapping.hpp"

namespace gcg::par {
class ThreadPool;
}

namespace gcg::store {

struct OpenOptions {
  enum class Storage {
    kAuto,    ///< mmap; fall back to a heap read if mapping fails
    kMapped,  ///< mmap or throw (no silent fallback)
    kHeap,    ///< ordinary read into owning vectors (for A/B tests)
  };
  Storage storage = Storage::kAuto;
  /// Verify the per-section checksums on open. Off by default: the
  /// verify faults in every page, which defeats lazy paging — turn it on
  /// for untrusted files or in integrity sweeps. (Heap loads through
  /// graph/io always verify; they touch every byte anyway.)
  bool verify_checksums = false;
  Mapping::Options map;  ///< madvise hint + huge-page attempt
  /// > 0: touch every page right after open on this many threads
  /// (1 = inline on the calling thread). Trades cold-start latency for
  /// warm first queries — the shasta-style parallel warmup.
  unsigned warmup_threads = 0;
};

class MappedGraph {
 public:
  /// Opens `path` (must be .gbin v2 — check with is_gbin_v2_file first
  /// when dispatching). Throws std::runtime_error on missing/corrupt
  /// files; MappingError only when storage == kMapped and mmap failed.
  static std::shared_ptr<const MappedGraph> open(const std::string& path,
                                                 const OpenOptions& opts = {});

  /// The graph. A view over the mapping when is_mapped(), an owning heap
  /// Csr after fallback. Copying the returned reference's object (Csr
  /// copy) is safe in both modes — views share the mapping anchor.
  const Csr& graph() const { return graph_; }

  bool is_mapped() const { return mapping_ != nullptr; }
  bool used_huge_pages() const {
    return mapping_ && mapping_->used_huge_pages();
  }
  /// On-disk size — what a cache should charge for a mapped entry
  /// (its heap cost is ~sizeof(Csr)).
  std::size_t file_bytes() const { return file_bytes_; }
  const HeaderV2& header() const { return header_; }
  const std::string& path() const { return path_; }

  /// Page-cache residency of the mapped file (everything "resident" in
  /// heap mode — the copy is the residency).
  ResidencyStats residency() const;

  /// Touches every page of both sections so later queries never fault.
  /// Uses `pool` when given (pages are split across its workers),
  /// otherwise runs inline. Returns the number of pages touched. No-op
  /// in heap mode.
  std::size_t warmup(par::ThreadPool* pool = nullptr) const;

  /// Re-applies a paging hint (no-op in heap mode).
  void advise(Advice a) const;

 private:
  MappedGraph() = default;

  std::shared_ptr<const Mapping> mapping_;  ///< null in heap mode
  Csr graph_;
  HeaderV2 header_{};
  std::size_t file_bytes_ = 0;
  std::string path_;
};

/// Aliasing handle: a shared_ptr<const Csr> that keeps the whole
/// MappedGraph (and therefore the mapping) alive — the shape the
/// GraphRegistry caches, so eviction can never unmap bytes a running
/// job still reads.
std::shared_ptr<const Csr> graph_view(std::shared_ptr<const MappedGraph> g);

/// True if `path` exists and starts with the v2 magic (an 8-byte sniff,
/// not a full validation).
bool is_gbin_v2_file(const std::string& path);

}  // namespace gcg::store
