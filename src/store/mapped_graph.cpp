#include "store/mapped_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "graph/io/io.hpp"
#include "par/pool.hpp"
#include "util/narrow.hpp"

namespace gcg::store {

namespace {

/// Header + geometry validation against the mapped file size. Reuses the
/// shared header validator, then checks the sections actually fit.
HeaderV2 checked_header(const Mapping& m) {
  if (m.size() < sizeof(HeaderV2)) {
    throw std::runtime_error("gbin2: " + m.path() + ": file shorter than "
                             "the v2 header");
  }
  HeaderV2 h{};
  std::memcpy(&h, m.data(), sizeof h);
  try {
    validate_gbin_v2_header(h);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(std::string(e.what()) + " in " + m.path());
  }
  if (h.rows_offset + h.rows_bytes > m.size() ||
      h.cols_offset + h.cols_bytes > m.size()) {
    throw std::runtime_error("gbin2: " + m.path() + ": truncated stream");
  }
  return h;
}

std::size_t file_size_of(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::streamoff size = 0;
  if (in) size = in.tellg();
  return size > 0 ? to_unsigned(size) : std::size_t{0};
}

}  // namespace

std::shared_ptr<const MappedGraph> MappedGraph::open(const std::string& path,
                                                     const OpenOptions& opts) {
  auto out = std::shared_ptr<MappedGraph>(new MappedGraph());  // lint: allow(naked-new) private ctor — make_shared cannot reach it
  out->path_ = path;

  if (opts.storage != OpenOptions::Storage::kHeap) {
    try {
      out->mapping_ = Mapping::open(path, opts.map);
    } catch (const MappingError&) {
      // Graceful fallback: the file is there and readable, only the
      // mapping failed. kAuto degrades to the heap path below.
      if (opts.storage == OpenOptions::Storage::kMapped) throw;
    }
  }

  if (out->mapping_) {
    const Mapping& m = *out->mapping_;
    out->header_ = checked_header(m);
    out->file_bytes_ = m.size();
    const HeaderV2& h = out->header_;
    if (opts.verify_checksums) {
      if (fnv1a64(m.data() + h.rows_offset, h.rows_bytes) !=
          h.rows_checksum) {
        throw std::runtime_error("gbin2: " + path +
                                 ": rows section checksum mismatch");
      }
      if (fnv1a64(m.data() + h.cols_offset, h.cols_bytes) !=
          h.cols_checksum) {
        throw std::runtime_error("gbin2: " + path +
                                 ": cols section checksum mismatch");
      }
    }
    const std::span<const eid_t> rows{
        reinterpret_cast<const eid_t*>(m.data() + h.rows_offset),
        narrow<std::size_t>(h.num_vertices + 1)};
    const std::span<const vid_t> cols{
        reinterpret_cast<const vid_t*>(m.data() + h.cols_offset),
        narrow<std::size_t>(h.num_arcs)};
    // The view's keepalive is the mapping itself: a Csr copied out of
    // here stays valid even after the MappedGraph handle is dropped.
    out->graph_ = Csr::view(rows, cols, out->mapping_);
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("store: cannot open " + path);
    out->graph_ = load_binary(in);  // owning; verifies checksums
    out->file_bytes_ = file_size_of(path);
  }

  if (opts.warmup_threads > 0 && out->is_mapped()) {
    if (opts.warmup_threads == 1) {
      out->warmup(nullptr);
    } else {
      par::ThreadPool pool(opts.warmup_threads);
      out->warmup(&pool);
    }
  }
  return out;
}

ResidencyStats MappedGraph::residency() const {
  if (mapping_) return mapping_->residency();
  const std::size_t psz = Mapping::page_size();
  ResidencyStats all;
  all.total_pages = (file_bytes_ + psz - 1) / psz;
  all.resident_pages = all.total_pages;  // the heap copy IS the residency
  return all;
}

std::size_t MappedGraph::warmup(par::ThreadPool* pool) const {
  if (!mapping_) return 0;
  const std::uint8_t* base = mapping_->data();
  const std::size_t psz = Mapping::page_size();
  const std::size_t bytes = mapping_->size();
  const auto pages = narrow<std::uint32_t>((bytes + psz - 1) / psz);

  // One byte per page is enough to fault it in; the running sum keeps
  // the loop observable so it cannot be optimized to nothing.
  std::atomic<std::uint64_t> sink{0};
  auto touch = [&](std::uint32_t begin, std::uint32_t end) {
    std::uint64_t local = 0;
    for (std::uint32_t p = begin; p < end; ++p) local += base[p * psz];
    sink.fetch_add(local);
  };
  if (pool != nullptr && pool->size() > 1 && pages > 1) {
    const std::uint32_t grain = std::max<std::uint32_t>(64, pages / (pool->size() * 8));
    pool->parallel_for(pages, grain,
                       [&](std::uint32_t b, std::uint32_t e, unsigned) {
                         touch(b, e);
                       });
  } else {
    touch(0, pages);
  }
  return pages;
}

void MappedGraph::advise(Advice a) const {
  if (mapping_) mapping_->advise(a);
}

std::shared_ptr<const Csr> graph_view(std::shared_ptr<const MappedGraph> g) {
  if (!g) return nullptr;
  const Csr* csr = &g->graph();
  return std::shared_ptr<const Csr>(std::move(g), csr);
}

bool is_gbin_v2_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8] = {};
  in.read(magic, sizeof magic);
  return in && has_v2_magic(magic, sizeof magic);
}

}  // namespace gcg::store
