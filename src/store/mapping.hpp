// RAII wrapper around a read-only, shared file mapping — the single
// place in the codebase that calls mmap/munmap/madvise/mincore (a
// gcg_lint rule bans raw mmap everywhere else). Centralizing the unmap
// in one shared handle is what makes Csr views safe: every view holds a
// shared_ptr to the Mapping (possibly through a MappedGraph), so the
// bytes outlive the last reader no matter what the cache evicts.
//
// Thread safety: a Mapping is immutable after construction — the pages
// are PROT_READ and no member mutates state after the constructor
// returns (residency() only reads kernel state). Any number of threads
// may share one Mapping through shared_ptr without locking; that is why
// this layer carries no sync::Mutex and no capability annotations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace gcg::store {

/// Paging hints forwarded to madvise after a successful map.
enum class Advice {
  kNormal,    ///< kernel default readahead
  kWillNeed,  ///< MADV_WILLNEED: start faulting pages in immediately
  kRandom,    ///< MADV_RANDOM: disable readahead (pointer-chasing loads)
};

const char* advice_name(Advice a);
Advice advice_from_name(const std::string& name);

/// How many of the mapping's pages are currently resident in the page
/// cache (mincore snapshot) — the store's observability hook.
struct ResidencyStats {
  std::size_t resident_pages = 0;
  std::size_t total_pages = 0;
  double ratio() const {
    return total_pages ? static_cast<double>(resident_pages) /
                             static_cast<double>(total_pages)
                       : 0.0;
  }
};

class Mapping {
 public:
  struct Options {
    Advice advice = Advice::kNormal;
    /// Try MAP_HUGETLB first (needs hugetlbfs-backed files or reserved
    /// huge pages; falls back to a normal mapping when the kernel
    /// refuses — check used_huge_pages() for what actually happened).
    bool huge_pages = false;
  };

  /// Maps `path` read-only (PROT_READ, MAP_SHARED). Throws
  /// std::runtime_error if the file cannot be opened or stat'ed, and
  /// MappingError when the mmap itself failed — so callers can
  /// distinguish "no such file" from "mmap unsupported here" and fall
  /// back to a heap read. (Defaulted overload, not a default argument:
  /// GCC rejects `Options{}` defaults while the enclosing class is open.)
  static std::shared_ptr<const Mapping> open(const std::string& path,
                                             const Options& opts);
  static std::shared_ptr<const Mapping> open(const std::string& path);

  ~Mapping();
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  bool used_huge_pages() const { return huge_; }

  /// Re-applies a paging hint after open (e.g. switch to kRandom once
  /// warmup finished). Best-effort: errors are ignored.
  void advise(Advice a) const;

  /// mincore snapshot of how much of the file is resident right now.
  ResidencyStats residency() const;

  static std::size_t page_size();

 private:
  Mapping() = default;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
  bool huge_ = false;
};

/// Thrown when the file exists and is readable but mmap itself failed —
/// the signal for MappedGraph's graceful heap fallback.
class MappingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace gcg::store
