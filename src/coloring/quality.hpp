// Color-quality analytics: class sizes and balance. Downstream users of
// coloring (e.g. parallel Gauss–Seidel) care about both the number of
// classes and how evenly vertices spread across them.
#pragma once

#include <span>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg {

struct QualityReport {
  int num_colors = 0;
  std::vector<std::uint32_t> class_sizes;  ///< after dense renumbering
  double largest_class_fraction = 0.0;
  double class_size_cv = 0.0;
  /// Mean parallelism if classes execute one-by-one with unit work per
  /// vertex (n / num_colors).
  double mean_parallelism = 0.0;
};

QualityReport analyze_quality(const Csr& g, std::span<const color_t> colors);

}  // namespace gcg
