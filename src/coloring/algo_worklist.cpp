// Data-driven coloring: the frontier holds exactly the uncolored vertices.
// Phase A scans only frontier entries; phase B commits winners and
// compacts the losers into the next frontier with wave-aggregated atomics.
#include <numeric>

#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"

namespace gcg::detail {

void run_worklist(DriverState& st, bool min_too) {
  const vid_t n = st.g.num_vertices();
  std::vector<vid_t> frontier_in(n);
  std::iota(frontier_in.begin(), frontier_in.end(), vid_t{0});
  std::vector<vid_t> frontier_out(n);
  std::vector<std::uint32_t> counter(1, 0);
  std::uint32_t frontier_size = n;

  for (unsigned iter = 0; frontier_size > 0; ++iter) {
    GCG_ASSERT(iter < st.opts.max_iterations);
    ColorCtx ctx = st.ctx();
    const std::span<const vid_t> fin(frontier_in.data(), frontier_size);

    st.dev.launch_waves(frontier_size, st.opts.group_size, [&](simgpu::Wave& w) {
      const simgpu::Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      scan_flags_tpv(w, m, items, ctx, /*check_colored=*/false, min_too);
    });

    counter[0] = 0;
    FrontierAppender app{frontier_out, counter};
    const color_t base = static_cast<color_t>(iter) * (min_too ? 2 : 1);
    std::uint64_t committed = 0;
    st.dev.launch_waves(frontier_size, st.opts.group_size, [&](simgpu::Wave& w) {
      const simgpu::Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      const simgpu::Mask won = commit_tpv(w, m, items, ctx, base, min_too,
                                          /*check_colored=*/false, &app);
      committed += won.count();
    });

    GCG_ASSERT(committed > 0);
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(frontier_size, committed);
    frontier_in.swap(frontier_out);
    frontier_size = counter[0];
  }
}

}  // namespace gcg::detail
