#include "coloring/mis.hpp"

#include <numeric>

#include "coloring/kernels.hpp"
#include "util/expect.hpp"

namespace gcg {

namespace {
// Per-vertex state in device memory.
constexpr std::uint8_t kUndecided = 0;
constexpr std::uint8_t kIn = 1;
constexpr std::uint8_t kOut = 2;
}  // namespace

MisResult luby_mis(const simgpu::DeviceConfig& cfg, const Csr& g,
                   const ColoringOptions& opts) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;

  const vid_t n = g.num_vertices();
  const auto prio = make_priorities(g, opts.priority, opts.seed);
  const DeviceGraph dg = DeviceGraph::of(g);
  std::vector<std::uint8_t> state(n, kUndecided);
  std::vector<std::uint8_t> winner(n, 0);
  simgpu::Device dev(cfg);
  const unsigned gs = std::min(opts.group_size, cfg.max_group_size);

  MisResult out;
  vid_t undecided = n;
  while (undecided > 0) {
    GCG_ASSERT(out.rounds < opts.max_iterations);
    const std::span<const std::uint8_t> state_c(state.data(), state.size());

    // Kernel 1: undecided local maxima (vs undecided neighbours) win.
    dev.launch_waves(n, gs, [&](Wave& w) {
      const Mask valid = w.valid();
      const auto items = w.global_ids();
      const Vec<std::uint8_t> s = w.load(state_c, items, valid);
      w.valu(valid);
      Mask m = where(s, valid, [](std::uint8_t x) { return x == kUndecided; });
      if (!m.any()) {
        w.salu();
        return;
      }
      const Vec<std::uint32_t> pv = w.load(std::span<const std::uint32_t>(prio),
                                           items, m);
      const Vec<eid_t> rb = w.load(dg.rows, items, m);
      Vec<std::uint32_t> items1;
      for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
      w.valu(m);
      const Vec<eid_t> re = w.load(dg.rows, items1, m);
      Mask is_max = m;
      Vec<eid_t> cur = rb;
      w.valu(m);
      Mask loop = where2(cur, re, m, [](eid_t a, eid_t b) { return a < b; });
      while (loop.any()) {
        const Vec<vid_t> nbr = w.load(dg.cols, cur, loop);
        const Vec<std::uint8_t> ns = w.load(state_c, nbr, loop);
        const Vec<std::uint32_t> np =
            w.load(std::span<const std::uint32_t>(prio), nbr, loop);
        w.valu(loop, 3.0);
        for (unsigned i = 0; i < w.width(); ++i) {
          if (!loop.test(i) || ns[i] != kUndecided) continue;
          if (priority_less(pv[i], items[i], np[i], nbr[i])) is_max.clear(i);
        }
        for (unsigned i = 0; i < w.width(); ++i) {
          if (loop.test(i)) ++cur[i];
        }
        w.valu(loop);
        loop &= is_max;  // a loser can stop scanning
        loop = where2(cur, re, loop, [](eid_t a, eid_t b) { return a < b; });
      }
      Vec<std::uint8_t> flag{};
      for (unsigned i = 0; i < w.width(); ++i) {
        if (m.test(i)) flag[i] = is_max.test(i) ? 1 : 0;
      }
      w.valu(m);
      w.store(std::span<std::uint8_t>(winner), items, flag, m);
    });

    // Kernel 2: winners join; their undecided neighbours drop out.
    std::uint64_t decided = 0;
    dev.launch_waves(n, gs, [&](Wave& w) {
      const Mask valid = w.valid();
      const auto items = w.global_ids();
      const Vec<std::uint8_t> s = w.load(state_c, items, valid);
      const Vec<std::uint8_t> win =
          w.load(std::span<const std::uint8_t>(winner), items, valid);
      w.valu(valid, 2.0);
      Mask joining = Mask::none();
      for (unsigned i = 0; i < w.width(); ++i) {
        if (valid.test(i) && s[i] == kUndecided && win[i]) joining.set(i);
      }
      if (!joining.any()) {
        w.salu();
        return;
      }
      w.store(std::span<std::uint8_t>(state), items,
              Vec<std::uint8_t>::splat(kIn), joining);
      decided += joining.count();
      // Knock out neighbours (scatter stores; races are write-same-value
      // or kOut-over-kUndecided, both benign).
      const Vec<eid_t> rb = w.load(dg.rows, items, joining);
      Vec<std::uint32_t> items1;
      for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
      w.valu(joining);
      const Vec<eid_t> re = w.load(dg.rows, items1, joining);
      Vec<eid_t> cur = rb;
      w.valu(joining);
      Mask loop = where2(cur, re, joining, [](eid_t a, eid_t b) { return a < b; });
      while (loop.any()) {
        const Vec<vid_t> nbr = w.load(dg.cols, cur, loop);
        for (unsigned i = 0; i < w.width(); ++i) {
          if (loop.test(i) && state[nbr[i]] == kUndecided) {
            state[nbr[i]] = kOut;
            ++decided;
          }
        }
        w.valu(loop);
        Vec<std::uint8_t> outv = Vec<std::uint8_t>::splat(kOut);
        w.store(std::span<std::uint8_t>(state), nbr, outv, loop);
        for (unsigned i = 0; i < w.width(); ++i) {
          if (loop.test(i)) ++cur[i];
        }
        w.valu(loop);
        loop = where2(cur, re, loop, [](eid_t a, eid_t b) { return a < b; });
      }
    });

    GCG_ASSERT(decided > 0);
    undecided -= static_cast<vid_t>(decided);
    ++out.rounds;
  }

  out.in_set.assign(n, 0);
  for (vid_t v = 0; v < n; ++v) {
    if (state[v] == kIn) {
      out.in_set[v] = 1;
      ++out.set_size;
    }
  }
  out.total_cycles = dev.total_cycles();
  return out;
}

MisResult greedy_mis(const Csr& g) {
  MisResult out;
  const vid_t n = g.num_vertices();
  out.in_set.assign(n, 0);
  std::vector<bool> blocked(n, false);
  for (vid_t v = 0; v < n; ++v) {
    if (blocked[v]) continue;
    out.in_set[v] = 1;
    ++out.set_size;
    for (vid_t u : g.neighbors(v)) blocked[u] = true;
  }
  out.rounds = 1;
  return out;
}

bool is_maximal_independent_set(const Csr& g,
                                std::span<const std::uint8_t> in_set) {
  GCG_EXPECT(in_set.size() == g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    bool has_in_neighbor = false;
    for (vid_t u : g.neighbors(v)) {
      if (in_set[u]) {
        has_in_neighbor = true;
        if (in_set[v]) return false;  // not independent
      }
    }
    if (!in_set[v] && !has_in_neighbor) return false;  // not maximal
  }
  return true;
}

}  // namespace gcg
