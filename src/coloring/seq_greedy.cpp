
#include "coloring/seq_greedy.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"
#include <algorithm>
#include <numeric>

namespace gcg {

const char* greedy_order_name(GreedyOrder o) {
  switch (o) {
    case GreedyOrder::kNatural: return "natural";
    case GreedyOrder::kRandom: return "random";
    case GreedyOrder::kLargestFirst: return "largest-first";
    case GreedyOrder::kSmallestLast: return "smallest-last";
    case GreedyOrder::kIncidence: return "incidence";
  }
  return "?";
}

namespace {

/// Smallest-last (degeneracy) order via bucketed min-degree peeling.
std::vector<vid_t> smallest_last_order(const Csr& g, vid_t* degeneracy_out) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> deg(n);
  vid_t maxd = 0;
  for (vid_t v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    maxd = std::max(maxd, deg[v]);
  }
  // Bucket queue keyed by current degree.
  std::vector<std::vector<vid_t>> buckets(maxd + 1);
  for (vid_t v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::vector<vid_t> order;
  order.reserve(n);
  vid_t degen = 0;
  vid_t floor = 0;
  for (vid_t taken = 0; taken < n; ++taken) {
    while (floor <= maxd && buckets[floor].empty()) ++floor;
    // Entries can be stale (degree decreased since insertion); skip them.
    vid_t v = n;
    while (floor <= maxd) {
      while (!buckets[floor].empty()) {
        const vid_t cand = buckets[floor].back();
        buckets[floor].pop_back();
        if (!removed[cand] && deg[cand] == floor) {
          v = cand;
          break;
        }
      }
      if (v != n) break;
      ++floor;
    }
    GCG_ASSERT(v != n);
    removed[v] = true;
    order.push_back(v);
    degen = std::max(degen, deg[v]);
    for (vid_t u : g.neighbors(v)) {
      if (!removed[u]) {
        --deg[u];
        buckets[deg[u]].push_back(u);
        if (deg[u] < floor) floor = deg[u];
      }
    }
  }
  // Peeling order lists the minimum-degree vertex first; coloring wants the
  // reverse (so each vertex has few already-colored neighbours).
  std::reverse(order.begin(), order.end());
  if (degeneracy_out) *degeneracy_out = degen;
  return order;
}

std::vector<vid_t> incidence_order(const Csr& g) {
  // Greedy: repeatedly pick the vertex with most already-ordered neighbours
  // (ties: higher degree). Bucketed by saturation-of-ordering count.
  const vid_t n = g.num_vertices();
  std::vector<vid_t> score(n, 0);
  std::vector<bool> placed(n, false);
  std::vector<std::vector<vid_t>> buckets(1);
  for (vid_t v = 0; v < n; ++v) buckets[0].push_back(v);
  vid_t top = 0;
  std::vector<vid_t> order;
  order.reserve(n);
  while (order.size() < n) {
    while (top > 0 && buckets[top].empty()) --top;
    vid_t v = n;
    while (true) {
      while (!buckets[top].empty()) {
        const vid_t cand = buckets[top].back();
        buckets[top].pop_back();
        if (!placed[cand] && score[cand] == top) {
          v = cand;
          break;
        }
      }
      if (v != n || top == 0) break;
      --top;
    }
    GCG_ASSERT(v != n);
    placed[v] = true;
    order.push_back(v);
    for (vid_t u : g.neighbors(v)) {
      if (!placed[u]) {
        ++score[u];
        if (score[u] >= buckets.size()) buckets.resize(score[u] + 1);
        buckets[score[u]].push_back(u);
        top = std::max(top, score[u]);
      }
    }
  }
  return order;
}

}  // namespace

SeqColoring greedy_color(const Csr& g, GreedyOrder order, std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> visit(n);
  std::iota(visit.begin(), visit.end(), vid_t{0});

  switch (order) {
    case GreedyOrder::kNatural:
      break;
    case GreedyOrder::kRandom: {
      Xoshiro256ss rng(seed);
      for (vid_t i = n; i > 1; --i) {
        const auto j = static_cast<vid_t>(rng.bounded(i));
        std::swap(visit[i - 1], visit[j]);
      }
      break;
    }
    case GreedyOrder::kLargestFirst:
      std::stable_sort(visit.begin(), visit.end(), [&](vid_t a, vid_t b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    case GreedyOrder::kSmallestLast:
      visit = smallest_last_order(g, nullptr);
      break;
    case GreedyOrder::kIncidence:
      visit = incidence_order(g);
      break;
  }

  SeqColoring out;
  out.colors.assign(n, kUncolored);
  std::vector<int> mark;  // mark[c] == v means color c is forbidden for v
  mark.assign(static_cast<std::size_t>(g.max_degree()) + 2, -1);
  for (std::size_t k = 0; k < visit.size(); ++k) {
    const vid_t v = visit[k];
    for (vid_t u : g.neighbors(v)) {
      const color_t c = out.colors[u];
      if (c != kUncolored) mark[to_unsigned(c)] = static_cast<int>(v);
    }
    color_t c = 0;
    while (mark[to_unsigned(c)] == static_cast<int>(v)) ++c;
    out.colors[v] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

vid_t degeneracy(const Csr& g) {
  if (g.num_vertices() == 0) return 0;
  vid_t d = 0;
  smallest_last_order(g, &d);
  return d;
}

}  // namespace gcg
