
#include "coloring/recolor.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include <algorithm>
#include <numeric>

namespace gcg {

namespace {

/// Greedy first-fit over an explicit visit order.
RecolorResult greedy_over(const Csr& g, const std::vector<vid_t>& visit) {
  RecolorResult out;
  out.colors.assign(g.num_vertices(), kUncolored);
  std::vector<int> mark(static_cast<std::size_t>(g.max_degree()) + 2, -1);
  for (vid_t v : visit) {
    for (vid_t u : g.neighbors(v)) {
      if (out.colors[u] != kUncolored) {
        mark[to_unsigned(out.colors[u])] = static_cast<int>(v);
      }
    }
    color_t c = 0;
    while (mark[to_unsigned(c)] == static_cast<int>(v)) ++c;
    out.colors[v] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  out.passes = 1;
  return out;
}

std::vector<vid_t> class_grouped_order(const Csr& g,
                                       std::span<const color_t> colors,
                                       ClassOrder order) {
  // Dense class ids + sizes.
  std::vector<color_t> dense(colors.begin(), colors.end());
  const int k = compact_colors(dense);
  std::vector<std::uint32_t> size(to_unsigned(k), 0);
  for (color_t c : dense) {
    GCG_EXPECT(c != kUncolored);
    ++size[to_unsigned(c)];
  }
  std::vector<int> class_rank(to_unsigned(k));
  std::iota(class_rank.begin(), class_rank.end(), 0);
  switch (order) {
    case ClassOrder::kLargestFirst:
      std::stable_sort(class_rank.begin(), class_rank.end(),
                       [&](int a, int b) {
                         return size[to_unsigned(a)] > size[to_unsigned(b)];
                       });
      break;
    case ClassOrder::kSmallestFirst:
      std::stable_sort(class_rank.begin(), class_rank.end(),
                       [&](int a, int b) {
                         return size[to_unsigned(a)] < size[to_unsigned(b)];
                       });
      break;
    case ClassOrder::kReverse:
      std::reverse(class_rank.begin(), class_rank.end());
      break;
  }
  std::vector<int> position(to_unsigned(k));
  for (int r = 0; r < k; ++r) position[to_unsigned(class_rank[to_unsigned(r)])] = r;

  std::vector<vid_t> visit(g.num_vertices());
  std::iota(visit.begin(), visit.end(), vid_t{0});
  std::stable_sort(visit.begin(), visit.end(), [&](vid_t a, vid_t b) {
    return position[to_unsigned(dense[a])] < position[to_unsigned(dense[b])];
  });
  return visit;
}

}  // namespace

RecolorResult recolor_pass(const Csr& g, std::span<const color_t> colors,
                           ClassOrder order) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  if (g.num_vertices() == 0) return {};
  // Key property: visiting a proper coloring class-by-class means every
  // vertex's already-colored neighbours sit in previously visited classes,
  // so greedy assigns each class a color <= its visit rank. Hence the
  // result never uses more colors than the input had classes.
  return greedy_over(g, class_grouped_order(g, colors, order));
}

RecolorResult reduce_colors(const Csr& g, std::span<const color_t> colors,
                            int max_passes, int patience) {
  GCG_EXPECT(max_passes >= 1 && patience >= 1);
  RecolorResult best = recolor_pass(g, colors, ClassOrder::kLargestFirst);
  int since_improvement = 0;
  const ClassOrder cycle[] = {ClassOrder::kReverse, ClassOrder::kLargestFirst,
                              ClassOrder::kSmallestFirst};
  for (int pass = 1; pass < max_passes && since_improvement < patience; ++pass) {
    RecolorResult next =
        recolor_pass(g, best.colors, cycle[pass % 3]);
    next.passes = best.passes + 1;
    if (next.num_colors < best.num_colors) {
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
    // Equal color counts still adopt the new coloring: permuting classes
    // is what lets later passes escape plateaus.
    if (next.num_colors <= best.num_colors) best = std::move(next);
  }
  return best;
}

}  // namespace gcg
