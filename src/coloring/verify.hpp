// Coloring validation — every test and bench checks results through this.
#pragma once

#include <optional>
#include <span>
#include <string>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg {

struct Violation {
  vid_t u = 0;
  vid_t v = 0;
  color_t color = kUncolored;
  std::string to_string() const;
};

/// First adjacent pair sharing a color, or first uncolored vertex
/// (when require_complete). nullopt = valid.
std::optional<Violation> find_violation(const Csr& g,
                                        std::span<const color_t> colors,
                                        bool require_complete = true);

/// True iff colors is a proper (and, by default, complete) coloring.
bool is_valid_coloring(const Csr& g, std::span<const color_t> colors,
                       bool require_complete = true);

}  // namespace gcg
