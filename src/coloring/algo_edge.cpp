// Edge-parallel coloring: one lane per ARC instead of per vertex. Every
// lane does identical work (load two endpoints, compare, knock out one
// flag), so SIMD utilization is perfect by construction — the degree
// distribution cannot cause divergence. The price: |arcs| lane-visits per
// iteration regardless of progress, and atomic flag updates that serialize
// on hub vertices (the imbalance re-appears as contention). One of the
// "approaches to implementing graph coloring" the paper characterizes.
//
// Iteration = three kernels:
//   reset:  flags[v] = kFlagMax|kFlagMin for every uncolored vertex
//   scan:   per arc (u,v), both uncolored: the (priority,id)-smaller
//           endpoint loses its max flag via atomic AND
//           (min flags: the larger endpoint loses min)
//   commit: standard thread-per-vertex commit
#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"

namespace gcg::detail {

void run_edge_parallel(DriverState& st, bool min_too) {
  using simgpu::Mask;
  using simgpu::Vec;
  using simgpu::Wave;

  const vid_t n = st.g.num_vertices();
  const eid_t m = st.g.num_arcs();

  // Arc source array (the CSR stores only destinations): built once on the
  // host, uploaded as another device buffer — standard for edge-parallel.
  std::vector<vid_t> src(m);
  for (vid_t u = 0; u < n; ++u) {
    for (eid_t e = st.g.offset(u); e < st.g.offset(u + 1); ++e) src[e] = u;
  }
  const std::span<const vid_t> src_c(src.data(), src.size());

  for (unsigned iter = 0; st.colored_total < n; ++iter) {
    GCG_ASSERT(iter < st.opts.max_iterations);
    ColorCtx ctx = st.ctx();
    const std::uint64_t active = n - st.colored_total;

    // --- reset flags of uncolored vertices --------------------------------
    st.dev.launch_waves(n, st.opts.group_size, [&](Wave& w) {
      const Mask valid = w.valid();
      const Vec<color_t> col = w.load(ctx.colors_const(), w.global_ids(), valid);
      w.valu(valid);
      const Mask uncolored =
          where(col, valid, [](color_t c) { return c == kUncolored; });
      if (!uncolored.any()) {
        w.salu();
        return;
      }
      const auto both = static_cast<std::uint8_t>(
          kFlagMax | (min_too ? kFlagMin : kFlagNone));
      w.store(ctx.flags, w.global_ids(), Vec<std::uint8_t>::splat(both),
              uncolored);
    });

    // --- edge scan: one lane per arc --------------------------------------
    st.dev.launch_waves(m, st.opts.group_size, [&](Wave& w) {
      const Mask valid = w.valid();
      const auto e = w.global_ids();
      const Vec<vid_t> u = w.load(src_c, e, valid);        // coalesced
      const Vec<vid_t> v = w.load(ctx.g.cols, e, valid);   // coalesced
      const Vec<color_t> cu = w.load(ctx.colors_const(), u, valid);
      const Vec<color_t> cv = w.load(ctx.colors_const(), v, valid);
      w.valu(valid, 2.0);
      Mask live = Mask::none();
      for (unsigned i = 0; i < w.width(); ++i) {
        if (valid.test(i) && cu[i] == kUncolored && cv[i] == kUncolored) {
          live.set(i);
        }
      }
      if (!live.any()) {
        w.salu();
        return;
      }
      const Vec<std::uint32_t> pu = w.load(ctx.prio, u, live);
      const Vec<std::uint32_t> pv = w.load(ctx.prio, v, live);
      w.valu(live, 2.0);
      // The smaller endpoint cannot be a local max; the larger cannot be a
      // local min. Each arc appears in both directions, so clearing only
      // the source side per arc covers both endpoints overall — we clear
      // based on the (u is smaller?) test to touch exactly one vertex per
      // lane and keep one atomic per arc.
      Vec<std::uint8_t> clear_bits;
      for (unsigned i = 0; i < w.width(); ++i) {
        if (!live.test(i)) continue;
        const bool u_smaller = priority_less(pu[i], u[i], pv[i], v[i]);
        clear_bits[i] = static_cast<std::uint8_t>(
            ~(u_smaller ? kFlagMax : (min_too ? kFlagMin : kFlagNone)));
      }
      // Lanes whose clear mask is all-ones (nothing to clear) can skip.
      Mask writers = Mask::none();
      for (unsigned i = 0; i < w.width(); ++i) {
        if (live.test(i) && clear_bits[i] != 0xFF) writers.set(i);
      }
      w.valu(live);
      if (writers.any()) {
        w.atomic_and(ctx.flags, u, clear_bits, writers);
      }
    });

    // --- commit ------------------------------------------------------------
    const color_t base = static_cast<color_t>(iter) * (min_too ? 2 : 1);
    std::uint64_t committed = 0;
    st.dev.launch_waves(n, st.opts.group_size, [&](Wave& w) {
      const Mask won =
          commit_tpv(w, w.valid(), w.global_ids(), ctx, base, min_too,
                     /*check_colored=*/true, nullptr);
      committed += won.count();
    });

    GCG_ASSERT(committed > 0);
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(active, committed);
  }
}

}  // namespace gcg::detail
