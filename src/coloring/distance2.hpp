// Distance-2 coloring: vertices at distance <= 2 get distinct colors
// (equivalently: a proper coloring of the square graph). The standard tool
// for compressing Jacobian/Hessian evaluations and for channel assignment.
// Included as the natural extension of the paper's framework: the same
// two-phase speculative kernels, with 2-hop neighbourhood scans.
#pragma once

#include <optional>

#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"

namespace gcg {

/// Sequential greedy distance-2 coloring under a vertex order.
SeqColoring greedy_color_d2(const Csr& g,
                            GreedyOrder order = GreedyOrder::kNatural,
                            std::uint64_t seed = 1);

/// First distance-2 conflict (two vertices with a common neighbour — or
/// adjacent — sharing a color), or first uncolored vertex.
std::optional<check::Violation> find_violation_d2(const Csr& g,
                                           std::span<const color_t> colors,
                                           bool require_complete = true);

bool is_valid_coloring_d2(const Csr& g, std::span<const color_t> colors,
                          bool require_complete = true);

/// GPU distance-2 coloring: speculative first-fit over the square graph,
/// conflicts resolved by (priority, id). Uses thread-per-vertex kernels
/// with explicit 2-hop scans; intended for bounded-degree graphs (the
/// scratch forbidden set is O(min(n, max_degree^2)) bits per lane).
ColoringRun run_coloring_d2(const simgpu::DeviceConfig& cfg, const Csr& g,
                            const ColoringOptions& opts = {});

}  // namespace gcg
