// Speculative greedy coloring (Gebremedhin–Manne style): every frontier
// vertex optimistically takes its first-fit color against *committed*
// neighbours; a second kernel revokes the speculation wherever two
// still-uncolored neighbours picked the same color (the lower-priority one
// loses). Included as the "alternative approach" comparison point: fewer
// colors and iterations than max-min, but heavier per-iteration kernels.
#include <numeric>

#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"

namespace gcg::detail {

namespace {

using simgpu::Mask;
using simgpu::Vec;
using simgpu::Wave;

/// Per-lane forbidden-color bitsets, reused across waves. `words` 64-bit
/// words per lane — enough for max_degree+1 candidate colors.
struct ForbiddenScratch {
  explicit ForbiddenScratch(vid_t max_degree)
      : words((static_cast<std::size_t>(max_degree) + 2 + 63) / 64),
        bits(words * simgpu::kMaxLanes, 0) {}

  std::uint64_t* lane(unsigned i) { return bits.data() + i * words; }
  void clear_lane(unsigned i) {
    std::fill_n(lane(i), words, std::uint64_t{0});
  }

  std::size_t words;
  std::vector<std::uint64_t> bits;
};

void spec_assign_tpv(Wave& w, Mask m, const Vec<std::uint32_t>& items,
                     const ColorCtx& ctx, std::span<color_t> tentative,
                     ForbiddenScratch& scratch) {
  if (!m.any()) {
    w.salu();
    return;
  }
  const Vec<eid_t> row_begin = w.load(ctx.g.rows, items, m);
  Vec<std::uint32_t> items1;
  for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
  w.valu(m);
  const Vec<eid_t> row_end = w.load(ctx.g.rows, items1, m);

  // Private forbidden arrays live in scratch memory on hardware; clearing
  // them costs one instruction per word.
  for (unsigned i = 0; i < w.width(); ++i) {
    if (m.test(i)) scratch.clear_lane(i);
  }
  w.valu(m, static_cast<double>(scratch.words));

  Vec<eid_t> cur = row_begin;
  w.valu(m);
  Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
  while (loop.any()) {
    const Vec<vid_t> nbr = w.load(ctx.g.cols, cur, loop);
    const Vec<color_t> ncol = w.load(ctx.colors_const(), nbr, loop);
    w.valu(loop, 2.0);  // uncolored test + bit set
    for (unsigned i = 0; i < w.width(); ++i) {
      if (!loop.test(i) || ncol[i] == kUncolored) continue;
      const auto c = static_cast<std::size_t>(ncol[i]);
      if (c / 64 < scratch.words) {
        scratch.lane(i)[c / 64] |= std::uint64_t{1} << (c % 64);
      }
    }
    for (unsigned i = 0; i < w.width(); ++i) {
      if (loop.test(i)) ++cur[i];
    }
    w.valu(loop);
    loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
  }

  // First-fit: find the first zero bit per lane.
  w.valu(m, static_cast<double>(scratch.words));
  Vec<color_t> tv;
  for (unsigned i = 0; i < w.width(); ++i) {
    if (!m.test(i)) continue;
    color_t c = 0;
    for (std::size_t word = 0; word < scratch.words; ++word) {
      const std::uint64_t inv = ~scratch.lane(i)[word];
      if (inv != 0) {
        c = static_cast<color_t>(word * 64 +
                                 static_cast<std::size_t>(std::countr_zero(inv)));
        break;
      }
    }
    tv[i] = c;
  }
  w.store(tentative, items, tv, m);
}

/// Returns the mask of lanes that committed their speculation.
Mask spec_resolve_tpv(Wave& w, Mask m, const Vec<std::uint32_t>& items,
                      const ColorCtx& ctx, std::span<const color_t> tentative,
                      FrontierAppender* lose_out) {
  if (!m.any()) {
    w.salu();
    return Mask::none();
  }
  const Vec<color_t> tv = w.load(tentative, items, m);
  const Vec<std::uint32_t> pv = w.load(ctx.prio, items, m);
  const Vec<eid_t> row_begin = w.load(ctx.g.rows, items, m);
  Vec<std::uint32_t> items1;
  for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
  w.valu(m);
  const Vec<eid_t> row_end = w.load(ctx.g.rows, items1, m);

  Mask win = m;
  Vec<eid_t> cur = row_begin;
  w.valu(m);
  Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
  while (loop.any()) {
    const Vec<vid_t> nbr = w.load(ctx.g.cols, cur, loop);
    const Vec<color_t> ncol = w.load(ctx.colors_const(), nbr, loop);
    const Vec<color_t> ntv = w.load(tentative, nbr, loop);
    const Vec<std::uint32_t> np = w.load(ctx.prio, nbr, loop);
    w.valu(loop, 4.0);
    for (unsigned i = 0; i < w.width(); ++i) {
      if (!loop.test(i)) continue;
      if (ncol[i] == kUncolored && ntv[i] == tv[i] &&
          priority_less(pv[i], items[i], np[i], nbr[i])) {
        win.clear(i);  // a stronger neighbour speculated the same color
      } else if (ncol[i] == tv[i]) {
        // The neighbour already owns this color. Tentative assignment
        // excluded previously-committed colors, so this only happens when
        // the neighbour committed earlier in this same phase — the benign
        // read race real GM kernels guard against with exactly this test.
        win.clear(i);
      }
    }
    for (unsigned i = 0; i < w.width(); ++i) {
      if (loop.test(i)) ++cur[i];
    }
    w.valu(loop);
    loop &= win;  // lanes that already lost exit early
    loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
  }

  if (win.any()) {
    w.store(ctx.colors, items, tv, win);
  }
  if (lose_out) {
    const Mask lost = m.andnot(win);
    if (lost.any()) {
      const Vec<std::uint32_t> rank = w.rank_within(lost);
      const std::uint32_t slot = w.atomic_add_uniform(
          lose_out->counter, 0, static_cast<std::uint32_t>(lost.count()));
      Vec<std::uint32_t> dst;
      for (unsigned i = 0; i < w.width(); ++i) {
        if (lost.test(i)) dst[i] = slot + rank[i];
      }
      w.valu(lost);
      GCG_ASSERT(slot + lost.count() <= lose_out->out.size());
      w.store(lose_out->out, dst, items, lost);
    }
  }
  return win;
}

}  // namespace

void run_speculative(DriverState& st) {
  const vid_t n = st.g.num_vertices();
  std::vector<vid_t> frontier_in(n);
  std::iota(frontier_in.begin(), frontier_in.end(), vid_t{0});
  std::vector<vid_t> frontier_out(n);
  std::vector<std::uint32_t> counter(1, 0);
  std::vector<color_t> tentative(n, kUncolored);
  std::uint32_t frontier_size = n;
  ForbiddenScratch scratch(st.g.max_degree());

  for (unsigned iter = 0; frontier_size > 0; ++iter) {
    GCG_ASSERT(iter < st.opts.max_iterations);
    ColorCtx ctx = st.ctx();
    const std::span<const vid_t> fin(frontier_in.data(), frontier_size);

    st.dev.launch_waves(frontier_size, st.opts.group_size, [&](Wave& w) {
      const Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      spec_assign_tpv(w, m, items, ctx, tentative, scratch);
    });

    counter[0] = 0;
    FrontierAppender app{frontier_out, counter};
    std::uint64_t committed = 0;
    st.dev.launch_waves(frontier_size, st.opts.group_size, [&](Wave& w) {
      const Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      const Mask won = spec_resolve_tpv(w, m, items, ctx, tentative, &app);
      committed += won.count();
    });

    GCG_ASSERT(committed > 0);
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(frontier_size, committed);
    frontier_in.swap(frontier_out);
    frontier_size = counter[0];
  }
}

}  // namespace gcg::detail
