// Public entry point for GPU coloring: pick an algorithm, get a colored
// graph plus the full simulated-performance record the paper's evaluation
// is built from.
#pragma once

#include <string>
#include <vector>

#include "coloring/common.hpp"
#include "coloring/priorities.hpp"
#include "graph/csr.hpp"
#include "metrics/imbalance.hpp"
#include "sched/steal_queues.hpp"
#include "simgpu/dispatch.hpp"

namespace gcg {

enum class Algorithm {
  kBaseline,    ///< topology-driven max-min, thread-per-vertex (the paper's
                ///< baseline GPU implementation)
  kJpl,         ///< Jones–Plassmann–Luby, max only (comparison approach)
  kSpeculative, ///< speculative greedy + conflict resolution (comparison)
  kEdgeParallel,///< thread-per-arc max-min: divergence-free by construction,
                ///< pays |arcs| lane-visits and hub atomic contention instead
  kWorklist,    ///< data-driven max-min: frontier of uncolored vertices
  kPersistentStatic,  ///< frontier statically partitioned over persistent
                      ///< waves, no rebalancing (the stealing comparator)
  kSteal,       ///< worklist + persistent waves + work stealing
  kHybrid,      ///< degree-binned: thread-/wave-/workgroup-per-vertex
  kHybridSteal, ///< hybrid with stealing in the thread-per-vertex bin
};

const char* algorithm_name(Algorithm a);
Algorithm algorithm_from_name(const std::string& name);
std::vector<Algorithm> all_algorithms();

struct ColoringOptions {
  PriorityMode priority = PriorityMode::kRandom;
  std::uint64_t seed = 1;
  unsigned group_size = 256;      ///< workgroup size for NDRange kernels
  unsigned max_iterations = 1u << 20;  ///< safety cap

  // Work stealing (kSteal, kHybridSteal). One work queue per CU, shared
  // by that CU's resident waves (the classic persistent-kernel layout).
  // Small chunks split hub vertices across steps and balance better; the
  // lane slots a partial wave leaves idle are cheap for latency-bound
  // kernels (see bench_fig6_chunk for the sweep).
  std::uint32_t chunk_size = 16;  ///< frontier items per task
  VictimPolicy victim = VictimPolicy::kRandom;
  /// Persistent waves resident per CU; 0 = fill the device (the usual
  /// persistent-kernel launch: one workgroup set at max occupancy).
  unsigned waves_per_cu = 0;

  // Hybrid degree binning.
  vid_t wave_degree_threshold = 32;    ///< degree >  this -> wave-per-vertex
  vid_t group_degree_threshold = 1024; ///< degree >  this -> group-per-vertex
  /// kHybridSteal only: set false to run the small bin on persistent waves
  /// *without* stealing (the ablation separating persistent execution from
  /// the stealing itself).
  bool hybrid_small_bin_steal = true;

  bool collect_launches = true;   ///< keep per-launch results (for metrics)
};

struct ColoringRun {
  Algorithm algorithm = Algorithm::kBaseline;
  std::vector<color_t> colors;
  int num_colors = 0;
  unsigned iterations = 0;
  double total_cycles = 0.0;      ///< device-timeline total (all launches)
  double total_ms = 0.0;          ///< at the device's model clock
  std::vector<simgpu::LaunchResult> launches;  ///< when collect_launches
  std::vector<ActivityPoint> activity;         ///< one per iteration
  StealStats steal;               ///< zero unless a stealing variant ran
};

/// Colors `g` on the simulated device. Deterministic for fixed options.
ColoringRun run_coloring(const simgpu::DeviceConfig& cfg, const Csr& g,
                         Algorithm algorithm, const ColoringOptions& opts = {});

}  // namespace gcg
