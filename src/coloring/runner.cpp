#include "coloring/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"

namespace gcg {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kBaseline: return "baseline";
    case Algorithm::kJpl: return "jpl";
    case Algorithm::kSpeculative: return "speculative";
    case Algorithm::kEdgeParallel: return "edge";
    case Algorithm::kWorklist: return "worklist";
    case Algorithm::kPersistentStatic: return "persist-static";
    case Algorithm::kSteal: return "steal";
    case Algorithm::kHybrid: return "hybrid";
    case Algorithm::kHybridSteal: return "hybrid+steal";
  }
  return "?";
}

Algorithm algorithm_from_name(const std::string& name) {
  for (Algorithm a : all_algorithms()) {
    if (name == algorithm_name(a)) return a;
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kBaseline,         Algorithm::kJpl,
          Algorithm::kSpeculative,      Algorithm::kEdgeParallel,
          Algorithm::kWorklist,         Algorithm::kPersistentStatic,
          Algorithm::kSteal,            Algorithm::kHybrid,
          Algorithm::kHybridSteal};
}

namespace detail {

DriverState::DriverState(const simgpu::DeviceConfig& cfg, const Csr& graph,
                         const ColoringOptions& options, Algorithm algorithm)
    : g(graph),
      opts(options),
      dev(cfg),
      prio(make_priorities(graph, options.priority, options.seed)),
      colors(graph.num_vertices(), kUncolored),
      flags(graph.num_vertices(), kFlagNone) {
  run.algorithm = algorithm;
}

unsigned DriverState::persistent_waves_per_cu() const {
  const unsigned device_max = dev.config().max_waves_per_cu;
  return opts.waves_per_cu == 0 ? device_max
                                : std::min(opts.waves_per_cu, device_max);
}

void DriverState::note_iteration(std::uint64_t active_vertices,
                                 std::uint64_t colored_this_iter) {
  ActivityPoint pt;
  pt.iteration = static_cast<unsigned>(run.activity.size());
  pt.active_vertices = active_vertices;
  pt.colored_this_iter = colored_this_iter;
  pt.cycles = 0.0;

  double lane_ops = 0.0, issued = 0.0, imb_weight = 0.0, imb_sum = 0.0;
  const auto& hist = dev.history();
  for (std::size_t i = launches_seen; i < hist.size(); ++i) {
    const auto& l = hist[i];
    pt.cycles += l.kernel_cycles;
    lane_ops += l.total.valu_lane_ops;
    issued += l.total.valu_instructions * dev.config().wavefront_size;
    imb_sum += l.cu_imbalance() * l.kernel_cycles;
    imb_weight += l.kernel_cycles;
    if (opts.collect_launches) run.launches.push_back(l);
  }
  launches_seen = hist.size();
  pt.simd_efficiency = issued > 0 ? lane_ops / issued : 1.0;
  pt.cu_imbalance = imb_weight > 0 ? imb_sum / imb_weight : 1.0;
  run.activity.push_back(pt);
}

ColoringRun DriverState::finish() {
  run.colors = std::move(colors);
  run.num_colors = count_colors(run.colors);
  run.iterations = static_cast<unsigned>(run.activity.size());
  run.total_cycles = dev.total_cycles();
  run.total_ms = dev.total_ms();
  return std::move(run);
}

}  // namespace detail

ColoringRun run_coloring(const simgpu::DeviceConfig& cfg, const Csr& g,
                         Algorithm algorithm, const ColoringOptions& opts) {
  // Clamp the requested workgroup size to what the device supports (real
  // host code queries CL_DEVICE_MAX_WORK_GROUP_SIZE and does the same).
  ColoringOptions eff = opts;
  eff.group_size = std::min(eff.group_size, cfg.max_group_size);
  GCG_EXPECT(eff.group_size >= cfg.wavefront_size);
  detail::DriverState st(cfg, g, eff, algorithm);
  switch (algorithm) {
    case Algorithm::kBaseline:
      detail::run_topology(st, /*min_too=*/true);
      break;
    case Algorithm::kJpl:
      detail::run_topology(st, /*min_too=*/false);
      break;
    case Algorithm::kSpeculative:
      detail::run_speculative(st);
      break;
    case Algorithm::kEdgeParallel:
      detail::run_edge_parallel(st, /*min_too=*/true);
      break;
    case Algorithm::kWorklist:
      detail::run_worklist(st, /*min_too=*/true);
      break;
    case Algorithm::kPersistentStatic:
      detail::run_steal(st, /*min_too=*/true, /*enable_steal=*/false);
      break;
    case Algorithm::kSteal:
      detail::run_steal(st, /*min_too=*/true, /*enable_steal=*/true);
      break;
    case Algorithm::kHybrid:
      detail::run_hybrid(st, /*min_too=*/true, /*steal_small_bin=*/false);
      break;
    case Algorithm::kHybridSteal:
      detail::run_hybrid(st, /*min_too=*/true, /*steal_small_bin=*/true);
      break;
  }
  return st.finish();
}

}  // namespace gcg
