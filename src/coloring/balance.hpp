// Class-size balancing post-pass. Downstream parallel loops execute one
// color class at a time, so a coloring with one giant class and many tiny
// ones wastes parallelism at the tail. This pass moves vertices from
// overfull classes into the smallest class legal for them, preserving
// validity and never increasing the color count.
#pragma once

#include <span>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg {

struct BalanceResult {
  std::vector<color_t> colors;
  int num_colors = 0;
  std::uint32_t moved = 0;       ///< vertices that changed class
  double cv_before = 0.0;        ///< class-size coefficient of variation
  double cv_after = 0.0;
};

/// One balancing sweep. `max_rounds` sweeps run until no vertex moves.
BalanceResult balance_colors(const Csr& g, std::span<const color_t> colors,
                             int max_rounds = 8);

}  // namespace gcg
