// Topology-driven coloring: every iteration launches phase A and phase B
// over ALL vertices, colored or not — the paper's baseline. Late
// iterations scan a nearly-fully-colored graph, wasting most lanes; that
// waste is precisely what the worklist/steal/hybrid variants attack.
#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"

namespace gcg::detail {

void run_topology(DriverState& st, bool min_too) {
  const vid_t n = st.g.num_vertices();
  const color_t stride = min_too ? 2 : 1;

  for (unsigned iter = 0; st.colored_total < n; ++iter) {
    GCG_ASSERT(iter < st.opts.max_iterations);
    const std::uint64_t active = n - st.colored_total;
    ColorCtx ctx = st.ctx();

    st.dev.launch_waves(n, st.opts.group_size, [&](simgpu::Wave& w) {
      scan_flags_tpv(w, w.valid(), w.global_ids(), ctx,
                     /*check_colored=*/true, min_too);
    });

    const color_t base = static_cast<color_t>(iter) * stride;
    std::uint64_t committed = 0;
    st.dev.launch_waves(n, st.opts.group_size, [&](simgpu::Wave& w) {
      const simgpu::Mask won =
          commit_tpv(w, w.valid(), w.global_ids(), ctx, base, min_too,
                     /*check_colored=*/true, nullptr);
      committed += won.count();  // host-side statistic, not device work
    });

    GCG_ASSERT(committed > 0 && "independent-set round must make progress");
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(active, committed);
  }
}

}  // namespace gcg::detail
