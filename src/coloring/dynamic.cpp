#include "coloring/dynamic.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "util/expect.hpp"

namespace gcg {

DynamicColoring::DynamicColoring(const Csr& g, std::span<const color_t> colors)
    : colors_(colors.begin(), colors.end()) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  adj_.resize(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    adj_[v].assign(nb.begin(), nb.end());
    GCG_EXPECT(colors_[v] != kUncolored);
    num_colors_ = std::max(num_colors_, colors_[v] + 1);
    for (vid_t u : nb) GCG_EXPECT(colors[u] != colors[v]);
  }
}

color_t DynamicColoring::smallest_free_color(vid_t v) const {
  // Neighbour color set is small; collect + sort beats a bitmap here.
  std::vector<color_t> used;
  used.reserve(adj_[v].size());
  for (vid_t u : adj_[v]) used.push_back(colors_[u]);
  std::sort(used.begin(), used.end());
  color_t c = 0;
  for (color_t uc : used) {
    if (uc == c) {
      ++c;
    } else if (uc > c) {
      break;
    }
  }
  return c;
}

void DynamicColoring::add_edge(vid_t u, vid_t v) {
  GCG_EXPECT(u < num_vertices() && v < num_vertices());
  if (u == v) return;
  const auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it != adj_[u].end() && *it == v) return;  // already present

  adj_[u].insert(it, v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++stats_.edges_added;

  if (colors_[u] != colors_[v]) return;  // still proper

  ++stats_.conflicts_repaired;
  // Try to move whichever endpoint has a free color; prefer the one whose
  // new color is smaller (keeps the palette compact).
  const color_t cu = smallest_free_color(u);
  const color_t cv = smallest_free_color(v);
  // smallest_free_color never returns the current (now conflicting) color
  // because the other endpoint holds it in the neighbourhood.
  const color_t chosen = std::min(cu, cv);
  if (cu <= cv) {
    colors_[u] = cu;
  } else {
    colors_[v] = cv;
  }
  ++stats_.vertices_recolored;
  num_colors_ = std::max(num_colors_, chosen + 1);
  stats_.num_colors = num_colors_;
}

Csr DynamicColoring::snapshot() const {
  GraphBuilder b(num_vertices());
  for (vid_t v = 0; v < num_vertices(); ++v) {
    for (vid_t u : adj_[v]) {
      if (v < u) b.add_edge(v, u);
    }
  }
  return b.build();
}

}  // namespace gcg
