// Shared coloring types: the color domain, the device-side view of a CSR
// graph, and small helpers used by every algorithm.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

using color_t = std::int32_t;
inline constexpr color_t kUncolored = -1;

/// The spans a kernel receives — mirrors the OpenCL buffer arguments.
struct DeviceGraph {
  std::span<const eid_t> rows;
  std::span<const vid_t> cols;
  vid_t n = 0;

  static DeviceGraph of(const Csr& g) {
    return {g.row_offsets(), g.col_indices(), g.num_vertices()};
  }
};

/// Number of distinct colors used (ignores kUncolored entries).
int count_colors(std::span<const color_t> colors);

/// Indices of vertices still uncolored.
std::vector<vid_t> uncolored_vertices(std::span<const color_t> colors);

/// Renumber colors densely to 0..k-1 preserving relative order of first
/// appearance; returns k. Max-min coloring can leave gaps (an iteration
/// may produce a max class but an empty min class); benches report the
/// dense count.
int compact_colors(std::span<color_t> colors);

}  // namespace gcg
