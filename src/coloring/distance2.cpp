
#include "coloring/detail/driver.hpp"
#include "coloring/distance2.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"
#include <algorithm>
#include <numeric>

namespace gcg {

namespace {

/// Upper bound on colors a first-fit distance-2 coloring can use.
std::size_t d2_color_bound(const Csr& g) {
  const auto d = static_cast<std::size_t>(g.max_degree());
  return std::min<std::size_t>(g.num_vertices(), d * d + 2);
}

}  // namespace

SeqColoring greedy_color_d2(const Csr& g, GreedyOrder order,
                            std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  // Reuse the distance-1 order machinery by delegating order construction
  // to greedy_color's rules: we rebuild the visit order the same way.
  std::vector<vid_t> visit(n);
  std::iota(visit.begin(), visit.end(), vid_t{0});
  switch (order) {
    case GreedyOrder::kNatural:
      break;
    case GreedyOrder::kRandom: {
      Xoshiro256ss rng(seed);
      for (vid_t i = n; i > 1; --i) {
        const auto j = static_cast<vid_t>(rng.bounded(i));
        std::swap(visit[i - 1], visit[j]);
      }
      break;
    }
    case GreedyOrder::kLargestFirst:
      std::stable_sort(visit.begin(), visit.end(), [&](vid_t a, vid_t b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    default:
      // Degeneracy-style orders are defined on the square graph; natural
      // order is the documented fallback for them here.
      break;
  }

  SeqColoring out;
  out.colors.assign(n, kUncolored);
  std::vector<int> mark(d2_color_bound(g) + 1, -1);
  for (vid_t v : visit) {
    for (vid_t u : g.neighbors(v)) {
      if (out.colors[u] != kUncolored) {
        mark[to_unsigned(out.colors[u])] = static_cast<int>(v);
      }
      for (vid_t w : g.neighbors(u)) {
        if (w != v && out.colors[w] != kUncolored) {
          mark[to_unsigned(out.colors[w])] = static_cast<int>(v);
        }
      }
    }
    color_t c = 0;
    while (mark[to_unsigned(c)] == static_cast<int>(v)) ++c;
    out.colors[v] = c;
    out.num_colors = std::max(out.num_colors, c + 1);
  }
  return out;
}

std::optional<check::Violation> find_violation_d2(const Csr& g,
                                           std::span<const color_t> colors,
                                           bool require_complete) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (colors[v] == kUncolored) {
      if (require_complete) return check::Violation{v, v, kUncolored};
      continue;
    }
    for (vid_t u : g.neighbors(v)) {
      if (colors[u] != kUncolored && colors[u] == colors[v] && u != v) {
        return check::Violation{std::min(u, v), std::max(u, v), colors[v]};
      }
      for (vid_t w : g.neighbors(u)) {
        if (w == v) continue;
        if (colors[w] != kUncolored && colors[w] == colors[v]) {
          return check::Violation{std::min(w, v), std::max(w, v), colors[v]};
        }
      }
    }
  }
  return std::nullopt;
}

bool is_valid_coloring_d2(const Csr& g, std::span<const color_t> colors,
                          bool require_complete) {
  return !find_violation_d2(g, colors, require_complete).has_value();
}

namespace {

using simgpu::Mask;
using simgpu::Vec;
using simgpu::Wave;

struct D2Scratch {
  explicit D2Scratch(std::size_t bound)
      : words((bound + 63) / 64), bits(words * simgpu::kMaxLanes, 0) {}
  std::uint64_t* lane(unsigned i) { return bits.data() + i * words; }
  void clear_lane(unsigned i) { std::fill_n(lane(i), words, std::uint64_t{0}); }
  std::size_t words;
  std::vector<std::uint64_t> bits;
};

/// Per-lane 2-hop walk: calls fn(lane, hop_vertex) for every u in N(v) and
/// every w in N(u)\{v}; charges loads as the kernels would issue them.
/// Returns after all active lanes finish (divergence = max 2-hop size).
template <class Fn>
void walk_two_hops(Wave& w, Mask m, const Vec<std::uint32_t>& items,
                   const ColorCtx& ctx, Fn&& fn) {
  const Vec<eid_t> row_begin = w.load(ctx.g.rows, items, m);
  Vec<std::uint32_t> items1;
  for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
  w.valu(m);
  const Vec<eid_t> row_end = w.load(ctx.g.rows, items1, m);

  // Outer loop over first-hop cursor (lockstep, masked).
  Vec<eid_t> cur = row_begin;
  w.valu(m);
  Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });
  while (loop.any()) {
    const Vec<vid_t> nbr = w.load(ctx.g.cols, cur, loop);
    // First hop visit.
    for (unsigned i = 0; i < w.width(); ++i) {
      if (loop.test(i)) fn(i, nbr[i]);
    }
    w.valu(loop, 2.0);
    // Inner loop over the neighbour's list.
    Vec<std::uint32_t> nbr1;
    for (unsigned i = 0; i < w.width(); ++i) nbr1[i] = nbr[i] + 1;
    w.valu(loop);
    const Vec<eid_t> in_begin = w.load(ctx.g.rows, nbr, loop);
    const Vec<eid_t> in_end = w.load(ctx.g.rows, nbr1, loop);
    Vec<eid_t> icur = in_begin;
    w.valu(loop);
    Mask iloop =
        where2(icur, in_end, loop, [](eid_t a, eid_t b) { return a < b; });
    while (iloop.any()) {
      const Vec<vid_t> hop2 = w.load(ctx.g.cols, icur, iloop);
      w.valu(iloop, 2.0);
      for (unsigned i = 0; i < w.width(); ++i) {
        if (iloop.test(i) && hop2[i] != items[i]) fn(i, hop2[i]);
      }
      for (unsigned i = 0; i < w.width(); ++i) {
        if (iloop.test(i)) ++icur[i];
      }
      w.valu(iloop);
      iloop = where2(icur, in_end, iloop, [](eid_t a, eid_t b) { return a < b; });
    }
    for (unsigned i = 0; i < w.width(); ++i) {
      if (loop.test(i)) ++cur[i];
    }
    w.valu(loop);
    loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
  }
}

}  // namespace

ColoringRun run_coloring_d2(const simgpu::DeviceConfig& cfg, const Csr& g,
                            const ColoringOptions& opts) {
  ColoringOptions eff = opts;
  eff.group_size = std::min(eff.group_size, cfg.max_group_size);
  detail::DriverState st(cfg, g, eff, Algorithm::kSpeculative);

  const vid_t n = g.num_vertices();
  const std::size_t bound = d2_color_bound(g);
  // Scratch = 64 lanes x bound bits; refuse absurd configurations early.
  GCG_EXPECT(bound <= (std::size_t{1} << 24));
  D2Scratch scratch(bound);

  std::vector<vid_t> frontier_in(n);
  std::iota(frontier_in.begin(), frontier_in.end(), vid_t{0});
  std::vector<vid_t> frontier_out(n);
  std::vector<std::uint32_t> counter(1, 0);
  std::vector<color_t> tentative(n, kUncolored);
  std::uint32_t frontier_size = n;

  for (unsigned iter = 0; frontier_size > 0; ++iter) {
    GCG_ASSERT(iter < eff.max_iterations);
    ColorCtx ctx = st.ctx();
    const std::span<const vid_t> fin(frontier_in.data(), frontier_size);
    const std::span<const color_t> tentative_c(tentative.data(), tentative.size());

    // Phase A: speculative first-fit against committed 2-hop colors.
    st.dev.launch_waves(frontier_size, eff.group_size, [&](Wave& w) {
      const Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      if (!m.any()) return;
      for (unsigned i = 0; i < w.width(); ++i) {
        if (m.test(i)) scratch.clear_lane(i);
      }
      w.valu(m, static_cast<double>(scratch.words));
      walk_two_hops(w, m, items, ctx, [&](unsigned lane, vid_t hop) {
        const color_t c = ctx.colors[hop];
        if (c != kUncolored && static_cast<std::size_t>(c) < bound) {
          scratch.lane(lane)[c / 64] |= std::uint64_t{1} << (c % 64);
        }
      });
      // Extra gathers for the hop colors are charged inside walk (valu);
      // the color loads themselves:
      w.valu(m, static_cast<double>(scratch.words));
      Vec<color_t> tv;
      for (unsigned i = 0; i < w.width(); ++i) {
        if (!m.test(i)) continue;
        color_t c = 0;
        for (std::size_t word = 0; word < scratch.words; ++word) {
          const std::uint64_t inv = ~scratch.lane(i)[word];
          if (inv != 0) {
            c = static_cast<color_t>(
                word * 64 + static_cast<std::size_t>(std::countr_zero(inv)));
            break;
          }
        }
        tv[i] = c;
      }
      w.store(std::span<color_t>(tentative), items, tv, m);
    });

    // Phase B: conflict resolution across the 2-hop neighbourhood.
    counter[0] = 0;
    FrontierAppender app{frontier_out, counter};
    std::uint64_t committed = 0;
    st.dev.launch_waves(frontier_size, eff.group_size, [&](Wave& w) {
      const Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      if (!m.any()) return;
      const Vec<color_t> tv = w.load(tentative_c, items, m);
      const Vec<std::uint32_t> pv = w.load(ctx.prio, items, m);
      Mask win = m;
      walk_two_hops(w, m, items, ctx, [&](unsigned lane, vid_t hop) {
        if (!win.test(lane)) return;
        const color_t hop_color = ctx.colors[hop];
        if (hop_color == tv[lane]) {
          win.clear(lane);  // committed earlier (incl. this phase)
        } else if (hop_color == kUncolored && tentative[hop] == tv[lane] &&
                   priority_less(pv[lane], items[lane], ctx.prio[hop], hop)) {
          win.clear(lane);
        }
      });
      if (win.any()) w.store(ctx.colors, items, tv, win);
      const Mask lost = m.andnot(win);
      if (lost.any()) {
        const Vec<std::uint32_t> rank = w.rank_within(lost);
        const std::uint32_t slot = w.atomic_add_uniform(
            app.counter, 0, static_cast<std::uint32_t>(lost.count()));
        Vec<std::uint32_t> dst;
        for (unsigned i = 0; i < w.width(); ++i) {
          if (lost.test(i)) dst[i] = slot + rank[i];
        }
        w.valu(lost);
        w.store(app.out, dst, items, lost);
      }
      committed += win.count();
    });

    GCG_ASSERT(committed > 0);
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(frontier_size, committed);
    frontier_in.swap(frontier_out);
    frontier_size = counter[0];
  }
  return st.finish();
}

}  // namespace gcg
