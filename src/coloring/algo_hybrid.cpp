// The hybrid algorithm: vertices are binned by degree once, and each bin
// gets the execution shape that fits it —
//   small  (deg <= wave_degree_threshold):  thread-per-vertex (optionally
//          with work stealing, = the paper's combined technique),
//   mid    (<= group_degree_threshold):     wavefront-per-vertex,
//   large  (above):                         workgroup-per-vertex.
// All bins share one priority/color space, so every iteration still
// extracts one max(+min) independent set of the whole uncolored subgraph.
#include <optional>

#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace gcg::detail {

namespace {

struct Bin {
  std::vector<vid_t> in;
  std::vector<vid_t> out;
  std::vector<std::uint32_t> counter = {0};
  std::uint32_t size = 0;

  std::span<const vid_t> items() const { return {in.data(), size}; }
  void flip() {
    in.swap(out);
    size = counter[0];
    counter[0] = 0;
  }
};

}  // namespace

void run_hybrid(DriverState& st, bool min_too, bool steal_small_bin) {
  const vid_t n = st.g.num_vertices();
  const simgpu::DeviceConfig& cfg = st.dev.config();
  const unsigned wf = cfg.wavefront_size;
  const unsigned gs = st.opts.group_size;

  Bin small, mid, large;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t d = st.g.degree(v);
    Bin& b = d <= st.opts.wave_degree_threshold  ? small
             : d <= st.opts.group_degree_threshold ? mid
                                                   : large;
    b.in.push_back(v);
  }
  for (Bin* b : {&small, &mid, &large}) {
    b->size = static_cast<std::uint32_t>(b->in.size());
    b->out.resize(b->in.size());
    b->in.resize(b->out.size());
  }

  simgpu::PersistentOptions popts;
  popts.waves_per_cu = st.persistent_waves_per_cu();
  popts.cache = st.dev.l2();
  // One queue per CU, shared by its resident waves (see algo_steal.cpp).
  const auto queue_of = [&](unsigned worker) {
    return worker / popts.waves_per_cu;
  };

  for (unsigned iter = 0; st.colored_total < n; ++iter) {
    GCG_ASSERT(iter < st.opts.max_iterations);
    ColorCtx ctx = st.ctx();
    const std::uint64_t active = small.size + mid.size + large.size;

    // ---- phase A, small bin: thread-per-vertex ------------------------
    if (small.size > 0) {
      const auto fin = small.items();
      if (steal_small_bin) {
        StealQueues queues(cfg.num_cus);
        const auto chunks = make_chunks(small.size, st.opts.chunk_size);
        popts.busy_waves_hint = chunks.size();
        queues.fill(deal_blocked(chunks, cfg.num_cus));
        Xoshiro256ss rng(st.opts.seed ^ (0x9e3779b9ULL * (iter + 1)));
        const bool may_steal = st.opts.hybrid_small_bin_steal;
        const auto pres = simgpu::run_persistent(
            cfg, popts,
            [&](unsigned worker, simgpu::Wave& w) -> simgpu::StepStatus {
              std::optional<Chunk> c = queues.pop_own(w, queue_of(worker));
              if (!c) {
                if (!may_steal) return simgpu::StepStatus::kDone;
                if (queues.total_remaining() == 0) {
                  return simgpu::StepStatus::kDone;
                }
                c = queues.steal(w, queue_of(worker), st.opts.victim, rng);
                if (!c) return simgpu::StepStatus::kIdle;
              }
              for (std::uint32_t off = c->begin; off < c->end; off += w.width()) {
                simgpu::Mask m = simgpu::Mask::none();
                simgpu::Vec<std::uint32_t> fidx;
                for (unsigned i = 0; i < w.width(); ++i) {
                  fidx[i] = off + i;
                  if (fidx[i] < c->end) m.set(i);
                }
                w.valu(m);
                const auto items = w.load(fin, fidx, m);
                scan_flags_tpv(w, m, items, ctx, false, min_too);
              }
              return simgpu::StepStatus::kWorked;
            });
        st.dev.record_launch(
            simgpu::to_launch_record(cfg, pres, popts.waves_per_cu));
        st.run.steal += queues.stats();
      } else {
        st.dev.launch_waves(small.size, gs, [&](simgpu::Wave& w) {
          const simgpu::Mask m = w.valid();
          const auto items = w.load(fin, w.global_ids(), m);
          scan_flags_tpv(w, m, items, ctx, false, min_too);
        });
      }
    }

    // ---- phase A, mid bin: wavefront-per-vertex ------------------------
    if (mid.size > 0) {
      const auto fin = mid.items();
      st.dev.launch_waves(static_cast<std::uint64_t>(mid.size) * wf, gs,
                          [&](simgpu::Wave& w) {
                            const auto idx = w.first_global_id() / wf;
                            if (idx >= mid.size) return;
                            const vid_t v = w.load_uniform(fin, idx);
                            scan_flags_wpv(w, v, ctx, min_too);
                          });
    }

    // ---- phase A, large bin: workgroup-per-vertex ----------------------
    if (large.size > 0) {
      const auto fin = large.items();
      st.dev.launch(static_cast<std::uint64_t>(large.size) * gs, gs,
                    [&](simgpu::Group& grp) {
                      const auto idx = grp.group_id();
                      if (idx >= large.size) return;
                      const vid_t v = grp.waves().front().load_uniform(fin, idx);
                      scan_flags_gpv(grp, v, ctx, min_too);
                    });
    }

    // ---- phase B: commit winners per bin, rebuild bin frontiers --------
    const color_t base = static_cast<color_t>(iter) * (min_too ? 2 : 1);
    std::uint64_t committed = 0;
    for (Bin* b : {&small, &mid, &large}) {
      if (b->size == 0) continue;
      const auto fin = b->items();
      FrontierAppender app{b->out, b->counter};
      st.dev.launch_waves(b->size, gs, [&](simgpu::Wave& w) {
        const simgpu::Mask m = w.valid();
        const auto items = w.load(fin, w.global_ids(), m);
        const simgpu::Mask won =
            commit_tpv(w, m, items, ctx, base, min_too, false, &app);
        committed += won.count();
      });
    }
    for (Bin* b : {&small, &mid, &large}) b->flip();

    GCG_ASSERT(committed > 0);
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(active, committed);
  }
}

}  // namespace gcg::detail
