#include "coloring/priorities.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace gcg {

const char* priority_mode_name(PriorityMode m) {
  switch (m) {
    case PriorityMode::kRandom: return "random";
    case PriorityMode::kDegreeBiased: return "degree-biased";
    case PriorityMode::kNaturalOrder: return "natural";
  }
  return "?";
}

PriorityMode priority_mode_from_name(const std::string& name) {
  for (PriorityMode m : {PriorityMode::kRandom, PriorityMode::kDegreeBiased,
                         PriorityMode::kNaturalOrder}) {
    if (name == priority_mode_name(m)) return m;
  }
  throw std::invalid_argument("unknown priority mode: " + name +
                              " (random|degree-biased|natural)");
}

std::vector<std::uint32_t> make_priorities(const Csr& g, PriorityMode mode,
                                           std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  std::vector<std::uint32_t> prio(n);
  const CounterHash hash(seed);
  switch (mode) {
    case PriorityMode::kRandom:
      for (vid_t v = 0; v < n; ++v) prio[v] = hash.u32(v);
      break;
    case PriorityMode::kDegreeBiased:
      // Degree in the top bits, hash noise below: hubs become local maxima
      // early, mimicking largest-degree-first.
      for (vid_t v = 0; v < n; ++v) {
        const std::uint32_t d = std::min<vid_t>(g.degree(v), 0xFFFu);
        prio[v] = (d << 20) | (hash.u32(v) & 0xFFFFFu);
      }
      break;
    case PriorityMode::kNaturalOrder:
      for (vid_t v = 0; v < n; ++v) {
        prio[v] = std::numeric_limits<std::uint32_t>::max() - v;
      }
      break;
  }
  return prio;
}

}  // namespace gcg
