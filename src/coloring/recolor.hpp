// Color-count reduction post-pass (Culberson's iterated greedy): re-run
// greedy with vertices grouped by their current color class — the result
// never uses more colors and often uses fewer. The standard cleanup for
// independent-set colorings, whose color counts run well above greedy's.
#pragma once

#include <span>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg {

enum class ClassOrder {
  kLargestFirst,   ///< biggest color classes first (usually best)
  kSmallestFirst,
  kReverse,        ///< classes in reverse color order (Culberson's classic)
};

struct RecolorResult {
  std::vector<color_t> colors;
  int num_colors = 0;
  int passes = 0;  ///< greedy passes actually executed
};

/// One iterated-greedy pass: recolors by visiting whole color classes in
/// the given order. Guarantees num_colors <= input colors.
RecolorResult recolor_pass(const Csr& g, std::span<const color_t> colors,
                           ClassOrder order = ClassOrder::kLargestFirst);

/// Repeat passes (cycling class orders) until no improvement for
/// `patience` consecutive passes or `max_passes` reached.
RecolorResult reduce_colors(const Csr& g, std::span<const color_t> colors,
                            int max_passes = 16, int patience = 3);

}  // namespace gcg
