// SIMT kernel bodies shared by the coloring algorithms. Each function is
// the body of (part of) an OpenCL kernel from the paper, written against
// the simulator's Wave/Group API so divergence and coalescing are measured.
//
// All algorithms follow the two-phase independent-set pattern:
//   phase A (scan):   for each candidate vertex, decide whether it is a
//                     local max (and, for max-min, local min) among its
//                     *uncolored* neighbours by (priority, id) order.
//   phase B (commit): winners take this iteration's color(s); losers are
//                     optionally appended to the next frontier.
// Phase A never writes colors and phase B never reads neighbours, so the
// result is independent of wave execution order (race-free by design).
#pragma once

#include <cstdint>
#include <span>

#include "coloring/common.hpp"
#include "coloring/priorities.hpp"
#include "simgpu/group.hpp"
#include "simgpu/wave.hpp"

namespace gcg {

inline constexpr std::uint8_t kFlagNone = 0;
inline constexpr std::uint8_t kFlagMax = 1;
inline constexpr std::uint8_t kFlagMin = 2;

/// Device buffers every coloring kernel sees.
struct ColorCtx {
  DeviceGraph g;
  std::span<const std::uint32_t> prio;
  std::span<color_t> colors;
  std::span<std::uint8_t> flags;

  std::span<const color_t> colors_const() const {
    return {colors.data(), colors.size()};
  }
  std::span<const std::uint8_t> flags_const() const {
    return {flags.data(), flags.size()};
  }
};

/// Scatter-append target for frontier rebuilds (wave-aggregated atomics).
struct FrontierAppender {
  std::span<vid_t> out;
  std::span<std::uint32_t> counter;  ///< single element
};

/// Thread-per-vertex phase A over the lane-held vertex ids `items`.
/// `check_colored` filters already-colored lanes (topology-driven kernels
/// pass true; frontier-driven kernels carry only uncolored vertices).
/// `min_too` selects max-min (Che) vs plain JPL (max only).
void scan_flags_tpv(simgpu::Wave& w, simgpu::Mask m,
                    const simgpu::Vec<std::uint32_t>& items,
                    const ColorCtx& ctx, bool check_colored, bool min_too);

/// Wave-per-vertex phase A: all lanes cooperate on one vertex's adjacency
/// list (coalesced, divergence-free — the hybrid algorithm's mid bin).
void scan_flags_wpv(simgpu::Wave& w, vid_t v, const ColorCtx& ctx, bool min_too);

/// Workgroup-per-vertex phase A: all waves of the group stride the list,
/// partial verdicts combined through LDS (the hybrid's huge-degree bin).
void scan_flags_gpv(simgpu::Group& grp, vid_t v, const ColorCtx& ctx, bool min_too);

/// Phase B: commit flagged winners with colors `base` (max) / `base+1`
/// (min, when min_too). Losers are appended through `lose_out` if given.
/// Returns the mask of lanes that took a color.
simgpu::Mask commit_tpv(simgpu::Wave& w, simgpu::Mask m,
                        const simgpu::Vec<std::uint32_t>& items,
                        const ColorCtx& ctx, color_t base, bool min_too,
                        bool check_colored, FrontierAppender* lose_out);

}  // namespace gcg
