// Maximal independent set (Luby's algorithm) — the primitive one iteration
// of JPL coloring extracts, exposed as a standalone API. Many downstream
// graph applications (the paper's motivation) only need one independent
// set, not a full coloring.
#pragma once

#include <cstdint>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/csr.hpp"

namespace gcg {

struct MisResult {
  std::vector<std::uint8_t> in_set;  ///< 1 if the vertex is in the MIS
  vid_t set_size = 0;
  unsigned rounds = 0;               ///< Luby rounds until fixpoint
  double total_cycles = 0.0;
};

/// GPU Luby MIS on the simulated device: each round, undecided local
/// priority-maxima join the set and knock out their neighbours.
MisResult luby_mis(const simgpu::DeviceConfig& cfg, const Csr& g,
                   const ColoringOptions& opts = {});

/// Host reference: sequential greedy MIS over a vertex order (for tests
/// and quality comparison).
MisResult greedy_mis(const Csr& g);

/// True iff in_set marks an independent set that is maximal.
bool is_maximal_independent_set(const Csr& g,
                                std::span<const std::uint8_t> in_set);

}  // namespace gcg
