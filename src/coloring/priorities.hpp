// Per-vertex priorities for independent-set selection. The baseline uses a
// hash of the vertex id (what the paper's kernels do); the degree-biased
// mode implements the largest-degree-first heuristic, which trades a few
// extra iterations for fewer colors on skewed graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

enum class PriorityMode {
  kRandom,       ///< priority = hash(seed, v)
  kDegreeBiased, ///< high degree wins ties toward earlier coloring
  kNaturalOrder, ///< lower vertex id = higher priority. Jones–Plassmann
                 ///< selection under this order reproduces sequential
                 ///< first-fit greedy in natural order exactly (any
                 ///< schedule/thread count), at the cost of longer
                 ///< dependency chains than random priorities.
};

const char* priority_mode_name(PriorityMode m);
/// Inverse of priority_mode_name; throws std::invalid_argument on unknown.
PriorityMode priority_mode_from_name(const std::string& name);

std::vector<std::uint32_t> make_priorities(const Csr& g, PriorityMode mode,
                                           std::uint64_t seed);

/// Strict total order used everywhere ties must break deterministically:
/// (priority, vertex id) lexicographic.
inline bool priority_less(std::uint32_t pa, vid_t a, std::uint32_t pb, vid_t b) {
  return pa < pb || (pa == pb && a < b);
}

}  // namespace gcg
