
#include "coloring/balance.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/stats.hpp"
#include <algorithm>

namespace gcg {

namespace {
double class_cv(const std::vector<std::uint32_t>& sizes) {
  RunningStats rs;
  for (auto s : sizes) rs.add(s);
  return rs.cv();
}
}  // namespace

BalanceResult balance_colors(const Csr& g, std::span<const color_t> colors,
                             int max_rounds) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  GCG_EXPECT(max_rounds >= 1);
  BalanceResult out;
  out.colors.assign(colors.begin(), colors.end());
  out.num_colors = compact_colors(out.colors);
  if (out.num_colors == 0) return out;

  std::vector<std::uint32_t> size(to_unsigned(out.num_colors), 0);
  for (color_t c : out.colors) {
    GCG_EXPECT(c != kUncolored);
    ++size[to_unsigned(c)];
  }
  out.cv_before = class_cv(size);

  const double target =
      static_cast<double>(g.num_vertices()) / out.num_colors;
  std::vector<int> mark(to_unsigned(out.num_colors), -1);
  for (int round = 0; round < max_rounds; ++round) {
    std::uint32_t moved_this_round = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const color_t current = out.colors[v];
      if (static_cast<double>(size[to_unsigned(current)]) <= target) continue;
      // Colors forbidden by neighbours.
      for (vid_t u : g.neighbors(v)) {
        mark[to_unsigned(out.colors[u])] = static_cast<int>(v);
      }
      // Smallest legal class strictly smaller than the current one.
      color_t best = current;
      for (color_t c = 0; c < static_cast<color_t>(out.num_colors); ++c) {
        if (mark[to_unsigned(c)] == static_cast<int>(v)) continue;
        if (size[to_unsigned(c)] < size[to_unsigned(best)]) best = c;
      }
      if (best != current &&
          size[to_unsigned(best)] + 1 < size[to_unsigned(current)]) {
        --size[to_unsigned(current)];
        ++size[to_unsigned(best)];
        out.colors[v] = best;
        ++moved_this_round;
      }
    }
    out.moved += moved_this_round;
    if (moved_this_round == 0) break;
  }
  out.cv_after = class_cv(size);
  return out;
}

}  // namespace gcg
