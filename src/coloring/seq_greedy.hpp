// Sequential greedy coloring — the CPU reference for color quality and the
// host-side comparator the paper measures its GPU kernels against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg {

enum class GreedyOrder {
  kNatural,       ///< vertex id order
  kRandom,        ///< uniform random order
  kLargestFirst,  ///< Welsh–Powell: descending degree
  kSmallestLast,  ///< Matula–Beck: degeneracy order (best quality, O(n+m))
  kIncidence,     ///< max colored neighbours first (simplified IDO)
};

const char* greedy_order_name(GreedyOrder o);

struct SeqColoring {
  std::vector<color_t> colors;
  int num_colors = 0;
};

SeqColoring greedy_color(const Csr& g, GreedyOrder order = GreedyOrder::kNatural,
                         std::uint64_t seed = 1);

/// Degeneracy (max over the smallest-last order of remaining degree):
/// greedy on that order uses at most degeneracy+1 colors.
vid_t degeneracy(const Csr& g);

}  // namespace gcg
