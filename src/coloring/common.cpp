#include "coloring/common.hpp"

#include <algorithm>
#include <map>

namespace gcg {

int count_colors(std::span<const color_t> colors) {
  std::vector<color_t> seen(colors.begin(), colors.end());
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  int k = 0;
  for (color_t c : seen) {
    if (c != kUncolored) ++k;
  }
  return k;
}

std::vector<vid_t> uncolored_vertices(std::span<const color_t> colors) {
  std::vector<vid_t> out;
  for (std::size_t v = 0; v < colors.size(); ++v) {
    if (colors[v] == kUncolored) out.push_back(static_cast<vid_t>(v));
  }
  return out;
}

int compact_colors(std::span<color_t> colors) {
  std::map<color_t, color_t> remap;
  for (color_t c : colors) {
    if (c != kUncolored) remap.emplace(c, 0);
  }
  color_t next = 0;
  for (auto& [old_color, new_color] : remap) {
    (void)old_color;
    new_color = next++;
  }
  for (color_t& c : colors) {
    if (c != kUncolored) c = remap[c];
  }
  return static_cast<int>(next);
}

}  // namespace gcg
