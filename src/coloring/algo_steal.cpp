// Persistent-wave coloring, with and without work stealing. Phase A runs
// on persistent waves pulling frontier chunks from per-wave queues:
//   * enable_steal=false — classic static partitioning: each wave owns a
//     contiguous share of the frontier and retires when it drains. Waves
//     that drew hub-heavy chunks become the makespan (the imbalance the
//     paper measures).
//   * enable_steal=true  — drained waves steal chunks from laggards' queue
//     tails (the paper's first load-balancing technique).
// Phase B stays an NDRange commit (neighbour-scan-free, already balanced).
#include <numeric>
#include <optional>

#include "coloring/detail/driver.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace gcg::detail {

void run_steal(DriverState& st, bool min_too, bool enable_steal) {
  const vid_t n = st.g.num_vertices();
  const simgpu::DeviceConfig& cfg = st.dev.config();
  std::vector<vid_t> frontier_in(n);
  std::iota(frontier_in.begin(), frontier_in.end(), vid_t{0});
  std::vector<vid_t> frontier_out(n);
  std::vector<std::uint32_t> counter(1, 0);
  std::uint32_t frontier_size = n;

  simgpu::PersistentOptions popts;
  popts.waves_per_cu = st.persistent_waves_per_cu();
  popts.cache = st.dev.l2();
  const unsigned workers = cfg.num_cus * popts.waves_per_cu;
  // One queue per CU: all waves resident on a CU drain it together, and
  // stealing moves work between CUs — the imbalance that actually decides
  // the makespan. (Per-wave queues would leave ~1 chunk per queue.)
  const auto queue_of = [&](unsigned worker) {
    return worker / popts.waves_per_cu;
  };

  for (unsigned iter = 0; frontier_size > 0; ++iter) {
    GCG_ASSERT(iter < st.opts.max_iterations);
    ColorCtx ctx = st.ctx();
    const std::span<const vid_t> fin(frontier_in.data(), frontier_size);

    // --- phase A on persistent waves with stealing ----------------------
    StealQueues queues(cfg.num_cus);
    const auto chunks = make_chunks(frontier_size, st.opts.chunk_size);
    popts.busy_waves_hint = chunks.size();  // latency hiding tracks real work
    // Both modes use the same static per-CU split (contiguous blocks, the
    // classic index-range partition); the only difference is whether a
    // drained CU may steal.
    queues.fill(deal_blocked(chunks, cfg.num_cus));
    Xoshiro256ss rng(st.opts.seed ^ (0x9e3779b9ULL * (iter + 1)));

    auto process_chunk = [&](simgpu::Wave& w, Chunk c) {
      for (std::uint32_t off = c.begin; off < c.end; off += w.width()) {
        simgpu::Mask m = simgpu::Mask::none();
        simgpu::Vec<std::uint32_t> fidx;
        for (unsigned i = 0; i < w.width(); ++i) {
          fidx[i] = off + i;
          if (fidx[i] < c.end) m.set(i);
        }
        w.valu(m);  // index setup
        const auto items = w.load(fin, fidx, m);
        scan_flags_tpv(w, m, items, ctx, /*check_colored=*/false, min_too);
      }
    };

    const auto pres = simgpu::run_persistent(
        cfg, popts, [&](unsigned worker, simgpu::Wave& w) -> simgpu::StepStatus {
          std::optional<Chunk> c = queues.pop_own(w, queue_of(worker));
          if (!c) {
            if (!enable_steal) return simgpu::StepStatus::kDone;
            if (queues.total_remaining() == 0) return simgpu::StepStatus::kDone;
            c = queues.steal(w, queue_of(worker), st.opts.victim, rng);
            if (!c) return simgpu::StepStatus::kIdle;
          }
          process_chunk(w, *c);
          return simgpu::StepStatus::kWorked;
        });
    st.dev.record_launch(simgpu::to_launch_record(cfg, pres, popts.waves_per_cu));
    st.run.steal += queues.stats();

    // --- phase B: NDRange commit + frontier rebuild ----------------------
    counter[0] = 0;
    FrontierAppender app{frontier_out, counter};
    const color_t base = static_cast<color_t>(iter) * (min_too ? 2 : 1);
    std::uint64_t committed = 0;
    st.dev.launch_waves(frontier_size, st.opts.group_size, [&](simgpu::Wave& w) {
      const simgpu::Mask m = w.valid();
      const auto items = w.load(fin, w.global_ids(), m);
      const simgpu::Mask won = commit_tpv(w, m, items, ctx, base, min_too,
                                          /*check_colored=*/false, &app);
      committed += won.count();
    });

    GCG_ASSERT(committed > 0);
    st.colored_total += static_cast<vid_t>(committed);
    st.note_iteration(frontier_size, committed);
    frontier_in.swap(frontier_out);
    frontier_size = counter[0];
  }
}

}  // namespace gcg::detail
