// Internal driver plumbing shared by the algorithm implementations.
// Not part of the public API.
#pragma once

#include <vector>

#include "coloring/kernels.hpp"
#include "coloring/runner.hpp"
#include "simgpu/persistent.hpp"

namespace gcg::detail {

/// Per-run state: device buffers plus the accumulating result record.
struct DriverState {
  const Csr& g;
  const ColoringOptions& opts;
  simgpu::Device dev;
  std::vector<std::uint32_t> prio;
  std::vector<color_t> colors;
  std::vector<std::uint8_t> flags;
  ColoringRun run;
  vid_t colored_total = 0;
  std::size_t launches_seen = 0;  ///< dev.history() already folded into run

  DriverState(const simgpu::DeviceConfig& cfg, const Csr& graph,
              const ColoringOptions& options, Algorithm algorithm);

  ColorCtx ctx() {
    return ColorCtx{DeviceGraph::of(g), prio, colors, flags};
  }

  /// Close out one iteration: fold launches recorded since the last call
  /// (NDRange and persistent alike) into the run record.
  void note_iteration(std::uint64_t active_vertices,
                      std::uint64_t colored_this_iter);

  /// Resident persistent waves per CU for this run (option, clamped).
  unsigned persistent_waves_per_cu() const;

  /// Final bookkeeping; returns the completed run.
  ColoringRun finish();
};

// One driver per algorithm family.
void run_topology(DriverState& st, bool min_too);
void run_worklist(DriverState& st, bool min_too);
void run_steal(DriverState& st, bool min_too, bool enable_steal);
void run_hybrid(DriverState& st, bool min_too, bool steal_small_bin);
void run_speculative(DriverState& st);
void run_edge_parallel(DriverState& st, bool min_too);

}  // namespace gcg::detail
