// Incremental coloring maintenance for dynamic graphs (future-work
// territory for the paper): when edges arrive, repair the existing
// coloring locally instead of recoloring from scratch. Insertions only
// ever create one conflict edge at a time, so repair is a bounded local
// search; deletions never invalidate a coloring.
#pragma once

#include <utility>
#include <vector>

#include "coloring/common.hpp"
#include "graph/csr.hpp"

namespace gcg {

struct DynamicColoringStats {
  std::uint64_t edges_added = 0;
  std::uint64_t conflicts_repaired = 0;   ///< insertions that forced a change
  std::uint64_t vertices_recolored = 0;
  int num_colors = 0;
};

/// Maintains a proper coloring of a growing graph. Starts from an existing
/// graph+coloring; add_edge keeps the coloring proper at all times.
class DynamicColoring {
 public:
  /// `colors` must be a valid coloring of `g`.
  DynamicColoring(const Csr& g, std::span<const color_t> colors);

  /// Adds undirected edge (u,v) (ignored if it already exists or u==v).
  /// If colors[u]==colors[v], recolors the endpoint whose repair touches
  /// fewer colors, cascading only if no free color exists (Kempe-lite:
  /// take the smallest color unused in the neighbourhood; if both
  /// endpoints are saturated, open a fresh color).
  void add_edge(vid_t u, vid_t v);

  const std::vector<color_t>& colors() const { return colors_; }
  int num_colors() const { return num_colors_; }
  const DynamicColoringStats& stats() const { return stats_; }

  /// Materialize the current graph (adjacency built so far) as a CSR —
  /// mainly for verification in tests.
  Csr snapshot() const;

  vid_t num_vertices() const { return static_cast<vid_t>(adj_.size()); }

 private:
  color_t smallest_free_color(vid_t v) const;

  std::vector<std::vector<vid_t>> adj_;  ///< sorted adjacency sets
  std::vector<color_t> colors_;
  int num_colors_ = 0;
  DynamicColoringStats stats_;
};

}  // namespace gcg
