#include "coloring/kernels.hpp"

#include "util/expect.hpp"

namespace gcg {

using simgpu::Group;
using simgpu::Mask;
using simgpu::Vec;
using simgpu::Wave;

void scan_flags_tpv(Wave& w, Mask m, const Vec<std::uint32_t>& items,
                    const ColorCtx& ctx, bool check_colored, bool min_too) {
  if (check_colored) {
    const Vec<color_t> col = w.load(ctx.colors_const(), items, m);
    w.valu(m);  // compare against kUncolored
    m = where(col, m, [](color_t c) { return c == kUncolored; });
  }
  if (!m.any()) {
    w.salu();  // whole wave exits on the scalar branch
    return;
  }

  const Vec<std::uint32_t> pv = w.load(ctx.prio, items, m);
  const Vec<eid_t> row_begin = w.load(ctx.g.rows, items, m);
  Vec<std::uint32_t> items1;
  for (unsigned i = 0; i < w.width(); ++i) items1[i] = items[i] + 1;
  w.valu(m);
  const Vec<eid_t> row_end = w.load(ctx.g.rows, items1, m);

  Mask is_max = m;
  Mask is_min = min_too ? m : Mask::none();
  Vec<eid_t> cur = row_begin;
  w.valu(m);  // initial bounds compare
  Mask loop = where2(cur, row_end, m, [](eid_t a, eid_t b) { return a < b; });

  while (loop.any()) {
    const Vec<vid_t> nbr = w.load(ctx.g.cols, cur, loop);
    const Vec<color_t> ncol = w.load(ctx.colors_const(), nbr, loop);
    const Vec<std::uint32_t> np = w.load(ctx.prio, nbr, loop);
    w.valu(loop, 4.0);  // uncolored test + 2 ordered compares + flag update
    for (unsigned i = 0; i < w.width(); ++i) {
      if (!loop.test(i) || ncol[i] != kUncolored) continue;
      // Strict total order (priority, id): exactly one branch fires.
      if (priority_less(pv[i], items[i], np[i], nbr[i])) {
        is_max.clear(i);
      } else {
        is_min.clear(i);
      }
    }
    for (unsigned i = 0; i < w.width(); ++i) {
      if (loop.test(i)) ++cur[i];
    }
    w.valu(loop);  // cursor increment + bound check
    // A lane that can no longer win either verdict exits its loop early.
    loop &= (is_max | is_min);
    loop = where2(cur, row_end, loop, [](eid_t a, eid_t b) { return a < b; });
  }

  Vec<std::uint8_t> f{};
  for (unsigned i = 0; i < w.width(); ++i) {
    if (!m.test(i)) continue;
    f[i] = static_cast<std::uint8_t>((is_max.test(i) ? kFlagMax : kFlagNone) |
                                     (is_min.test(i) ? kFlagMin : kFlagNone));
  }
  w.valu(m);  // flag packing
  w.store(ctx.flags, items, f, m);
}

void scan_flags_wpv(Wave& w, vid_t v, const ColorCtx& ctx, bool min_too) {
  const std::uint32_t pv = w.load_uniform(ctx.prio, v);
  const eid_t row_begin = w.load_uniform(ctx.g.rows, v);
  const eid_t row_end = w.load_uniform(ctx.g.rows, static_cast<std::size_t>(v) + 1);

  bool is_max = true;
  bool is_min = min_too;
  const unsigned width = w.width();
  for (eid_t base = row_begin; base < row_end && (is_max || is_min);
       base += width) {
    Mask m = Mask::none();
    Vec<eid_t> cur;
    for (unsigned i = 0; i < width; ++i) {
      cur[i] = base + i;
      if (cur[i] < row_end) m.set(i);
    }
    w.valu(m);  // index setup
    // Consecutive edge indices: this gather coalesces near-perfectly —
    // the whole point of wave-per-vertex for hub vertices.
    const Vec<vid_t> nbr = w.load(ctx.g.cols, cur, m);
    const Vec<color_t> ncol = w.load(ctx.colors_const(), nbr, m);
    const Vec<std::uint32_t> np = w.load(ctx.prio, nbr, m);
    w.valu(m, 4.0);
    Mask beats = Mask::none();  // uncolored neighbour ranked above v
    Mask below = Mask::none();
    for (unsigned i = 0; i < width; ++i) {
      if (!m.test(i) || ncol[i] != kUncolored) continue;
      if (priority_less(pv, v, np[i], nbr[i])) {
        beats.set(i);
      } else {
        below.set(i);
      }
    }
    // Ballot across lanes is a scalar-unit op on GCN.
    w.salu(2.0);
    if (beats.any()) is_max = false;
    if (below.any()) is_min = false;
  }

  const auto f = static_cast<std::uint8_t>(
      (is_max ? kFlagMax : kFlagNone) | (is_min ? kFlagMin : kFlagNone));
  w.store_uniform(ctx.flags, v, f);
}

void scan_flags_gpv(Group& grp, vid_t v, const ColorCtx& ctx, bool min_too) {
  const auto nwaves = static_cast<unsigned>(grp.waves().size());
  // Two partial-verdict bytes per wave in LDS.
  auto partial = grp.lds_alloc<std::uint8_t>(static_cast<std::size_t>(nwaves) * 2);

  for (unsigned wi = 0; wi < nwaves; ++wi) {
    Wave& w = grp.waves()[wi];
    const std::uint32_t pv = w.load_uniform(ctx.prio, v);
    const eid_t row_begin = w.load_uniform(ctx.g.rows, v);
    const eid_t row_end =
        w.load_uniform(ctx.g.rows, static_cast<std::size_t>(v) + 1);

    bool is_max = true;
    bool is_min = min_too;
    const unsigned width = w.width();
    const eid_t stride = static_cast<eid_t>(width) * nwaves;
    for (eid_t base = row_begin + static_cast<eid_t>(wi) * width;
         base < row_end && (is_max || is_min); base += stride) {
      Mask m = Mask::none();
      Vec<eid_t> cur;
      for (unsigned i = 0; i < width; ++i) {
        cur[i] = base + i;
        if (cur[i] < row_end) m.set(i);
      }
      w.valu(m);
      const Vec<vid_t> nbr = w.load(ctx.g.cols, cur, m);
      const Vec<color_t> ncol = w.load(ctx.colors_const(), nbr, m);
      const Vec<std::uint32_t> np = w.load(ctx.prio, nbr, m);
      w.valu(m, 4.0);
      Mask beats = Mask::none();
      Mask below = Mask::none();
      for (unsigned i = 0; i < width; ++i) {
        if (!m.test(i) || ncol[i] != kUncolored) continue;
        if (priority_less(pv, v, np[i], nbr[i])) {
          beats.set(i);
        } else {
          below.set(i);
        }
      }
      w.salu(2.0);
      if (beats.any()) is_max = false;
      if (below.any()) is_min = false;
    }
    partial[wi * 2] = is_max ? 1 : 0;
    partial[wi * 2 + 1] = is_min ? 1 : 0;
    w.valu(Mask::lane(0), 1.0);  // LDS write by lane 0
  }

  grp.barrier();

  // Wave 0 combines partial verdicts and publishes the flag.
  Wave& w0 = grp.waves().front();
  bool is_max = true, is_min = min_too;
  for (unsigned wi = 0; wi < nwaves; ++wi) {
    is_max &= partial[wi * 2] != 0;
    is_min &= partial[wi * 2 + 1] != 0;
  }
  w0.salu(nwaves);  // LDS reduction
  const auto f = static_cast<std::uint8_t>(
      (is_max ? kFlagMax : kFlagNone) | (is_min ? kFlagMin : kFlagNone));
  w0.store_uniform(ctx.flags, v, f);
}

Mask commit_tpv(Wave& w, Mask m, const Vec<std::uint32_t>& items,
                const ColorCtx& ctx, color_t base, bool min_too,
                bool check_colored, FrontierAppender* lose_out) {
  if (check_colored) {
    const Vec<color_t> col = w.load(ctx.colors_const(), items, m);
    w.valu(m);
    m = where(col, m, [](color_t c) { return c == kUncolored; });
  }
  if (!m.any()) {
    w.salu();
    return Mask::none();
  }

  const Vec<std::uint8_t> f = w.load(ctx.flags_const(), items, m);
  w.valu(m, 2.0);  // flag tests
  Mask win_max = Mask::none();
  Mask win_min = Mask::none();
  for (unsigned i = 0; i < w.width(); ++i) {
    if (!m.test(i)) continue;
    if (f[i] & kFlagMax) {
      win_max.set(i);  // a vertex isolated in the uncolored subgraph has
                       // both flags; the max color wins
    } else if (min_too && (f[i] & kFlagMin)) {
      win_min.set(i);
    }
  }

  if (win_max.any()) {
    w.store(ctx.colors, items, Vec<color_t>::splat(base), win_max);
  }
  if (win_min.any()) {
    w.store(ctx.colors, items, Vec<color_t>::splat(base + 1), win_min);
  }

  const Mask won = win_max | win_min;
  if (lose_out) {
    const Mask lost = m.andnot(won);
    if (lost.any()) {
      // Wave-aggregated append: one atomic reserves slots for all losers.
      const Vec<std::uint32_t> rank = w.rank_within(lost);
      const std::uint32_t slot = w.atomic_add_uniform(
          lose_out->counter, 0, static_cast<std::uint32_t>(lost.count()));
      Vec<std::uint32_t> dst;
      for (unsigned i = 0; i < w.width(); ++i) {
        if (lost.test(i)) dst[i] = slot + rank[i];
      }
      w.valu(lost);
      GCG_ASSERT(slot + lost.count() <= lose_out->out.size());
      w.store(lose_out->out, dst, items, lost);
    }
  }
  return won;
}

}  // namespace gcg
