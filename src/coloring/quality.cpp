
#include "coloring/quality.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/stats.hpp"
#include <algorithm>

namespace gcg {

QualityReport analyze_quality(const Csr& g, std::span<const color_t> colors) {
  GCG_EXPECT(colors.size() == g.num_vertices());
  QualityReport rep;
  std::vector<color_t> dense(colors.begin(), colors.end());
  rep.num_colors = compact_colors(dense);
  rep.class_sizes.assign(to_unsigned(rep.num_colors), 0);
  for (color_t c : dense) {
    if (c != kUncolored) ++rep.class_sizes[to_unsigned(c)];
  }
  RunningStats rs;
  std::uint32_t largest = 0;
  for (std::uint32_t s : rep.class_sizes) {
    rs.add(s);
    largest = std::max(largest, s);
  }
  const auto n = static_cast<double>(g.num_vertices());
  if (n > 0 && rep.num_colors > 0) {
    rep.largest_class_fraction = largest / n;
    rep.class_size_cv = rs.cv();
    rep.mean_parallelism = n / rep.num_colors;
  }
  return rep;
}

}  // namespace gcg
