// Contiguous vertex-range partitioner for sharded coloring: split [0, n)
// into S ranges of approximately equal *work* (cumulative degree plus a
// per-vertex constant), not equal vertex count. Uses the same
// prefix-sum-and-binary-search machinery as ThreadPool::parallel_for_edges
// — the CSR row-offset array IS the degree prefix — so a hub-heavy rmat
// graph gets narrow shards around its hubs and wide shards over its
// low-degree tail. The split is deterministic: same graph + shard count
// always yields the same bounds, which sharded runs rely on for
// bit-stable results.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/narrow.hpp"

namespace gcg {

/// A contiguous partition of the vertex space: shard s owns the
/// half-open vertex range [bounds[s], bounds[s+1]).
struct Partition {
  std::vector<vid_t> bounds;  ///< size num_shards()+1; bounds[0] == 0

  unsigned num_shards() const {
    return bounds.empty() ? 0 : narrow<unsigned>(bounds.size() - 1);
  }
  vid_t begin(unsigned shard) const { return bounds[shard]; }
  vid_t end(unsigned shard) const { return bounds[shard + 1]; }
  vid_t size(unsigned shard) const {
    return bounds[shard + 1] - bounds[shard];
  }
  /// Owning shard of vertex v (bounds are sorted; binary search).
  unsigned shard_of(vid_t v) const;
};

/// Cuts [0, n) into `shards` contiguous ranges at edge-balanced split
/// points: the weight of vertex v is degree(v) + 1 (the +1 keeps
/// vertex-count balance on sparse/empty stretches), and split s lands on
/// the smallest vertex whose cumulative weight reaches s/shards of the
/// total. Every shard's weight is within one vertex weight of the ideal
/// share, so no shard can exceed total/shards + (max_degree + 1).
/// `shards` is clamped to [1, max(1, n)].
Partition partition_edge_balanced(const Csr& g, unsigned shards);

/// Offsets-based entry point: `row_offsets` is a CSR row-offset prefix
/// (size n+1, row_offsets[0] == 0, monotone). All cumulative-weight
/// arithmetic is 64-bit by construction — row_offsets is eid_t — so
/// degree sums past UINT32_MAX split correctly; the 32/64 seam tests in
/// tests/graph/test_partition.cpp fabricate such prefixes directly
/// rather than materialising multi-gigabyte graphs.
Partition partition_edge_balanced(std::span<const eid_t> row_offsets,
                                  unsigned shards);

/// Cross-shard structure of a partition — what the conflict-resolution
/// cost of a sharded coloring depends on.
struct PartitionReport {
  eid_t cut_arcs = 0;           ///< arcs (u,v) with shard(u) != shard(v)
  vid_t boundary_vertices = 0;  ///< vertices with >= 1 cross-shard arc
  double boundary_fraction = 0.0;  ///< boundary_vertices / n
  eid_t max_shard_arcs = 0;     ///< heaviest shard, in arcs
  eid_t min_shard_arcs = 0;
  /// max over shards of (degree + 1 weight) / ideal share; 1.0 = perfect.
  double weight_imbalance = 1.0;
};

PartitionReport analyze_partition(const Csr& g, const Partition& p);

}  // namespace gcg
