#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

Csr::Csr(std::vector<eid_t> row_offsets, std::vector<vid_t> col_indices)
    : rows_store_(std::move(row_offsets)), cols_store_(std::move(col_indices)) {
  if (rows_store_.empty()) {
    throw std::invalid_argument("csr: empty row offsets");
  }
  n_ = narrow<vid_t>(rows_store_.size() - 1);
  rebind_owned();
  validate();
}

Csr Csr::view(std::span<const eid_t> row_offsets,
              std::span<const vid_t> col_indices,
              std::shared_ptr<const void> keepalive) {
  if (row_offsets.empty()) {
    throw std::invalid_argument("csr view: empty row offsets");
  }
  if (row_offsets.front() != 0) {
    throw std::invalid_argument("csr view: rows[0] != 0");
  }
  if (row_offsets.back() != col_indices.size()) {
    throw std::invalid_argument("csr view: rows[n] != |cols|");
  }
  Csr g;
  g.n_ = narrow<vid_t>(row_offsets.size() - 1);
  g.view_ = true;
  g.rows_ = row_offsets;
  g.cols_ = col_indices;
  g.keepalive_ = std::move(keepalive);
  return g;
}

Csr::Csr(const Csr& other)
    : n_(other.n_),
      view_(other.view_),
      rows_store_(other.rows_store_),
      cols_store_(other.cols_store_),
      keepalive_(other.keepalive_) {
  if (view_) {
    rows_ = other.rows_;  // same borrowed memory, same anchor
    cols_ = other.cols_;
  } else {
    rebind_owned();
  }
}

Csr& Csr::operator=(const Csr& other) {
  if (this != &other) {
    Csr tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

Csr::Csr(Csr&& other) noexcept
    : n_(other.n_),
      view_(other.view_),
      rows_store_(std::move(other.rows_store_)),
      cols_store_(std::move(other.cols_store_)),
      keepalive_(std::move(other.keepalive_)) {
  if (view_) {
    rows_ = other.rows_;
    cols_ = other.cols_;
  } else {
    // vector move transfers the allocation, so rebinding lands on the
    // same bytes the source's spans pointed at.
    rebind_owned();
  }
  other.n_ = 0;
  other.view_ = false;
  other.rows_ = {};
  other.cols_ = {};
}

Csr& Csr::operator=(Csr&& other) noexcept {
  if (this != &other) {
    n_ = other.n_;
    view_ = other.view_;
    rows_store_ = std::move(other.rows_store_);
    cols_store_ = std::move(other.cols_store_);
    keepalive_ = std::move(other.keepalive_);
    if (view_) {
      rows_ = other.rows_;
      cols_ = other.cols_;
    } else {
      rebind_owned();
    }
    other.n_ = 0;
    other.view_ = false;
    other.rows_ = {};
    other.cols_ = {};
  }
  return *this;
}

void Csr::rebind_owned() {
  rows_ = rows_store_;
  cols_ = cols_store_;
}

vid_t Csr::max_degree() const {
  vid_t d = 0;
  for (vid_t v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

double Csr::avg_degree() const {
  return n_ ? static_cast<double>(num_arcs()) / static_cast<double>(n_) : 0.0;
}

bool Csr::is_symmetric() const {
  for (vid_t u = 0; u < n_; ++u) {
    for (vid_t v : neighbors(u)) {
      const auto nb = neighbors(v);
      if (!std::binary_search(nb.begin(), nb.end(), u)) return false;
    }
  }
  return true;
}

bool Csr::has_no_self_loops() const {
  for (vid_t u = 0; u < n_; ++u) {
    for (vid_t v : neighbors(u)) {
      if (v == u) return false;
    }
  }
  return true;
}

bool Csr::is_sorted_unique() const {
  for (vid_t u = 0; u < n_; ++u) {
    const auto nb = neighbors(u);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      if (nb[i] <= nb[i - 1]) return false;
    }
  }
  return true;
}

void Csr::validate() const {
  if (rows_.empty()) throw std::invalid_argument("csr: empty row offsets");
  if (rows_.front() != 0) throw std::invalid_argument("csr: rows[0] != 0");
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i] < rows_[i - 1]) {
      throw std::invalid_argument("csr: row offsets not monotone");
    }
  }
  if (rows_.back() != cols_.size()) {
    throw std::invalid_argument("csr: rows[n] != |cols|");
  }
  for (vid_t c : cols_) {
    if (c >= n_) throw std::invalid_argument("csr: column index out of range");
  }
}

}  // namespace gcg
