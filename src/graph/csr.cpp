#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/expect.hpp"

namespace gcg {

Csr::Csr(std::vector<eid_t> row_offsets, std::vector<vid_t> col_indices)
    : rows_(std::move(row_offsets)), cols_(std::move(col_indices)) {
  if (rows_.empty()) throw std::invalid_argument("csr: empty row offsets");
  n_ = static_cast<vid_t>(rows_.size() - 1);
  validate();
}

vid_t Csr::max_degree() const {
  vid_t d = 0;
  for (vid_t v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

double Csr::avg_degree() const {
  return n_ ? static_cast<double>(num_arcs()) / static_cast<double>(n_) : 0.0;
}

bool Csr::is_symmetric() const {
  for (vid_t u = 0; u < n_; ++u) {
    for (vid_t v : neighbors(u)) {
      const auto nb = neighbors(v);
      if (!std::binary_search(nb.begin(), nb.end(), u)) return false;
    }
  }
  return true;
}

bool Csr::has_no_self_loops() const {
  for (vid_t u = 0; u < n_; ++u) {
    for (vid_t v : neighbors(u)) {
      if (v == u) return false;
    }
  }
  return true;
}

bool Csr::is_sorted_unique() const {
  for (vid_t u = 0; u < n_; ++u) {
    const auto nb = neighbors(u);
    for (std::size_t i = 1; i < nb.size(); ++i) {
      if (nb[i] <= nb[i - 1]) return false;
    }
  }
  return true;
}

void Csr::validate() const {
  if (rows_.empty()) throw std::invalid_argument("csr: empty row offsets");
  if (rows_.front() != 0) throw std::invalid_argument("csr: rows[0] != 0");
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    if (rows_[i] < rows_[i - 1]) {
      throw std::invalid_argument("csr: row offsets not monotone");
    }
  }
  if (rows_.back() != cols_.size()) {
    throw std::invalid_argument("csr: rows[n] != |cols|");
  }
  for (vid_t c : cols_) {
    if (c >= n_) throw std::invalid_argument("csr: column index out of range");
  }
}

}  // namespace gcg
