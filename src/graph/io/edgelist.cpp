#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io/io.hpp"
#include "util/narrow.hpp"

namespace gcg {

Csr load_edge_list(std::istream& in, vid_t min_vertices) {
  std::vector<std::pair<vid_t, vid_t>> edges;
  vid_t max_id = min_vertices > 0 ? min_vertices - 1 : 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("edge list: parse error at line " +
                               std::to_string(lineno));
    }
    if (u > 0xFFFFFFFEULL || v > 0xFFFFFFFEULL) {
      throw std::runtime_error("edge list: vertex id too large at line " +
                               std::to_string(lineno));
    }
    edges.emplace_back(narrow<vid_t>(u), narrow<vid_t>(v));
    max_id = std::max({max_id, narrow<vid_t>(u), narrow<vid_t>(v)});
  }
  const vid_t n = edges.empty() && min_vertices == 0 ? 0 : max_id + 1;
  return GraphBuilder::from_edges(n, edges);
}

void save_edge_list(std::ostream& out, const Csr& g) {
  out << "# gcgpu edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " undirected edges\n";
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

}  // namespace gcg
