#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "graph/io/io.hpp"

namespace gcg {

namespace {
constexpr char kMagic[8] = {'g', 'c', 'g', 'b', 'i', 'n', '0', '1'};

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("gbin: truncated stream");
  return v;
}

template <class T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
std::vector<T> read_vec(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!in) throw std::runtime_error("gbin: truncated array");
  return v;
}
}  // namespace

void save_binary(std::ostream& out, const Csr& g) {
  out.write(kMagic, sizeof(kMagic));
  std::vector<eid_t> rows(g.row_offsets().begin(), g.row_offsets().end());
  std::vector<vid_t> cols(g.col_indices().begin(), g.col_indices().end());
  write_vec(out, rows);
  write_vec(out, cols);
}

Csr load_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("gbin: bad magic");
  }
  auto rows = read_vec<eid_t>(in);
  auto cols = read_vec<vid_t>(in);
  return Csr(std::move(rows), std::move(cols));
}

}  // namespace gcg
