// .gbin readers/writers. Two generations share the extension and are
// auto-detected by magic:
//   v1 "gcgbin01": magic + length-prefixed raw arrays. Compact, but the
//       arrays land at unaligned offsets, so it can only be heap-loaded.
//   v2 "gcgbin02": fixed 128-byte header + page-aligned sections with
//       per-section checksums (layout in store/format.hpp). Heap-loadable
//       here; mmap'able zero-copy through store::MappedGraph.
// save_binary writes v1 (legacy interchange); save_binary_v2 writes the
// store format — save_graph's .gbin dispatch now emits v2.
#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "graph/io/io.hpp"
#include "store/format.hpp"
#include "util/narrow.hpp"

namespace gcg {

namespace {
constexpr char kMagicV1[8] = {'g', 'c', 'g', 'b', 'i', 'n', '0', '1'};

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("gbin: truncated stream");
  return v;
}

/// Bytes left between the current position and the end of a seekable
/// stream, or nullopt if the stream cannot seek (e.g. a pipe) — callers
/// then fall back to discovering truncation at read time.
std::optional<std::uint64_t> remaining_bytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return std::nullopt;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return std::nullopt;
  return to_unsigned(std::streamoff(end - pos));
}

template <class T>
void write_vec(std::ostream& out, std::span<const T> v) {
  write_pod<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            narrow<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
std::vector<T> read_vec(std::istream& in) {
  const auto size = read_pod<std::uint64_t>(in);
  // Validate the declared element count against what the stream can
  // still deliver BEFORE allocating: a corrupt header must produce a
  // clean "truncated stream" error, not a giant allocation / bad_alloc.
  if (const auto left = remaining_bytes(in)) {
    if (size > *left / sizeof(T)) {
      throw std::runtime_error("gbin: truncated stream");
    }
  } else if (size > std::numeric_limits<std::uint64_t>::max() / sizeof(T)) {
    throw std::runtime_error("gbin: truncated stream");
  }
  std::vector<T> v(size);
  in.read(reinterpret_cast<char*>(v.data()),
          narrow<std::streamsize>(size * sizeof(T)));
  if (!in) throw std::runtime_error("gbin: truncated array");
  return v;
}

void write_padding(std::ostream& out, std::uint64_t from, std::uint64_t to) {
  static constexpr char kZeros[256] = {};
  while (from < to) {
    const std::uint64_t chunk = std::min<std::uint64_t>(to - from, 256);
    out.write(kZeros, narrow<std::streamsize>(chunk));
    from += chunk;
  }
}

Csr load_binary_v1(std::istream& in) {
  auto rows = read_vec<eid_t>(in);
  auto cols = read_vec<vid_t>(in);
  return Csr(std::move(rows), std::move(cols));
}

Csr load_binary_v2(std::istream& in, std::streamoff base) {
  store::HeaderV2 h{};
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in) throw std::runtime_error("gbin2: truncated header");
  validate_gbin_v2_header(h);

  // Geometry checked against the actual stream size before allocating,
  // same contract as the hardened v1 path.
  if (const auto left = remaining_bytes(in)) {
    const std::uint64_t file_size = sizeof h + *left;
    if (h.cols_offset + h.cols_bytes > file_size ||
        h.rows_offset + h.rows_bytes > file_size) {
      throw std::runtime_error("gbin2: truncated stream");
    }
  }

  std::vector<eid_t> rows(h.num_vertices + 1);
  in.seekg(base + narrow<std::streamoff>(h.rows_offset));
  in.read(reinterpret_cast<char*>(rows.data()),
          narrow<std::streamsize>(h.rows_bytes));
  if (!in) throw std::runtime_error("gbin2: truncated rows section");

  std::vector<vid_t> cols(h.num_arcs);
  in.seekg(base + narrow<std::streamoff>(h.cols_offset));
  in.read(reinterpret_cast<char*>(cols.data()),
          narrow<std::streamsize>(h.cols_bytes));
  if (!in) throw std::runtime_error("gbin2: truncated cols section");

  // A heap load touches every byte anyway, so the checksums are free to
  // verify here (the lazy mmap path makes them opt-in instead).
  if (store::fnv1a64(rows.data(), h.rows_bytes) != h.rows_checksum) {
    throw std::runtime_error("gbin2: rows section checksum mismatch");
  }
  if (store::fnv1a64(cols.data(), h.cols_bytes) != h.cols_checksum) {
    throw std::runtime_error("gbin2: cols section checksum mismatch");
  }
  return Csr(std::move(rows), std::move(cols));
}

}  // namespace

void validate_gbin_v2_header(const store::HeaderV2& h) {
  if (!store::has_v2_magic(h.magic, sizeof h.magic)) {
    throw std::runtime_error("gbin2: bad magic");
  }
  if (h.version != store::kFormatVersion) {
    throw std::runtime_error("gbin2: unsupported version " +
                             std::to_string(h.version));
  }
  if (h.endian_tag != store::kEndianTag) {
    throw std::runtime_error(
        "gbin2: endianness mismatch (file written on a foreign-endian "
        "machine)");
  }
  if (store::header_checksum(h) != h.header_checksum) {
    throw std::runtime_error("gbin2: header checksum mismatch");
  }
  if (h.num_vertices + 1 > std::numeric_limits<vid_t>::max() ||
      h.rows_bytes != (h.num_vertices + 1) * sizeof(eid_t) ||
      h.cols_bytes != h.num_arcs * sizeof(vid_t)) {
    throw std::runtime_error("gbin2: header geometry inconsistent");
  }
  if (h.rows_offset % alignof(eid_t) != 0 ||
      h.cols_offset % alignof(vid_t) != 0 ||
      h.rows_offset < sizeof(store::HeaderV2) ||
      h.cols_offset < h.rows_offset + h.rows_bytes) {
    throw std::runtime_error("gbin2: section offsets misaligned or "
                             "overlapping");
  }
}

void save_binary(std::ostream& out, const Csr& g) {
  out.write(kMagicV1, sizeof(kMagicV1));
  write_vec(out, g.row_offsets());
  write_vec(out, g.col_indices());
}

void save_binary_v2(std::ostream& out, const Csr& g) {
  const auto rows = g.row_offsets();
  const auto cols = g.col_indices();

  store::HeaderV2 h{};
  std::memcpy(h.magic, store::kMagicV2, sizeof h.magic);
  h.version = store::kFormatVersion;
  h.endian_tag = store::kEndianTag;
  h.num_vertices = g.num_vertices();
  h.num_arcs = g.num_arcs();
  h.rows_bytes = rows.size_bytes();
  h.cols_bytes = cols.size_bytes();
  h.rows_offset = store::align_up(sizeof h);
  h.cols_offset = store::align_up(h.rows_offset + h.rows_bytes);
  h.rows_checksum = store::fnv1a64(rows.data(), h.rows_bytes);
  h.cols_checksum = store::fnv1a64(cols.data(), h.cols_bytes);
  h.header_checksum = store::header_checksum(h);

  write_pod(out, h);
  write_padding(out, sizeof h, h.rows_offset);
  out.write(reinterpret_cast<const char*>(rows.data()),
            narrow<std::streamsize>(h.rows_bytes));
  write_padding(out, h.rows_offset + h.rows_bytes, h.cols_offset);
  out.write(reinterpret_cast<const char*>(cols.data()),
            narrow<std::streamsize>(h.cols_bytes));
  if (!out) throw std::runtime_error("gbin2: write failed");
}

Csr load_binary(std::istream& in) {
  const std::streamoff base = in.tellg();
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in) throw std::runtime_error("gbin: bad magic");
  if (store::has_v2_magic(magic, sizeof magic)) {
    // Rewind: the v2 header overlays the magic and its section offsets
    // are relative to the header's own position in the stream.
    in.seekg(base >= 0 ? base : std::streamoff{0});
    return load_binary_v2(in, base >= 0 ? base : std::streamoff{0});
  }
  if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    throw std::runtime_error("gbin: bad magic");
  }
  return load_binary_v1(in);
}

}  // namespace gcg
