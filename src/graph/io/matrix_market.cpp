#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io/io.hpp"
#include "util/narrow.hpp"

namespace gcg {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) {
                   // lossy: tolower of an ASCII byte round-trips through int
                   return narrow_cast<char>(std::tolower(c));
                 });
  return s;
}
}  // namespace

Csr load_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mtx: empty stream");
  std::istringstream header(lower(line));
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%matrixmarket") throw std::runtime_error("mtx: missing banner");
  if (object != "matrix" || format != "coordinate") {
    throw std::runtime_error("mtx: only coordinate matrices supported");
  }
  const bool has_value = (field == "real" || field == "integer");
  if (!has_value && field != "pattern") {
    throw std::runtime_error("mtx: unsupported field type: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("mtx: unsupported symmetry: " + symmetry);
  }

  // Skip comments, read size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) {
    throw std::runtime_error("mtx: bad size line");
  }
  if (rows != cols) throw std::runtime_error("mtx: matrix must be square");

  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    if (!std::getline(in, line)) throw std::runtime_error("mtx: truncated");
    std::istringstream es(line);
    std::uint64_t i = 0, j = 0;
    double value = 0.0;
    if (!(es >> i >> j)) throw std::runtime_error("mtx: bad entry");
    if (has_value) es >> value;  // value ignored; adjacency pattern only
    if (i == 0 || j == 0 || i > rows || j > cols) {
      throw std::runtime_error("mtx: index out of range");
    }
    edges.emplace_back(narrow<vid_t>(i - 1), narrow<vid_t>(j - 1));
  }
  // Builder symmetrizes, so both 'general' and 'symmetric' inputs work.
  return GraphBuilder::from_edges(narrow<vid_t>(rows), edges);
}

void save_matrix_market(std::ostream& out, const Csr& g) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << "% written by gcgpu\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges()
      << '\n';
  // Symmetric format stores the lower triangle: i >= j, 1-based.
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (v <= u) out << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
}

}  // namespace gcg
