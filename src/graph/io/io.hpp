// Graph file I/O. Formats:
//  * edge list (.el / .txt): "u v" per line, '#' or '%' comments
//  * Matrix Market (.mtx): coordinate pattern/real, general or symmetric
//  * DIMACS coloring format (.col): "p edge N M" header, "e u v" lines (1-based)
//  * gcgpu binary (.gbin): two generations auto-detected by magic —
//    v1 (length-prefixed arrays) and v2 (page-aligned, checksummed,
//    mmap'able; layout in store/format.hpp). save_graph writes v2;
//    zero-copy mapped opens live in src/store/ (store::MappedGraph).
// load_graph() dispatches on extension. All loaders produce clean symmetric
// simple graphs via GraphBuilder.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace gcg::store {
struct HeaderV2;
}

namespace gcg {

Csr load_edge_list(std::istream& in, vid_t min_vertices = 0);
void save_edge_list(std::ostream& out, const Csr& g);

Csr load_matrix_market(std::istream& in);
void save_matrix_market(std::ostream& out, const Csr& g);

Csr load_dimacs_color(std::istream& in);
void save_dimacs_color(std::ostream& out, const Csr& g);

/// Reads either .gbin generation (auto-detected by magic) into an
/// owning, heap-resident Csr.
Csr load_binary(std::istream& in);
/// Writes legacy v1 (compact, unaligned — for interchange with old
/// readers; graph_pack --v1 uses this).
void save_binary(std::ostream& out, const Csr& g);
/// Writes .gbin v2: page-aligned sections + checksums, mmap'able by
/// store::MappedGraph.
void save_binary_v2(std::ostream& out, const Csr& g);

/// Throws std::runtime_error describing the first defect in a v2 header
/// (magic, version, endianness, header checksum, geometry). Shared by
/// the heap loader here and the mmap path in store::MappedGraph.
void validate_gbin_v2_header(const store::HeaderV2& h);

/// Dispatch by extension; throws std::runtime_error on unknown extension
/// or unreadable file.
Csr load_graph(const std::string& path);
void save_graph(const std::string& path, const Csr& g);

}  // namespace gcg
