// Graph file I/O. Formats:
//  * edge list (.el / .txt): "u v" per line, '#' or '%' comments
//  * Matrix Market (.mtx): coordinate pattern/real, general or symmetric
//  * DIMACS coloring format (.col): "p edge N M" header, "e u v" lines (1-based)
//  * gcgpu binary (.gbin): magic + CSR arrays, for fast reload
// load_graph() dispatches on extension. All loaders produce clean symmetric
// simple graphs via GraphBuilder.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace gcg {

Csr load_edge_list(std::istream& in, vid_t min_vertices = 0);
void save_edge_list(std::ostream& out, const Csr& g);

Csr load_matrix_market(std::istream& in);
void save_matrix_market(std::ostream& out, const Csr& g);

Csr load_dimacs_color(std::istream& in);
void save_dimacs_color(std::ostream& out, const Csr& g);

Csr load_binary(std::istream& in);
void save_binary(std::ostream& out, const Csr& g);

/// Dispatch by extension; throws std::runtime_error on unknown extension
/// or unreadable file.
Csr load_graph(const std::string& path);
void save_graph(const std::string& path, const Csr& g);

}  // namespace gcg
