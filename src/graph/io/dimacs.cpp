#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/io/io.hpp"
#include "util/narrow.hpp"

namespace gcg {

Csr load_dimacs_color(std::istream& in) {
  std::string line;
  vid_t n = 0;
  bool have_problem = false;
  std::vector<std::pair<vid_t, vid_t>> edges;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      std::uint64_t nn = 0, mm = 0;
      if (!(ls >> tag >> nn >> mm) || (tag != "edge" && tag != "col")) {
        throw std::runtime_error("dimacs: bad problem line " + std::to_string(lineno));
      }
      n = narrow<vid_t>(nn);
      edges.reserve(mm);
      have_problem = true;
    } else if (kind == 'e') {
      if (!have_problem) throw std::runtime_error("dimacs: edge before problem line");
      std::uint64_t u = 0, v = 0;
      if (!(ls >> u >> v) || u == 0 || v == 0 || u > n || v > n) {
        throw std::runtime_error("dimacs: bad edge at line " + std::to_string(lineno));
      }
      edges.emplace_back(narrow<vid_t>(u - 1), narrow<vid_t>(v - 1));
    } else if (kind == 'n') {
      // vertex-weight lines in some instances; irrelevant for coloring
      continue;
    } else {
      throw std::runtime_error("dimacs: unknown line kind '" +
                               std::string(1, kind) + "' at line " +
                               std::to_string(lineno));
    }
  }
  if (!have_problem) throw std::runtime_error("dimacs: missing problem line");
  return GraphBuilder::from_edges(n, edges);
}

void save_dimacs_color(std::ostream& out, const Csr& g) {
  out << "c written by gcgpu\n";
  out << "p edge " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (u < v) out << "e " << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
}

}  // namespace gcg
