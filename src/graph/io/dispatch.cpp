#include <fstream>
#include <stdexcept>
#include <string>

#include "graph/io/io.hpp"

namespace gcg {

namespace {
std::string extension_of(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? "" : path.substr(dot + 1);
}
}  // namespace

Csr load_graph(const std::string& path) {
  const std::string ext = extension_of(path);
  const bool binary = (ext == "gbin");
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw std::runtime_error("cannot open " + path);
  if (ext == "mtx") return load_matrix_market(in);
  if (ext == "col" || ext == "dimacs") return load_dimacs_color(in);
  if (ext == "gbin") return load_binary(in);
  if (ext == "el" || ext == "txt" || ext == "edges") return load_edge_list(in);
  throw std::runtime_error("unknown graph extension: ." + ext);
}

void save_graph(const std::string& path, const Csr& g) {
  const std::string ext = extension_of(path);
  const bool binary = (ext == "gbin");
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  if (ext == "mtx") {
    save_matrix_market(out, g);
  } else if (ext == "col" || ext == "dimacs") {
    save_dimacs_color(out, g);
  } else if (ext == "gbin") {
    save_binary(out, g);
  } else if (ext == "el" || ext == "txt" || ext == "edges") {
    save_edge_list(out, g);
  } else {
    throw std::runtime_error("unknown graph extension: ." + ext);
  }
}

}  // namespace gcg
