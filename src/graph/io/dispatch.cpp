#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>
#include <string>

#include "graph/io/io.hpp"
#include "util/narrow.hpp"

namespace gcg {

namespace {
std::string extension_of(const std::string& path) {
  const auto dot = path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  // Case-insensitive dispatch: "graph.MTX" and "graph.Col" are the same
  // formats; the service-layer registry also depends on extension handling
  // being canonical.
  std::transform(ext.begin(), ext.end(), ext.begin(), [](unsigned char c) {
    // lossy: tolower of an ASCII byte round-trips through int
    return narrow_cast<char>(std::tolower(c));
  });
  return ext;
}

constexpr const char* kSupported =
    ".mtx .col .dimacs .el .txt .edges .gbin (case-insensitive)";

bool known_extension(const std::string& ext) {
  return ext == "mtx" || ext == "col" || ext == "dimacs" || ext == "gbin" ||
         ext == "el" || ext == "txt" || ext == "edges";
}

/// Resolves and validates the extension before any file is opened, so an
/// unsupported format is always reported as such (and save_graph never
/// leaves an empty file behind for a path it cannot serve).
std::string checked_extension(const std::string& path) {
  const std::string ext = extension_of(path);
  if (!known_extension(ext)) {
    throw std::runtime_error("unknown graph extension \"." + ext + "\" in " +
                             path + "; supported: " + kSupported);
  }
  return ext;
}
}  // namespace

Csr load_graph(const std::string& path) {
  const std::string ext = checked_extension(path);
  const bool binary = (ext == "gbin");
  std::ifstream in(path, binary ? std::ios::binary : std::ios::in);
  if (!in) throw std::runtime_error("cannot open " + path);
  if (ext == "mtx") return load_matrix_market(in);
  if (ext == "col" || ext == "dimacs") return load_dimacs_color(in);
  if (ext == "gbin") return load_binary(in);
  return load_edge_list(in);  // el / txt / edges
}

void save_graph(const std::string& path, const Csr& g) {
  const std::string ext = checked_extension(path);
  const bool binary = (ext == "gbin");
  std::ofstream out(path, binary ? std::ios::binary : std::ios::out);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  if (ext == "mtx") {
    save_matrix_market(out, g);
  } else if (ext == "col" || ext == "dimacs") {
    save_dimacs_color(out, g);
  } else if (ext == "gbin") {
    // v2 is the write default: what save_graph produces, the store can
    // mmap. load_graph keeps reading v1 files by magic detection.
    save_binary_v2(out, g);
  } else {
    save_edge_list(out, g);  // el / txt / edges
  }
}

}  // namespace gcg
