#include "graph/builder.hpp"

#include <algorithm>

#include "util/expect.hpp"

namespace gcg {

GraphBuilder::GraphBuilder(vid_t num_vertices) : n_(num_vertices) {}

void GraphBuilder::add_edge(vid_t u, vid_t v) {
  GCG_EXPECT(u < n_ && v < n_);
  edges_.emplace_back(u, v);
}

Csr GraphBuilder::build(const BuildOptions& opts) {
  std::vector<std::pair<vid_t, vid_t>> arcs;
  arcs.reserve(edges_.size() * (opts.symmetrize ? 2 : 1));
  for (auto [u, v] : edges_) {
    if (opts.remove_self_loops && u == v) continue;
    arcs.emplace_back(u, v);
    if (opts.symmetrize && u != v) arcs.emplace_back(v, u);
  }
  edges_.clear();
  edges_.shrink_to_fit();

  if (opts.sort_neighbors || opts.dedup) {
    std::sort(arcs.begin(), arcs.end());
  }
  if (opts.dedup) {
    arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  }

  std::vector<eid_t> rows(std::size_t{n_} + 1, 0);
  for (auto [u, v] : arcs) {
    (void)v;
    ++rows[u + 1];
  }
  for (std::size_t i = 1; i < rows.size(); ++i) rows[i] += rows[i - 1];

  std::vector<vid_t> cols(arcs.size());
  if (opts.sort_neighbors || opts.dedup) {
    // arcs are globally sorted, so filling in order keeps lists sorted.
    for (std::size_t i = 0; i < arcs.size(); ++i) cols[i] = arcs[i].second;
  } else {
    std::vector<eid_t> cursor(rows.begin(), rows.end() - 1);
    for (auto [u, v] : arcs) cols[cursor[u]++] = v;
  }
  return Csr(std::move(rows), std::move(cols));
}

Csr GraphBuilder::from_edges(vid_t n,
                             const std::vector<std::pair<vid_t, vid_t>>& edges,
                             const BuildOptions& opts) {
  GraphBuilder b(n);
  b.reserve(edges.size());
  for (auto [u, v] : edges) b.add_edge(u, v);
  return b.build(opts);
}

}  // namespace gcg
