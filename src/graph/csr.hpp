// Compressed Sparse Row graph storage — the device-side format the paper's
// OpenCL kernels consume (row offsets + column indices in flat arrays).
// Graphs are simple and undirected unless a builder is told otherwise:
// every undirected edge appears in both adjacency lists.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gcg {

using vid_t = std::uint32_t;  ///< vertex id
using eid_t = std::uint64_t;  ///< edge index into the column array

/// An immutable CSR graph. Construct via GraphBuilder or a generator.
class Csr {
 public:
  Csr() = default;
  Csr(std::vector<eid_t> row_offsets, std::vector<vid_t> col_indices);

  vid_t num_vertices() const { return n_; }
  /// Number of directed arcs stored (2x undirected edge count).
  eid_t num_arcs() const { return static_cast<eid_t>(cols_.size()); }
  /// Undirected edge count, assuming the graph is symmetric.
  eid_t num_edges() const { return num_arcs() / 2; }

  eid_t offset(vid_t v) const { return rows_[v]; }
  vid_t degree(vid_t v) const {
    return static_cast<vid_t>(rows_[v + 1] - rows_[v]);
  }
  std::span<const vid_t> neighbors(vid_t v) const {
    return {cols_.data() + rows_[v], cols_.data() + rows_[v + 1]};
  }

  std::span<const eid_t> row_offsets() const { return rows_; }
  std::span<const vid_t> col_indices() const { return cols_; }

  vid_t max_degree() const;
  double avg_degree() const;

  /// True if every arc (u,v) has a matching (v,u).
  bool is_symmetric() const;
  /// True if no v appears in its own adjacency list.
  bool has_no_self_loops() const;
  /// True if each adjacency list is sorted ascending with no duplicates.
  bool is_sorted_unique() const;

  /// Throws std::invalid_argument describing the first structural problem
  /// (bad offsets, out-of-range column, ...). Used by loaders and tests.
  void validate() const;

  bool empty() const { return n_ == 0; }

 private:
  vid_t n_ = 0;
  std::vector<eid_t> rows_;  ///< size n+1, rows_[0]==0, non-decreasing
  std::vector<vid_t> cols_;  ///< size rows_[n]
};

}  // namespace gcg
