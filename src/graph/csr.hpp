// Compressed Sparse Row graph storage — the device-side format the paper's
// OpenCL kernels consume (row offsets + column indices in flat arrays).
// Graphs are simple and undirected unless a builder is told otherwise:
// every undirected edge appears in both adjacency lists.
//
// Ownership seam: a Csr either OWNS its arrays (std::vector storage, the
// historical behaviour — builders, generators and parsers produce these)
// or is a VIEW borrowing read-only memory someone else anchors — e.g. a
// store::MappedGraph serving the arrays straight off an mmap'ed .gbin v2
// file. Views carry a shared keepalive handle so the backing storage
// cannot disappear under a running algorithm. Every accessor reads
// through the same spans either way, so coloring/par/apps code is
// oblivious to which mode it got.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/narrow.hpp"

namespace gcg {

using vid_t = std::uint32_t;  ///< vertex id
using eid_t = std::uint64_t;  ///< edge index into the column array

/// An immutable CSR graph. Construct via GraphBuilder or a generator
/// (owning), or via Csr::view over externally anchored memory.
class Csr {
 public:
  Csr() = default;
  Csr(std::vector<eid_t> row_offsets, std::vector<vid_t> col_indices);

  /// Borrowed-storage factory: wraps memory owned elsewhere without
  /// copying. `rows` must have size n+1 and `cols` size rows.back();
  /// `keepalive` anchors whatever owns the bytes (e.g. the mmap handle)
  /// for as long as this Csr — or any copy of it — is alive.
  ///
  /// Cheap by design: performs only O(1) shape checks (size/front/back),
  /// NOT the full O(n+m) validate(), so opening a 100 GiB mapped graph
  /// does not fault every page in. The store's checksums (or an explicit
  /// validate() call) are the integrity layer for views.
  static Csr view(std::span<const eid_t> row_offsets,
                  std::span<const vid_t> col_indices,
                  std::shared_ptr<const void> keepalive);

  // Copies of a view are views sharing the same keepalive; copies of an
  // owning Csr deep-copy. Moves never copy array data in either mode.
  Csr(const Csr& other);
  Csr& operator=(const Csr& other);
  Csr(Csr&& other) noexcept;
  Csr& operator=(Csr&& other) noexcept;
  ~Csr() = default;

  /// True if this Csr borrows external storage instead of owning it.
  bool is_view() const { return view_; }
  /// Heap bytes owned by this instance's arrays (0 for a view) — what a
  /// cache should charge for resident heap cost.
  std::size_t heap_bytes() const {
    return rows_store_.capacity() * sizeof(eid_t) +
           cols_store_.capacity() * sizeof(vid_t);
  }

  vid_t num_vertices() const { return n_; }
  /// Number of directed arcs stored (2x undirected edge count).
  eid_t num_arcs() const { return eid_t{cols_.size()}; }
  /// Undirected edge count, assuming the graph is symmetric.
  eid_t num_edges() const { return num_arcs() / 2; }

  eid_t offset(vid_t v) const { return rows_[v]; }
  vid_t degree(vid_t v) const {
    return narrow<vid_t>(rows_[v + 1] - rows_[v]);
  }
  std::span<const vid_t> neighbors(vid_t v) const {
    return cols_.subspan(rows_[v], rows_[v + 1] - rows_[v]);
  }

  std::span<const eid_t> row_offsets() const { return rows_; }
  std::span<const vid_t> col_indices() const { return cols_; }

  vid_t max_degree() const;
  double avg_degree() const;

  /// True if every arc (u,v) has a matching (v,u).
  bool is_symmetric() const;
  /// True if no v appears in its own adjacency list.
  bool has_no_self_loops() const;
  /// True if each adjacency list is sorted ascending with no duplicates.
  bool is_sorted_unique() const;

  /// Throws std::invalid_argument describing the first structural problem
  /// (bad offsets, out-of-range column, ...). Used by loaders and tests.
  /// O(n+m): on a mapped view this faults in every page.
  void validate() const;

  bool empty() const { return n_ == 0; }

 private:
  /// Points the access spans at the owned vectors (owning mode only).
  void rebind_owned();

  vid_t n_ = 0;
  bool view_ = false;
  std::vector<eid_t> rows_store_;  ///< owning mode: size n+1, rows[0]==0
  std::vector<vid_t> cols_store_;  ///< owning mode: size rows[n]
  std::span<const eid_t> rows_;    ///< what accessors read (both modes)
  std::span<const vid_t> cols_;
  std::shared_ptr<const void> keepalive_;  ///< view mode: storage anchor
};

}  // namespace gcg
