#include "graph/subgraph.hpp"

#include <algorithm>

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

Subgraph induced_subgraph(const Csr& g, const std::vector<bool>& keep) {
  GCG_EXPECT(keep.size() == g.num_vertices());
  Subgraph out;
  out.to_new.assign(g.num_vertices(), Subgraph::kNotInSubgraph);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (keep[v]) {
      out.to_new[v] = narrow<vid_t>(out.to_old.size());
      out.to_old.push_back(v);
    }
  }
  GraphBuilder b(narrow<vid_t>(out.to_old.size()));
  for (vid_t nv = 0; nv < out.to_old.size(); ++nv) {
    const vid_t v = out.to_old[nv];
    for (vid_t u : g.neighbors(v)) {
      if (u > v) break;  // each edge once (sorted lists)
      if (keep[u]) b.add_edge(out.to_new[u], nv);
    }
  }
  out.graph = b.build();
  return out;
}

RangeSubgraph extract_subgraph(const Csr& g, vid_t begin, vid_t end) {
  GCG_EXPECT(begin <= end && end <= g.num_vertices());
  RangeSubgraph out;
  out.begin = begin;
  out.end = end;
  const vid_t local = end - begin;
  out.is_boundary.assign(local, 0);

  std::vector<eid_t> rows(local + 1, 0);
  std::vector<vid_t> cols;
  cols.reserve(narrow<std::size_t>(g.row_offsets()[end] -
                                        g.row_offsets()[begin]));
  for (vid_t i = 0; i < local; ++i) {
    const vid_t v = begin + i;
    for (vid_t u : g.neighbors(v)) {
      if (u >= begin && u < end) {
        cols.push_back(u - begin);
      } else {
        ++out.cut_arcs;
        out.is_boundary[i] = 1;
        out.ghosts.push_back(u);
      }
    }
    rows[i + 1] = eid_t{cols.size()};
  }
  for (const std::uint8_t b : out.is_boundary) out.num_boundary += b;
  std::sort(out.ghosts.begin(), out.ghosts.end());
  out.ghosts.erase(std::unique(out.ghosts.begin(), out.ghosts.end()),
                   out.ghosts.end());
  out.graph = Csr(std::move(rows), std::move(cols));
  return out;
}

Subgraph k_core(const Csr& g, vid_t k) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> deg(n);
  for (vid_t v = 0; v < n; ++v) deg[v] = g.degree(v);
  std::vector<bool> removed(n, false);
  std::vector<vid_t> stack;
  for (vid_t v = 0; v < n; ++v) {
    if (deg[v] < k) stack.push_back(v);
  }
  while (!stack.empty()) {
    const vid_t v = stack.back();
    stack.pop_back();
    if (removed[v]) continue;
    removed[v] = true;
    for (vid_t u : g.neighbors(v)) {
      if (!removed[u] && deg[u]-- == k) stack.push_back(u);
    }
  }
  std::vector<bool> keep(n);
  for (vid_t v = 0; v < n; ++v) keep[v] = !removed[v];
  return induced_subgraph(g, keep);
}

Subgraph largest_component(const Csr& g) {
  std::vector<vid_t> labels;
  const vid_t num_components = connected_components(g, &labels);
  std::vector<vid_t> size(num_components, 0);
  for (vid_t label : labels) ++size[label];
  const vid_t biggest = narrow<vid_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
  std::vector<bool> keep(g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) keep[v] = (labels[v] == biggest);
  return induced_subgraph(g, keep);
}

}  // namespace gcg
