// Vertex reordering. Vertex-to-lane mapping determines which vertices share
// a wavefront, so ordering directly controls intra-wavefront divergence —
// one of the "important factors affecting performance" the paper analyzes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

enum class Order {
  kNatural,           ///< identity (generator order)
  kRandom,            ///< uniform shuffle
  kDegreeDescending,  ///< hubs first — groups similar degrees per wavefront
  kDegreeAscending,
  kBfs,               ///< breadth-first from vertex 0 (locality)
  kRcm,               ///< reverse Cuthill–McKee (bandwidth reduction)
};

const char* order_name(Order o);
/// Parses the names produced by order_name; throws on unknown input.
Order order_from_name(const std::string& name);

/// Returns perm where perm[old_id] = new_id.
std::vector<vid_t> make_order(const Csr& g, Order o, std::uint64_t seed = 1);

/// Relabels vertices: new graph has vertex perm[v] for old v.
/// perm must be a permutation of [0, n).
Csr apply_order(const Csr& g, const std::vector<vid_t>& perm);

/// Convenience: make_order + apply_order.
Csr reorder(const Csr& g, Order o, std::uint64_t seed = 1);

/// True if perm is a permutation of [0, n).
bool is_permutation(const std::vector<vid_t>& perm, vid_t n);

}  // namespace gcg
