// Subgraph extraction utilities: induced subgraphs, k-cores, and largest
// connected components. Downstream coloring users routinely preprocess
// with these (color the 2-core, handle trees separately, etc.).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace gcg {

struct Subgraph {
  Csr graph;
  /// old vertex id of each new vertex (new id = index).
  std::vector<vid_t> to_old;
  /// new id per old vertex; kNotInSubgraph for dropped vertices.
  std::vector<vid_t> to_new;
  static constexpr vid_t kNotInSubgraph = ~vid_t{0};
};

/// Induced subgraph on `keep` (mask over old ids; true = keep).
Subgraph induced_subgraph(const Csr& g, const std::vector<bool>& keep);

/// Maximal subgraph where every vertex has degree >= k (repeated peeling).
Subgraph k_core(const Csr& g, vid_t k);

/// Induced subgraph of the largest connected component.
Subgraph largest_component(const Csr& g);

}  // namespace gcg
