// Subgraph extraction utilities: induced subgraphs, k-cores, and largest
// connected components. Downstream coloring users routinely preprocess
// with these (color the 2-core, handle trees separately, etc.).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

struct Subgraph {
  Csr graph;
  /// old vertex id of each new vertex (new id = index).
  std::vector<vid_t> to_old;
  /// new id per old vertex; kNotInSubgraph for dropped vertices.
  std::vector<vid_t> to_new;
  static constexpr vid_t kNotInSubgraph = ~vid_t{0};
};

/// Induced subgraph on `keep` (mask over old ids; true = keep).
Subgraph induced_subgraph(const Csr& g, const std::vector<bool>& keep);

/// A contiguous vertex range [begin, end) extracted for sharded
/// processing: the induced local graph plus the cross-range structure a
/// shard worker needs — which local vertices touch the outside
/// (boundary) and which outside vertices they touch (ghosts). Local
/// vertex i of `graph` is old vertex begin + i; ghost vertices are NOT
/// part of `graph` (interior coloring must not be constrained by them —
/// their colors are unknown until the coordinator's conflict rounds).
struct RangeSubgraph {
  Csr graph;            ///< induced on [begin, end); new id = old - begin
  vid_t begin = 0;
  vid_t end = 0;
  /// Old ids of out-of-range neighbors, ascending, deduplicated.
  std::vector<vid_t> ghosts;
  /// Per local vertex: 1 if it has at least one out-of-range neighbor.
  std::vector<std::uint8_t> is_boundary;
  vid_t num_boundary = 0;
  eid_t cut_arcs = 0;   ///< local -> out-of-range arcs
};

/// Extracts [begin, end) with ghost/boundary metadata. O(arcs incident
/// to the range); adjacency order (and therefore sortedness) of the
/// input is preserved in the local graph.
RangeSubgraph extract_subgraph(const Csr& g, vid_t begin, vid_t end);

/// Maximal subgraph where every vertex has degree >= k (repeated peeling).
Subgraph k_core(const Csr& g, vid_t k);

/// Induced subgraph of the largest connected component.
Subgraph largest_component(const Csr& g);

}  // namespace gcg
