#include "graph/gen/suite.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/gen/smallworld.hpp"
#include "util/narrow.hpp"

namespace gcg {

namespace {

/// Checked double -> vid_t vertex count: a computed count that would wrap
/// vid_t is a caller error worth a thrown message, not a silently
/// truncated graph. validate_suite_scale makes this unreachable today;
/// the check is what keeps that true if a generator's sizing ever
/// changes.
vid_t checked_count(double c) {
  if (!(c >= 0.0) ||
      !detail::float_fits<vid_t>(c)) {
    throw std::invalid_argument(
        "suite: vertex count " + std::to_string(c) + " does not fit vid_t");
  }
  return narrow<vid_t>(c);
}

}  // namespace

void validate_suite_scale(double scale) {
  if (!std::isfinite(scale) || scale <= 0.0 || scale > kMaxSuiteScale) {
    throw std::invalid_argument(
        "suite: scale must be finite and in (0, " +
        std::to_string(kMaxSuiteScale) + "], got " + std::to_string(scale));
  }
}

std::vector<std::string> suite_names() {
  return {"ecology-like", "circuit-like",  "road-like",    "rgg-like",
          "coauthor-like", "er-like",      "citation-like", "kron-like"};
}

SuiteEntry make_suite_graph(const std::string& name, const SuiteOptions& opts) {
  validate_suite_scale(opts.scale);
  const double s = opts.scale;
  const auto lin = [s](double base) {
    return checked_count(std::max(16.0, base * std::sqrt(s)));
  };
  const auto cnt = [s](double base) {
    return checked_count(std::max(256.0, base * s));
  };

  if (name == "ecology-like") {
    // ecology1/ecology2: 2D 5-point stencil, perfectly regular.
    return {name, "grid2d", "DIMACS-10 ecology2", make_grid2d(lin(256), lin(256))};
  }
  if (name == "circuit-like") {
    // G3_circuit: near-regular low-degree mesh; 3D stencil is the stand-in.
    const vid_t side = checked_count(std::max(8.0, 40.0 * std::cbrt(s)));
    return {name, "grid3d", "UF G3_circuit", make_grid3d(side, side, side)};
  }
  if (name == "road-like") {
    // Road networks: planar-ish, degree <= 8, mild variance.
    return {name, "grid2d8", "DIMACS-10 road central (shape)",
            make_grid2d(lin(300), lin(200), /*eight_connected=*/true)};
  }
  if (name == "rgg-like") {
    const vid_t n = cnt(60000);
    // Radius for expected average degree ~12: d = n*pi*r^2.
    const double radius = std::sqrt(12.0 / (3.14159265358979 * n));
    return {name, "rgg", "DIMACS-10 rgg_n_2_17",
            make_random_geometric(n, radius, opts.seed)};
  }
  if (name == "coauthor-like") {
    return {name, "watts-strogatz", "DIMACS-10 coAuthorsDBLP",
            make_watts_strogatz(cnt(60000), 10, 0.1, opts.seed)};
  }
  if (name == "er-like") {
    const vid_t n = cnt(60000);
    return {name, "erdos-renyi", "uniform random baseline",
            make_erdos_renyi_gnm(n, eid_t{n} * 5, opts.seed)};
  }
  if (name == "citation-like") {
    return {name, "barabasi-albert", "SNAP citationCiteseer",
            make_barabasi_albert(cnt(60000), 8, opts.seed)};
  }
  if (name == "kron-like") {
    const auto scale_log2 =
        narrow<unsigned>(std::max(10.0, std::round(16.0 + std::log2(s))));
    return {name, "rmat", "DIMACS-10 kron_g500-logn16",
            make_rmat(scale_log2, 8, {}, opts.seed)};
  }
  throw std::invalid_argument("unknown suite graph: " + name);
}

std::vector<SuiteEntry> make_suite(const SuiteOptions& opts) {
  std::vector<SuiteEntry> out;
  for (const auto& name : suite_names()) {
    out.push_back(make_suite_graph(name, opts));
  }
  return out;
}

}  // namespace gcg
