#include "graph/gen/smallworld.hpp"

#include "graph/builder.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg {

Csr make_watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed) {
  GCG_EXPECT(k >= 2 && k % 2 == 0);
  GCG_EXPECT(n > k);
  GCG_EXPECT(beta >= 0.0 && beta <= 1.0);
  Xoshiro256ss rng(seed);
  GraphBuilder b(n);
  b.reserve(std::size_t{n} * k / 2);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t j = 1; j <= k / 2; ++j) {
      vid_t v = (u + j) % n;
      if (rng.uniform() < beta) {
        // Rewire to a uniform random non-self endpoint. Parallel edges are
        // possible here; the builder dedups them.
        vid_t w;
        do {
          w = narrow<vid_t>(rng.bounded(n));
        } while (w == u);
        v = w;
      }
      b.add_edge(u, v);
    }
  }
  return b.build();
}

}  // namespace gcg
