// Configuration-model generator: a random simple graph matching a target
// degree sequence as closely as possible (stub matching with rejection of
// self-loops/multi-edges). Lets experiments isolate "degree distribution"
// from every other structural property — the control the characterization
// experiments occasionally need.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

/// Builds a graph whose degree sequence approximates `degrees` (sum must
/// be even or it is adjusted by dropping one stub from the largest entry).
/// Rejected stubs (self-loops / duplicates after retries) are discarded,
/// so achieved degrees can fall slightly below targets on dense or very
/// skewed sequences.
Csr make_configuration_model(const std::vector<vid_t>& degrees,
                             std::uint64_t seed = 1);

/// Convenience: a power-law degree sequence d ~ x^{-alpha} truncated to
/// [d_min, d_max], scaled to n vertices.
std::vector<vid_t> power_law_degrees(vid_t n, double alpha, vid_t d_min,
                                     vid_t d_max, std::uint64_t seed = 1);

}  // namespace gcg
