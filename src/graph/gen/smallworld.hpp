// Watts–Strogatz small-world generator — stand-in for co-authorship
// networks: high clustering, modest degree variance, short diameter.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace gcg {

/// Ring of n vertices, each connected to k nearest neighbours (k even),
/// with each edge rewired to a random endpoint with probability beta.
Csr make_watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed = 1);

}  // namespace gcg
