#include "graph/gen/powerlaw.hpp"

#include <vector>

#include "graph/builder.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg {

Csr make_barabasi_albert(vid_t n, vid_t edges_per_vertex, std::uint64_t seed) {
  GCG_EXPECT(edges_per_vertex >= 1);
  GCG_EXPECT(n > edges_per_vertex);
  Xoshiro256ss rng(seed);
  GraphBuilder b(n);

  // `targets` holds one entry per edge endpoint: sampling uniformly from it
  // is sampling proportionally to degree (the classic BA trick).
  std::vector<vid_t> endpoints;
  endpoints.reserve(std::size_t{n} * edges_per_vertex * 2);

  // Seed clique over the first m+1 vertices.
  const vid_t m = edges_per_vertex;
  for (vid_t u = 0; u <= m; ++u) {
    for (vid_t v = u + 1; v <= m; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<vid_t> picked;
  for (vid_t v = m + 1; v < n; ++v) {
    picked.clear();
    // Sample m distinct targets by rejection; m is small so this is cheap.
    while (picked.size() < m) {
      const vid_t t = endpoints[rng.bounded(endpoints.size())];
      bool dup = false;
      for (vid_t p : picked) dup |= (p == t);
      if (!dup) picked.push_back(t);
    }
    for (vid_t t : picked) {
      b.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Csr make_rmat(unsigned scale, vid_t edge_factor, const RmatParams& p,
              std::uint64_t seed) {
  GCG_EXPECT(scale >= 1 && scale <= 30);
  GCG_EXPECT(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0);
  const vid_t n = vid_t{1} << scale;
  const auto m = eid_t{edge_factor} * n;
  Xoshiro256ss rng(seed);
  GraphBuilder b(n);
  b.reserve(m);
  for (eid_t e = 0; e < m; ++e) {
    vid_t u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < p.a) {
        // quadrant (0,0)
      } else if (r < p.a + p.b) {
        v |= 1;
      } else if (r < p.a + p.b + p.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    b.add_edge(u, v);
  }
  Csr g = b.build();
  if (!p.scramble_ids) return g;
  // Scramble ids with a fixed random permutation so that hub vertices are
  // not clustered at low ids (matches Graph500 practice).
  std::vector<vid_t> perm(n);
  for (vid_t i = 0; i < n; ++i) perm[i] = i;
  Xoshiro256ss prng(seed ^ 0xabcdef1234567890ULL);
  for (vid_t i = n; i > 1; --i) {
    const auto j = narrow<vid_t>(prng.bounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  // Relabel via builder to keep CSR invariants.
  GraphBuilder rb(n);
  rb.reserve(g.num_edges());
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (u < v) rb.add_edge(perm[u], perm[v]);
    }
  }
  return rb.build();
}

}  // namespace gcg
