// The evaluation suite: synthetic, structurally matched stand-ins for the
// DIMACS-10 / SNAP graphs used by GPU graph-coloring papers of this era
// (see DESIGN.md §1 for the substitution argument). Every entry is
// deterministic for a given seed, so all experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

struct SuiteEntry {
  std::string name;      ///< e.g. "ecology-like"
  std::string family;    ///< "grid2d", "rmat", ...
  std::string stands_for;///< the paper-era input it substitutes
  Csr graph;
};

struct SuiteOptions {
  /// Linear scale factor on vertex counts (1.0 = default ~64k-vertex
  /// graphs; benches pass smaller values via --scale for quick runs).
  double scale = 1.0;
  std::uint64_t seed = 1;
};

/// Largest accepted SuiteOptions::scale. The bound is what keeps every
/// generator's vertex count inside vid_t and its arc count inside eid_t
/// (the densest entry builds ~5n arcs from an ~n*scale vertex count, so
/// 64 leaves orders of magnitude of headroom); make_suite_graph also
/// re-checks each computed count before casting, so the two can never
/// drift apart silently.
inline constexpr double kMaxSuiteScale = 64.0;

/// Throws std::invalid_argument unless `scale` is finite and in
/// (0, kMaxSuiteScale]. Called by make_suite_graph, and by the service's
/// gen: spec parser so an overflowing scale is a stable `bad_request` at
/// submit time instead of a truncated graph (or an aborted server) at
/// load time.
void validate_suite_scale(double scale);

/// Names of all suite graphs, in canonical order.
std::vector<std::string> suite_names();

/// Builds one suite graph by name; throws std::invalid_argument on unknown.
SuiteEntry make_suite_graph(const std::string& name, const SuiteOptions& opts = {});

/// Builds the whole suite (eight graphs, regular -> highly skewed).
std::vector<SuiteEntry> make_suite(const SuiteOptions& opts = {});

}  // namespace gcg
