#include "graph/gen/grid.hpp"

#include "graph/builder.hpp"
#include "util/expect.hpp"

namespace gcg {

Csr make_grid2d(vid_t width, vid_t height, bool eight_connected) {
  GCG_EXPECT(width > 0 && height > 0);
  const auto id = [width](vid_t x, vid_t y) { return y * width + x; };
  GraphBuilder b(width * height);
  b.reserve(std::size_t{width} * height * (eight_connected ? 4 : 2));
  for (vid_t y = 0; y < height; ++y) {
    for (vid_t x = 0; x < width; ++x) {
      if (x + 1 < width) b.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) b.add_edge(id(x, y), id(x, y + 1));
      if (eight_connected) {
        if (x + 1 < width && y + 1 < height) b.add_edge(id(x, y), id(x + 1, y + 1));
        if (x > 0 && y + 1 < height) b.add_edge(id(x, y), id(x - 1, y + 1));
      }
    }
  }
  return b.build();
}

Csr make_grid3d(vid_t nx, vid_t ny, vid_t nz) {
  GCG_EXPECT(nx > 0 && ny > 0 && nz > 0);
  const auto id = [nx, ny](vid_t x, vid_t y, vid_t z) {
    return (z * ny + y) * nx + x;
  };
  GraphBuilder b(nx * ny * nz);
  b.reserve(std::size_t{nx} * ny * nz * 3);
  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        if (x + 1 < nx) b.add_edge(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) b.add_edge(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) b.add_edge(id(x, y, z), id(x, y, z + 1));
      }
    }
  }
  return b.build();
}

}  // namespace gcg
