#include "graph/gen/special.hpp"

#include "graph/builder.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

Csr make_path(vid_t n) {
  GCG_EXPECT(n >= 1);
  GraphBuilder b(n);
  for (vid_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Csr make_cycle(vid_t n) {
  GCG_EXPECT(n >= 3);
  GraphBuilder b(n);
  for (vid_t v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Csr make_star(vid_t leaves) {
  GraphBuilder b(leaves + 1);
  for (vid_t v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return b.build();
}

Csr make_complete(vid_t n) {
  GCG_EXPECT(n >= 1);
  GraphBuilder b(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Csr make_complete_bipartite(vid_t left, vid_t right) {
  GCG_EXPECT(left >= 1 && right >= 1);
  GraphBuilder b(left + right);
  for (vid_t u = 0; u < left; ++u) {
    for (vid_t v = 0; v < right; ++v) b.add_edge(u, left + v);
  }
  return b.build();
}

Csr make_binary_tree(vid_t n) {
  GCG_EXPECT(n >= 1);
  GraphBuilder b(n);
  for (vid_t v = 0; v < n; ++v) {
    const auto l = eid_t{v} * 2 + 1;
    const auto r = eid_t{v} * 2 + 2;
    if (l < n) b.add_edge(v, narrow<vid_t>(l));
    if (r < n) b.add_edge(v, narrow<vid_t>(r));
  }
  return b.build();
}

Csr make_empty(vid_t n) {
  return Csr(std::vector<eid_t>(std::size_t{n} + 1, 0), {});
}

Csr make_petersen() {
  GraphBuilder b(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
  for (vid_t i = 0; i < 5; ++i) {
    b.add_edge(i, (i + 1) % 5);
    b.add_edge(5 + i, 5 + (i + 2) % 5);
    b.add_edge(i, 5 + i);
  }
  return b.build();
}

}  // namespace gcg
