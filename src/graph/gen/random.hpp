// Random-graph generators: Erdős–Rényi (uniform) and random geometric
// (stand-in for the DIMACS-10 rgg_* inputs: spatially local, modest degree
// variance).
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace gcg {

/// G(n, m): exactly m distinct undirected edges, uniform without replacement.
Csr make_erdos_renyi_gnm(vid_t n, eid_t m, std::uint64_t seed = 1);

/// G(n, p): each pair independently with probability p (geometric skipping,
/// O(n + m) expected). Use for small p only.
Csr make_erdos_renyi_gnp(vid_t n, double p, std::uint64_t seed = 1);

/// Random geometric graph: n points uniform in the unit square, edge iff
/// distance <= radius. Grid-bucketed; O(n + m) expected.
Csr make_random_geometric(vid_t n, double radius, std::uint64_t seed = 1);

}  // namespace gcg
