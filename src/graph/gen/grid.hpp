// Regular-lattice generators — stand-ins for the paper's near-regular inputs
// (ecology*, G3_circuit): low, uniform degree; excellent SIMD behaviour.
#pragma once

#include "graph/csr.hpp"

namespace gcg {

/// width x height lattice, 4-neighbour (von Neumann) or 8-neighbour (Moore).
Csr make_grid2d(vid_t width, vid_t height, bool eight_connected = false);

/// nx x ny x nz lattice, 6-neighbour stencil.
Csr make_grid3d(vid_t nx, vid_t ny, vid_t nz);

}  // namespace gcg
