// Skewed-degree generators — the graphs where the paper's baseline suffers
// worst load imbalance. Barabási–Albert (preferential attachment) stands in
// for citation/co-author networks; R-MAT for the kron_g500 inputs.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace gcg {

/// Barabási–Albert: start from a small clique, each new vertex attaches
/// `edges_per_vertex` edges preferentially by degree.
Csr make_barabasi_albert(vid_t n, vid_t edges_per_vertex, std::uint64_t seed = 1);

struct RmatParams {
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1-a-b-c; Graph500 defaults
  bool scramble_ids = true;             ///< permute ids so hubs spread out
};

/// R-MAT over 2^scale vertices with edge_factor * 2^scale edges (before
/// dedup/self-loop removal, so the final count is slightly lower).
Csr make_rmat(unsigned scale, vid_t edge_factor, const RmatParams& params = {},
              std::uint64_t seed = 1);

}  // namespace gcg
