#include "graph/gen/random.hpp"

#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/builder.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg {

Csr make_erdos_renyi_gnm(vid_t n, eid_t m, std::uint64_t seed) {
  GCG_EXPECT(n >= 2);
  const auto max_edges =
      eid_t{n} * (eid_t{n} - 1) / 2;
  GCG_EXPECT(m <= max_edges);
  Xoshiro256ss rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(narrow<std::size_t>(m) * 2);
  GraphBuilder b(n);
  b.reserve(m);
  while (seen.size() < m) {
    auto u = narrow<vid_t>(rng.bounded(n));
    auto v = narrow<vid_t>(rng.bounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (std::uint64_t{u} << 32) | v;
    if (seen.insert(key).second) b.add_edge(u, v);
  }
  return b.build();
}

Csr make_erdos_renyi_gnp(vid_t n, double p, std::uint64_t seed) {
  GCG_EXPECT(n >= 2);
  GCG_EXPECT(p >= 0.0 && p < 1.0);
  GraphBuilder b(n);
  if (p > 0.0) {
    Xoshiro256ss rng(seed);
    const double logq = std::log1p(-p);
    // Walk pairs (u,v), u<v, in lexicographic order with geometric skips.
    std::uint64_t idx = 0;
    const std::uint64_t total =
        std::uint64_t{n} * (n - 1) / 2;
    while (true) {
      const double r = rng.uniform();
      const double skip = std::floor(std::log1p(-r) / logq);
      // A near-1 draw against a tiny p can yield a skip beyond every
      // remaining pair (even beyond uint64); that is just "done".
      if (skip >= static_cast<double>(total)) break;
      idx += narrow<std::uint64_t>(skip) + 1;
      if (idx > total) break;
      // Invert linear index -> (u, v): index within upper triangle.
      const std::uint64_t k = idx - 1;
      // Solve largest u with u*(2n-u-1)/2 <= k via float guess + fixup.
      auto row_start = [n](std::uint64_t u) {
        return u * (2 * std::uint64_t{n} - u - 1) / 2;
      };
      auto u = narrow<std::uint64_t>(
          static_cast<double>(n) - 0.5 -
          std::sqrt(std::max(0.0, (static_cast<double>(n) - 0.5) *
                                        (static_cast<double>(n) - 0.5) -
                                    2.0 * static_cast<double>(k))));
      while (u > 0 && row_start(u) > k) --u;
      while (row_start(u + 1) <= k) ++u;
      const std::uint64_t v = u + 1 + (k - row_start(u));
      b.add_edge(narrow<vid_t>(u), narrow<vid_t>(v));
    }
  }
  return b.build();
}

Csr make_random_geometric(vid_t n, double radius, std::uint64_t seed) {
  GCG_EXPECT(n >= 1);
  GCG_EXPECT(radius > 0.0 && radius <= 1.0);
  Xoshiro256ss rng(seed);
  std::vector<double> xs(n), ys(n);
  for (vid_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }
  // Bucket grid with cell size = radius; only 9 neighbouring cells to scan.
  // More than n cells per axis never helps, and the clamp keeps the cell
  // count inside vid_t for arbitrarily small radii.
  const auto cells = narrow<vid_t>(std::min(
      static_cast<double>(n), std::max(1.0, std::floor(1.0 / radius))));
  const double cell_size = 1.0 / static_cast<double>(cells);
  std::vector<std::vector<vid_t>> grid(std::size_t{cells} * cells);
  auto cell_of = [&](double x) {
    return std::min<vid_t>(cells - 1, narrow<vid_t>(x / cell_size));
  };
  for (vid_t i = 0; i < n; ++i) {
    grid[std::size_t{cell_of(ys[i])} * cells + cell_of(xs[i])].push_back(i);
  }
  const double r2 = radius * radius;
  GraphBuilder b(n);
  for (vid_t i = 0; i < n; ++i) {
    const vid_t cx = cell_of(xs[i]);
    const vid_t cy = cell_of(ys[i]);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const auto nx = std::int64_t{cx} + dx;
        const auto ny = std::int64_t{cy} + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (vid_t j : grid[narrow<std::size_t>(ny) * cells +
                            narrow<std::size_t>(nx)]) {
          if (j <= i) continue;  // each pair once
          const double ddx = xs[i] - xs[j];
          const double ddy = ys[i] - ys[j];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(i, j);
        }
      }
    }
  }
  return b.build();
}

}  // namespace gcg
