#include "graph/gen/configuration.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/builder.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg {

Csr make_configuration_model(const std::vector<vid_t>& degrees,
                             std::uint64_t seed) {
  const auto n = narrow<vid_t>(degrees.size());
  GCG_EXPECT(n >= 2);

  // Stub list: vertex v appears degrees[v] times.
  std::vector<vid_t> stubs;
  for (vid_t v = 0; v < n; ++v) {
    GCG_EXPECT(degrees[v] < n);  // simple graph upper bound
    stubs.insert(stubs.end(), degrees[v], v);
  }
  if (stubs.size() % 2 == 1) stubs.pop_back();  // make the sum even

  // Uniform stub shuffle, then pair consecutive stubs; retry bad pairs a
  // few times against the tail before discarding them.
  Xoshiro256ss rng(seed);
  for (std::size_t i = stubs.size(); i > 1; --i) {
    const auto j = narrow<std::size_t>(rng.bounded(i));
    std::swap(stubs[i - 1], stubs[j]);
  }

  std::unordered_set<std::uint64_t> seen;
  GraphBuilder b(n);
  auto key = [](vid_t a, vid_t c) {
    if (a > c) std::swap(a, c);
    return (std::uint64_t{a} << 32) | c;
  };
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    vid_t u = stubs[i];
    vid_t v = stubs[i + 1];
    int retries = 8;
    while ((u == v || seen.count(key(u, v))) && retries-- > 0 &&
           i + 2 < stubs.size()) {
      // Swap the second stub with a random later stub and retry.
      const std::size_t j = i + 2 + rng.bounded(stubs.size() - i - 2);
      std::swap(stubs[i + 1], stubs[j]);
      v = stubs[i + 1];
    }
    if (u == v || seen.count(key(u, v))) continue;  // discard this pair
    seen.insert(key(u, v));
    b.add_edge(u, v);
  }
  return b.build();
}

std::vector<vid_t> power_law_degrees(vid_t n, double alpha, vid_t d_min,
                                     vid_t d_max, std::uint64_t seed) {
  GCG_EXPECT(alpha > 1.0);
  GCG_EXPECT(d_min >= 1 && d_max >= d_min && d_max < n);
  // Inverse-CDF sampling of a truncated discrete power law.
  Xoshiro256ss rng(seed);
  const double a1 = 1.0 - alpha;
  const double lo = std::pow(static_cast<double>(d_min), a1);
  const double hi = std::pow(static_cast<double>(d_max) + 1.0, a1);
  std::vector<vid_t> degrees(n);
  for (vid_t v = 0; v < n; ++v) {
    const double u = rng.uniform();
    const double x = std::pow(lo + u * (hi - lo), 1.0 / a1);
    degrees[v] = std::min<vid_t>(
        d_max, std::max<vid_t>(d_min, narrow<vid_t>(x)));
  }
  return degrees;
}

}  // namespace gcg
