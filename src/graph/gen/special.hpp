// Small structured graphs with known chromatic numbers — the backbone of
// the correctness test suite (chi(path)=2, chi(C_odd)=3, chi(K_n)=n, ...).
#pragma once

#include "graph/csr.hpp"

namespace gcg {

Csr make_path(vid_t n);
Csr make_cycle(vid_t n);
Csr make_star(vid_t leaves);      ///< vertex 0 is the hub
Csr make_complete(vid_t n);
Csr make_complete_bipartite(vid_t left, vid_t right);
Csr make_binary_tree(vid_t n);    ///< vertex i's children are 2i+1, 2i+2
Csr make_empty(vid_t n);          ///< n isolated vertices
/// Petersen graph: 10 vertices, 15 edges, chromatic number 3.
Csr make_petersen();

}  // namespace gcg
