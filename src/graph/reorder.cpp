#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"

namespace gcg {

const char* order_name(Order o) {
  switch (o) {
    case Order::kNatural: return "natural";
    case Order::kRandom: return "random";
    case Order::kDegreeDescending: return "degree-desc";
    case Order::kDegreeAscending: return "degree-asc";
    case Order::kBfs: return "bfs";
    case Order::kRcm: return "rcm";
  }
  return "?";
}

Order order_from_name(const std::string& name) {
  for (Order o : {Order::kNatural, Order::kRandom, Order::kDegreeDescending,
                  Order::kDegreeAscending, Order::kBfs, Order::kRcm}) {
    if (name == order_name(o)) return o;
  }
  throw std::invalid_argument("unknown order: " + name);
}

namespace {

/// BFS visit order from each unvisited root (ascending id), optionally
/// sorting each frontier expansion by degree (for RCM).
std::vector<vid_t> bfs_visit_order(const Csr& g, bool sort_by_degree) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> visit;  // visit[k] = old id visited k-th
  visit.reserve(n);
  std::vector<bool> seen(n, false);
  std::vector<vid_t> scratch;
  for (vid_t root = 0; root < n; ++root) {
    if (seen[root]) continue;
    seen[root] = true;
    visit.push_back(root);
    // classic array-as-queue BFS; `head` chases the growing visit list
    for (std::size_t head = visit.size() - 1; head < visit.size(); ++head) {
      const vid_t u = visit[head];
      scratch.clear();
      for (vid_t v : g.neighbors(u)) {
        if (!seen[v]) {
          seen[v] = true;
          scratch.push_back(v);
        }
      }
      if (sort_by_degree) {
        std::sort(scratch.begin(), scratch.end(), [&](vid_t a, vid_t b) {
          return g.degree(a) < g.degree(b) || (g.degree(a) == g.degree(b) && a < b);
        });
      }
      visit.insert(visit.end(), scratch.begin(), scratch.end());
    }
  }
  return visit;
}

std::vector<vid_t> visit_to_perm(const std::vector<vid_t>& visit) {
  std::vector<vid_t> perm(visit.size());
  for (vid_t k = 0; k < visit.size(); ++k) perm[visit[k]] = k;
  return perm;
}

}  // namespace

std::vector<vid_t> make_order(const Csr& g, Order o, std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> perm(n);
  std::iota(perm.begin(), perm.end(), vid_t{0});

  switch (o) {
    case Order::kNatural:
      return perm;
    case Order::kRandom: {
      // Fisher–Yates over the *new ids*: shuffle identity then invert is
      // equivalent to shuffling directly since uniform.
      Xoshiro256ss rng(seed);
      for (vid_t i = n; i > 1; --i) {
        const auto j = narrow<vid_t>(rng.bounded(i));
        std::swap(perm[i - 1], perm[j]);
      }
      return perm;
    }
    case Order::kDegreeDescending:
    case Order::kDegreeAscending: {
      std::vector<vid_t> visit(n);
      std::iota(visit.begin(), visit.end(), vid_t{0});
      const bool desc = (o == Order::kDegreeDescending);
      std::stable_sort(visit.begin(), visit.end(), [&](vid_t a, vid_t b) {
        return desc ? g.degree(a) > g.degree(b) : g.degree(a) < g.degree(b);
      });
      return visit_to_perm(visit);
    }
    case Order::kBfs:
      return visit_to_perm(bfs_visit_order(g, /*sort_by_degree=*/false));
    case Order::kRcm: {
      auto visit = bfs_visit_order(g, /*sort_by_degree=*/true);
      std::reverse(visit.begin(), visit.end());
      return visit_to_perm(visit);
    }
  }
  GCG_ASSERT(false && "unreachable");
  return perm;
}

bool is_permutation(const std::vector<vid_t>& perm, vid_t n) {
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (vid_t p : perm) {
    if (p >= n || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

Csr apply_order(const Csr& g, const std::vector<vid_t>& perm) {
  const vid_t n = g.num_vertices();
  GCG_EXPECT(is_permutation(perm, n));
  // Build new CSR directly: degree of new id perm[v] = degree of v.
  std::vector<eid_t> rows(std::size_t{n} + 1, 0);
  for (vid_t v = 0; v < n; ++v) rows[perm[v] + 1] = g.degree(v);
  for (std::size_t i = 1; i < rows.size(); ++i) rows[i] += rows[i - 1];
  std::vector<vid_t> cols(g.num_arcs());
  std::vector<vid_t> scratch;
  for (vid_t v = 0; v < n; ++v) {
    scratch.clear();
    for (vid_t u : g.neighbors(v)) scratch.push_back(perm[u]);
    std::sort(scratch.begin(), scratch.end());
    std::copy(scratch.begin(), scratch.end(),
              cols.begin() + to_signed(rows[perm[v]]));
  }
  return Csr(std::move(rows), std::move(cols));
}

Csr reorder(const Csr& g, Order o, std::uint64_t seed) {
  return apply_order(g, make_order(g, o, seed));
}

}  // namespace gcg
