#include "graph/partition.hpp"

#include <algorithm>

#include "util/expect.hpp"
#include "util/narrow.hpp"

namespace gcg {

namespace {

/// Cumulative weight of the first v vertices under the degree+1 metric.
/// rows[v] is the degree prefix, v the vertex-count prefix.
inline std::uint64_t weight_prefix(std::span<const eid_t> rows, vid_t v) {
  return rows[v] + v;
}

}  // namespace

unsigned Partition::shard_of(vid_t v) const {
  GCG_EXPECT(!bounds.empty() && v < bounds.back());
  const auto it = std::upper_bound(bounds.begin(), bounds.end(), v);
  return narrow<unsigned>(it - bounds.begin()) - 1;
}

Partition partition_edge_balanced(const Csr& g, unsigned shards) {
  return partition_edge_balanced(g.row_offsets(), shards);
}

Partition partition_edge_balanced(std::span<const eid_t> rows,
                                  unsigned shards) {
  GCG_EXPECT(!rows.empty() && rows.front() == 0);
  const vid_t n = narrow<vid_t>(rows.size() - 1);
  shards = std::max(1u, std::min(shards, std::max(vid_t{1}, n)));

  Partition p;
  p.bounds.resize(shards + 1);
  p.bounds[0] = 0;
  p.bounds[shards] = n;
  if (n == 0) return p;

  const std::uint64_t total = weight_prefix(rows, n);
  for (unsigned s = 1; s < shards; ++s) {
    // Smallest v whose cumulative weight reaches s/shards of the total —
    // the same binary-searched split parallel_for_edges uses for chunks.
    const std::uint64_t target = total * s / shards;
    vid_t lo = p.bounds[s - 1], hi = n;
    while (lo < hi) {
      const vid_t mid = lo + (hi - lo) / 2;
      if (weight_prefix(rows, mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    p.bounds[s] = lo;
  }
  // Monotonicity holds by construction (each search starts at the
  // previous bound); empty shards are legal on tiny graphs.
  return p;
}

PartitionReport analyze_partition(const Csr& g, const Partition& p) {
  PartitionReport r;
  const vid_t n = g.num_vertices();
  const unsigned shards = p.num_shards();
  GCG_EXPECT(shards > 0 && p.bounds.front() == 0 && p.bounds.back() == n);

  bool first = true;
  std::uint64_t max_weight = 0;
  for (unsigned s = 0; s < shards; ++s) {
    const vid_t begin = p.begin(s), end = p.end(s);
    const eid_t arcs = g.row_offsets()[end] - g.row_offsets()[begin];
    r.max_shard_arcs = first ? arcs : std::max(r.max_shard_arcs, arcs);
    r.min_shard_arcs = first ? arcs : std::min(r.min_shard_arcs, arcs);
    first = false;
    max_weight = std::max(max_weight, arcs + std::uint64_t{end} - begin);

    for (vid_t v = begin; v < end; ++v) {
      bool boundary = false;
      for (vid_t u : g.neighbors(v)) {
        if (u < begin || u >= end) {
          ++r.cut_arcs;
          boundary = true;
        }
      }
      if (boundary) ++r.boundary_vertices;
    }
  }
  if (n > 0) {
    r.boundary_fraction = static_cast<double>(r.boundary_vertices) / n;
    const double ideal =
        static_cast<double>(g.num_arcs() + n) / shards;
    if (ideal > 0.0) {
      r.weight_imbalance = static_cast<double>(max_weight) / ideal;
    }
  }
  return r;
}

}  // namespace gcg
