// Structural statistics for Table 1-style suite characterization:
// size, degree distribution shape, connectivity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "util/histogram.hpp"

namespace gcg {

struct GraphStats {
  vid_t n = 0;
  eid_t arcs = 0;
  double avg_degree = 0.0;
  vid_t min_degree = 0;
  vid_t max_degree = 0;
  double degree_stddev = 0.0;
  double degree_cv = 0.0;    ///< stddev/mean — the skew axis the paper studies
  double degree_gini = 0.0;  ///< 0 = regular, ->1 = extremely skewed
  vid_t isolated_vertices = 0;
  vid_t connected_components = 0;
};

GraphStats compute_stats(const Csr& g);

/// Degree histogram in power-of-two bins (for Fig-style characterization).
Histogram degree_histogram(const Csr& g);

/// Connected components via BFS; returns component id per vertex and count.
vid_t connected_components(const Csr& g, std::vector<vid_t>* labels = nullptr);

/// Exact triangle count via sorted-adjacency intersection on the degree
/// orientation (each triangle counted once). O(sum of min-degree work).
std::uint64_t count_triangles(const Csr& g);

/// Global clustering coefficient: 3*triangles / #wedges (0 when no wedge).
double global_clustering(const Csr& g);

/// One-line summary, e.g. "n=10000 m=39600 davg=7.9 dmax=12 cv=0.05 cc=1".
std::string describe(const GraphStats& s);

}  // namespace gcg
