#include "graph/stats.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/narrow.hpp"
#include "util/stats.hpp"

namespace gcg {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.n = g.num_vertices();
  s.arcs = g.num_arcs();
  SampleStats deg;
  deg.reserve(s.n);
  for (vid_t v = 0; v < s.n; ++v) {
    const vid_t d = g.degree(v);
    deg.add(static_cast<double>(d));
    if (d == 0) ++s.isolated_vertices;
  }
  if (s.n > 0) {
    s.avg_degree = deg.summary().mean();
    s.min_degree = narrow<vid_t>(deg.summary().min());
    s.max_degree = narrow<vid_t>(deg.summary().max());
    s.degree_stddev = deg.summary().stddev();
    s.degree_cv = deg.summary().cv();
    s.degree_gini = deg.gini();
  }
  s.connected_components = connected_components(g);
  return s;
}

Histogram degree_histogram(const Csr& g) {
  unsigned maxlog = 1;
  const vid_t dmax = g.max_degree();
  while ((1u << maxlog) < dmax && maxlog < 31) ++maxlog;
  Histogram h = Histogram::log2(maxlog + 1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    h.add(static_cast<double>(g.degree(v)));
  }
  return h;
}

vid_t connected_components(const Csr& g, std::vector<vid_t>* labels) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> label(n, n);  // n = unvisited sentinel
  vid_t components = 0;
  std::vector<vid_t> stack;
  for (vid_t root = 0; root < n; ++root) {
    if (label[root] != n) continue;
    const vid_t id = components++;
    label[root] = id;
    stack.push_back(root);
    while (!stack.empty()) {
      const vid_t u = stack.back();
      stack.pop_back();
      for (vid_t v : g.neighbors(u)) {
        if (label[v] == n) {
          label[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  if (labels) *labels = std::move(label);
  return components;
}

std::uint64_t count_triangles(const Csr& g) {
  const vid_t n = g.num_vertices();
  // Orient edges from lower-rank to higher-rank endpoint, rank = (degree,
  // id). Every triangle has exactly one source vertex under this
  // orientation, and out-degrees are O(sqrt(m)) on any graph.
  auto rank_less = [&](vid_t a, vid_t b) {
    return g.degree(a) < g.degree(b) || (g.degree(a) == g.degree(b) && a < b);
  };
  std::vector<std::vector<vid_t>> out(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (rank_less(u, v)) out[u].push_back(v);  // already sorted by id
    }
  }
  std::uint64_t triangles = 0;
  for (vid_t u = 0; u < n; ++u) {
    const auto& a = out[u];
    for (vid_t v : a) {
      const auto& b = out[v];
      // Sorted intersection |out(u) ∩ out(v)|.
      std::size_t i = 0, j = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
          ++i;
        } else if (a[i] > b[j]) {
          ++j;
        } else {
          ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

double global_clustering(const Csr& g) {
  std::uint64_t wedges = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(count_triangles(g)) /
         static_cast<double>(wedges);
}

std::string describe(const GraphStats& s) {
  std::ostringstream os;
  os << "n=" << s.n << " arcs=" << s.arcs << " davg=" << s.avg_degree
     << " dmax=" << s.max_degree << " cv=" << s.degree_cv
     << " gini=" << s.degree_gini << " cc=" << s.connected_components;
  return os.str();
}

}  // namespace gcg
