// Edge-list accumulator that produces clean CSR graphs: symmetrized,
// deduplicated, self-loop-free, sorted adjacency — the invariants every
// coloring kernel in this library relies on.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.hpp"

namespace gcg {

struct BuildOptions {
  bool symmetrize = true;        ///< add (v,u) for every (u,v)
  bool remove_self_loops = true; ///< drop (u,u)
  bool dedup = true;             ///< drop parallel edges
  bool sort_neighbors = true;    ///< sort each adjacency list ascending
};

class GraphBuilder {
 public:
  explicit GraphBuilder(vid_t num_vertices);

  void reserve(std::size_t edges) { edges_.reserve(edges); }
  void add_edge(vid_t u, vid_t v);
  std::size_t pending_edges() const { return edges_.size(); }
  vid_t num_vertices() const { return n_; }

  /// Consumes the accumulated edges and builds the CSR.
  Csr build(const BuildOptions& opts = {});

  /// Convenience: build a CSR directly from an edge list.
  static Csr from_edges(vid_t n, const std::vector<std::pair<vid_t, vid_t>>& edges,
                        const BuildOptions& opts = {});

 private:
  vid_t n_;
  std::vector<std::pair<vid_t, vid_t>> edges_;
};

}  // namespace gcg
