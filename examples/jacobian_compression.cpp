// Scenario: sparse Jacobian compression by distance-2 coloring.
//
// Estimating a sparse Jacobian with finite differences costs one function
// evaluation per column — unless structurally orthogonal columns (columns
// with no common nonzero row) are perturbed together. For a symmetric
// sparsity pattern, groups of mutually orthogonal columns are exactly the
// color classes of a distance-2 coloring of the adjacency graph.
//
// We compress the Jacobian of a 2D PDE stencil and report the evaluation
// savings, cross-checking that a plain distance-1 coloring is NOT enough.
//
//   ./examples/jacobian_compression [--nx 120] [--ny 120]
#include <iostream>

#include "coloring/distance2.hpp"
#include "graph/gen/grid.hpp"
#include "util/cli.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const auto nx = static_cast<vid_t>(cli.get_int("nx", 120));
  const auto ny = static_cast<vid_t>(cli.get_int("ny", 120));

  const Csr g = make_grid2d(nx, ny);
  const vid_t n = g.num_vertices();
  std::cout << "Jacobian of a " << nx << "x" << ny
            << " 5-point stencil: " << n << " columns, "
            << g.num_arcs() + n << " nonzeros\n\n";

  // Distance-1 coloring groups adjacent-only columns — NOT structurally
  // orthogonal (two neighbours of the same row collide). Demonstrate.
  const SeqColoring d1 = greedy_color(g);
  GCG_ENSURE(check::is_valid_coloring(g, d1.colors));
  const bool d1_ok = is_valid_coloring_d2(g, d1.colors);

  // Proper compression: distance-2 colorings, host and simulated GPU.
  const SeqColoring host = greedy_color_d2(g);
  GCG_ENSURE(is_valid_coloring_d2(g, host.colors));

  ColoringOptions opts;
  opts.collect_launches = false;
  const ColoringRun gpu = run_coloring_d2(simgpu::tahiti(), g, opts);
  GCG_ENSURE(is_valid_coloring_d2(g, gpu.colors));

  Table t({"method", "groups (F evals)", "compression", "orthogonal?"});
  t.precision(1);
  t.add_row({std::string("one eval per column (naive)"),
             static_cast<std::int64_t>(n), 1.0, std::string("yes")});
  t.add_row({std::string("distance-1 coloring (wrong)"),
             static_cast<std::int64_t>(d1.num_colors),
             static_cast<double>(n) / d1.num_colors,
             std::string(d1_ok ? "yes" : "NO")});
  t.add_row({std::string("distance-2 greedy (host)"),
             static_cast<std::int64_t>(host.num_colors),
             static_cast<double>(n) / host.num_colors, std::string("yes")});
  t.add_row({std::string("distance-2 speculative (gpu)"),
             static_cast<std::int64_t>(gpu.num_colors),
             static_cast<double>(n) / gpu.num_colors, std::string("yes")});
  std::cout << t.to_ascii();

  std::cout << "\n" << n << " function evaluations compress to "
            << gpu.num_colors << " — a " << n / to_unsigned(gpu.num_colors)
            << "x saving; the distance-1 grouping would corrupt the "
               "estimate wherever two grouped columns share a row.\n";
  return 0;
}
