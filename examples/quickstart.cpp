// Quickstart: generate a graph, color it on the simulated GPU with every
// algorithm, verify, and compare against sequential greedy.
//
//   ./examples/quickstart [--n 20000] [--seed 1]
#include <iostream>

#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/powerlaw.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const auto n = static_cast<vid_t>(cli.get_int("n", 20000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. Build a scale-free graph (the hard case for GPU coloring).
  const Csr g = make_barabasi_albert(n, 8, seed);
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, max degree " << g.max_degree() << "\n\n";

  // 2. Sequential greedy reference.
  const SeqColoring greedy = greedy_color(g, GreedyOrder::kNatural);
  std::cout << "sequential greedy: " << greedy.num_colors << " colors\n\n";

  // 3. Color on the simulated HD 7950 with every GPU algorithm.
  const simgpu::DeviceConfig device = simgpu::tahiti();
  Table t({"algorithm", "colors", "iterations", "simulated cycles",
           "model ms", "valid"});
  t.precision(3);
  for (Algorithm a : all_algorithms()) {
    ColoringOptions opts;
    opts.seed = seed;
    opts.collect_launches = false;
    const ColoringRun run = run_coloring(device, g, a, opts);
    t.add_row({std::string(algorithm_name(a)),
               static_cast<std::int64_t>(run.num_colors),
               static_cast<std::int64_t>(run.iterations), run.total_cycles,
               run.total_ms,
               std::string(check::is_valid_coloring(g, run.colors) ? "yes" : "NO")});
  }
  std::cout << t.to_ascii();
  std::cout << "\nTip: the hybrid variants should be fastest here — "
               "scale-free degree skew is exactly what they fix.\n";
  return 0;
}
