// Profiling walkthrough: color one graph with the baseline and the hybrid,
// exporting chrome://tracing timelines for both. Open the JSON files in
// chrome://tracing or https://ui.perfetto.dev to see, launch by launch,
// where the baseline loses time and what the hybrid's extra dispatches buy.
//
//   ./examples/profile_trace [--n 30000] [--out-dir .]
#include <iostream>

#include "coloring/runner.hpp"
#include "graph/gen/powerlaw.hpp"
#include "simgpu/trace.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const auto n = static_cast<vid_t>(cli.get_int("n", 30000));
  const std::string dir = cli.get("out-dir", ".");

  const Csr g = make_barabasi_albert(n, 8, 1);
  std::cout << "profiling on a " << n << "-vertex scale-free graph ("
            << g.num_edges() << " edges, dmax " << g.max_degree() << ")\n";

  for (Algorithm a : {Algorithm::kBaseline, Algorithm::kHybrid}) {
    // Re-run through a Device we keep, so the trace has the full timeline.
    simgpu::Device dev(simgpu::tahiti());
    ColoringOptions opts;
    opts.collect_launches = true;
    const ColoringRun run = run_coloring(dev.config(), g, a, opts);

    // Rebuild a device timeline from the collected launches with phase
    // labels (2 launches per iteration for the baseline; the hybrid's
    // label pattern depends on which bins were populated).
    simgpu::Device timeline(dev.config());
    std::vector<std::string> labels;
    for (const auto& l : run.launches) {
      timeline.record_launch(l);
      labels.push_back("launch " + std::to_string(labels.size()) + " (" +
                       std::to_string(static_cast<long>(l.kernel_cycles)) +
                       " cyc)");
    }

    const std::string path =
        dir + "/trace_" + algorithm_name(a) + ".json";
    simgpu::write_chrome_trace_file(path, timeline, labels);
    std::cout << algorithm_name(a) << ": " << run.total_cycles
              << " simulated cycles over " << run.launches.size()
              << " launches -> " << path << "\n";
  }
  std::cout << "open the JSON files in chrome://tracing to compare.\n";
  return 0;
}
