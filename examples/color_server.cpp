// Coloring-as-a-service daemon: serves line-delimited JSON coloring
// requests over a Unix-domain socket (protocol in docs/SERVICE.md),
// dispatching onto the native par backend through the graph registry and
// the bounded job queue. Runs until a client sends {"op":"shutdown"} or
// the process receives SIGINT/SIGTERM, then prints a summary table.
//
//   ./examples/color_server --socket /tmp/gcg.sock
//                           [--dispatchers 2] [--threads-per-job 0]
//                           [--queue 64] [--batch 8]
//                           [--cache-graphs 16] [--cache-mb 1024]
//                           [--mapped-cache-gb 256] [--no-mmap]
//                           [--warmup N] [--hugepages]
//                           [--no-verify] [--preload g1,g2,...]
//                           [--shard-workers 2] [--shard-threads 0]
//                           [--shard-rounds 16] [--shards 4]
//                           [--shard-in-process]
//
// .gbin v2 graphs are served zero-copy off the page cache via the mmap
// store (disable with --no-mmap). --warmup N pre-touches mapped pages on
// N threads at load; --hugepages asks for MAP_HUGETLB (best-effort).
//
// backend=shard jobs fan out to a fleet of shard_worker processes that
// is spawned lazily on the first such job (--shard-workers 0 disables
// the backend; such jobs are then rejected at submit).
#include <atomic>
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "shard/backend.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    if (comma > pos) out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

void print_summary(gcg::svc::Server& server) {
  using namespace gcg;
  const svc::SchedulerStats s = server.scheduler().stats();
  Table t({"metric", "value"});
  t.title("color_server session summary");
  t.add_row({"connections", static_cast<std::int64_t>(
                                server.connections_served())});
  t.add_row({"jobs submitted", static_cast<std::int64_t>(s.submitted)});
  t.add_row({"jobs completed", static_cast<std::int64_t>(s.completed)});
  t.add_row({"jobs failed", static_cast<std::int64_t>(s.failed)});
  t.add_row({"jobs cancelled", static_cast<std::int64_t>(s.cancelled)});
  t.add_row({"jobs rejected", static_cast<std::int64_t>(s.rejected)});
  t.add_row({"dispatch batches", static_cast<std::int64_t>(s.batches)});
  t.add_row({"jobs in multi-batches",
             static_cast<std::int64_t>(s.batched_jobs)});
  t.add_row({"latency p50 (ms)", s.latency_p50_ms});
  t.add_row({"latency p99 (ms)", s.latency_p99_ms});
  t.add_row({"latency max (ms)", s.latency_max_ms});
  t.add_row({"registry hits", static_cast<std::int64_t>(s.registry.hits)});
  t.add_row({"registry misses",
             static_cast<std::int64_t>(s.registry.misses)});
  t.add_row({"registry evictions",
             static_cast<std::int64_t>(s.registry.evictions)});
  t.add_row({"resident graphs",
             static_cast<std::int64_t>(s.registry.entries)});
  t.add_row({"resident MB",
             static_cast<double>(s.registry.bytes) / (1024.0 * 1024.0)});
  t.add_row({"mapped graphs",
             static_cast<std::int64_t>(s.registry.mapped_entries)});
  t.add_row({"mapped MB", static_cast<double>(s.registry.mapped_bytes) /
                              (1024.0 * 1024.0)});
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);

  svc::ServerOptions opts;
  opts.socket_path = cli.get("socket", "/tmp/gcg_color.sock");
  opts.scheduler.dispatchers =
      static_cast<unsigned>(cli.get_int("dispatchers", 2));
  opts.scheduler.threads_per_job =
      static_cast<unsigned>(cli.get_int("threads-per-job", 0));
  opts.scheduler.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue", 64));
  opts.scheduler.batch_limit =
      static_cast<std::size_t>(cli.get_int("batch", 8));
  opts.scheduler.registry.max_entries =
      static_cast<std::size_t>(cli.get_int("cache-graphs", 16));
  opts.scheduler.registry.max_bytes =
      static_cast<std::size_t>(cli.get_int("cache-mb", 1024)) << 20;
  opts.scheduler.registry.max_mapped_bytes =
      static_cast<std::size_t>(cli.get_int("mapped-cache-gb", 256)) << 30;
  opts.scheduler.registry.mmap_store = !cli.get_bool("no-mmap");
  opts.scheduler.registry.store.warmup_threads =
      static_cast<unsigned>(cli.get_int("warmup", 0));
  if (cli.get_bool("hugepages")) {
    opts.scheduler.registry.store.map.huge_pages = true;
  }
  opts.scheduler.verify = !cli.get_bool("no-verify");

  const unsigned shard_workers =
      static_cast<unsigned>(cli.get_int("shard-workers", 2));
  if (shard_workers > 0) {
    shard::BackendOptions bopts;
    bopts.workers = shard_workers;
    bopts.worker_threads =
        static_cast<unsigned>(cli.get_int("shard-threads", 0));
    bopts.default_shards = static_cast<unsigned>(cli.get_int("shards", 4));
    bopts.max_rounds = static_cast<unsigned>(cli.get_int("shard-rounds", 16));
    bopts.in_process = cli.get_bool("shard-in-process");
    opts.scheduler.shard_backend = shard::make_shard_backend(bopts);
  }

  try {
    svc::Server server(opts);
    std::cout << "color_server listening on " << server.socket_path() << "\n"
              << "  dispatchers=" << opts.scheduler.dispatchers
              << " queue=" << opts.scheduler.queue_capacity
              << " batch=" << opts.scheduler.batch_limit
              << " cache-graphs=" << opts.scheduler.registry.max_entries
              << " shard-workers=" << shard_workers << "\n";

    // Warm the registry so first requests skip the load.
    for (const std::string& spec : split_csv(cli.get("preload", ""))) {
      try {
        server.scheduler().registry().acquire(spec);
        std::cout << "preloaded " << spec << '\n';
      } catch (const std::exception& e) {
        std::cerr << "preload failed: " << e.what() << '\n';
      }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // Poll the signal flag between timed waits — a std::signal handler
    // can only set a flag, not notify the server's condition variable.
    while (!g_interrupted.load() && !server.wait_for(200.0)) {
    }

    server.stop();
    print_summary(server);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
