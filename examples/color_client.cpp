// Command-line client for color_server. One verb per invocation:
//
//   color_client submit <graph-spec> [--socket S] [--backend par|sim]
//                [--algorithm steal] [--priority random] [--seed 1]
//                [--threads 0] [--deadline-ms 0] [--wait]
//                [--count N] [--concurrency C]     (mini load generator)
//   color_client status <id> | result <id> | cancel <id>
//   color_client stats | ping | shutdown
//
// <graph-spec> is a file path (.mtx/.col/.el/.gbin) or a generator spec
// like gen:rmat-like?scale=0.25&seed=1 (see docs/SERVICE.md).
#include <algorithm>
#include <atomic>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "util/cli.hpp"

namespace {

constexpr const char* kDefaultSocket = "/tmp/gcg_color.sock";

int usage() {
  std::cerr
      << "usage: color_client <verb> [args] [--socket PATH]\n"
         "  submit <graph-spec> [--backend par|sim|shard] [--algorithm NAME]\n"
         "         [--priority random|degree-biased|natural] [--seed N]\n"
         "         [--threads N] [--order NAME] [--deadline-ms MS]\n"
         "         [--keep-colors]\n"
         "         [--shards N] [--shard-rounds N] (backend shard)\n"
         "         [--wait] [--count N] [--concurrency C]\n"
         "  status <id> | result <id> | cancel <id>\n"
         "  stats | ping | shutdown\n";
  return 2;
}

gcg::svc::JobSpec spec_from_cli(const gcg::Cli& cli,
                                const std::string& graph) {
  gcg::svc::JobSpec spec;
  spec.graph = graph;
  spec.backend = gcg::svc::backend_from_name(cli.get("backend", "par"));
  spec.algorithm = cli.get(
      "algorithm", spec.backend == gcg::svc::Backend::kPar     ? "steal"
                   : spec.backend == gcg::svc::Backend::kShard ? "jpl"
                                                               : "hybrid+steal");
  spec.priority = cli.get("priority", "random");
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  spec.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  spec.order = cli.get("order", "");  // par only; service validates the name
  spec.deadline_ms = cli.get_double("deadline-ms", 0.0);
  spec.keep_colors = cli.get_bool("keep-colors");
  spec.shards = static_cast<unsigned>(cli.get_int("shards", 0));
  spec.shard_rounds = static_cast<unsigned>(cli.get_int("shard-rounds", 0));
  return spec;
}

/// Submit `count` copies across `concurrency` connections; print a recap.
int submit_many(const std::string& socket, const gcg::svc::JobSpec& spec,
                bool wait, int count, int concurrency) {
  using namespace gcg::svc;
  std::mutex mu;
  std::uint64_t ok = 0, rejected = 0, failed = 0;
  std::vector<std::thread> team;
  std::atomic<int> remaining{count};
  for (int c = 0; c < concurrency; ++c) {
    team.emplace_back([&] {
      try {
        Client client(socket);
        while (remaining.fetch_sub(1) > 0) {
          const Json reply = client.submit(spec, wait);
          std::lock_guard<std::mutex> lock(mu);
          if (reply.get_bool("ok", false)) {
            ++ok;
          } else if (reply.get_string("error", "") == kErrQueueFull) {
            ++rejected;
          } else {
            ++failed;
          }
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu);
        ++failed;
        std::cerr << "worker error: " << e.what() << '\n';
      }
    });
  }
  for (std::thread& t : team) t.join();
  std::cout << "submitted " << count << ": ok=" << ok
            << " queue_full=" << rejected << " failed=" << failed << '\n';
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string verb = cli.positional()[0];
  const std::string socket = cli.get("socket", kDefaultSocket);

  try {
    if (verb == "submit") {
      if (cli.positional().size() < 2) return usage();
      const svc::JobSpec spec = spec_from_cli(cli, cli.positional()[1]);
      const bool wait = cli.get_bool("wait");
      const int count = static_cast<int>(cli.get_int("count", 1));
      const int concurrency =
          static_cast<int>(cli.get_int("concurrency", 1));
      if (count > 1 || concurrency > 1) {
        return submit_many(socket, spec, wait, count,
                           std::max(1, concurrency));
      }
      svc::Client client(socket);
      const svc::Json reply = client.submit(spec, wait);
      std::cout << reply.dump() << '\n';
      return reply.get_bool("ok", false) ? 0 : 1;
    }

    svc::Client client(socket);
    svc::Json reply;
    if (verb == "status" || verb == "result" || verb == "cancel") {
      if (cli.positional().size() < 2) return usage();
      const std::uint64_t id =
          static_cast<std::uint64_t>(std::stoull(cli.positional()[1]));
      if (verb == "status") reply = client.status(id);
      else if (verb == "result") reply = client.result(id);
      else reply = client.cancel(id);
    } else if (verb == "stats") {
      reply = client.stats();
    } else if (verb == "ping") {
      reply = svc::Json{svc::JsonObject{}};
      reply["ok"] = svc::Json(client.ping());
    } else if (verb == "shutdown") {
      reply = svc::Json{svc::JsonObject{}};
      reply["ok"] = svc::Json(client.shutdown_server());
    } else {
      return usage();
    }
    std::cout << reply.dump() << '\n';
    return reply.get_bool("ok", false) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
