// Shard worker daemon: serves shard_color / shard_repair requests (plus
// ping/shutdown) over a line-JSON Unix socket. Normally spawned — one
// per fleet slot — by shard::Coordinator, which passes --socket and
// --threads; it also runs standalone for protocol debugging:
//
//   ./examples/shard_worker --socket /tmp/gcg_shard.sock
//                           [--threads N] [--repair-rounds 4096]
//                           [--cache-graphs 4] [--cache-mb 1024]
//                           [--no-mmap]
//
// Exits 0 on shutdown verb or SIGINT/SIGTERM, 2 on usage error.
#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "shard/worker.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const std::string socket = cli.get("socket", "");
  if (socket.empty()) {
    std::cerr << "usage: shard_worker --socket PATH [--threads N] "
                 "[--repair-rounds N] [--cache-graphs N] [--cache-mb N] "
                 "[--no-mmap]\n";
    return 2;
  }

  shard::Worker::Options wopts;
  wopts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  wopts.repair_max_rounds =
      static_cast<unsigned>(cli.get_int("repair-rounds", 4096));
  wopts.registry.max_entries =
      static_cast<std::size_t>(cli.get_int("cache-graphs", 4));
  wopts.registry.max_bytes =
      static_cast<std::size_t>(cli.get_int("cache-mb", 1024)) << 20;
  wopts.registry.mmap_store = !cli.get_bool("no-mmap");

  try {
    shard::WorkerServer ws(socket, wopts);
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    // Poll the signal flag between timed waits — a std::signal handler
    // can only set a flag, not notify the server's condition variable.
    while (!g_interrupted.load() && !ws.wait_for(200.0)) {
    }
    ws.stop();
  } catch (const std::exception& e) {
    std::cerr << "shard_worker: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
