// Command-line coloring tool: load a graph file (.mtx/.col/.el/.gbin)
// or a generator spec (gen:kron-like?scale=0.5&seed=1), color it with a
// chosen algorithm, verify, and optionally write the color assignment.
// Runs on the simulated GPU (default), the native multicore backend, or
// a sharded multi-process worker fleet.
//
// Exit codes (stable, for scripts/CI): 0 = valid coloring produced,
// 1 = error (unreadable graph, bad flag value, ...), 2 = usage,
// 3 = the produced coloring FAILED validity verification.
//
//   ./examples/color_tool graph.mtx [--backend sim|par|shard]
//                                   [--algorithm hybrid+steal]
//                                   [--threads N]   (par backend)
//                                   [--grain N] [--schedule vertex|edge]
//                                   [--hub-threshold N]   (par scheduling)
//                                   [--shards 4] [--workers 2]
//                                   [--rounds 16] [--in-process]
//                                                   (shard backend)
//                                   [--order natural] [--out colors.txt]
//                                   [--seed 1] [--stats]
//                                   [--store]
//
// --store packs the input to .gbin v2 on first use (reusing an existing
// pack) and serves it as a zero-copy mmap view — repeat invocations skip
// the parse entirely.
#include <fstream>
#include <iostream>

#include "coloring/quality.hpp"
#include "coloring/runner.hpp"
#include "check/check.hpp"
#include "graph/io/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "par/runner.hpp"
#include "shard/coordinator.hpp"
#include "store/mapped_graph.hpp"
#include "store/writer.hpp"
#include "svc/graph_registry.hpp"
#include "util/cli.hpp"

namespace {

void write_colors(const gcg::Cli& cli, std::span<const gcg::color_t> colors) {
  const std::string out = cli.get("out", "");
  if (out.empty()) return;
  std::ofstream os(out);
  for (std::size_t v = 0; v < colors.size(); ++v) {
    os << v << ' ' << colors[v] << '\n';
  }
  std::cout << "wrote " << out << '\n';
}

// Distinct exit code for "ran fine but the coloring is wrong", so CI can
// tell an algorithmic regression from an environment problem.
constexpr int kExitInvalidColoring = 3;

int run_sim(const gcg::Cli& cli, const gcg::Csr& g) {
  using namespace gcg;
  const Algorithm algo =
      algorithm_from_name(cli.get("algorithm", "hybrid+steal"));
  ColoringOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  opts.collect_launches = false;

  const ColoringRun run = run_coloring(simgpu::tahiti(), g, algo, opts);
  if (const auto violation = check::verify_coloring(g, run.colors)) {
    std::cerr << "INVALID COLORING: " << violation->to_string() << '\n';
    return kExitInvalidColoring;
  }

  const QualityReport q = analyze_quality(g, run.colors);
  std::cout << "backend:     sim\n"
            << "algorithm:   " << algorithm_name(algo) << '\n'
            << "colors:      " << run.num_colors << '\n'
            << "iterations:  " << run.iterations << '\n'
            << "sim cycles:  " << run.total_cycles << '\n'
            << "model time:  " << run.total_ms << " ms\n"
            << "parallelism: " << q.mean_parallelism
            << " vertices/color class (mean)\n";
  write_colors(cli, run.colors);
  return 0;
}

int run_par(const gcg::Cli& cli, const gcg::Csr& g) {
  using namespace gcg;
  const par::ParAlgorithm algo =
      par::par_algorithm_from_name(cli.get("algorithm", "steal"));
  par::ParOptions opts;
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.grain = static_cast<std::uint32_t>(cli.get_int("grain", opts.grain));
  opts.schedule = par::schedule_from_name(
      cli.get("schedule", par::schedule_name(opts.schedule)));
  opts.hub_degree_threshold = static_cast<std::uint32_t>(
      cli.get_int("hub-threshold", opts.hub_degree_threshold));
  // The runner owns the reorder pipeline (color relabeled, unmap back),
  // so run.colors below are already in this graph's vertex ids.
  opts.order = order_from_name(cli.get("order", "natural"));

  const par::ParRun run = par::run_par_coloring(g, algo, opts);
  if (const auto violation = check::verify_coloring(g, run.colors)) {
    std::cerr << "INVALID COLORING: " << violation->to_string() << '\n';
    return kExitInvalidColoring;
  }

  const QualityReport q = analyze_quality(g, run.colors);
  std::cout << "backend:     par (" << run.threads << " threads)\n"
            << "algorithm:   " << par_algorithm_name(algo) << '\n'
            << "colors:      " << run.num_colors << '\n'
            << "iterations:  " << run.iterations << '\n'
            << "wall time:   " << run.wall_ms << " ms\n";
  if (run.order != Order::kNatural) {
    std::cout << "order:       " << order_name(run.order) << " ("
              << run.reorder_ms << " ms reorder)\n";
  }
  std::cout
            << "imbalance:   " << run.imbalance.cu_max_over_mean
            << " max/mean worker busy\n"
            << "parallelism: " << q.mean_parallelism
            << " vertices/color class (mean)\n";
  if (run.steal.steal_attempts > 0) {
    std::cout << "steals:      " << run.steal.steal_hits << '/'
              << run.steal.steal_attempts << " hits ("
              << run.steal.chunks_stolen << " chunks)\n";
  }
  write_colors(cli, run.colors);
  return 0;
}

// Sharded backend: a worker fleet (forked shard_worker processes, or
// in-process server threads with --in-process) colors edge-balanced
// vertex ranges independently, then the coordinator drives bounded
// rounds of boundary-conflict repair. The workers re-resolve `spec`
// through their own graph registries, so it must name the same graph we
// loaded here. For gen: specs main() supports --order by rewriting the
// spec with an order= parameter — every worker then resolves the
// identical reordered graph — and passes `unmap` (perm[old] = new) so
// the merged colors are reported in the caller's original vertex ids;
// file-backed graphs still reject --order (workers cannot reproduce the
// relabeling from a path alone).
int run_shard(const gcg::Cli& cli, const gcg::Csr& g, const std::string& spec,
              const std::vector<gcg::vid_t>& unmap) {
  using namespace gcg;
  shard::CoordinatorOptions copts;
  copts.workers = static_cast<unsigned>(cli.get_int("workers", 2));
  copts.worker_threads = static_cast<unsigned>(cli.get_int("threads", 0));
  copts.max_rounds = static_cast<unsigned>(cli.get_int("rounds", 16));
  copts.in_process = cli.get_bool("in-process");
  shard::Coordinator coord(copts);

  shard::ShardJob job;
  job.graph = spec;
  job.shards = static_cast<unsigned>(cli.get_int("shards", 4));
  job.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  job.algorithm = cli.get("algorithm", "jpl");

  shard::ShardRunStats st;
  std::vector<color_t> colors = coord.color(g, job, &st);
  if (const auto violation = check::verify_coloring(g, colors)) {
    std::cerr << "INVALID COLORING: " << violation->to_string() << '\n';
    return kExitInvalidColoring;
  }
  if (!unmap.empty()) {
    // Back to the pre-reorder vertex ids (validity is label-invariant).
    std::vector<color_t> original(colors.size());
    for (vid_t v = 0; v < static_cast<vid_t>(colors.size()); ++v) {
      original[v] = colors[unmap[v]];
    }
    colors = std::move(original);
  }

  const QualityReport q = analyze_quality(g, colors);
  std::cout << "backend:     shard (" << st.shards << " shards on "
            << st.workers << (copts.in_process ? " threads)\n" : " workers)\n")
            << "algorithm:   " << job.algorithm << '\n'
            << "colors:      " << st.num_colors << '\n'
            << "rounds:      " << st.conflict_rounds << " conflict rounds\n"
            << "boundary:    " << st.boundary_vertices << " vertices ("
            << 100.0 * st.boundary_fraction << "% of n), " << st.cut_arcs
            << " cut arcs\n"
            << "recolored:   " << st.recolored << " by workers, "
            << st.fallback_recolored << " inline\n"
            << "wall time:   " << st.wall_ms << " ms\n"
            << "parallelism: " << q.mean_parallelism
            << " vertices/color class (mean)\n";
  write_colors(cli, colors);
  return 0;
}

// Pack-on-first-load: convert the input to .gbin v2 next to it (reusing
// an existing pack), then mmap. The returned Csr is a zero-copy view
// whose keepalive pins the mapping, so it outlives the local handle.
gcg::Csr open_via_store(const std::string& input) {
  using namespace gcg;
  std::string target = input;
  if (!store::is_gbin_v2_file(input)) {
    const store::PackResult pr =
        store::pack(input, store::default_pack_target(input),
                    /*reuse_existing=*/true);
    target = pr.output;
    std::cout << "store:       " << (pr.reused ? "reusing " : "packed ")
              << pr.output << " (" << pr.output_bytes << " bytes)\n";
  }
  const auto mg = store::MappedGraph::open(target);
  std::cout << "store:       "
            << (mg->is_mapped() ? "mapped (zero-copy view)" : "heap fallback")
            << '\n';
  return mg->graph();  // view copy shares the mapping anchor
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: color_tool <graph.{mtx,col,el,gbin} | gen:NAME> "
                 "[--backend sim|par|shard] [--algorithm NAME] [--threads N] "
                 "[--shards N] [--workers N] [--rounds N] [--in-process] "
                 "[--order NAME] [--out FILE] [--seed N] [--stats] "
                 "[--store]\n";
    std::cerr << "sim algorithms:";
    for (Algorithm a : all_algorithms()) std::cerr << ' ' << algorithm_name(a);
    std::cerr << "\npar algorithms:";
    for (par::ParAlgorithm a : par::all_par_algorithms()) {
      std::cerr << ' ' << par::par_algorithm_name(a);
    }
    std::cerr << '\n';
    return 2;
  }

  try {
    const std::string& spec = cli.positional()[0];
    // gen: specs go through the service registry (same parser the shard
    // workers use); a copy of a generated graph is owning, so the local
    // registry can die right here.
    Csr g = spec.rfind("gen:", 0) == 0 ? *svc::GraphRegistry().acquire(spec)
            : cli.get_bool("store")    ? open_via_store(spec)
                                       : load_graph(spec);
    if (const auto issue = check::validate_csr(g)) {
      std::cerr << "error: malformed graph: " << issue->to_string() << '\n';
      return 1;
    }
    const std::string backend = cli.get("backend", "sim");
    const Order order = order_from_name(cli.get("order", "natural"));
    std::string shard_spec = spec;
    std::vector<vid_t> shard_unmap;  // perm[old] = new when shard reorders
    if (order != Order::kNatural) {
      if (backend == "par") {
        // Threaded through ParOptions in run_par: the runner colors the
        // relabeled graph and unmaps, so g stays as loaded here.
      } else if (backend == "shard") {
        // Safe only when every worker can reproduce the exact reordered
        // graph from the spec string: gen: specs grow an order= parameter
        // (the registry relabels deterministically after generating);
        // file paths and the seed-dependent random order stay rejected.
        if (spec.rfind("gen:", 0) != 0) {
          std::cerr << "error: --order with --backend shard requires a gen: "
                       "spec (workers cannot reproduce a reordered file "
                       "graph)\n";
          return 2;
        }
        if (order == Order::kRandom) {
          std::cerr << "error: --order random is not supported with "
                       "--backend shard (the shuffle depends on the "
                       "generator seed embedded in the spec)\n";
          return 2;
        }
        shard_unmap = make_order(g, order);
        g = apply_order(g, shard_unmap);
        shard_spec += shard_spec.find('?') == std::string::npos ? "?" : "&";
        shard_spec += std::string("order=") + order_name(order);
      } else {
        g = reorder(g, order);
      }
    }

    if (cli.get_bool("stats")) {
      std::cout << describe(compute_stats(g)) << '\n';
      std::cout << degree_histogram(g).render();
    }

    if (backend == "sim") return run_sim(cli, g);
    if (backend == "par") return run_par(cli, g);
    if (backend == "shard") return run_shard(cli, g, shard_spec, shard_unmap);
    std::cerr << "error: unknown backend '" << backend
              << "' (sim|par|shard)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
