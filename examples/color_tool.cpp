// Command-line coloring tool: load a graph file (.mtx/.col/.el/.gbin),
// color it with a chosen algorithm, verify, and optionally write the
// color assignment.
//
//   ./examples/color_tool graph.mtx [--algorithm hybrid+steal]
//                                   [--order natural] [--out colors.txt]
//                                   [--seed 1] [--stats]
#include <fstream>
#include <iostream>

#include "coloring/quality.hpp"
#include "coloring/runner.hpp"
#include "coloring/verify.hpp"
#include "graph/io/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: color_tool <graph.{mtx,col,el,gbin}> "
                 "[--algorithm NAME] [--order NAME] [--out FILE] [--seed N] "
                 "[--stats]\n";
    std::cerr << "algorithms:";
    for (Algorithm a : all_algorithms()) std::cerr << ' ' << algorithm_name(a);
    std::cerr << '\n';
    return 2;
  }

  try {
    Csr g = load_graph(cli.positional()[0]);
    const Order order = order_from_name(cli.get("order", "natural"));
    if (order != Order::kNatural) g = reorder(g, order);

    if (cli.get_bool("stats")) {
      std::cout << describe(compute_stats(g)) << '\n';
      std::cout << degree_histogram(g).render();
    }

    const Algorithm algo =
        algorithm_from_name(cli.get("algorithm", "hybrid+steal"));
    ColoringOptions opts;
    opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    opts.collect_launches = false;

    const ColoringRun run = run_coloring(simgpu::tahiti(), g, algo, opts);
    if (const auto violation = find_violation(g, run.colors)) {
      std::cerr << "INVALID COLORING: " << violation->to_string() << '\n';
      return 1;
    }

    const QualityReport q = analyze_quality(g, run.colors);
    std::cout << "algorithm:   " << algorithm_name(algo) << '\n'
              << "colors:      " << run.num_colors << '\n'
              << "iterations:  " << run.iterations << '\n'
              << "sim cycles:  " << run.total_cycles << '\n'
              << "model time:  " << run.total_ms << " ms\n"
              << "parallelism: " << q.mean_parallelism
              << " vertices/color class (mean)\n";

    const std::string out = cli.get("out", "");
    if (!out.empty()) {
      std::ofstream os(out);
      for (std::size_t v = 0; v < run.colors.size(); ++v) {
        os << v << ' ' << run.colors[v] << '\n';
      }
      std::cout << "wrote " << out << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
