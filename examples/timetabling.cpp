// Scenario: exam timetabling via conflict-graph coloring.
//
// Courses that share at least one student cannot hold exams in the same
// slot. We synthesize enrollments (students pick a major cluster plus
// electives — producing community structure with hub "service" courses),
// project the bipartite enrollment onto a course-conflict graph, and color
// it: colors = exam slots.
//
//   ./examples/timetabling [--courses 2500] [--students 40000]
#include <iostream>
#include <set>

#include "coloring/quality.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/builder.hpp"
#include "util/cli.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const auto courses = static_cast<vid_t>(cli.get_int("courses", 2500));
  const auto students = static_cast<std::uint32_t>(cli.get_int("students", 40000));
  const vid_t clusters = 25;  // departments

  Xoshiro256ss rng(11);
  GraphBuilder conflicts(courses);
  std::set<std::pair<vid_t, vid_t>> seen;  // avoid quadratic duplicates

  for (std::uint32_t s = 0; s < students; ++s) {
    // 4 courses in the major cluster, 1-2 electives anywhere, and a 10%
    // chance of one of the first 20 "service" courses (the hubs).
    const vid_t cluster = static_cast<vid_t>(rng.bounded(clusters));
    const vid_t base = cluster * (courses / clusters);
    std::vector<vid_t> load;
    for (int k = 0; k < 4; ++k) {
      load.push_back(base + static_cast<vid_t>(rng.bounded(courses / clusters)));
    }
    const int electives = 1 + static_cast<int>(rng.bounded(2));
    for (int k = 0; k < electives; ++k) {
      load.push_back(static_cast<vid_t>(rng.bounded(courses)));
    }
    if (rng.uniform() < 0.10) {
      load.push_back(static_cast<vid_t>(rng.bounded(20)));
    }
    for (std::size_t i = 0; i < load.size(); ++i) {
      for (std::size_t j = i + 1; j < load.size(); ++j) {
        vid_t a = load[i], b = load[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (seen.emplace(a, b).second) conflicts.add_edge(a, b);
      }
    }
  }

  const Csr g = conflicts.build();
  std::cout << "conflict graph: " << g.num_vertices() << " courses, "
            << g.num_edges() << " conflicts, max degree " << g.max_degree()
            << "\n\n";

  Table t({"strategy", "exam slots", "largest slot", "slot size CV",
           "sim cycles"});
  t.precision(2);

  const SeqColoring sl = greedy_color(g, GreedyOrder::kSmallestLast);
  const QualityReport slq = analyze_quality(g, sl.colors);
  t.add_row({std::string("seq smallest-last"),
             static_cast<std::int64_t>(slq.num_colors),
             static_cast<std::int64_t>(*std::max_element(
                 slq.class_sizes.begin(), slq.class_sizes.end())),
             slq.class_size_cv, 0.0});

  const auto device = simgpu::tahiti();
  for (Algorithm a :
       {Algorithm::kBaseline, Algorithm::kSpeculative, Algorithm::kHybridSteal}) {
    ColoringOptions opts;
    opts.collect_launches = false;
    const ColoringRun run = run_coloring(device, g, a, opts);
    GCG_ENSURE(check::is_valid_coloring(g, run.colors));
    const QualityReport q = analyze_quality(g, run.colors);
    t.add_row({std::string("gpu-") + algorithm_name(a),
               static_cast<std::int64_t>(q.num_colors),
               static_cast<std::int64_t>(*std::max_element(
                   q.class_sizes.begin(), q.class_sizes.end())),
               q.class_size_cv, run.total_cycles});
  }

  std::cout << t.to_ascii();
  std::cout << "\nEvery color class is a conflict-free exam slot. Service\n"
               "courses (hubs) make this graph skewed — the hybrid GPU\n"
               "algorithm handles them without serializing a wavefront.\n";
  return 0;
}
