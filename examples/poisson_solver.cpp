// The full pipeline the paper motivates, end to end on one device model:
//   1. build a sparse system (2D Poisson),
//   2. color its graph ON THE GPU (hybrid+steal),
//   3. run multicolor Gauss–Seidel ON THE GPU using those colors,
// and compare against host sequential Gauss–Seidel: same solution, but
// every sweep is num_colors data-parallel kernels instead of n dependent
// scalar updates.
//
//   ./examples/poisson_solver [--nx 64] [--ny 64] [--tol 1e-8]
#include <iostream>

#include "apps/gauss_seidel.hpp"
#include "coloring/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const auto nx = static_cast<vid_t>(cli.get_int("nx", 64));
  const auto ny = static_cast<vid_t>(cli.get_int("ny", 64));
  GsOptions gs;
  gs.tolerance = cli.get_double("tol", 1e-8);
  gs.max_sweeps = static_cast<unsigned>(cli.get_int("max-sweeps", 5000));

  const SparseMatrix A = make_poisson2d(nx, ny);
  const std::vector<double> b(A.n(), 1.0);
  std::cout << "solving " << nx << "x" << ny << " Poisson ("
            << A.n() << " unknowns) to ||r||_inf < " << gs.tolerance << "\n\n";

  // Step 1: GPU coloring.
  const auto device_cfg = simgpu::tahiti();
  ColoringOptions copts;
  copts.collect_launches = false;
  const ColoringRun coloring =
      run_coloring(device_cfg, A.structure, Algorithm::kHybridSteal, copts);
  std::cout << "gpu coloring: " << coloring.num_colors << " colors in "
            << coloring.iterations << " iterations ("
            << coloring.total_cycles << " cycles)\n";

  // Step 2: host reference solve.
  const GsResult host = gauss_seidel_host(A, b, gs);

  // Step 3: multicolor GPU solve with the GPU coloring.
  simgpu::Device dev(device_cfg);
  const GsResult mc = gauss_seidel_multicolor(dev, A, b, coloring.colors, gs);

  Table t({"solver", "sweeps", "final residual", "kernel launches",
           "device cycles"});
  t.precision(3);
  t.add_row({std::string("host sequential GS"),
             static_cast<std::int64_t>(host.sweeps), host.final_residual,
             std::int64_t{0}, 0.0});
  t.add_row({std::string("gpu multicolor GS"),
             static_cast<std::int64_t>(mc.sweeps), mc.final_residual,
             static_cast<std::int64_t>(dev.launch_count()), mc.device_cycles});
  std::cout << t.to_ascii();

  double max_diff = 0.0;
  for (vid_t v = 0; v < A.n(); ++v) {
    max_diff = std::max(max_diff, std::abs(host.x[v] - mc.x[v]));
  }
  std::cout << "\nmax |x_host - x_gpu| = " << max_diff
            << "  (same fixed point; sweep counts differ only through the\n"
               " update order the coloring induces)\n";
  return 0;
}
