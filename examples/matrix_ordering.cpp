// Scenario: multicolor ordering for parallel Gauss–Seidel.
//
// Classic use of graph coloring (and the paper's motivating application
// class): color the adjacency graph of a sparse matrix so that unknowns of
// one color have no mutual dependencies — each color class then updates in
// parallel, and a Gauss–Seidel sweep becomes `num_colors` parallel steps.
//
// We build a 2D Poisson (5-point stencil) system, color it, and report the
// parallel schedule quality (steps, parallelism per step) for several
// coloring strategies. The 5-point stencil is 2-colorable (red-black); a
// good coloring gets close, a bad one wastes parallel steps.
//
//   ./examples/matrix_ordering [--nx 300] [--ny 300]
#include <cmath>
#include <iostream>

#include "coloring/quality.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/gen/grid.hpp"
#include "util/cli.hpp"
#include "util/expect.hpp"
#include "util/table.hpp"

namespace {

/// Simulated cost of one multicolor Gauss–Seidel sweep on a machine with
/// `lanes` parallel units: each color class is one step; a step costs
/// ceil(class_size / lanes) time units.
double sweep_cost(const gcg::QualityReport& q, double lanes) {
  double cost = 0.0;
  for (auto size : q.class_sizes) {
    cost += std::ceil(static_cast<double>(size) / lanes);
  }
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  const Cli cli(argc, argv);
  const auto nx = static_cast<vid_t>(cli.get_int("nx", 300));
  const auto ny = static_cast<vid_t>(cli.get_int("ny", 300));
  const double lanes = 28.0 * 64.0;  // one Tahiti's worth of parallel units

  const Csr g = make_grid2d(nx, ny);
  std::cout << "Poisson 5-point system: " << g.num_vertices() << " unknowns, "
            << g.num_edges() << " couplings (chromatic number 2: red-black)\n\n";

  Table t({"coloring", "colors", "largest class %", "GS sweep steps",
           "sweep cost (time units)", "vs red-black"});
  t.precision(2);

  // Ideal red-black reference.
  std::vector<color_t> redblack(g.num_vertices());
  for (vid_t y = 0; y < ny; ++y) {
    for (vid_t x = 0; x < nx; ++x) {
      redblack[y * nx + x] = static_cast<color_t>((x + y) % 2);
    }
  }
  GCG_ENSURE(check::is_valid_coloring(g, redblack));
  const QualityReport rb = analyze_quality(g, redblack);
  const double rb_cost = sweep_cost(rb, lanes);
  t.add_row({std::string("red-black (ideal)"), std::int64_t{2},
             rb.largest_class_fraction * 100.0, std::int64_t{2}, rb_cost, 1.0});

  // Sequential greedy.
  const SeqColoring greedy = greedy_color(g, GreedyOrder::kNatural);
  const QualityReport gq = analyze_quality(g, greedy.colors);
  t.add_row({std::string("seq-greedy"), static_cast<std::int64_t>(gq.num_colors),
             gq.largest_class_fraction * 100.0,
             static_cast<std::int64_t>(gq.num_colors), sweep_cost(gq, lanes),
             sweep_cost(gq, lanes) / rb_cost});

  // GPU colorings.
  const auto device = simgpu::tahiti();
  for (Algorithm a :
       {Algorithm::kBaseline, Algorithm::kSpeculative, Algorithm::kHybridSteal}) {
    ColoringOptions opts;
    opts.collect_launches = false;
    const ColoringRun run = run_coloring(device, g, a, opts);
    GCG_ENSURE(check::is_valid_coloring(g, run.colors));
    const QualityReport q = analyze_quality(g, run.colors);
    t.add_row({std::string("gpu-") + algorithm_name(a),
               static_cast<std::int64_t>(q.num_colors),
               q.largest_class_fraction * 100.0,
               static_cast<std::int64_t>(q.num_colors), sweep_cost(q, lanes),
               sweep_cost(q, lanes) / rb_cost});
  }

  std::cout << t.to_ascii();
  std::cout << "\nMore colors = more sequential sweep steps; independent-set\n"
               "colorings trade a few extra classes for a fast parallel\n"
               "coloring phase — worth it when the matrix changes often.\n";
  return 0;
}
