// Scenario: register allocation by interference-graph coloring.
//
// A compiler assigns variables to k machine registers; two variables
// interfere (need different registers) when their live ranges overlap. We
// synthesize live ranges over a straight-line program, build the
// interference graph, color it, and report how many variables would spill
// for a given register budget under each coloring strategy.
//
//   ./examples/register_alloc [--vars 8000] [--len 100000] [--regs 16]
#include <algorithm>
#include <iostream>

#include "check/coloring.hpp"
#include "coloring/runner.hpp"
#include "coloring/seq_greedy.hpp"
#include "graph/builder.hpp"
#include "util/cli.hpp"
#include "util/expect.hpp"
#include "util/narrow.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace gcg;

struct LiveRange {
  std::uint32_t start;
  std::uint32_t end;
};

/// Interference graph via a sweep over range endpoints (O(n log n + m)).
Csr build_interference(const std::vector<LiveRange>& ranges) {
  const auto n = static_cast<vid_t>(ranges.size());
  std::vector<vid_t> by_start(n);
  for (vid_t v = 0; v < n; ++v) by_start[v] = v;
  std::sort(by_start.begin(), by_start.end(), [&](vid_t a, vid_t b) {
    return ranges[a].start < ranges[b].start;
  });

  GraphBuilder b(n);
  // Active set of live ranges ordered by end point.
  std::vector<vid_t> active;
  for (vid_t v : by_start) {
    std::erase_if(active,
                  [&](vid_t u) { return ranges[u].end <= ranges[v].start; });
    for (vid_t u : active) b.add_edge(u, v);
    active.push_back(v);
  }
  return b.build();
}

/// Spill count: variables whose color exceeds the register budget, chosen
/// greedily by class size (keep the biggest classes in registers).
std::uint32_t spills(const std::vector<color_t>& colors, int regs) {
  std::vector<std::uint32_t> class_size;
  for (color_t c : colors) {
    if (c >= static_cast<color_t>(class_size.size())) {
      class_size.resize(to_unsigned(c) + 1, 0);
    }
    if (c >= 0) ++class_size[to_unsigned(c)];
  }
  std::sort(class_size.rbegin(), class_size.rend());
  std::uint32_t spilled = 0;
  for (std::size_t c = to_unsigned(regs); c < class_size.size(); ++c) {
    spilled += class_size[c];
  }
  return spilled;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto vars = static_cast<vid_t>(cli.get_int("vars", 8000));
  const auto len = static_cast<std::uint32_t>(cli.get_int("len", 100000));
  const int regs = static_cast<int>(cli.get_int("regs", 16));

  // Synthesize live ranges: mostly short (expression temps), a few long
  // (loop-carried values) — the mix that makes interference graphs chordal
  // -ish with a handful of high-degree hubs.
  Xoshiro256ss rng(7);
  std::vector<LiveRange> ranges;
  ranges.reserve(vars);
  for (vid_t v = 0; v < vars; ++v) {
    const auto start = static_cast<std::uint32_t>(rng.bounded(len));
    const bool long_lived = rng.uniform() < 0.03;
    const auto span = static_cast<std::uint32_t>(
        long_lived ? rng.bounded(len / 4) + len / 10 : rng.bounded(60) + 1);
    ranges.push_back({start, std::min(len, start + span)});
  }

  const Csr g = build_interference(ranges);
  std::cout << "interference graph: " << g.num_vertices() << " variables, "
            << g.num_edges() << " interferences, max degree " << g.max_degree()
            << "\n"
            << "register budget: " << regs << "\n\n";

  gcg::Table t({"strategy", "colors", "spilled vars", "spill %"});
  t.precision(2);

  auto report = [&](const std::string& name, const std::vector<color_t>& colors,
                    int num_colors) {
    GCG_ENSURE(check::is_valid_coloring(g, colors));
    const std::uint32_t s = spills(colors, regs);
    t.add_row({name, static_cast<std::int64_t>(num_colors),
               static_cast<std::int64_t>(s),
               100.0 * s / static_cast<double>(vars)});
  };

  const SeqColoring chaitin = greedy_color(g, GreedyOrder::kSmallestLast);
  report("seq smallest-last (Chaitin-style)", chaitin.colors, chaitin.num_colors);
  const SeqColoring natural = greedy_color(g, GreedyOrder::kNatural);
  report("seq natural", natural.colors, natural.num_colors);

  const auto device = gcg::simgpu::tahiti();
  for (Algorithm a : {Algorithm::kSpeculative, Algorithm::kHybridSteal}) {
    ColoringOptions opts;
    opts.collect_launches = false;
    const ColoringRun run = run_coloring(device, g, a, opts);
    report(std::string("gpu-") + algorithm_name(a), run.colors, run.num_colors);
  }

  std::cout << t.to_ascii();
  std::cout << "\nSmallest-last (degeneracy) ordering is the classic register\n"
               "allocator choice; speculative GPU coloring gets close while\n"
               "parallelizing the allocation of huge interference graphs.\n";
  return 0;
}
