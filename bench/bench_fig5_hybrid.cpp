// R-F5: the hybrid algorithm — the paper's second technique and headline
// result. Baseline vs hybrid vs hybrid+stealing per graph, with the SIMD
// efficiency the degree binning recovers.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-F5 hybrid algorithm");

  Table t({"graph", "algorithm", "total_cycles", "model_ms", "simd_eff",
           "cu_max/mean", "speedup_vs_baseline"});
  t.title("R-F5: degree-binned hybrid vs baseline");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    double baseline_cycles = 0.0;
    for (Algorithm a :
         {Algorithm::kBaseline, Algorithm::kHybrid, Algorithm::kHybridSteal}) {
      const ColoringRun r =
          bench::run(env, entry.graph, a, {}, /*collect_launches=*/true);
      const ImbalanceReport rep =
          summarize_launches(r.launches, env.device.wavefront_size);
      if (a == Algorithm::kBaseline) baseline_cycles = r.total_cycles;
      t.add_row({entry.name, std::string(algorithm_name(a)), r.total_cycles,
                 r.total_ms, rep.simd_efficiency, rep.cu_max_over_mean,
                 bench::speedup(baseline_cycles, r.total_cycles)});
    }
  }
  t.print(std::cout);
  return 0;
}
