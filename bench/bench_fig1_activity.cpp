// R-F1: program-behaviour characterization — per-iteration frontier size
// and newly-colored count for the baseline across structurally different
// graphs (regular mesh vs spatial vs power-law).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F1 per-iteration activity");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"ecology-like", "rgg-like", "kron-like"};
  }

  Table t({"graph", "iteration", "active", "colored", "cycles", "simd_eff",
           "cu_imbalance"});
  t.title("R-F1: baseline max-min activity per iteration");
  t.precision(3);
  for (const auto& entry : bench::load_graphs(env)) {
    const ColoringRun r = bench::run(env, entry.graph, Algorithm::kBaseline);
    for (const auto& pt : r.activity) {
      t.add_row({entry.name, static_cast<std::int64_t>(pt.iteration),
                 static_cast<std::int64_t>(pt.active_vertices),
                 static_cast<std::int64_t>(pt.colored_this_iter), pt.cycles,
                 pt.simd_efficiency, pt.cu_imbalance});
    }
  }
  t.print(std::cout);
  return 0;
}
