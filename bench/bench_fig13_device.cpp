// R-F13 (what-if analysis): device sensitivity. The same workload on
// hypothetical devices — fewer/more CUs and narrower wavefronts — showing
// that the load-imbalance problem (and the hybrid's benefit) grows with
// SIMD width, the paper's central architectural observation.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F13 device sensitivity");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"kron-like"};
  }

  Table t({"graph", "CUs", "wavefront", "algorithm", "total_cycles",
           "simd_eff", "hybrid_speedup"});
  t.title("R-F13: CU count and wavefront width sensitivity");
  t.precision(3);

  struct DeviceVariant {
    unsigned cus;
    unsigned wavefront;
  };
  const DeviceVariant variants[] = {{7, 64},  {14, 64}, {28, 64},
                                    {28, 16}, {28, 32}, {56, 64}};

  for (const auto& entry : bench::load_graphs(env)) {
    for (const auto& variant : variants) {
      simgpu::DeviceConfig cfg = simgpu::tahiti();
      cfg.num_cus = variant.cus;
      cfg.wavefront_size = variant.wavefront;
      double base_cycles = 0.0, base_simd = 0.0;
      for (Algorithm a : {Algorithm::kBaseline, Algorithm::kHybrid}) {
        ColoringOptions opts;
        opts.seed = env.seed;
        opts.collect_launches = true;
        const ColoringRun r = run_coloring(cfg, entry.graph, a, opts);
        const ImbalanceReport rep =
            summarize_launches(r.launches, cfg.wavefront_size);
        if (a == Algorithm::kBaseline) {
          base_cycles = r.total_cycles;
          base_simd = rep.simd_efficiency;
          (void)base_simd;
        }
        t.add_row({entry.name, static_cast<std::int64_t>(variant.cus),
                   static_cast<std::int64_t>(variant.wavefront),
                   std::string(algorithm_name(a)), r.total_cycles,
                   rep.simd_efficiency,
                   a == Algorithm::kHybrid
                       ? bench::speedup(base_cycles, r.total_cycles)
                       : 1.0});
      }
    }
  }
  t.print(std::cout);
  return 0;
}
