// Raw-speed sweep on the native backend: preprocessing order (natural vs
// degree-sorted/RCM relabeling) x schedule (vertex-count vs edge-balanced
// chunks, hub cooperation on/off) x SIMD level (scalar vs runtime-detected
// AVX2 first-fit), on a power-law graph (RMAT) against a uniform-degree
// control (Erdős–Rényi G(n,m) with matched vertex/edge counts). Reports
// coloring wall time, reorder overhead, per-worker busy-time skew
// (max/mean and CV), and the wall-clock ratio against the
// natural-order/scalar/vertex-chunked/hub-off baseline (win_vs_base > 1
// means the configuration colors faster).
//
//   bench_par_imbalance [--scale S] [--seed N] [--threads N] [--repeats 3]
//                       [--orders natural,degree-desc,rcm]
//                       [--out BENCH_par.json]
//
// Emits a machine-readable JSON document (BENCH_par.json) so CI can diff
// runs, plus the usual ASCII table. The uniform control is the null
// experiment for the scheduling axis: with no skew to fix, every schedule
// should tie, while on RMAT the edge-balanced + hub rows should cut the
// skew. The order and simd axes can win on both graphs (locality and scan
// throughput do not need skew).
#include <cmath>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "check/check.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/reorder.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/expect.hpp"
#include "util/simd.hpp"

namespace {

struct Config {
  gcg::par::Schedule schedule;
  std::uint32_t hub_threshold;  // 0 = auto, UINT32_MAX = off
  const char* hub_name;
};

constexpr std::uint32_t kHubOff = 0xFFFFFFFFu;

std::vector<gcg::Order> parse_orders(const std::string& csv) {
  std::vector<gcg::Order> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(gcg::order_from_name(tok));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  using namespace gcg::bench;
  const BenchEnv env = parse_env(argc, argv, "par_imbalance",
                                 {"threads", "repeats", "orders", "out"});
  const Cli cli(argc, argv);
  const unsigned threads = static_cast<unsigned>(
      cli.get_int("threads",
                  static_cast<std::int64_t>(par::ThreadPool::default_threads())));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const std::vector<Order> orders =
      parse_orders(cli.get("orders", "natural,degree-desc,rcm"));
  const std::string out_path = cli.get("out", "BENCH_par.json");

  // SIMD sweep: always scalar, plus the detected level when it is better.
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detect_level() != simd::Level::kScalar) {
    levels.push_back(simd::detect_level());
  }

  // Power-law graph and a uniform-degree control of matched size.
  const double s = env.suite.scale;
  const unsigned lg = static_cast<unsigned>(std::clamp(
      std::lround(std::log2(std::max(60'000.0 * s, 256.0))), 8l, 20l));
  const Csr rmat = make_rmat(lg, 16, {}, env.seed);
  const Csr gnm = make_erdos_renyi_gnm(rmat.num_vertices(),
                                       rmat.num_arcs() / 2, env.seed);
  const struct {
    const char* name;
    const Csr& graph;
  } graphs[] = {{"rmat", rmat}, {"uniform", gnm}};

  const Config configs[] = {
      {par::Schedule::kVertexChunks, kHubOff, "off"},  // baseline first
      {par::Schedule::kVertexChunks, 0, "auto"},
      {par::Schedule::kEdgeBalanced, kHubOff, "off"},
      {par::Schedule::kEdgeBalanced, 0, "auto"},
  };

  std::cout << "# threads: " << threads << ", repeats: " << repeats
            << ", rmat: 2^" << lg << " vertices, " << rmat.num_arcs() / 2
            << " edges, simd: " << simd::level_name(simd::detect_level())
            << '\n';

  Table table({"graph", "algorithm", "order", "simd", "schedule", "hub",
               "wall_ms", "reorder_ms", "busy_max_over_mean", "busy_cv",
               "colors", "win_vs_base"});
  table.title("order x schedule x simd vs the natural/scalar/vertex baseline");

  std::ostringstream records;
  bool first = true;
  par::ThreadPool pool(threads);
  for (const auto& g : graphs) {
    // Generator bugs must not masquerade as scheduling wins.
    if (const auto issue = check::validate_csr(g.graph)) {
      std::cerr << "malformed " << g.name << " graph: " << issue->to_string()
                << '\n';
      return 1;
    }
    for (par::ParAlgorithm algo :
         {par::ParAlgorithm::kSpeculative, par::ParAlgorithm::kJpl}) {
      double base_ms = 0.0;
      for (const simd::Level level : levels) {
        simd::force_level_for_testing(level);
        for (const Order order : orders) {
          for (const Config& cfg : configs) {
            par::ParOptions opts;
            opts.seed = env.seed;
            opts.order = order;
            opts.schedule = cfg.schedule;
            opts.hub_degree_threshold = cfg.hub_threshold;

            par::ParRun run;
            for (int r = 0; r < repeats; ++r) {
              par::ParRun attempt =
                  par::run_par_coloring(pool, g.graph, algo, opts);
              if (r == 0 || attempt.wall_ms < run.wall_ms) {
                run = std::move(attempt);
              }
            }
            GCG_EXPECT(check::is_valid_coloring(g.graph, run.colors));
            const bool is_base = level == levels.front() &&
                                 order == Order::kNatural &&
                                 &cfg == &configs[0];
            if (is_base) base_ms = run.wall_ms;

            table.add_row({g.name, par_algorithm_name(algo),
                           order_name(order), simd::level_name(level),
                           par::schedule_name(cfg.schedule), cfg.hub_name,
                           run.wall_ms, run.reorder_ms,
                           run.imbalance.cu_max_over_mean,
                           run.imbalance.cu_cv,
                           static_cast<std::int64_t>(run.num_colors),
                           run.wall_ms > 0.0 ? base_ms / run.wall_ms : 1.0});

            if (!first) records << ",\n";
            first = false;
            records << "    {\"graph\": \"" << g.name
                    << "\", \"algorithm\": \"" << par_algorithm_name(algo)
                    << "\", \"order\": \"" << order_name(order)
                    << "\", \"simd\": \"" << simd::level_name(level)
                    << "\",\n     \"schedule\": \""
                    << par::schedule_name(cfg.schedule) << "\", \"hub\": \""
                    << cfg.hub_name << "\", \"threads\": " << threads
                    << ",\n     \"wall_ms\": " << run.wall_ms
                    << ", \"reorder_ms\": " << run.reorder_ms
                    << ", \"busy_max_over_mean\": "
                    << run.imbalance.cu_max_over_mean
                    << ", \"busy_cv\": " << run.imbalance.cu_cv
                    << ",\n     \"colors\": " << run.num_colors
                    << ", \"win_vs_base\": "
                    << (run.wall_ms > 0.0 ? base_ms / run.wall_ms : 1.0)
                    << "}";
          }
        }
      }
      simd::clear_level_override_for_testing();
    }
  }
  table.print(std::cout);

  std::ostringstream doc;
  doc << "{\n  \"experiment\": \"par_imbalance\",\n  \"scale\": " << s
      << ",\n  \"seed\": " << env.seed << ",\n  \"threads\": " << threads
      << ",\n  \"repeats\": " << repeats << ",\n  \"simd_detected\": \""
      << simd::level_name(simd::detect_level())
      << "\",\n  \"records\": [\n" << records.str() << "\n  ]\n}\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.str();
    std::cerr << "wrote " << out_path << '\n';
  } else {
    std::cout << doc.str();
  }
  return 0;
}
