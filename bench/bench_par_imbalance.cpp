// Degree-aware scheduling on the native backend: schedule (vertex-count
// vs edge-balanced chunks) crossed with the hub-cooperation path, on a
// power-law graph (RMAT) against a uniform-degree control (Erdős–Rényi
// G(n,m) with matched vertex/edge counts). Reports wall time, per-worker
// busy-time skew (max/mean and CV), hub phase visits, and the wall-clock
// ratio against the vertex-chunked hub-off baseline (win_vs_vertex > 1
// means the degree-aware configuration is faster).
//
//   bench_par_imbalance [--scale S] [--seed N] [--threads N] [--repeats 3]
//
// The uniform control is the null experiment: with no skew to fix, every
// configuration should tie (win ~ 1.0), while on RMAT the edge-balanced +
// hub rows should cut the skew and the wall time at >= 4 threads.
#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "check/check.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/expect.hpp"

namespace {

struct Config {
  gcg::par::Schedule schedule;
  std::uint32_t hub_threshold;  // 0 = auto, UINT32_MAX = off
  const char* hub_name;
};

constexpr std::uint32_t kHubOff = 0xFFFFFFFFu;

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  using namespace gcg::bench;
  const BenchEnv env =
      parse_env(argc, argv, "par_imbalance", {"threads", "repeats"});
  const Cli cli(argc, argv);
  const unsigned threads = static_cast<unsigned>(
      cli.get_int("threads",
                  static_cast<std::int64_t>(par::ThreadPool::default_threads())));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));

  // Power-law graph and a uniform-degree control of matched size.
  const double s = env.suite.scale;
  const unsigned lg = static_cast<unsigned>(std::clamp(
      std::lround(std::log2(std::max(60'000.0 * s, 256.0))), 8l, 20l));
  const Csr rmat = make_rmat(lg, 16, {}, env.seed);
  const Csr gnm = make_erdos_renyi_gnm(rmat.num_vertices(),
                                       rmat.num_arcs() / 2, env.seed);
  const struct {
    const char* name;
    const Csr& graph;
  } graphs[] = {{"rmat", rmat}, {"uniform", gnm}};

  const Config configs[] = {
      {par::Schedule::kVertexChunks, kHubOff, "off"},  // baseline first
      {par::Schedule::kVertexChunks, 0, "auto"},
      {par::Schedule::kEdgeBalanced, kHubOff, "off"},
      {par::Schedule::kEdgeBalanced, 0, "auto"},
  };

  std::cout << "# threads: " << threads << ", repeats: " << repeats
            << ", rmat: 2^" << lg << " vertices, "
            << rmat.num_arcs() / 2 << " edges\n";

  Table table({"graph", "algorithm", "schedule", "hub", "threads", "wall_ms",
               "busy_max_over_mean", "busy_cv", "hub_coop", "colors",
               "win_vs_vertex"});
  table.title("Degree-aware scheduling vs the vertex-chunked baseline");

  par::ThreadPool pool(threads);
  for (const auto& g : graphs) {
    // Generator bugs must not masquerade as scheduling wins.
    if (const auto issue = check::validate_csr(g.graph)) {
      std::cerr << "malformed " << g.name << " graph: " << issue->to_string()
                << '\n';
      return 1;
    }
    for (par::ParAlgorithm algo :
         {par::ParAlgorithm::kSpeculative, par::ParAlgorithm::kJpl}) {
      double base_ms = 0.0;
      for (const Config& cfg : configs) {
        par::ParOptions opts;
        opts.seed = env.seed;
        opts.schedule = cfg.schedule;
        opts.hub_degree_threshold = cfg.hub_threshold;

        par::ParRun run;
        double best = 0.0;
        for (int r = 0; r < repeats; ++r) {
          WallTimer timer;
          par::ParRun attempt = par::run_par_coloring(pool, g.graph, algo, opts);
          const double ms = timer.elapsed_ms();
          if (r == 0 || ms < best) {
            best = ms;
            run = std::move(attempt);
          }
        }
        GCG_EXPECT(check::is_valid_coloring(g.graph, run.colors));
        if (&cfg == &configs[0]) base_ms = best;

        table.add_row({g.name, par_algorithm_name(algo),
                       par::schedule_name(cfg.schedule), cfg.hub_name,
                       static_cast<std::int64_t>(threads), best,
                       run.imbalance.cu_max_over_mean, run.imbalance.cu_cv,
                       static_cast<std::int64_t>(run.hub_vertices),
                       static_cast<std::int64_t>(run.num_colors),
                       best > 0.0 ? base_ms / best : 1.0});
      }
    }
  }
  table.print(std::cout);
  return 0;
}
