// R-F2: the motivation figure — load imbalance of the baseline across the
// suite: SIMD (intra-wavefront) efficiency, per-CU busy-time skew, and
// workgroup-time tail, all rising with degree skew.
#include "bench_common.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-F2 baseline load imbalance");

  Table t({"graph", "deg_cv", "simd_eff", "cu_max/mean", "cu_cv", "grp_p50",
           "grp_p99", "grp_max", "total_cycles"});
  t.title("R-F2: baseline load imbalance vs graph structure");
  t.precision(3);
  for (const auto& entry : bench::load_graphs(env)) {
    const GraphStats s = compute_stats(entry.graph);
    const ColoringRun r = bench::run(env, entry.graph, Algorithm::kBaseline, {},
                                     /*collect_launches=*/true);
    const ImbalanceReport rep =
        summarize_launches(r.launches, env.device.wavefront_size);
    t.add_row({entry.name, s.degree_cv, rep.simd_efficiency,
               rep.cu_max_over_mean, rep.cu_cv, rep.group_cycles_p50,
               rep.group_cycles_p99, rep.group_cycles_max, rep.total_cycles});
  }
  t.print(std::cout);
  return 0;
}
