// R-F12 (factors analysis): problem-size scaling. How each algorithm's
// simulated time grows with graph size — small graphs underutilize the
// device (latency-exposed dispatches), large graphs amortize it; the
// techniques' relative order can change with scale.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F12 size scaling");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"citation-like"};
  }

  Table t({"graph", "scale", "|V|", "algorithm", "total_cycles",
           "cycles_per_arc", "speedup_vs_baseline"});
  t.title("R-F12: simulated time vs problem size");
  t.precision(3);

  for (double scale : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    bench::BenchEnv sized = env;
    sized.suite.scale = scale;
    for (const auto& entry : bench::load_graphs(sized)) {
      double baseline_cycles = 0.0;
      for (Algorithm a : {Algorithm::kBaseline, Algorithm::kWorklist,
                          Algorithm::kSteal, Algorithm::kHybridSteal}) {
        const ColoringRun r = bench::run(sized, entry.graph, a);
        if (a == Algorithm::kBaseline) baseline_cycles = r.total_cycles;
        t.add_row({entry.name, std::to_string(scale),
                   static_cast<std::int64_t>(entry.graph.num_vertices()),
                   std::string(algorithm_name(a)), r.total_cycles,
                   r.total_cycles / static_cast<double>(entry.graph.num_arcs()),
                   bench::speedup(baseline_cycles, r.total_cycles)});
      }
    }
  }
  t.print(std::cout);
  return 0;
}
