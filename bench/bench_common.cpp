#include "bench_common.hpp"

#include <sstream>

namespace gcg::bench {

namespace {
std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}
}  // namespace

BenchEnv parse_env(int argc, char** argv, const std::string& experiment,
                   const std::vector<std::string>& extra_flags) {
  const Cli cli(argc, argv);
  for (const auto& f : extra_flags) (void)cli.has(f);
  BenchEnv env;
  env.suite.scale = cli.get_double("scale", 0.5);
  env.suite.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  env.seed = env.suite.seed;
  env.device = simgpu::tahiti();
  const std::string sel = cli.get("graphs", "");
  env.graph_names = sel.empty() ? suite_names() : split_csv(sel);
  std::cout << "# experiment: " << experiment << "\n"
            << "# device: " << env.device.name << " (" << env.device.num_cus
            << " CUs, wavefront " << env.device.wavefront_size << ")\n"
            << "# scale=" << env.suite.scale << " seed=" << env.seed << "\n";
  for (const auto& unknown : cli.unused()) {
    std::cerr << "warning: unused flag --" << unknown << "\n";
  }
  return env;
}

std::vector<SuiteEntry> load_graphs(const BenchEnv& env) {
  std::vector<SuiteEntry> out;
  out.reserve(env.graph_names.size());
  for (const auto& name : env.graph_names) {
    out.push_back(make_suite_graph(name, env.suite));
  }
  return out;
}

ColoringRun run(const BenchEnv& env, const Csr& g, Algorithm a,
                ColoringOptions opts, bool collect_launches) {
  opts.seed = env.seed;
  opts.collect_launches = collect_launches;
  return run_coloring(env.device, g, a, opts);
}

double speedup(double baseline_cycles, double cycles) {
  return cycles > 0.0 ? baseline_cycles / cycles : 0.0;
}

}  // namespace gcg::bench
