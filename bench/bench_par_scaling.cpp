// Native-backend scaling: every par algorithm on every suite graph at
// thread counts 1..hardware_concurrency (powers of two plus the max),
// reporting wall time, speedup over the 1-thread par run, busy-time
// imbalance, steal traffic, and color-count parity against seq_greedy.
//
//   bench_par_scaling [--scale S] [--seed N] [--graphs a,b,c]
//                     [--threads 1,2,4,8] [--repeats 3]
//                     [--priority natural|random|degree-biased]
//                     [--out BENCH_par_scaling.json]
//
// Emits a machine-readable JSON document next to the ASCII table so CI
// can diff runs (same shape as BENCH_par.json / BENCH_shard.json).
//
// Default priorities are natural-order: Jones–Plassmann selection then
// reproduces sequential greedy exactly, so the colors/seq_colors parity
// columns compare like with like. --priority random exercises the
// paper's hashed priorities instead (shorter dependency chains, more
// colors on structured graphs).
#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "par/pool.hpp"
#include "par/runner.hpp"
#include "util/expect.hpp"

namespace {

std::vector<unsigned> thread_sweep(const gcg::Cli& cli) {
  const std::string sel = cli.get("threads", "");
  std::vector<unsigned> out;
  if (!sel.empty()) {
    std::istringstream is(sel);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
    return out;
  }
  const unsigned hw = gcg::par::ThreadPool::default_threads();
  for (unsigned t = 1; t < hw; t <<= 1) out.push_back(t);
  out.push_back(hw);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  using namespace gcg::bench;
  const BenchEnv env = parse_env(argc, argv, "par_scaling",
                                 {"threads", "repeats", "priority", "out"});
  const Cli cli(argc, argv);
  const auto threads = thread_sweep(cli);
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const std::string prio_name = cli.get("priority", "natural");
  const std::string out_path = cli.get("out", "BENCH_par_scaling.json");
  bool prio_known = false;
  PriorityMode priority = PriorityMode::kNaturalOrder;
  for (PriorityMode m : {PriorityMode::kRandom, PriorityMode::kDegreeBiased,
                         PriorityMode::kNaturalOrder}) {
    if (prio_name == priority_mode_name(m)) {
      priority = m;
      prio_known = true;
    }
  }
  if (!prio_known) {
    std::cerr << "error: unknown --priority '" << prio_name
              << "' (natural|random|degree-biased)\n";
    return 2;
  }
  std::cout << "# hardware threads: " << par::ThreadPool::default_threads()
            << "\n# priority: " << priority_mode_name(priority) << "\n";

  Table table({"graph", "algorithm", "threads", "wall_ms", "speedup",
               "worker_imbalance", "steal_hits", "colors", "seq_colors"});
  table.title("Native multicore scaling (speedup vs 1-thread par run)");

  std::ostringstream records;
  bool first = true;
  for (const SuiteEntry& entry : load_graphs(env)) {
    const SeqColoring seq = greedy_color(entry.graph);
    for (par::ParAlgorithm algo : par::all_par_algorithms()) {
      double base_ms = 0.0;
      for (unsigned t : threads) {
        par::ThreadPool pool(t);
        par::ParOptions opts;
        opts.seed = env.seed;
        opts.priority = priority;

        par::ParRun run;
        double best = 0.0;
        for (int r = 0; r < repeats; ++r) {
          WallTimer timer;
          par::ParRun attempt =
              par::run_par_coloring(pool, entry.graph, algo, opts);
          const double ms = timer.elapsed_ms();
          if (r == 0 || ms < best) {
            best = ms;
            run = std::move(attempt);
          }
        }
        GCG_EXPECT(check::is_valid_coloring(entry.graph, run.colors));
        if (t == threads.front()) base_ms = best;

        table.add_row({entry.name, par_algorithm_name(algo),
                       static_cast<std::int64_t>(t), best,
                       speedup(base_ms, best),
                       run.imbalance.cu_max_over_mean,
                       static_cast<std::int64_t>(run.steal.steal_hits),
                       static_cast<std::int64_t>(run.num_colors),
                       static_cast<std::int64_t>(seq.num_colors)});

        if (!first) records << ",\n";
        first = false;
        records << "    {\"graph\": \"" << entry.name
                << "\", \"algorithm\": \"" << par_algorithm_name(algo)
                << "\", \"threads\": " << t << ",\n     \"wall_ms\": " << best
                << ", \"speedup\": " << speedup(base_ms, best)
                << ", \"busy_max_over_mean\": "
                << run.imbalance.cu_max_over_mean
                << ",\n     \"steal_hits\": " << run.steal.steal_hits
                << ", \"colors\": " << run.num_colors
                << ", \"seq_colors\": " << seq.num_colors << "}";
      }
    }
  }
  table.print(std::cout);

  std::ostringstream doc;
  doc << "{\n  \"experiment\": \"par_scaling\",\n  \"scale\": "
      << env.suite.scale << ",\n  \"seed\": " << env.seed
      << ",\n  \"repeats\": " << repeats << ",\n  \"priority\": \""
      << priority_mode_name(priority) << "\",\n  \"records\": [\n"
      << records.str() << "\n  ]\n}\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.str();
    std::cerr << "wrote " << out_path << '\n';
  } else {
    std::cout << doc.str();
  }
  return 0;
}
