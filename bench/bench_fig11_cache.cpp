// R-F11 (model ablation): the shared-L2 model. Runs the baseline and the
// hybrid with the cache enabled vs the default DRAM-only pricing, and
// shows how vertex ordering changes locality (hit rate) — connecting the
// reordering experiment (R-F9) to the memory system.
#include "bench_common.hpp"
#include "graph/reorder.hpp"
#include "simgpu/cache.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F11 L2-cache ablation");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"rgg-like", "citation-like"};
  }

  Table t({"graph", "order", "algorithm", "cache", "total_cycles",
           "speedup_vs_nocache", "l2_hit_rate"});
  t.title("R-F11: DRAM-only vs shared-L2 pricing");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    for (Order order : {Order::kNatural, Order::kRandom, Order::kRcm}) {
      const Csr g = reorder(entry.graph, order, env.seed);
      for (Algorithm a : {Algorithm::kBaseline, Algorithm::kHybrid}) {
        ColoringOptions opts;
        opts.seed = env.seed;
        opts.collect_launches = true;

        const ColoringRun plain = run_coloring(env.device, g, a, opts);

        simgpu::DeviceConfig cached_cfg = env.device;
        cached_cfg.enable_l2_cache = true;
        const ColoringRun cached = run_coloring(cached_cfg, g, a, opts);
        double hit = 0.0, total = 0.0;
        for (const auto& l : cached.launches) {
          hit += static_cast<double>(l.total.mem_lines_hit);
          total += static_cast<double>(l.total.mem_transactions);
        }

        t.add_row({entry.name, std::string(order_name(order)),
                   std::string(algorithm_name(a)), std::string("off"),
                   plain.total_cycles, 1.0, 0.0});
        t.add_row({entry.name, std::string(order_name(order)),
                   std::string(algorithm_name(a)), std::string("on"),
                   cached.total_cycles,
                   bench::speedup(plain.total_cycles, cached.total_cycles),
                   total > 0 ? hit / total : 0.0});
      }
    }
  }
  t.print(std::cout);
  return 0;
}
