// R-F7: hybrid degree-threshold sensitivity. Sweeps the thread-/wave-
// per-vertex boundary (T_wave) and the wave-/workgroup-per-vertex
// boundary (T_group) on the most skewed graph — locating the crossover
// the hybrid's binning relies on.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F7 hybrid threshold sweep");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"kron-like", "citation-like"};
  }

  Table tw({"graph", "T_wave", "total_cycles", "speedup_vs_T32", "simd_eff"});
  tw.title("R-F7a: thread->wave threshold sweep (T_group=1024)");
  tw.precision(3);
  Table tg({"graph", "T_group", "total_cycles", "speedup_vs_T1024"});
  tg.title("R-F7b: wave->workgroup threshold sweep (T_wave=32)");
  tg.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    double ref = 0.0;
    std::vector<std::pair<vid_t, ColoringRun>> runs;
    for (vid_t t : {4u, 8u, 16u, 32u, 64u, 128u, 100000000u}) {
      ColoringOptions opts;
      opts.wave_degree_threshold = t;
      runs.emplace_back(t, bench::run(env, entry.graph, Algorithm::kHybrid,
                                      opts, /*collect_launches=*/true));
      if (t == 32u) ref = runs.back().second.total_cycles;
    }
    for (const auto& [t, r] : runs) {
      const ImbalanceReport rep =
          summarize_launches(r.launches, env.device.wavefront_size);
      tw.add_row({entry.name,
                  static_cast<std::int64_t>(t == 100000000u ? -1 : (int)t),
                  r.total_cycles, bench::speedup(ref, r.total_cycles),
                  rep.simd_efficiency});
    }

    ref = 0.0;
    std::vector<std::pair<vid_t, ColoringRun>> gruns;
    for (vid_t t : {128u, 256u, 512u, 1024u, 2048u, 100000000u}) {
      ColoringOptions opts;
      opts.group_degree_threshold = t;
      gruns.emplace_back(t, bench::run(env, entry.graph, Algorithm::kHybrid, opts));
      if (t == 1024u) ref = gruns.back().second.total_cycles;
    }
    for (const auto& [t, r] : gruns) {
      tg.add_row({entry.name,
                  static_cast<std::int64_t>(t == 100000000u ? -1 : (int)t),
                  r.total_cycles, bench::speedup(ref, r.total_cycles)});
    }
  }
  std::cout << "# T = -1 means the bin is disabled (threshold above any degree)\n";
  tw.print(std::cout);
  std::cout << '\n';
  tg.print(std::cout);
  return 0;
}
