// Host-side microbenchmarks (google-benchmark, real wall-clock): the
// library primitives a downstream user pays for — generators, CSR builds,
// sequential coloring, verification, simulator kernels, queue operations.
#include <benchmark/benchmark.h>

#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "graph/builder.hpp"
#include "graph/gen/grid.hpp"
#include "graph/gen/powerlaw.hpp"
#include "graph/gen/random.hpp"
#include "graph/reorder.hpp"
#include "sched/steal_queues.hpp"
#include "simgpu/dispatch.hpp"
#include "util/rng.hpp"

namespace {

using namespace gcg;

void BM_BuildCsrFromEdges(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  Xoshiro256ss rng(1);
  std::vector<std::pair<vid_t, vid_t>> edges;
  edges.reserve(n * 8);
  for (vid_t i = 0; i < n * 8; ++i) {
    edges.emplace_back(static_cast<vid_t>(rng.bounded(n)),
                       static_cast<vid_t>(rng.bounded(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphBuilder::from_edges(n, edges));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_BuildCsrFromEdges)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenerateRmat(benchmark::State& state) {
  const auto scale = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_rmat(scale, 8, {}, 1));
  }
}
BENCHMARK(BM_GenerateRmat)->Arg(10)->Arg(14);

void BM_GenerateGrid2d(benchmark::State& state) {
  const auto side = static_cast<vid_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_grid2d(side, side));
  }
}
BENCHMARK(BM_GenerateGrid2d)->Arg(64)->Arg(256);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<vid_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_barabasi_albert(n, 8, 1));
  }
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Arg(1 << 12)->Arg(1 << 15);

void BM_SeqGreedy(benchmark::State& state) {
  const Csr g = make_rmat(static_cast<unsigned>(state.range(0)), 8, {}, 1);
  const auto order = static_cast<GreedyOrder>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_color(g, order));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_arcs()));
}
BENCHMARK(BM_SeqGreedy)
    ->Args({14, static_cast<long>(GreedyOrder::kNatural)})
    ->Args({14, static_cast<long>(GreedyOrder::kLargestFirst)})
    ->Args({14, static_cast<long>(GreedyOrder::kSmallestLast)});

void BM_VerifyColoring(benchmark::State& state) {
  const Csr g = make_rmat(static_cast<unsigned>(state.range(0)), 8, {}, 1);
  const auto coloring = greedy_color(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check::is_valid_coloring(g, coloring.colors));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_arcs()));
}
BENCHMARK(BM_VerifyColoring)->Arg(12)->Arg(15);

void BM_ReorderRcm(benchmark::State& state) {
  const Csr g = make_grid2d(static_cast<vid_t>(state.range(0)),
                            static_cast<vid_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reorder(g, Order::kRcm));
  }
}
BENCHMARK(BM_ReorderRcm)->Arg(64)->Arg(128);

void BM_SimulatorDispatch(benchmark::State& state) {
  // Simulator overhead per simulated wave: a trivial kernel over a grid.
  const auto cfg = simgpu::tahiti();
  const std::uint64_t grid = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint32_t> data(grid, 1);
  for (auto _ : state) {
    auto r = simgpu::dispatch_waves(cfg, grid, 256, [&](simgpu::Wave& w) {
      const auto v =
          w.load(std::span<const std::uint32_t>(data), w.global_ids(), w.valid());
      benchmark::DoNotOptimize(v);
      w.valu(w.valid(), 4.0);
    });
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(grid));
}
BENCHMARK(BM_SimulatorDispatch)->Arg(1 << 14)->Arg(1 << 17);

void BM_StealQueueOps(benchmark::State& state) {
  const auto cfg = simgpu::test_device();
  Xoshiro256ss rng(3);
  for (auto _ : state) {
    StealQueues q(16);
    q.fill(deal_round_robin(make_chunks(4096, 16), 16));
    simgpu::Wave w(cfg, 0, cfg.wavefront_size, 1024);
    unsigned turn = 0;
    while (q.total_remaining() > 0) {
      const unsigned worker = turn++ % 16;
      if (!q.pop_own(w, worker)) {
        benchmark::DoNotOptimize(q.steal(w, worker, VictimPolicy::kRandom, rng));
      }
    }
    benchmark::DoNotOptimize(q.stats());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_StealQueueOps);

}  // namespace

BENCHMARK_MAIN();
