// R-T5 (application-level): the downstream workloads the paper's intro
// motivates, running on the same device model — SpMV, BFS, and multicolor
// Gauss–Seidel driven by each coloring algorithm's output. Shows how
// coloring quality (class count/balance) translates into solver cost.
#include <cmath>

#include "apps/bfs.hpp"
#include "apps/gauss_seidel.hpp"
#include "bench_common.hpp"
#include "coloring/seq_greedy.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-T5 application workloads");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"ecology-like", "rgg-like", "citation-like"};
  }

  Table ts({"graph", "workload", "device cycles", "notes"});
  ts.title("R-T5a: SpMV and BFS on the device model");
  ts.precision(0);
  for (const auto& entry : bench::load_graphs(env)) {
    const SparseMatrix A = make_graph_laplacian(entry.graph);
    std::vector<double> x(A.n()), y(A.n());
    for (vid_t v = 0; v < A.n(); ++v) x[v] = std::sin(0.1 * v);
    simgpu::Device dev(env.device);
    spmv_device(dev, A, x, y);
    ts.add_row({entry.name, std::string("spmv"), dev.total_cycles(),
                std::string("one y=Ax")});

    simgpu::Device dev2(env.device);
    const BfsResult bfs = bfs_device(dev2, entry.graph, 0);
    ts.add_row({entry.name, std::string("bfs"), bfs.device_cycles,
                std::to_string(bfs.levels) + " levels"});
  }
  ts.print(std::cout);
  std::cout << '\n';

  Table tg({"graph", "coloring source", "colors", "launches", "device cycles",
            "residual@30"});
  tg.title("R-T5b: multicolor Gauss-Seidel cost vs coloring quality");
  tg.precision(6);
  for (const auto& entry : bench::load_graphs(env)) {
    const SparseMatrix A = make_graph_laplacian(entry.graph, 2.0);
    const std::vector<double> b(A.n(), 1.0);
    GsOptions gs;
    gs.tolerance = 0.0;  // fixed sweep budget: compare cost per progress
    gs.max_sweeps = 30;

    struct Source {
      std::string name;
      std::vector<color_t> colors;
      int num_colors;
    };
    std::vector<Source> sources;
    const SeqColoring greedy = greedy_color(entry.graph);
    sources.push_back({"seq-greedy", greedy.colors, greedy.num_colors});
    for (Algorithm a : {Algorithm::kSpeculative, Algorithm::kHybridSteal}) {
      const ColoringRun run = bench::run(env, entry.graph, a);
      sources.push_back({std::string("gpu-") + algorithm_name(a), run.colors,
                         run.num_colors});
    }
    for (const auto& src : sources) {
      simgpu::Device dev(env.device);
      const GsResult r = gauss_seidel_multicolor(dev, A, b, src.colors, gs);
      tg.add_row({entry.name, src.name, static_cast<std::int64_t>(src.num_colors),
                  static_cast<std::int64_t>(dev.launch_count()),
                  r.device_cycles, r.final_residual});
    }
  }
  tg.print(std::cout);
  std::cout << "\n# More color classes = more launches per sweep; the\n"
               "# independent-set colorings pay a solver-side tax that the\n"
               "# recolor pass (see R-T4a) removes.\n";
  return 0;
}
