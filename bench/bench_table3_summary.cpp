// R-T3: the overall summary — every algorithm on every suite graph,
// speedup over the baseline GPU implementation, with geometric means.
// The paper's headline ("~25% over the baseline") corresponds to the
// geomean row of the best technique.
#include <map>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-T3 overall summary");

  Table t({"graph", "algorithm", "total_cycles", "model_ms", "colors",
           "iterations", "speedup_vs_baseline"});
  t.title("R-T3: all algorithms, all graphs");
  t.precision(3);

  std::map<Algorithm, std::vector<double>> speedups;
  for (const auto& entry : bench::load_graphs(env)) {
    double baseline_cycles = 0.0;
    for (Algorithm a : all_algorithms()) {
      const ColoringRun r = bench::run(env, entry.graph, a);
      if (a == Algorithm::kBaseline) baseline_cycles = r.total_cycles;
      const double sp = bench::speedup(baseline_cycles, r.total_cycles);
      speedups[a].push_back(sp);
      t.add_row({entry.name, std::string(algorithm_name(a)), r.total_cycles,
                 r.total_ms, static_cast<std::int64_t>(r.num_colors),
                 static_cast<std::int64_t>(r.iterations), sp});
    }
  }
  t.print(std::cout);

  Table g({"algorithm", "geomean_speedup_vs_baseline"});
  g.title("R-T3b: geometric-mean speedup over the whole suite");
  g.precision(3);
  for (Algorithm a : all_algorithms()) {
    g.add_row({std::string(algorithm_name(a)), geomean(speedups[a])});
  }
  g.print(std::cout);
  std::cout << "\n# Paper headline: best technique ~1.25x over the baseline "
               "GPU implementation (abstract).\n";
  return 0;
}
