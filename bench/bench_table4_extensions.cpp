// R-T4 (extensions beyond the paper): the color-reduction post-pass, the
// standalone Luby MIS primitive, and GPU distance-2 coloring — measured on
// the suite so the extension costs/benefits are on record.
#include "bench_common.hpp"
#include "coloring/distance2.hpp"
#include "coloring/mis.hpp"
#include "coloring/recolor.hpp"
#include "coloring/seq_greedy.hpp"
#include "util/expect.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-T4 extensions");

  // --- color reduction over the whole suite --------------------------------
  Table tr({"graph", "baseline colors", "after 1 pass", "after reduce",
            "greedy ref", "passes"});
  tr.title("R-T4a: iterated-greedy color reduction of max-min colorings");
  for (const auto& entry : bench::load_graphs(env)) {
    const ColoringRun base = bench::run(env, entry.graph, Algorithm::kBaseline);
    const RecolorResult one = recolor_pass(entry.graph, base.colors);
    const RecolorResult full = reduce_colors(entry.graph, base.colors);
    const int greedy = greedy_color(entry.graph).num_colors;
    GCG_ENSURE(check::is_valid_coloring(entry.graph, full.colors));
    tr.add_row({entry.name, static_cast<std::int64_t>(base.num_colors),
                static_cast<std::int64_t>(one.num_colors),
                static_cast<std::int64_t>(full.num_colors),
                static_cast<std::int64_t>(greedy),
                static_cast<std::int64_t>(full.passes)});
  }
  tr.print(std::cout);
  std::cout << '\n';

  // --- Luby MIS -------------------------------------------------------------
  Table tm({"graph", "MIS size (gpu)", "MIS size (greedy)", "rounds",
            "sim cycles"});
  tm.title("R-T4b: Luby maximal independent set");
  for (const auto& entry : bench::load_graphs(env)) {
    ColoringOptions opts;
    opts.seed = env.seed;
    const MisResult gpu = luby_mis(env.device, entry.graph, opts);
    const MisResult host = greedy_mis(entry.graph);
    GCG_ENSURE(is_maximal_independent_set(entry.graph, gpu.in_set));
    tm.add_row({entry.name, static_cast<std::int64_t>(gpu.set_size),
                static_cast<std::int64_t>(host.set_size),
                static_cast<std::int64_t>(gpu.rounds), gpu.total_cycles});
  }
  tm.print(std::cout);
  std::cout << '\n';

  // --- distance-2 on the bounded-degree graphs ------------------------------
  Table t2({"graph", "d2 colors (gpu)", "d2 colors (greedy)", "iterations",
            "sim cycles"});
  t2.title("R-T4c: distance-2 coloring (bounded-degree inputs)");
  for (const char* name : {"ecology-like", "road-like", "rgg-like"}) {
    const auto entry = make_suite_graph(name, env.suite);
    ColoringOptions opts;
    opts.seed = env.seed;
    opts.collect_launches = false;
    const ColoringRun gpu = run_coloring_d2(env.device, entry.graph, opts);
    const SeqColoring host = greedy_color_d2(entry.graph);
    GCG_ENSURE(is_valid_coloring_d2(entry.graph, gpu.colors));
    t2.add_row({std::string(name), static_cast<std::int64_t>(gpu.num_colors),
                static_cast<std::int64_t>(host.num_colors),
                static_cast<std::int64_t>(gpu.iterations), gpu.total_cycles});
  }
  t2.print(std::cout);
  return 0;
}
