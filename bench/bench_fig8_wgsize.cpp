// R-F8: workgroup-size sensitivity of the baseline — a factor the paper's
// "important factors affecting performance" analysis covers. Small groups
// give the dispatcher more scheduling freedom; big groups amortize less
// and couple divergent waves.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F8 workgroup-size sweep");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"ecology-like", "er-like", "kron-like"};
  }

  Table t({"graph", "wg_size", "total_cycles", "speedup_vs_256",
           "cu_max/mean"});
  t.title("R-F8: baseline workgroup-size sweep");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    double ref = 0.0;
    std::vector<std::pair<unsigned, ColoringRun>> runs;
    for (unsigned wg : {64u, 128u, 256u, 512u, 1024u}) {
      ColoringOptions opts;
      opts.group_size = wg;
      runs.emplace_back(wg, bench::run(env, entry.graph, Algorithm::kBaseline,
                                       opts, /*collect_launches=*/true));
      if (wg == 256u) ref = runs.back().second.total_cycles;
    }
    for (const auto& [wg, r] : runs) {
      const ImbalanceReport rep =
          summarize_launches(r.launches, env.device.wavefront_size);
      t.add_row({entry.name, static_cast<std::int64_t>(wg), r.total_cycles,
                 bench::speedup(ref, r.total_cycles), rep.cu_max_over_mean});
    }
  }
  t.print(std::cout);
  return 0;
}
