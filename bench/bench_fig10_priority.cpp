// R-F10 (factors analysis): priority function ablation. Random priorities
// vs degree-biased (largest-degree-first flavour): color count vs
// iteration count vs runtime across the suite.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-F10 priority ablation");

  Table t({"graph", "priority", "algorithm", "colors", "iterations",
           "total_cycles"});
  t.title("R-F10: random vs degree-biased priorities");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    for (PriorityMode mode :
         {PriorityMode::kRandom, PriorityMode::kDegreeBiased}) {
      for (Algorithm a : {Algorithm::kBaseline, Algorithm::kHybridSteal}) {
        ColoringOptions opts;
        opts.priority = mode;
        const ColoringRun r = bench::run(env, entry.graph, a, opts);
        t.add_row({entry.name, std::string(priority_mode_name(mode)),
                   std::string(algorithm_name(a)),
                   static_cast<std::int64_t>(r.num_colors),
                   static_cast<std::int64_t>(r.iterations), r.total_cycles});
      }
    }
  }
  t.print(std::cout);
  return 0;
}
