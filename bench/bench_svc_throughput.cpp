// Coloring-service throughput: an in-process svc::Server on a Unix-domain
// socket, driven by closed-loop clients (submit wait=true, measure, repeat).
// Sweeping the client count traces out the service's latency/throughput
// curve: each row is one offered-load point with the achieved QPS and the
// client-observed p50/p99 latency. tools/plot_results.py turns the CSV
// block into the offered-QPS vs latency figure.
//
//   bench_svc_throughput [--scale S] [--seed N] [--graphs a,b,c]
//                        [--clients 1,2,4,8,16] [--jobs-per-client 20]
//                        [--dispatchers 2] [--threads-per-job 2]
//                        [--queue 256] [--algorithm steal]
#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/stats.hpp"
#include "util/narrow.hpp"

namespace {

std::vector<unsigned> client_sweep(const gcg::Cli& cli) {
  const std::string sel = cli.get("clients", "");
  std::vector<unsigned> out;
  if (!sel.empty()) {
    std::istringstream is(sel);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      if (!tok.empty()) out.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
    return out;
  }
  return {1, 2, 4, 8, 16};
}

std::string gen_spec(const gcg::SuiteEntry& entry, const gcg::bench::BenchEnv& env) {
  std::ostringstream os;
  os << "gen:" << entry.name << "?scale=" << env.suite.scale
     << "&seed=" << env.suite.seed;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg;
  using namespace gcg::bench;
  const BenchEnv env = parse_env(
      argc, argv, "svc_throughput",
      {"clients", "jobs-per-client", "dispatchers", "threads-per-job",
       "queue", "algorithm"});
  const Cli cli(argc, argv);
  const auto sweep = client_sweep(cli);
  const int jobs_per_client =
      static_cast<int>(cli.get_int("jobs-per-client", 20));
  const std::string algorithm = cli.get("algorithm", "steal");

  svc::ServerOptions sopts;
  sopts.socket_path = "/tmp/gcg_bench_svc.sock";
  sopts.scheduler.dispatchers =
      static_cast<unsigned>(cli.get_int("dispatchers", 2));
  sopts.scheduler.threads_per_job =
      static_cast<unsigned>(cli.get_int("threads-per-job", 2));
  sopts.scheduler.queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue", 256));

  const std::vector<SuiteEntry> graphs = load_graphs(env);
  std::vector<std::string> specs;
  specs.reserve(graphs.size());
  for (const SuiteEntry& entry : graphs) specs.push_back(gen_spec(entry, env));

  Table table({"clients", "jobs", "ok", "queue_full", "failed",
               "offered_qps", "achieved_qps", "p50_ms", "p99_ms", "mean_ms",
               "cache_hit_rate"});
  table.title("Coloring service throughput (closed-loop clients, algorithm=" +
              algorithm + ")");

  for (const unsigned clients : sweep) {
    // Fresh server per point: cold registry, zeroed stats.
    svc::Server server(sopts);
    // Warm the registry once so the sweep measures serving, not file IO.
    {
      svc::Client warm(server.socket_path());
      for (const std::string& spec : specs) {
        svc::JobSpec job;
        job.graph = spec;
        job.algorithm = algorithm;
        warm.submit(job, /*wait=*/true);
      }
    }

    std::atomic<long> ok{0}, queue_full{0}, failed{0}, cache_hits{0};
    std::vector<SampleStats> latencies(clients);
    WallTimer window;
    std::vector<std::thread> team;
    for (unsigned c = 0; c < clients; ++c) {
      team.emplace_back([&, c] {
        svc::Client client(server.socket_path());
        for (int j = 0; j < jobs_per_client; ++j) {
          svc::JobSpec job;
          job.graph = specs[(c + static_cast<unsigned>(j)) % specs.size()];
          job.algorithm = algorithm;
          job.seed = env.seed + c;
          WallTimer t;
          const svc::Json reply = client.submit(job, /*wait=*/true);
          const double ms = t.elapsed_ms();
          if (reply.get_bool("ok", false) &&
              reply.get_string("status", "") == "done") {
            ok.fetch_add(1);
            latencies[c].add(ms);
            const svc::Json* result = reply.find("result");
            if (result && result->get_bool("cache_hit", false)) {
              cache_hits.fetch_add(1);
            }
          } else if (reply.get_string("error", "") == "queue_full") {
            queue_full.fetch_add(1);
          } else {
            failed.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : team) t.join();
    const double elapsed_s = window.elapsed_ms() / 1000.0;
    server.stop();

    SampleStats merged;
    for (const SampleStats& s : latencies) {
      for (double v : s.values()) merged.add(v);
    }
    const long attempts = static_cast<long>(clients) * jobs_per_client;
    // Row built cell by cell: a single braced 11-cell initializer trips a
    // gcc-12 -Wmaybe-uninitialized false positive in the variant storage.
    std::vector<Table::Cell> row;
    row.emplace_back(static_cast<std::int64_t>(clients));
    row.emplace_back(static_cast<std::int64_t>(attempts));
    row.emplace_back(static_cast<std::int64_t>(ok.load()));
    row.emplace_back(static_cast<std::int64_t>(queue_full.load()));
    row.emplace_back(static_cast<std::int64_t>(failed.load()));
    // lossy: throughput figures; > 2^53 ops is unreachable in a bench run
    row.emplace_back(elapsed_s > 0.0 ? narrow_cast<double>(attempts) / elapsed_s
                                     : 0.0);
    // lossy: same
    row.emplace_back(
        elapsed_s > 0.0 ? narrow_cast<double>(ok.load()) / elapsed_s : 0.0);
    row.emplace_back(merged.count() ? merged.percentile(50.0) : 0.0);
    row.emplace_back(merged.count() ? merged.percentile(99.0) : 0.0);
    row.emplace_back(merged.count() ? merged.summary().mean() : 0.0);
    row.emplace_back(
        // lossy: hit-rate ratio
        ok.load() ? static_cast<double>(cache_hits.load()) /
                        narrow_cast<double>(ok.load())
                  : 0.0);
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
