// Shared plumbing for the experiment harness binaries (bench_table*/
// bench_fig*): common CLI flags, suite construction, run helpers.
//
// Every binary accepts:
//   --scale S   linear size factor on the suite graphs (default 0.5)
//   --seed N    RNG seed for generators and priorities (default 1)
//   --graphs a,b,c   subset of suite graphs (default: all)
// and prints an ASCII table followed by a CSV block (Table::print).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/gen/suite.hpp"
#include "metrics/imbalance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace gcg::bench {

struct BenchEnv {
  SuiteOptions suite;
  std::uint64_t seed = 1;
  std::vector<std::string> graph_names;
  simgpu::DeviceConfig device;
};

/// Parse the common flags; prints a one-line banner describing the run.
BenchEnv parse_env(int argc, char** argv, const std::string& experiment);

/// Build the selected suite graphs.
std::vector<SuiteEntry> load_graphs(const BenchEnv& env);

/// Run one algorithm with the env's seed; collect_launches controls
/// whether per-launch metrics are retained.
ColoringRun run(const BenchEnv& env, const Csr& g, Algorithm a,
                ColoringOptions opts = {}, bool collect_launches = false);

/// "1.234x" speedup formatting helper value.
double speedup(double baseline_cycles, double cycles);

}  // namespace gcg::bench
