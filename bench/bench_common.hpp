// Shared plumbing for the experiment harness binaries (bench_table*/
// bench_fig*): common CLI flags, suite construction, run helpers.
//
// Every binary accepts:
//   --scale S   linear size factor on the suite graphs (default 0.5)
//   --seed N    RNG seed for generators and priorities (default 1)
//   --graphs a,b,c   subset of suite graphs (default: all)
// and prints an ASCII table followed by a CSV block (Table::print).
#pragma once

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "coloring/runner.hpp"
#include "graph/gen/suite.hpp"
#include "metrics/imbalance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace gcg::bench {

struct BenchEnv {
  SuiteOptions suite;
  std::uint64_t seed = 1;
  std::vector<std::string> graph_names;
  simgpu::DeviceConfig device;
};

/// Parse the common flags; prints a one-line banner describing the run.
/// `extra_flags` names flags the caller parses itself (suppresses the
/// unused-flag typo warning for them).
BenchEnv parse_env(int argc, char** argv, const std::string& experiment,
                   const std::vector<std::string>& extra_flags = {});

/// Build the selected suite graphs.
std::vector<SuiteEntry> load_graphs(const BenchEnv& env);

/// Run one algorithm with the env's seed; collect_launches controls
/// whether per-launch metrics are retained.
ColoringRun run(const BenchEnv& env, const Csr& g, Algorithm a,
                ColoringOptions opts = {}, bool collect_launches = false);

/// "1.234x" speedup formatting helper value.
double speedup(double baseline_cycles, double cycles);

// --- wall-clock timing (native backend rows) -------------------------------
// The simulated backend reports model cycles; the par backend reports real
// steady_clock time. These helpers keep the two kinds of rows comparable:
// same units (ms), same best-of-N protocol.

/// Steady-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall milliseconds for one call of fn.
template <typename F>
double time_ms(F&& fn) {
  WallTimer t;
  fn();
  return t.elapsed_ms();
}

/// Best-of-`repeats` wall milliseconds — the usual noise-resistant protocol.
template <typename F>
double best_time_ms(int repeats, F&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double ms = time_ms(fn);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

}  // namespace gcg::bench
