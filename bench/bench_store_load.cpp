// Store cold-start / steady-state benchmark: how long until a graph is
// servable from each on-disk representation, and what (if anything) the
// mmap view costs at coloring time. Emits a machine-readable JSON
// document (BENCH_store.json trajectory) so CI can diff runs.
//
// Load paths compared, same graph each time:
//   parse_mtx            text parse + build            O(file) CPU-bound
//   v1_heap              legacy .gbin heap read        O(file) copy
//   v2_heap              .gbin v2 heap read + verify   O(file) copy
//   v2_mmap_first_open   mmap + header validate        O(1) in file size
//   v2_mmap_second_open  same file again (page cache)  ~free
//   v2_mmap_warmup       explicit page-touch of both sections
//
// Steady state: one JPL run (deterministic, so heap and mapped do the
// same work) on the heap copy vs the mapped view.
//
//   bench_store_load [--scale 0.4] [--seed 1] [--graph kron-like]
//                    [--threads 2] [--repeats 3] [--out BENCH_store.json]
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "graph/io/io.hpp"
#include "par/runner.hpp"
#include "store/mapped_graph.hpp"
#include "store/writer.hpp"

namespace {

using namespace gcg;

std::size_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

double color_ms(const Csr& g, unsigned threads, std::uint64_t seed) {
  par::ParOptions opts;
  opts.threads = threads;
  opts.seed = seed;
  return par::run_par_coloring(g, par::ParAlgorithm::kJpl, opts).wall_ms;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg::bench;
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.4);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string name = cli.get("graph", "kron-like");
  const unsigned threads = static_cast<unsigned>(cli.get_int("threads", 2));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3));
  const std::string out_path = cli.get("out", "");

  const Csr g =
      make_suite_graph(name, {.scale = scale, .seed = seed}).graph;
  std::cerr << "bench_store_load: " << name << " scale=" << scale << " ("
            << g.num_vertices() << " vertices, " << g.num_arcs()
            << " arcs)\n";

  const std::string dir = "bench_store_tmp";
  const std::string mtx = dir + "/" + name + ".mtx";
  const std::string v1 = dir + "/" + name + ".v1.gbin";
  const std::string v2 = dir + "/" + name + ".gbin";
  std::filesystem::create_directories(dir);
  save_graph(mtx, g);
  {
    std::ofstream o(v1, std::ios::binary);
    save_binary(o, g);
  }
  store::write_gbin_v2(v2, g);

  const double parse_ms =
      best_time_ms(repeats, [&] { (void)load_graph(mtx); });
  const double v1_ms = best_time_ms(repeats, [&] { (void)load_graph(v1); });
  const double v2_heap_ms =
      best_time_ms(repeats, [&] { (void)load_graph(v2); });

  // First open still hits a warm page cache in-process; what it shows is
  // that the open itself does no O(file) work. The second open measures
  // the registry's steady-state reopen cost.
  const double mmap_first_ms =
      time_ms([&] { (void)store::MappedGraph::open(v2); });
  const double mmap_second_ms =
      best_time_ms(repeats, [&] { (void)store::MappedGraph::open(v2); });

  const auto mg = store::MappedGraph::open(v2);
  const double warmup_ms = time_ms([&] { (void)mg->warmup(); });
  const double residency = mg->residency().ratio();

  const double heap_color_ms = [&] {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const double ms = color_ms(g, threads, seed);
      if (r == 0 || ms < best) best = ms;
    }
    return best;
  }();
  const double mapped_color_ms = [&] {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const double ms = color_ms(mg->graph(), threads, seed);
      if (r == 0 || ms < best) best = ms;
    }
    return best;
  }();

  char buf[2048];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"experiment\": \"store_load\",\n"
      "  \"graph\": {\"name\": \"%s\", \"scale\": %g, \"seed\": %llu,\n"
      "            \"vertices\": %llu, \"arcs\": %llu},\n"
      "  \"file_bytes\": {\"mtx\": %zu, \"v1\": %zu, \"v2\": %zu},\n"
      "  \"load_ms\": {\n"
      "    \"parse_mtx\": %.3f,\n"
      "    \"v1_heap\": %.3f,\n"
      "    \"v2_heap\": %.3f,\n"
      "    \"v2_mmap_first_open\": %.4f,\n"
      "    \"v2_mmap_second_open\": %.4f,\n"
      "    \"v2_mmap_warmup\": %.3f\n"
      "  },\n"
      "  \"steady_state\": {\"algorithm\": \"jpl\", \"threads\": %u,\n"
      "                   \"repeats\": %d, \"heap_color_ms\": %.3f,\n"
      "                   \"mapped_color_ms\": %.3f},\n"
      "  \"mapped\": %s,\n"
      "  \"residency_after_warmup\": %.3f\n"
      "}\n",
      name.c_str(), scale, static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(g.num_vertices()),
      static_cast<unsigned long long>(g.num_arcs()), file_bytes(mtx),
      file_bytes(v1), file_bytes(v2), parse_ms, v1_ms, v2_heap_ms,
      mmap_first_ms, mmap_second_ms, warmup_ms, threads, repeats,
      heap_color_ms, mapped_color_ms, mg->is_mapped() ? "true" : "false",
      residency);

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << buf;
    std::cerr << "wrote " << out_path << '\n';
  }
  std::cout << buf;

  std::filesystem::remove_all(dir);
  return 0;
}
