// R-F6: chunk-size sensitivity for work stealing. Small chunks balance
// better but pay more queue traffic; large chunks amortize atomics but
// leave hub-heavy tasks unstealable.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F6 chunk-size sweep");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"citation-like", "kron-like"};
  }

  Table t({"graph", "chunk", "total_cycles", "speedup_vs_chunk64",
           "steal_hits", "pops"});
  t.title("R-F6: steal chunk-size sensitivity");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    double ref = 0.0;
    // Sweep from fine to coarse; record chunk=64 as the reference point.
    std::vector<std::pair<std::uint32_t, ColoringRun>> runs;
    for (std::uint32_t chunk : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      ColoringOptions opts;
      opts.chunk_size = chunk;
      runs.emplace_back(chunk,
                        bench::run(env, entry.graph, Algorithm::kSteal, opts));
      if (chunk == 64) ref = runs.back().second.total_cycles;
    }
    for (const auto& [chunk, r] : runs) {
      t.add_row({entry.name, static_cast<std::int64_t>(chunk), r.total_cycles,
                 bench::speedup(ref, r.total_cycles),
                 static_cast<std::int64_t>(r.steal.steal_hits),
                 static_cast<std::int64_t>(r.steal.pops)});
    }
  }
  t.print(std::cout);
  return 0;
}
