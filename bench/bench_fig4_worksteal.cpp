// R-F4: work-stealing effectiveness. Static persistent partitioning vs
// stealing (per victim policy): runtime, speedup, steal traffic, and the
// per-wave busy-time imbalance stealing removes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-F4 work stealing");

  Table t({"graph", "scheme", "total_cycles", "speedup_vs_static", "pops",
           "steal_attempts", "steal_hits"});
  t.title("R-F4: static persistent partitioning vs work stealing");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    ColoringOptions opts;
    const double stat_cycles =
        bench::run(env, entry.graph, Algorithm::kPersistentStatic, opts)
            .total_cycles;
    {
      const ColoringRun r =
          bench::run(env, entry.graph, Algorithm::kPersistentStatic, opts);
      t.add_row({entry.name, std::string("static"), r.total_cycles, 1.0,
                 static_cast<std::int64_t>(r.steal.pops), std::int64_t{0},
                 std::int64_t{0}});
    }
    for (VictimPolicy policy :
         {VictimPolicy::kRandom, VictimPolicy::kRichest, VictimPolicy::kRing}) {
      ColoringOptions sopts;
      sopts.victim = policy;
      const ColoringRun r = bench::run(env, entry.graph, Algorithm::kSteal, sopts);
      t.add_row({entry.name,
                 std::string("steal/") + victim_policy_name(policy),
                 r.total_cycles, bench::speedup(stat_cycles, r.total_cycles),
                 static_cast<std::int64_t>(r.steal.pops),
                 static_cast<std::int64_t>(r.steal.steal_attempts),
                 static_cast<std::int64_t>(r.steal.steal_hits)});
    }

    // Ablation inside the hybrid: once the hubs leave the chunk stream
    // (the hybrid's job), does stealing the remaining small-bin work help?
    ColoringOptions hs;
    hs.hybrid_small_bin_steal = false;
    const ColoringRun hybrid_static =
        bench::run(env, entry.graph, Algorithm::kHybridSteal, hs);
    const ColoringRun hybrid_steal =
        bench::run(env, entry.graph, Algorithm::kHybridSteal);
    t.add_row({entry.name, std::string("hybrid/static-small-bin"),
               hybrid_static.total_cycles, 1.0,
               static_cast<std::int64_t>(hybrid_static.steal.pops),
               std::int64_t{0}, std::int64_t{0}});
    t.add_row({entry.name, std::string("hybrid/steal-small-bin"),
               hybrid_steal.total_cycles,
               bench::speedup(hybrid_static.total_cycles,
                              hybrid_steal.total_cycles),
               static_cast<std::int64_t>(hybrid_steal.steal.pops),
               static_cast<std::int64_t>(hybrid_steal.steal.steal_attempts),
               static_cast<std::int64_t>(hybrid_steal.steal.steal_hits)});
  }
  std::cout << "# hybrid rows: speedup is vs hybrid/static-small-bin\n";
  t.print(std::cout);
  return 0;
}
