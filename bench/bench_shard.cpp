// Sharded-coloring benchmark: how the boundary fraction, conflict-round
// count, and repair traffic scale with the number of shards, on a
// skewed (rmat/kron-like) versus a uniform (er-like) graph. This is the
// load-imbalance story of the paper replayed at the process level: the
// same hub vertices that imbalance a GPU workgroup also fatten the cut
// between shards.
//
// Emits a machine-readable JSON document (BENCH_shard.json) so CI can
// diff runs, plus the usual ASCII table.
//
//   bench_shard [--scale 0.3] [--seed 1] [--graphs kron-like,er-like]
//               [--shards 1,2,4,8] [--workers 2] [--rounds 16]
//               [--out BENCH_shard.json]
//
// The fleet runs in-process (WorkerServer threads on real sockets):
// bench binaries do not sit next to shard_worker, and the protocol cost
// is identical either way — only the address space differs.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "check/check.hpp"
#include "par/runner.hpp"
#include "shard/coordinator.hpp"
#include "svc/graph_registry.hpp"

namespace {

using namespace gcg;

std::vector<unsigned> parse_shard_list(const std::string& csv) {
  std::vector<unsigned> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    auto comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > pos) {
      out.push_back(
          static_cast<unsigned>(std::stoul(csv.substr(pos, comma - pos))));
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcg::bench;
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.3);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string graphs_csv = cli.get("graphs", "kron-like,er-like");
  const std::vector<unsigned> shard_counts =
      parse_shard_list(cli.get("shards", "1,2,4,8"));
  const unsigned workers = static_cast<unsigned>(cli.get_int("workers", 2));
  const unsigned rounds = static_cast<unsigned>(cli.get_int("rounds", 16));
  const std::string out_path = cli.get("out", "BENCH_shard.json");

  shard::CoordinatorOptions copts;
  copts.workers = workers;
  copts.in_process = true;
  copts.max_rounds = rounds;
  shard::Coordinator coord(copts);

  svc::GraphRegistry registry;
  Table t({"graph", "shards", "boundary%", "cut arcs", "rounds",
           "recolored", "colors", "par colors", "wall ms", "par ms"});
  t.title("sharded coloring: shards x boundary fraction sweep");

  std::ostringstream records;
  bool first = true;
  std::size_t pos = 0;
  while (pos <= graphs_csv.size()) {
    auto comma = graphs_csv.find(',', pos);
    if (comma == std::string::npos) comma = graphs_csv.size();
    const std::string name = graphs_csv.substr(pos, comma - pos);
    pos = comma + 1;
    if (name.empty()) continue;

    std::ostringstream spec_os;
    spec_os << "gen:" << name << "?scale=" << scale << "&seed=" << seed;
    const std::string spec = spec_os.str();
    const auto g = registry.acquire(spec);
    std::cerr << "bench_shard: " << name << " (" << g->num_vertices()
              << " vertices, " << g->num_arcs() << " arcs)\n";

    // Single-process jpl baseline: same interior algorithm the shards
    // run, so the color-count delta is purely the cost of sharding.
    par::ParOptions popts;
    popts.seed = seed;
    const par::ParRun base = par::run_par_coloring(
        *g, par::ParAlgorithm::kJpl, popts);

    for (const unsigned shards : shard_counts) {
      shard::ShardJob job;
      job.graph = spec;
      job.shards = shards;
      job.seed = seed;
      shard::ShardRunStats st;
      const std::vector<color_t> colors = coord.color(*g, job, &st);
      if (check::verify_coloring(*g, colors)) {
        std::cerr << "bench_shard: INVALID coloring for " << name << " x"
                  << shards << '\n';
        return 1;
      }

      t.add_row({name, static_cast<std::int64_t>(st.shards),
                 100.0 * st.boundary_fraction,
                 static_cast<std::int64_t>(st.cut_arcs),
                 static_cast<std::int64_t>(st.conflict_rounds),
                 static_cast<std::int64_t>(st.recolored +
                                           st.fallback_recolored),
                 static_cast<std::int64_t>(st.num_colors),
                 static_cast<std::int64_t>(base.num_colors), st.wall_ms,
                 base.wall_ms});

      if (!first) records << ",\n";
      first = false;
      records << "    {\"graph\": \"" << name << "\", \"shards\": "
              << st.shards << ", \"workers\": " << st.workers
              << ",\n     \"boundary_fraction\": " << st.boundary_fraction
              << ", \"boundary_vertices\": " << st.boundary_vertices
              << ", \"cut_arcs\": " << st.cut_arcs
              << ",\n     \"conflict_rounds\": " << st.conflict_rounds
              << ", \"recolored\": " << st.recolored
              << ", \"fallback_recolored\": " << st.fallback_recolored
              << ",\n     \"colors\": " << st.num_colors
              << ", \"par_colors\": " << base.num_colors
              << ", \"phase1_ms\": " << st.phase1_ms
              << ", \"wall_ms\": " << st.wall_ms
              << ", \"par_wall_ms\": " << base.wall_ms << "}";
    }
  }

  t.print(std::cout);

  std::ostringstream doc;
  doc << "{\n  \"experiment\": \"shard\",\n  \"scale\": " << scale
      << ",\n  \"seed\": " << seed << ",\n  \"workers\": " << workers
      << ",\n  \"max_rounds\": " << rounds << ",\n  \"records\": [\n"
      << records.str() << "\n  ]\n}\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << doc.str();
    std::cerr << "wrote " << out_path << '\n';
  } else {
    std::cout << doc.str();
  }
  return 0;
}
