// R-T2: coloring quality — colors used and iterations needed, per
// algorithm per graph, against sequential-greedy references.
#include "bench_common.hpp"
#include "coloring/seq_greedy.hpp"
#include "check/coloring.hpp"
#include "util/expect.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-T2 coloring quality");

  Table t({"graph", "algorithm", "colors", "iterations", "colors/greedy"});
  t.title("R-T2: colors and iterations per algorithm");
  t.precision(2);
  for (const auto& entry : bench::load_graphs(env)) {
    const int greedy_nat = greedy_color(entry.graph).num_colors;
    const int greedy_sl =
        greedy_color(entry.graph, GreedyOrder::kSmallestLast).num_colors;
    t.add_row({entry.name, std::string("seq-greedy(natural)"),
               static_cast<std::int64_t>(greedy_nat), std::int64_t{1}, 1.0});
    t.add_row({entry.name, std::string("seq-greedy(smallest-last)"),
               static_cast<std::int64_t>(greedy_sl), std::int64_t{1},
               static_cast<double>(greedy_sl) / greedy_nat});
    for (Algorithm a : all_algorithms()) {
      const ColoringRun r = bench::run(env, entry.graph, a);
      GCG_ENSURE(check::is_valid_coloring(entry.graph, r.colors));
      t.add_row({entry.name, std::string(algorithm_name(a)),
                 static_cast<std::int64_t>(r.num_colors),
                 static_cast<std::int64_t>(r.iterations),
                 static_cast<double>(r.num_colors) / greedy_nat});
    }
  }
  t.print(std::cout);
  return 0;
}
