// R-F9: factors affecting performance — vertex ordering. The lane<->vertex
// mapping decides which degrees share a wavefront; degree-sorted orders
// repair SIMD divergence without algorithm changes (at the price of a
// preprocessing pass and worse locality for some orders).
#include "bench_common.hpp"
#include "graph/reorder.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F9 vertex-order sensitivity");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"rgg-like", "citation-like", "kron-like"};
  }

  Table t({"graph", "order", "total_cycles", "speedup_vs_natural", "simd_eff",
           "colors"});
  t.title("R-F9: baseline under different vertex orders");
  t.precision(3);

  for (const auto& entry : bench::load_graphs(env)) {
    double ref = 0.0;
    for (Order o : {Order::kNatural, Order::kRandom, Order::kDegreeDescending,
                    Order::kDegreeAscending, Order::kBfs, Order::kRcm}) {
      const Csr g = reorder(entry.graph, o, env.seed);
      const ColoringRun r = bench::run(env, g, Algorithm::kBaseline, {},
                                       /*collect_launches=*/true);
      const ImbalanceReport rep =
          summarize_launches(r.launches, env.device.wavefront_size);
      if (o == Order::kNatural) ref = r.total_cycles;
      t.add_row({entry.name, std::string(order_name(o)), r.total_cycles,
                 bench::speedup(ref, r.total_cycles), rep.simd_efficiency,
                 static_cast<std::int64_t>(r.num_colors)});
    }
  }
  t.print(std::cout);
  return 0;
}
