// R-T1: evaluation-suite characteristics (the paper's input-graph table).
// Regenerates: |V|, arcs, average/max degree, degree CV and Gini, and the
// paper-era input each synthetic graph stands in for.
#include "bench_common.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  const auto env = bench::parse_env(argc, argv, "R-T1 graph suite");

  Table t({"graph", "stands for", "family", "|V|", "arcs", "d_avg", "d_max",
           "deg CV", "deg Gini", "components"});
  t.title("R-T1: input graph characteristics");
  t.precision(2);
  for (const auto& entry : bench::load_graphs(env)) {
    const GraphStats s = compute_stats(entry.graph);
    t.add_row({entry.name, entry.stands_for, entry.family,
               static_cast<std::int64_t>(s.n), static_cast<std::int64_t>(s.arcs),
               s.avg_degree, static_cast<std::int64_t>(s.max_degree),
               s.degree_cv, s.degree_gini,
               static_cast<std::int64_t>(s.connected_components)});
  }
  t.print(std::cout);

  std::cout << "\nDegree histograms (log2 bins):\n";
  for (const auto& entry : bench::load_graphs(env)) {
    std::cout << entry.name << ":\n" << degree_histogram(entry.graph).render()
              << "\n";
  }
  return 0;
}
