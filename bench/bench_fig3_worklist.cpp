// R-F3: topology-driven vs data-driven execution. Compares the baseline
// (rescan everything) with the worklist variant (frontier only): work
// issued, per-iteration cycles, and totals — exposing the trade-off
// between wasted lanes and shrinking-dispatch latency exposure.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gcg;
  auto env = bench::parse_env(argc, argv, "R-F3 topology- vs data-driven");
  if (env.graph_names.size() == suite_names().size()) {
    env.graph_names = {"ecology-like", "er-like", "kron-like"};
  }

  Table t({"graph", "algorithm", "total_cycles", "valu_instr", "mem_instr",
           "speedup_vs_baseline"});
  t.title("R-F3: topology-driven vs worklist totals");
  t.precision(3);
  Table iters({"graph", "algorithm", "iteration", "active", "cycles"});
  iters.title("R-F3b: per-iteration cycles");
  iters.precision(1);

  for (const auto& entry : bench::load_graphs(env)) {
    double baseline_cycles = 0.0;
    for (Algorithm a : {Algorithm::kBaseline, Algorithm::kWorklist}) {
      const ColoringRun r =
          bench::run(env, entry.graph, a, {}, /*collect_launches=*/true);
      double valu = 0.0, mem = 0.0;
      for (const auto& l : r.launches) {
        valu += l.total.valu_instructions;
        mem += static_cast<double>(l.total.mem_instructions);
      }
      if (a == Algorithm::kBaseline) baseline_cycles = r.total_cycles;
      t.add_row({entry.name, std::string(algorithm_name(a)), r.total_cycles,
                 valu, mem, bench::speedup(baseline_cycles, r.total_cycles)});
      for (const auto& pt : r.activity) {
        iters.add_row({entry.name, std::string(algorithm_name(a)),
                       static_cast<std::int64_t>(pt.iteration),
                       static_cast<std::int64_t>(pt.active_vertices), pt.cycles});
      }
    }
  }
  t.print(std::cout);
  std::cout << '\n';
  iters.print(std::cout);
  return 0;
}
