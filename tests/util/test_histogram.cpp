#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

TEST(Histogram, LinearBinningPlacesValues) {
  auto h = Histogram::linear(0.0, 10.0, 5);
  h.add(0.0);   // [0,2)
  h.add(1.99);  // [0,2)
  h.add(2.0);   // [2,4)
  h.add(9.99);  // [8,10)
  h.add(10.0);  // overflow
  h.add(100.0); // overflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(5), 2u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, LinearUnderflowClampsToFirstBin) {
  auto h = Histogram::linear(10.0, 20.0, 2);
  h.add(-5.0);
  EXPECT_EQ(h.count(0), 1u);
}

TEST(Histogram, Log2Binning) {
  auto h = Histogram::log2(4);  // bins [0,1) [1,2) [2,4) [4,8) [8,16) [16,inf)
  h.add(0.0);
  h.add(0.5);
  h.add(1.0);
  h.add(3.0);
  h.add(4.0);
  h.add(15.0);
  h.add(16.0);
  h.add(1e9);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(5), 2u);
}

TEST(Histogram, WeightedAdds) {
  auto h = Histogram::log2(3);
  h.add(2.0, 10);
  EXPECT_EQ(h.count(2), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, LabelsAreReadable) {
  auto h = Histogram::log2(3);
  EXPECT_EQ(h.bin_label(0), "[0,1)");
  EXPECT_EQ(h.bin_label(1), "[1,2)");
  EXPECT_EQ(h.bin_label(2), "[2,4)");
  EXPECT_EQ(h.bin_label(4), "[8,inf)");
}

TEST(Histogram, RenderShowsNonEmptyBinsOnly) {
  auto h = Histogram::log2(4);
  h.add(3.0, 7);
  const std::string out = h.render();
  EXPECT_NE(out.find("[2,4)"), std::string::npos);
  EXPECT_NE(out.find('7'), std::string::npos);
  EXPECT_EQ(out.find("[0,1)"), std::string::npos);
}

}  // namespace
}  // namespace gcg
