#include "util/log.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LogTest, SuppressedLevelsDoNotEvaluateArguments) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  GCG_DEBUG << expensive();
  GCG_INFO << expensive();
  GCG_WARN << expensive();
  EXPECT_EQ(evaluations, 0);
  GCG_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  GCG_ERROR << [&] {
    ++evaluations;
    return "x";
  }();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogTest, StreamsArbitraryTypes) {
  set_log_level(LogLevel::kDebug);
  // Just exercise the paths; output goes to stderr.
  GCG_DEBUG << "int=" << 42 << " double=" << 3.5 << " bool=" << true;
  GCG_INFO << std::string("string payload");
  SUCCEED();
}

}  // namespace
}  // namespace gcg
