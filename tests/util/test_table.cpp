#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gcg {
namespace {

TEST(Table, AsciiAlignsColumns) {
  Table t({"graph", "n", "time"});
  t.add_row({std::string("grid"), std::int64_t{65536}, 3.14159});
  t.add_row({std::string("rmat-wide"), std::int64_t{7}, 0.5});
  const std::string a = t.to_ascii();
  // Every data/header line must have equal length (box alignment).
  std::istringstream is(a);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
  EXPECT_NE(a.find("grid"), std::string::npos);
  EXPECT_NE(a.find("65536"), std::string::npos);
  EXPECT_NE(a.find("3.142"), std::string::npos);  // default precision 3
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"x"});
  t.precision(1);
  t.add_row({2.71828});
  EXPECT_NE(t.to_ascii().find("2.7"), std::string::npos);
  EXPECT_EQ(t.to_ascii().find("2.72"), std::string::npos);
}

TEST(Table, CsvRoundTripsContent) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), std::int64_t{1}});
  t.add_row({std::string("y"), std::int64_t{2}});
  EXPECT_EQ(t.to_csv(), "a,b\nx,1\ny,2\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"name"});
  t.add_row({std::string("a,b")});
  t.add_row({std::string("say \"hi\"")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, TitleAppearsInAscii) {
  Table t({"x"});
  t.title("My Experiment");
  t.add_row({std::int64_t{1}});
  EXPECT_NE(t.to_ascii().find("== My Experiment =="), std::string::npos);
}

TEST(Table, PrintEmitsBothForms) {
  Table t({"x"});
  t.add_row({std::int64_t{5}});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("--- csv ---"), std::string::npos);
  EXPECT_NE(os.str().find("+"), std::string::npos);
}

TEST(TableDeathTest, RowArityMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({std::string("only-one")}), "precondition");
}

}  // namespace
}  // namespace gcg
