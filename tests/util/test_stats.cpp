#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gcg {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
  EXPECT_EQ(rs.cv(), 0.0);
  EXPECT_EQ(rs.max_over_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(4.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 4.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(rs.cv(), 0.4);
  EXPECT_DOUBLE_EQ(rs.max_over_mean(), 9.0 / 5.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsNoop) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleStats, PercentilesOnKnownData) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(25), 25.75, 1e-9);
}

TEST(SampleStats, PercentileSingleElement) {
  SampleStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(SampleStats, PercentileInterleavedWithAdds) {
  SampleStats s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);
  s.add(5.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(SampleStats, GiniOfEqualValuesIsZero) {
  SampleStats s;
  for (int i = 0; i < 10; ++i) s.add(5.0);
  EXPECT_NEAR(s.gini(), 0.0, 1e-12);
}

TEST(SampleStats, GiniOfExtremeSkewApproachesOne) {
  SampleStats s;
  for (int i = 0; i < 99; ++i) s.add(0.0);
  s.add(1000.0);
  EXPECT_GT(s.gini(), 0.95);
}

TEST(SampleStats, GiniKnownValue) {
  // {1,2,3}: G = 2*(1*1+2*2+3*3)/(3*6) - 4/3 = 28/18 - 4/3 = 2/9.
  SampleStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_NEAR(s.gini(), 2.0 / 9.0, 1e-12);
}

TEST(WindowedStats, EmptyIsZero) {
  WindowedStats w(8);
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.window_count(), 0u);
  EXPECT_EQ(w.capacity(), 8u);
  EXPECT_EQ(w.percentile(50), 0.0);
}

TEST(WindowedStats, MatchesSampleStatsBelowCapacity) {
  WindowedStats w(100);
  SampleStats s;
  for (int i = 1; i <= 50; ++i) {
    w.add(i);
    s.add(i);
  }
  EXPECT_EQ(w.count(), 50u);
  EXPECT_EQ(w.window_count(), 50u);
  for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(w.percentile(p), s.percentile(p)) << p;
  }
  EXPECT_DOUBLE_EQ(w.summary().mean(), s.summary().mean());
}

TEST(WindowedStats, WindowSlidesPastCapacity) {
  WindowedStats w(10);
  for (int i = 1; i <= 1000; ++i) w.add(i);
  // Memory stays bounded; percentiles reflect the last 10 samples only.
  EXPECT_EQ(w.count(), 1000u);
  EXPECT_EQ(w.window_count(), 10u);
  EXPECT_DOUBLE_EQ(w.percentile(0), 991.0);
  EXPECT_DOUBLE_EQ(w.percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(w.median(), 995.5);
  // The streaming summary still covers everything ever added.
  EXPECT_DOUBLE_EQ(w.summary().min(), 1.0);
  EXPECT_DOUBLE_EQ(w.summary().max(), 1000.0);
  EXPECT_DOUBLE_EQ(w.summary().mean(), 500.5);
}

TEST(WindowedStats, ZeroCapacityClampsToOne) {
  WindowedStats w(0);
  w.add(3.0);
  w.add(7.0);
  EXPECT_EQ(w.capacity(), 1u);
  EXPECT_EQ(w.window_count(), 1u);
  EXPECT_DOUBLE_EQ(w.percentile(50), 7.0);  // only the latest survives
}

TEST(Geomean, Basics) {
  EXPECT_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

}  // namespace
}  // namespace gcg
