#include "util/narrow.hpp"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace gcg {
namespace {

// ---------------------------------------------------------------- narrow

TEST(Narrow, ValuePreservingIntegral) {
  EXPECT_EQ(narrow<std::uint32_t>(std::uint64_t{42}), 42u);
  EXPECT_EQ(narrow<std::int8_t>(127), 127);
  EXPECT_EQ(narrow<std::int8_t>(-128), -128);
  EXPECT_EQ(narrow<std::uint64_t>(std::int64_t{7}), 7u);
  EXPECT_EQ(narrow<int>(std::uint32_t{0x7FFFFFFF}), 0x7FFFFFFF);
}

TEST(Narrow, IsConstexpr) {
  static_assert(narrow<std::uint16_t>(65535u) == 65535u);
  static_assert(narrow<std::int32_t>(std::uint64_t{0}) == 0);
  static_assert(to_signed(3u) == 3);
  static_assert(to_unsigned(3) == 3u);
  // lossy: the wrap is the semantic under test
  static_assert(narrow_cast<std::uint8_t>(0x1FF) == 0xFF);
}

TEST(Narrow, BoundaryValuesRoundTrip) {
  constexpr auto u32max = std::numeric_limits<std::uint32_t>::max();
  EXPECT_EQ(narrow<std::uint32_t>(std::uint64_t{u32max}), u32max);
  constexpr auto i64min = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(narrow<std::int64_t>(i64min), i64min);
}

TEST(Narrow, FloatSourceTruncatesTowardZero) {
  EXPECT_EQ(narrow<int>(2.9), 2);
  EXPECT_EQ(narrow<int>(-2.9), -2);
  EXPECT_EQ(narrow<std::uint32_t>(0.999), 0u);
  // Unsigned targets accept the (-1, 0] sliver: truncation yields 0.
  EXPECT_EQ(narrow<std::uint32_t>(-0.25), 0u);
  EXPECT_EQ(narrow<std::uint64_t>(1.0e9), 1000000000u);
}

#ifndef NDEBUG
using NarrowDeathTest = testing::Test;

TEST(NarrowDeathTest, OverflowAborts) {
  const std::uint64_t big = std::uint64_t{1} << 40;
  EXPECT_DEATH((void)narrow<std::uint32_t>(big), "debug check");
  EXPECT_DEATH((void)narrow<std::int8_t>(128), "debug check");
}

TEST(NarrowDeathTest, SignFlipAborts) {
  EXPECT_DEATH((void)narrow<std::uint32_t>(-1), "debug check");
  EXPECT_DEATH((void)to_unsigned(-5), "debug check");
  const auto u64max = std::numeric_limits<std::uint64_t>::max();
  EXPECT_DEATH((void)to_signed(u64max), "debug check");
}

TEST(NarrowDeathTest, FloatOutOfRangeAborts) {
  // Each of these is undefined behaviour for a raw static_cast; the
  // DCHECK is what makes Debug builds UBSan-clean by construction.
  EXPECT_DEATH((void)narrow<std::uint32_t>(4.3e9), "debug check");
  EXPECT_DEATH((void)narrow<int>(-3.0e9), "debug check");
  EXPECT_DEATH((void)narrow<std::uint64_t>(-1.5), "debug check");
  EXPECT_DEATH((void)narrow<int>(std::numeric_limits<double>::quiet_NaN()),
               "debug check");
  EXPECT_DEATH((void)narrow<int>(std::numeric_limits<double>::infinity()),
               "debug check");
}

TEST(NarrowDeathTest, FloatExactPowerOfTwoBoundIsExclusive) {
  // 2^31 is exactly representable in double and exactly one past INT_MAX.
  EXPECT_DEATH((void)narrow<std::int32_t>(2147483648.0), "debug check");
  EXPECT_EQ(narrow<std::int32_t>(2147483647.0), 2147483647);
  EXPECT_EQ(narrow<std::int32_t>(-2147483648.0),
            std::numeric_limits<std::int32_t>::min());
}
#endif  // NDEBUG

// ----------------------------------------------------------- narrow_cast

TEST(NarrowCast, WrapsModular) {
  // lossy: the wrap IS the assertion under test
  EXPECT_EQ(narrow_cast<std::uint8_t>(256), 0);
  // lossy: two's-complement transport round-trip, the protocol's seed path
  const auto wire = narrow_cast<std::int64_t>(
      std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(wire, -1);
  // lossy: and back, bit for bit
  EXPECT_EQ(narrow_cast<std::uint64_t>(wire),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(NarrowCast, IntegerToFloatRounds) {
  const std::uint64_t odd = (std::uint64_t{1} << 60) + 1;
  // lossy: 2^60 + 1 is beyond double's 53-bit mantissa
  EXPECT_DOUBLE_EQ(narrow_cast<double>(odd),
                   static_cast<double>(std::uint64_t{1} << 60));
}

// -------------------------------------------------- to_signed/to_unsigned

TEST(SignFlips, PreserveValueAndWidth) {
  EXPECT_EQ(to_signed(std::uint64_t{9}), std::int64_t{9});
  EXPECT_EQ(to_unsigned(std::int32_t{9}), std::uint32_t{9});
  static_assert(std::is_same_v<decltype(to_signed(std::size_t{0})),
                               std::make_signed_t<std::size_t>>);
  static_assert(std::is_same_v<decltype(to_unsigned(std::ptrdiff_t{0})),
                               std::size_t>);
}

TEST(SignFlips, FullPositiveRange) {
  constexpr auto i64max = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(to_unsigned(i64max), std::uint64_t{i64max});
  EXPECT_EQ(to_signed(std::uint64_t{i64max}), i64max);
}

}  // namespace
}  // namespace gcg
