#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/narrow.hpp"

namespace gcg {
namespace {

Cli make(std::initializer_list<const char*> args,
         std::vector<std::string> flags = {}) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(narrow<int>(argv.size()), argv.data(), std::move(flags));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make({"--graph", "rmat", "--scale", "2"});
  EXPECT_EQ(cli.get("graph", ""), "rmat");
  EXPECT_EQ(cli.get_int("scale", 0), 2);
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make({"--graph=rmat", "--p=0.25"});
  EXPECT_EQ(cli.get("graph", ""), "rmat");
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.25);
}

TEST(Cli, BareFlagIsTrue) {
  auto cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
}

TEST(Cli, DefaultsWhenAbsent) {
  auto cli = make({});
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, PositionalArguments) {
  auto cli = make({"input.mtx", "output.col", "--fast"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.mtx");
  EXPECT_EQ(cli.positional()[1], "output.col");
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, UndeclaredBareFlagConsumesFollowingToken) {
  // Documented semantics: a non-dashed token after an UNDECLARED --name is
  // its value; flags mixed with positionals must be declared (or use
  // --name=value form).
  auto cli = make({"--fast", "output.col"});
  EXPECT_EQ(cli.get("fast", ""), "output.col");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, DeclaredFlagDoesNotAbsorbPositional) {
  // The graph_pack regression: `--verify file.gbin` must keep file.gbin
  // positional when `verify` is a declared boolean flag.
  auto cli = make({"--verify", "file.gbin"}, {"verify"});
  EXPECT_TRUE(cli.get_bool("verify"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.gbin");
}

TEST(Cli, DeclaredFlagOrderings) {
  // flag-then-positional, positional-then-flag, flag-between-positionals,
  // and flags mixed with value options all parse identically.
  for (const auto& args : std::vector<std::vector<const char*>>{
           {"--v1", "in.mtx", "out.gbin"},
           {"in.mtx", "--v1", "out.gbin"},
           {"in.mtx", "out.gbin", "--v1"}}) {
    std::vector<const char*> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    Cli cli(narrow<int>(argv.size()), argv.data(), {"v1", "force"});
    EXPECT_TRUE(cli.get_bool("v1"));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "in.mtx");
    EXPECT_EQ(cli.positional()[1], "out.gbin");
  }
}

TEST(Cli, DeclaredFlagStillAcceptsEqualsForm) {
  auto cli = make({"--force=false", "in.mtx"}, {"force"});
  EXPECT_FALSE(cli.get_bool("force", true));
  ASSERT_EQ(cli.positional().size(), 1u);
}

TEST(Cli, DeclaredFlagMixedWithValueOptions) {
  auto cli = make({"--inspect", "--threads", "4", "g.gbin"}, {"inspect"});
  EXPECT_TRUE(cli.get_bool("inspect"));
  EXPECT_EQ(cli.get_int("threads", 0), 4);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "g.gbin");
}

TEST(Cli, UndeclaredNameStillTakesValue) {
  // Declaring some flags must not change value-option parsing.
  auto cli = make({"--backend", "par", "--v1"}, {"v1"});
  EXPECT_EQ(cli.get("backend", ""), "par");
  EXPECT_TRUE(cli.get_bool("v1"));
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, BoolSpellings) {
  auto cli = make({"--a=true", "--b=1", "--c=yes", "--d=on", "--e=false", "--f=0"});
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
  EXPECT_TRUE(cli.get_bool("c"));
  EXPECT_TRUE(cli.get_bool("d"));
  EXPECT_FALSE(cli.get_bool("e"));
  EXPECT_FALSE(cli.get_bool("f"));
}

TEST(Cli, UnusedDetectsTypos) {
  auto cli = make({"--graphh", "rmat", "--n", "10"});
  (void)cli.get_int("n", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "graphh");
}

TEST(Cli, ValueStartingWithDashesBecomesNextOption) {
  // "--a --b": a is a bare flag, b too.
  auto cli = make({"--a", "--b"});
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
}

}  // namespace
}  // namespace gcg
