#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make({"--graph", "rmat", "--scale", "2"});
  EXPECT_EQ(cli.get("graph", ""), "rmat");
  EXPECT_EQ(cli.get_int("scale", 0), 2);
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make({"--graph=rmat", "--p=0.25"});
  EXPECT_EQ(cli.get("graph", ""), "rmat");
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.25);
}

TEST(Cli, BareFlagIsTrue) {
  auto cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
}

TEST(Cli, DefaultsWhenAbsent) {
  auto cli = make({});
  EXPECT_EQ(cli.get("missing", "fallback"), "fallback");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, PositionalArguments) {
  auto cli = make({"input.mtx", "output.col", "--fast"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.mtx");
  EXPECT_EQ(cli.positional()[1], "output.col");
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, BareFlagConsumesFollowingToken) {
  // Documented semantics: a non-dashed token after --name is its value, so
  // flags mixed with positionals must use --name=value form.
  auto cli = make({"--fast", "output.col"});
  EXPECT_EQ(cli.get("fast", ""), "output.col");
  EXPECT_TRUE(cli.positional().empty());
}

TEST(Cli, BoolSpellings) {
  auto cli = make({"--a=true", "--b=1", "--c=yes", "--d=on", "--e=false", "--f=0"});
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
  EXPECT_TRUE(cli.get_bool("c"));
  EXPECT_TRUE(cli.get_bool("d"));
  EXPECT_FALSE(cli.get_bool("e"));
  EXPECT_FALSE(cli.get_bool("f"));
}

TEST(Cli, UnusedDetectsTypos) {
  auto cli = make({"--graphh", "rmat", "--n", "10"});
  (void)cli.get_int("n", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "graphh");
}

TEST(Cli, ValueStartingWithDashesBecomesNextOption) {
  // "--a --b": a is a bare flag, b too.
  auto cli = make({"--a", "--b"});
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
}

}  // namespace
}  // namespace gcg
