#include "util/expect.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

TEST(ExpectDeathTest, MacrosAbortWithKindAndLocation) {
  EXPECT_DEATH(GCG_EXPECT(1 == 2), "precondition violated: 1 == 2");
  EXPECT_DEATH(GCG_ENSURE(false), "postcondition violated");
  EXPECT_DEATH(GCG_ASSERT(0 > 1), "invariant violated");
}

TEST(Expect, PassingConditionsAreSilent) {
  GCG_EXPECT(true);
  GCG_ENSURE(2 + 2 == 4);
  GCG_ASSERT(!false);
  SUCCEED();
}

TEST(Expect, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  GCG_EXPECT([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gcg
