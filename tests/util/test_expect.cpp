#include "util/expect.hpp"

#include <gtest/gtest.h>

namespace gcg {
namespace {

TEST(ExpectDeathTest, MacrosAbortWithKindAndLocation) {
  EXPECT_DEATH(GCG_EXPECT(1 == 2), "precondition violated: 1 == 2");
  EXPECT_DEATH(GCG_ENSURE(false), "postcondition violated");
  EXPECT_DEATH(GCG_ASSERT(0 > 1), "invariant violated");
#ifndef NDEBUG
  EXPECT_DEATH(GCG_DCHECK(1 + 1 == 3), "debug check violated");
#endif
}

TEST(ExpectDeathTest, DcheckCompiledOutInRelease) {
#ifdef NDEBUG
  // Release: the condition must not even be evaluated.
  int evaluations = 0;
  GCG_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
#else
  // Debug: evaluated exactly once, and a true condition is silent.
  int evaluations = 0;
  GCG_DCHECK([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
#endif
}

TEST(Expect, PassingConditionsAreSilent) {
  GCG_EXPECT(true);
  GCG_ENSURE(2 + 2 == 4);
  GCG_ASSERT(!false);
  SUCCEED();
}

TEST(Expect, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  GCG_EXPECT([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace gcg
