// gcg::simd dispatch seam: detection/override plumbing, and bit-identical
// results between the scalar kernels and whatever vector level the host
// supports (on a non-AVX2 host the forced level degrades to scalar and
// the identity checks become self-comparisons — still valid, just not
// informative, which is exactly the portable-matrix contract).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <random>
#include <vector>

#include "util/simd.hpp"

namespace gcg {
namespace {

class SimdLevelGuard {
 public:
  ~SimdLevelGuard() { simd::clear_level_override_for_testing(); }
};

std::vector<simd::Level> levels_to_test() {
  std::vector<simd::Level> out = {simd::Level::kScalar};
  if (simd::detect_level() != simd::Level::kScalar) {
    out.push_back(simd::detect_level());
  }
  return out;
}

TEST(SimdLevelTest, NamesAreStable) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

TEST(SimdLevelTest, ForceIsCappedAtDetectedLevel) {
  SimdLevelGuard guard;
  simd::force_level_for_testing(simd::Level::kAvx2);
  EXPECT_LE(static_cast<int>(simd::active_level()),
            static_cast<int>(simd::detect_level()));
  simd::force_level_for_testing(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::clear_level_override_for_testing();
  EXPECT_EQ(simd::active_level(), simd::detect_level());
}

TEST(SimdLevelTest, ForceScalarEnvironmentPinsDetection) {
  // detect_level() re-reads the environment on every call (only
  // active_level() caches), so the override is directly observable.
  ASSERT_EQ(setenv("GCG_FORCE_SCALAR", "1", 1), 0);
  EXPECT_EQ(simd::detect_level(), simd::Level::kScalar);
  ASSERT_EQ(setenv("GCG_FORCE_SCALAR", "0", 1), 0);
  const simd::Level unforced = simd::detect_level();
  ASSERT_EQ(unsetenv("GCG_FORCE_SCALAR"), 0);
  EXPECT_EQ(simd::detect_level(), unforced);
}

// --- kernel identity: every level must agree with scalar bit-for-bit -------

TEST(SimdKernelTest, FirstNotFullWordMatchesScalarEverywhere) {
  SimdLevelGuard guard;
  std::mt19937_64 rng(42);
  // Every (size, position) pair through 3 vector blocks plus the tail,
  // with random saturated prefixes: position `pos` is the answer iff all
  // words below it are ~0.
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 12u, 13u, 64u}) {
    std::vector<std::uint64_t> words(n, ~0ull);
    for (std::size_t pos = 0; pos <= n; ++pos) {
      for (std::size_t i = 0; i < n; ++i) {
        words[i] = i < pos ? ~0ull : (i == pos ? rng() | 1ull : rng());
      }
      if (pos < n) words[pos] &= ~(1ull << (rng() % 64));  // ensure a hole
      std::size_t expect = 0;
      simd::force_level_for_testing(simd::Level::kScalar);
      expect = simd::first_not_full_word(words.data(), n);
      for (simd::Level lvl : levels_to_test()) {
        simd::force_level_for_testing(lvl);
        EXPECT_EQ(simd::first_not_full_word(words.data(), n), expect)
            << "n=" << n << " pos=" << pos << " level="
            << simd::level_name(lvl);
      }
    }
  }
}

TEST(SimdKernelTest, ClearAndOrMatchScalarOnRandomBuffers) {
  SimdLevelGuard guard;
  std::mt19937_64 rng(7);
  for (std::size_t n : {0u, 1u, 3u, 4u, 6u, 8u, 11u, 16u, 33u}) {
    std::vector<std::uint64_t> src(n);
    for (auto& w : src) w = rng();

    std::vector<std::vector<std::uint64_t>> cleared, ored;
    for (simd::Level lvl : levels_to_test()) {
      simd::force_level_for_testing(lvl);
      std::vector<std::uint64_t> buf(n, 0xDEADBEEFCAFEF00Dull);
      simd::clear_words(buf.data(), n);
      cleared.push_back(buf);

      std::vector<std::uint64_t> dst(n);
      for (std::size_t i = 0; i < n; ++i) dst[i] = rng() & 0x5555555555555555ull;
      std::vector<std::uint64_t> expect = dst;
      for (std::size_t i = 0; i < n; ++i) expect[i] |= src[i];
      simd::or_words(dst.data(), src.data(), n);
      EXPECT_EQ(dst, expect) << "n=" << n << " level=" << simd::level_name(lvl);
      ored.push_back(dst);
    }
    for (const auto& buf : cleared) {
      EXPECT_EQ(buf, std::vector<std::uint64_t>(n, 0)) << "n=" << n;
    }
  }
}

}  // namespace
}  // namespace gcg
