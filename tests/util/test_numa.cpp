// NUMA topology detection and worker->node apportionment. Real multi-node
// hardware is not assumed anywhere: the GCG_NUMA_FAKE_NODES override
// fabricates a k-node topology (marked not-real, so nothing ever pins),
// which is how single-node CI exercises the multi-node code paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "util/numa.hpp"

namespace gcg {
namespace {

class FakeNodesGuard {
 public:
  explicit FakeNodesGuard(const char* value) {
    setenv("GCG_NUMA_FAKE_NODES", value, 1);
  }
  ~FakeNodesGuard() { unsetenv("GCG_NUMA_FAKE_NODES"); }
};

TEST(NumaTopologyTest, DetectionAlwaysYieldsAUsableTopology) {
  const numa::Topology topo = numa::detect_topology();
  ASSERT_GE(topo.num_nodes(), 1u);
  for (const auto& cpus : topo.node_cpus) {
    EXPECT_FALSE(cpus.empty());
  }
  if (topo.num_nodes() == 1) {
    EXPECT_FALSE(topo.real);  // single node: NUMA placement is meaningless
  }
}

TEST(NumaTopologyTest, FakeNodesOverrideFabricatesNodesWithoutRealness) {
  FakeNodesGuard guard("4");
  const numa::Topology topo = numa::detect_topology();
  EXPECT_EQ(topo.num_nodes(), 4u);
  EXPECT_FALSE(topo.real);  // fabricated topology must never pin threads
  for (const auto& cpus : topo.node_cpus) {
    EXPECT_FALSE(cpus.empty());
  }
  // Pinning degrades to a no-op on a not-real topology.
  EXPECT_FALSE(numa::pin_current_thread_to_node(topo, 0));
}

TEST(NumaTopologyTest, BogusFakeNodeValuesFallBackToRealDetection) {
  const std::size_t baseline = numa::detect_topology().num_nodes();
  for (const char* bogus : {"0", "-3", "garbage", "", "100000"}) {
    FakeNodesGuard guard(bogus);
    EXPECT_EQ(numa::detect_topology().num_nodes(), baseline) << bogus;
  }
}

TEST(NumaAssignTest, SingleNodeMapsEveryWorkerToNodeZero) {
  numa::Topology topo;
  topo.node_cpus = {{0, 1, 2, 3}};
  const std::vector<unsigned> nodes = numa::assign_worker_nodes(7, topo);
  ASSERT_EQ(nodes.size(), 7u);
  for (unsigned n : nodes) EXPECT_EQ(n, 0u);
}

TEST(NumaAssignTest, WorkersSplitProportionallyToNodeCpuCounts) {
  numa::Topology topo;
  topo.node_cpus = {{0, 1, 2, 3}, {4, 5}};  // 2:1 CPU ratio
  topo.real = true;
  const std::vector<unsigned> nodes = numa::assign_worker_nodes(6, topo);
  ASSERT_EQ(nodes.size(), 6u);
  EXPECT_EQ(std::count(nodes.begin(), nodes.end(), 0u), 4);
  EXPECT_EQ(std::count(nodes.begin(), nodes.end(), 1u), 2);
  // Contiguous blocks: node ids never decrease along the worker ranks,
  // mirroring the contiguous vertex slices the schedulers hand out.
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
}

TEST(NumaAssignTest, EveryWorkerGetsANodeEvenWhenWorkersAreScarce) {
  numa::Topology topo;
  topo.node_cpus = {{0}, {1}, {2}, {3}};
  topo.real = true;
  for (unsigned workers : {1u, 2u, 3u, 5u, 9u}) {
    const std::vector<unsigned> nodes = numa::assign_worker_nodes(workers, topo);
    ASSERT_EQ(nodes.size(), workers);
    for (unsigned n : nodes) EXPECT_LT(n, topo.num_nodes());
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end())) << workers;
  }
  // With workers >= nodes, no node may be starved while another hoards.
  const std::vector<unsigned> nodes = numa::assign_worker_nodes(8, topo);
  for (unsigned node = 0; node < 4; ++node) {
    EXPECT_EQ(std::count(nodes.begin(), nodes.end(), node), 2) << node;
  }
}

TEST(NumaAssignTest, ZeroWorkersYieldsEmptyAssignment) {
  EXPECT_TRUE(numa::assign_worker_nodes(0, numa::detect_topology()).empty());
}

}  // namespace
}  // namespace gcg
