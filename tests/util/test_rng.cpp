#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/narrow.hpp"

namespace gcg {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownFirstValue) {
  // Reference value from the SplitMix64 reference implementation, seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t a = mix64(0x123456789abcdefULL);
    const std::uint64_t b = mix64(0x123456789abcdefULL ^ (1ULL << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 16) << "bit " << bit;
    EXPECT_LT(flipped, 48) << "bit " << bit;
  }
}

TEST(Xoshiro, DeterministicStream) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro, BoundedStaysInRange) {
  Xoshiro256ss rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro, BoundedZeroReturnsZero) {
  Xoshiro256ss rng(3);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro, BoundedCoversSmallRangeUniformly) {
  Xoshiro256ss rng(11);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 8 * 0.9);
    EXPECT_LT(c, trials / 8 * 1.1);
  }
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256ss rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256ss>);
  SUCCEED();
}

TEST(CounterHash, StatelessAndDeterministic) {
  const CounterHash h(99);
  EXPECT_EQ(h(0), CounterHash(99)(0));
  EXPECT_EQ(h(12345), CounterHash(99)(12345));
}

TEST(CounterHash, DistinctCountersDistinctValues) {
  const CounterHash h(1);
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 10000; ++c) seen.insert(h(c));
  EXPECT_EQ(seen.size(), 10000u);  // 64-bit collisions would be astonishing
}

TEST(CounterHash, SeedChangesEverything) {
  const CounterHash a(1), b(2);
  int same = 0;
  for (std::uint64_t c = 0; c < 1000; ++c) same += (a(c) == b(c));
  EXPECT_EQ(same, 0);
}

TEST(CounterHash, U32PrioritiesWellSpread) {
  const CounterHash h(7);
  std::vector<int> buckets(16, 0);
  const int trials = 64000;
  for (int c = 0; c < trials; ++c) ++buckets[h.u32(to_unsigned(c)) >> 28];
  for (int b : buckets) {
    EXPECT_GT(b, trials / 16 * 0.9);
    EXPECT_LT(b, trials / 16 * 1.1);
  }
}

}  // namespace
}  // namespace gcg
