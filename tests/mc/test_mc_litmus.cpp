// Memory-model litmus tests for the checker itself: classic patterns
// whose weak-order variants MUST fail (the checker's reason to exist) and
// whose correctly-ordered variants MUST pass exhaustively. The buggy
// variants double as regression tests that the modeled memory model stays
// weaker than the x86 host: a checker that only explores host-observable
// behaviours would pass the relaxed store-buffer test and be useless.
//
// LIT-CNT-1 lives here: the remaining-work counter pattern used by
// par::StealPool (release decrements + acquire drained() load). The
// release variant passes and the relaxed variant fails, which is the
// evidence for downgrading the old acq_rel decrement in steal_pool.cpp.

#include <gtest/gtest.h>

#include <mutex>  // std::lock_guard/std::unique_lock over mc::mutex
#include <optional>
#include <string>

#include "mc/checker.hpp"
#include "mc/model.hpp"

namespace {

using gcg::mc::Model;
using gcg::mc::Options;
using gcg::mc::Result;

constexpr auto kRelaxed = std::memory_order_relaxed;
constexpr auto kAcquire = std::memory_order_acquire;
constexpr auto kRelease = std::memory_order_release;
constexpr auto kSeqCst = std::memory_order_seq_cst;

// ---------------------------------------------------------------- store
// buffering (Dekker's core): T0 publishes x then reads y, T1 publishes y
// then reads x. Under seq_cst at least one thread sees the other's store;
// under relaxed (or with the fences removed) both may read 0.
struct StoreBuffer : Model {
  std::memory_order store_mo;
  std::memory_order load_mo;
  bool fences = false;

  std::optional<gcg::mc::atomic<int>> x, y;
  int r0 = -1, r1 = -1;

  explicit StoreBuffer(std::memory_order smo, std::memory_order lmo,
                       bool with_fences = false)
      : store_mo(smo), load_mo(lmo), fences(with_fences) {}

  int num_threads() const override { return 2; }
  void reset() override {
    x.emplace(0);
    y.emplace(0);
    gcg::mc::set_name(&*x, "x");
    gcg::mc::set_name(&*y, "y");
    r0 = r1 = -1;
  }
  void thread(int tid) override {
    auto& mine = tid == 0 ? *x : *y;
    auto& theirs = tid == 0 ? *y : *x;
    mine.store(1, store_mo);
    if (fences) gcg::mc::atomic_thread_fence(kSeqCst);
    (tid == 0 ? r0 : r1) = theirs.load(load_mo);
  }
  void finally() override { MC_REQUIRE(r0 == 1 || r1 == 1); }
};

TEST(McLitmus, StoreBufferRelaxedFails) {
  StoreBuffer m(kRelaxed, kRelaxed);
  const Result r = check(m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("MC_REQUIRE"), std::string::npos) << r.failure;
  EXPECT_NE(r.trace.find("stale"), std::string::npos)
      << "the failing read should be visibly stale:\n"
      << r.trace;
}

TEST(McLitmus, StoreBufferSeqCstPasses) {
  StoreBuffer m(kSeqCst, kSeqCst);
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.executions, 1);
}

TEST(McLitmus, StoreBufferSeqCstFencesPass) {
  StoreBuffer m(kRelaxed, kRelaxed, /*with_fences=*/true);
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// Satellite check: replaying a failure's trail must reproduce the trace
// bit-for-bit — that is what makes a reported interleaving debuggable.
TEST(McLitmus, FailureReplayIsDeterministic) {
  StoreBuffer m(kRelaxed, kRelaxed);
  const Result first = check(m);
  ASSERT_FALSE(first.ok);
  ASSERT_FALSE(first.trail.empty());
  const Result again = replay(m, first.trail);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(first.trace, again.trace);
  EXPECT_EQ(first.failure, again.failure);
}

// ------------------------------------------------------- message passing:
// T0 writes data then sets a flag; T1 spins (bounded) on the flag and
// reads the data. Needs release/acquire on the flag; relaxed lets T1 see
// the flag without the data.
struct MessagePassing : Model {
  std::memory_order pub_mo;
  std::memory_order sub_mo;

  std::optional<gcg::mc::atomic<int>> data, flag;
  bool delivered = false;
  int got = -1;

  MessagePassing(std::memory_order pub, std::memory_order sub)
      : pub_mo(pub), sub_mo(sub) {}

  int num_threads() const override { return 2; }
  void reset() override {
    data.emplace(0);
    flag.emplace(0);
    gcg::mc::set_name(&*data, "data");
    gcg::mc::set_name(&*flag, "flag");
    delivered = false;
    got = -1;
  }
  void thread(int tid) override {
    if (tid == 0) {
      data->store(42, kRelaxed);
      flag->store(1, pub_mo);
    } else {
      // Bounded retry, not an unbounded spin: the exhaustive scheduler
      // would otherwise drive the spin into the livelock bound.
      for (int tries = 0; tries < 3; ++tries) {
        if (flag->load(sub_mo) == 1) {
          delivered = true;
          got = data->load(kRelaxed);
          return;
        }
      }
    }
  }
  void finally() override {
    if (delivered) MC_REQUIRE(got == 42);
  }
};

TEST(McLitmus, MessagePassingRelaxedFails) {
  MessagePassing m(kRelaxed, kRelaxed);
  const Result r = check(m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("got == 42"), std::string::npos) << r.failure;
}

TEST(McLitmus, MessagePassingReleaseAcquirePasses) {
  MessagePassing m(kRelease, kAcquire);
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// ------------------------------------------------- LIT-CNT-1: StealPool's
// remaining-work counter. Two workers publish their bookkeeping (modeled
// by a relaxed store each) and decrement the counter; an observer that
// acquire-reads 0 must see both workers' bookkeeping. Release decrements
// suffice — the acquire load synchronizes with each decrement through the
// release sequence the RMWs continue — so the pre-PR acq_rel was too
// strong, and relaxed is too weak. steal_pool.cpp cites this test.
struct DrainCounter : Model {
  std::memory_order dec_mo;

  std::optional<gcg::mc::atomic<int>> remaining, a, b;
  bool saw_zero = false;
  int ra = -1, rb = -1;

  explicit DrainCounter(std::memory_order dec) : dec_mo(dec) {}

  int num_threads() const override { return 3; }
  void reset() override {
    remaining.emplace(2);
    a.emplace(0);
    b.emplace(0);
    gcg::mc::set_name(&*remaining, "remaining");
    gcg::mc::set_name(&*a, "a");
    gcg::mc::set_name(&*b, "b");
    saw_zero = false;
    ra = rb = -1;
  }
  void thread(int tid) override {
    if (tid == 0) {
      a->store(1, kRelaxed);
      remaining->fetch_sub(1, dec_mo);
    } else if (tid == 1) {
      b->store(1, kRelaxed);
      remaining->fetch_sub(1, dec_mo);
    } else {
      if (remaining->load(kAcquire) == 0) {
        saw_zero = true;
        ra = a->load(kRelaxed);
        rb = b->load(kRelaxed);
      }
    }
  }
  void finally() override {
    if (saw_zero) MC_REQUIRE(ra == 1 && rb == 1);
  }
};

TEST(McLitmus, DrainCounterReleasePasses) {
  DrainCounter m(kRelease);
  Options opts;
  opts.preemption_bound = 3;
  const Result r = check(m, opts);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

TEST(McLitmus, DrainCounterRelaxedFails) {
  DrainCounter m(kRelaxed);
  Options opts;
  opts.preemption_bound = 3;
  const Result r = check(m, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("ra == 1"), std::string::npos) << r.failure;
}

// ------------------------------------------------------------ atomic_flag
// as a one-shot lock: exactly one of two contenders may win it.
struct FlagRace : Model {
  std::optional<gcg::mc::atomic_flag> flag;
  int winners = 0;

  int num_threads() const override { return 2; }
  void reset() override {
    flag.emplace();
    gcg::mc::set_name(&*flag, "flag");
    winners = 0;
  }
  void thread(int) override {
    if (!flag->test_and_set(std::memory_order_acq_rel)) ++winners;
  }
  void finally() override { MC_REQUIRE(winners == 1); }
};

TEST(McLitmus, AtomicFlagElectsExactlyOneWinner) {
  FlagRace m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// --------------------------------------------------------------- mutexes:
// ABBA ordering deadlocks; the checker must find it and name both waits.
struct AbbaDeadlock : Model {
  std::optional<gcg::mc::mutex> a, b;

  int num_threads() const override { return 2; }
  void reset() override {
    a.emplace();
    b.emplace();
    gcg::mc::set_name(&*a, "A");
    gcg::mc::set_name(&*b, "B");
  }
  void thread(int tid) override {
    auto& first = tid == 0 ? *a : *b;
    auto& second = tid == 0 ? *b : *a;
    std::lock_guard<gcg::mc::mutex> l1(first);
    std::lock_guard<gcg::mc::mutex> l2(second);
  }
};

TEST(McLitmus, AbbaLockOrderDeadlocks) {
  AbbaDeadlock m;
  const Result r = check(m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("lock A"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("lock B"), std::string::npos) << r.failure;
}

// ------------------------------------------------------ condition variable
// lost wakeup: the publisher flips the predicate and notifies WITHOUT
// holding the waiter's lock, so the notify can land between the waiter's
// predicate check and its registration on the cv. The model has no
// spurious wakeups, so this surfaces as a deadlock — exactly the bug
// class a real cv masks most of the time.
struct LostWakeup : Model {
  std::optional<gcg::mc::mutex> m;
  std::optional<gcg::mc::condition_variable> cv;
  bool ready = false;

  int num_threads() const override { return 2; }
  void reset() override {
    m.emplace();
    cv.emplace();
    gcg::mc::set_name(&*m, "m");
    gcg::mc::set_name(&*cv, "ready_cv");
    ready = false;
  }
  void thread(int tid) override {
    if (tid == 0) {
      std::unique_lock<gcg::mc::mutex> lk(*m);
      while (!ready) cv->wait(lk);
    } else {
      ready = true;       // BUG: predicate flipped outside the lock, so
      cv->notify_one();   // this notify can race past the waiter's check
    }
  }
};

TEST(McLitmus, LostWakeupSurfacesAsDeadlock) {
  LostWakeup m;
  const Result r = check(m);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("deadlock"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("cv-wake"), std::string::npos) << r.failure;
}

// The correct handoff (predicate checked under the lock) passes.
struct Handoff : Model {
  std::optional<gcg::mc::mutex> m;
  std::optional<gcg::mc::condition_variable> cv;
  bool ready = false;
  bool woke = false;

  int num_threads() const override { return 2; }
  void reset() override {
    m.emplace();
    cv.emplace();
    ready = false;
    woke = false;
  }
  void thread(int tid) override {
    if (tid == 0) {
      std::unique_lock<gcg::mc::mutex> lk(*m);
      cv->wait(lk, [&] { return ready; });
      woke = true;
    } else {
      {
        std::lock_guard<gcg::mc::mutex> lk(*m);
        ready = true;
      }
      cv->notify_one();
    }
  }
  void finally() override { MC_REQUIRE(woke); }
};

TEST(McLitmus, CvHandoffPassesExhaustively) {
  Handoff m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// ------------------------------------------------------------- livelock:
// an unbounded spin on a flag nobody sets must hit the step bound, not
// hang the harness.
struct Spin : Model {
  std::optional<gcg::mc::atomic<int>> flag;

  int num_threads() const override { return 1; }
  void reset() override { flag.emplace(0); }
  void thread(int) override {
    while (flag->load(kRelaxed) == 0) {
    }
  }
};

TEST(McLitmus, UnboundedSpinHitsStepBound) {
  Spin m;
  Options opts;
  opts.max_steps = 100;
  const Result r = check(m, opts);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("step bound"), std::string::npos) << r.failure;
}

// ------------------------------------------------ sleep-set soundness on
// these small models: pruning must not change any verdict, only shrink
// the number of executions explored.
TEST(McLitmus, SleepSetsPreserveVerdicts) {
  Options with;
  Options without;
  without.sleep_sets = false;

  StoreBuffer sb_bad(kRelaxed, kRelaxed);
  EXPECT_FALSE(check(sb_bad, with).ok);
  EXPECT_FALSE(check(sb_bad, without).ok);

  StoreBuffer sb_ok(kSeqCst, kSeqCst);
  const Result pruned = check(sb_ok, with);
  const Result full = check(sb_ok, without);
  EXPECT_TRUE(pruned.ok) << pruned.trace;
  EXPECT_TRUE(full.ok) << full.trace;
  EXPECT_TRUE(pruned.complete);
  EXPECT_TRUE(full.complete);
  EXPECT_LE(pruned.executions, full.executions);

  Handoff h;
  EXPECT_TRUE(check(h, with).ok);
  EXPECT_TRUE(check(h, without).ok);
}

}  // namespace
