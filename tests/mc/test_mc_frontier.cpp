// Model checks of the PRODUCTION frontier appender
// (par/detail/appender.hpp, compiled with GCG_MC_MODEL so its sync::
// atomic resolves to the modeled primitive — no forked copy). The claim
// the checker certifies is the one its relaxed fetch_add's `// order:`
// comment makes: concurrent claim() calls hand out disjoint slot ranges
// under every schedule, so no appended entry is ever overwritten.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "mc/checker.hpp"
#include "par/detail/appender.hpp"

namespace {

using gcg::mc::Model;
using gcg::mc::Options;
using gcg::mc::Result;
using gcg::par::detail::BasicFrontierAppender;

// Two workers claim fixed-size ranges and scatter distinct values into
// them; every value must land exactly once — ranges never overlap, and
// the final cursor accounts for every claimed slot.
struct DisjointClaims : Model {
  std::vector<int> out;
  std::optional<BasicFrontierAppender<int>> ap;

  int num_threads() const override { return 2; }
  void reset() override {
    out.assign(4, -1);
    ap.emplace(out);
    gcg::mc::set_name(&ap->counter, "counter");
  }
  void thread(int tid) override {
    // Worker 0 appends {1, 2}, worker 1 appends {3, 4}.
    const std::uint32_t at = ap->claim(2);
    MC_REQUIRE(at <= 2);
    out[at] = tid == 0 ? 1 : 3;
    out[at + 1] = tid == 0 ? 2 : 4;
  }
  void finally() override {
    MC_REQUIRE(ap->counter.load(std::memory_order_relaxed) == 4);
    int seen[5] = {0, 0, 0, 0, 0};
    for (int v : out) {
      MC_REQUIRE(v >= 1 && v <= 4);
      ++seen[v];
    }
    for (int v = 1; v <= 4; ++v) MC_REQUIRE(seen[v] == 1);
  }
};

TEST(McFrontier, ConcurrentClaimsAreDisjoint) {
  DisjointClaims m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.executions, 1);
}

// Uneven claims (1 and 2 slots into a 3-slot frontier): the handed-out
// ranges still tile the vector exactly, whatever the interleaving.
struct UnevenClaims : Model {
  std::vector<int> out;
  std::optional<BasicFrontierAppender<int>> ap;

  int num_threads() const override { return 2; }
  void reset() override {
    out.assign(3, -1);
    ap.emplace(out);
  }
  void thread(int tid) override {
    if (tid == 0) {
      const std::uint32_t at = ap->claim(1);
      out[at] = 1;
    } else {
      const std::uint32_t at = ap->claim(2);
      out[at] = 2;
      out[at + 1] = 3;
    }
  }
  void finally() override {
    int seen[4] = {0, 0, 0, 0};
    for (int v : out) {
      MC_REQUIRE(v >= 1 && v <= 3);
      ++seen[v];
    }
    for (int v = 1; v <= 3; ++v) MC_REQUIRE(seen[v] == 1);
  }
};

TEST(McFrontier, UnevenClaimsTileTheFrontier) {
  UnevenClaims m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// Three claimers — the cursor is an RMW chain, so disjointness must
// survive any pair of adjacent claims being reordered by a third.
struct ThreeClaimers : Model {
  std::vector<int> out;
  std::optional<BasicFrontierAppender<int>> ap;

  int num_threads() const override { return 3; }
  void reset() override {
    out.assign(3, -1);
    ap.emplace(out);
  }
  void thread(int tid) override {
    const std::uint32_t at = ap->claim(1);
    out[at] = tid + 1;
  }
  void finally() override {
    int seen[4] = {0, 0, 0, 0};
    for (int v : out) {
      MC_REQUIRE(v >= 1 && v <= 3);
      ++seen[v];
    }
    for (int v = 1; v <= 3; ++v) MC_REQUIRE(seen[v] == 1);
  }
};

TEST(McFrontier, ThreeClaimersNeverCollide) {
  ThreeClaimers m;
  Options opts;
  opts.preemption_bound = 2;
  const Result r = check(m, opts);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

}  // namespace
