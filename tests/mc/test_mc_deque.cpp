// Model checks of the PRODUCTION Chase–Lev deque (par/deque.hpp,
// compiled here with GCG_MC_MODEL so its sync:: atomics resolve to the
// modeled primitives — no forked copy). The checks cover the two hard
// guarantees: linearizable ownership (every item handed out exactly once)
// and the owner-vs-thief arbitration on the last element, under every
// schedule within the preemption bound — including the stale-read
// behaviours the deque's relaxed loads admit.

#include <gtest/gtest.h>

#include <optional>

#include "mc/checker.hpp"
#include "par/deque.hpp"

namespace {

using gcg::mc::Model;
using gcg::mc::Options;
using gcg::mc::Result;
using gcg::par::WorkStealingDeque;

// Owner-only LIFO discipline, checked inside the model for completeness
// (single thread, so exactly one execution).
struct OwnerLifo : Model {
  std::optional<WorkStealingDeque<int>> dq;

  int num_threads() const override { return 1; }
  void reset() override { dq.emplace(4); }
  void thread(int) override {
    dq->push_bottom(1);
    dq->push_bottom(2);
    dq->push_bottom(3);
    MC_REQUIRE(dq->pop_bottom() == 3);
    MC_REQUIRE(dq->pop_bottom() == 2);
    MC_REQUIRE(dq->pop_bottom() == 1);
    MC_REQUIRE(!dq->pop_bottom().has_value());
  }
};

TEST(McDeque, OwnerLifoOrder) {
  OwnerLifo m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// The crux of Chase–Lev: one item left, owner pops while a thief steals.
// Exactly one of them may get it, under every interleaving.
struct LastElementRace : Model {
  std::optional<WorkStealingDeque<int>> dq;
  std::optional<int> owner_got, thief_got;

  int num_threads() const override { return 2; }
  void reset() override {
    dq.emplace(2);
    dq->push_bottom(7);
    owner_got.reset();
    thief_got.reset();
  }
  void thread(int tid) override {
    if (tid == 0) {
      owner_got = dq->pop_bottom();
    } else {
      thief_got = dq->steal();
    }
  }
  void finally() override {
    const int takes =
        (owner_got.has_value() ? 1 : 0) + (thief_got.has_value() ? 1 : 0);
    MC_REQUIRE(takes == 1);
    MC_REQUIRE((owner_got.value_or(7) == 7) && (thief_got.value_or(7) == 7));
  }
};

TEST(McDeque, LastElementGoesToExactlyOne) {
  LastElementRace m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.executions, 1);
}

// Two items, owner pops twice while a thief makes one attempt: every item
// is handed out exactly once (the thief's attempt may legitimately lose
// its race and return nothing — then the owner drained both).
struct TwoItemDrain : Model {
  std::optional<WorkStealingDeque<int>> dq;
  std::optional<int> pops[2], stolen;

  int num_threads() const override { return 2; }
  void reset() override {
    dq.emplace(2);
    dq->push_bottom(1);
    dq->push_bottom(2);
    pops[0].reset();
    pops[1].reset();
    stolen.reset();
  }
  void thread(int tid) override {
    if (tid == 0) {
      pops[0] = dq->pop_bottom();
      pops[1] = dq->pop_bottom();
    } else {
      stolen = dq->steal();
    }
  }
  void finally() override {
    int count[3] = {0, 0, 0};  // count[v] = times item v was handed out
    int takes = 0;
    for (const auto& got : {pops[0], pops[1], stolen}) {
      if (got.has_value()) {
        MC_REQUIRE(*got == 1 || *got == 2);
        ++count[*got];
        ++takes;
      }
    }
    // No duplication, no loss: three attempts on two items always drain.
    MC_REQUIRE(takes == 2);
    MC_REQUIRE(count[1] == 1 && count[2] == 1);
  }
};

TEST(McDeque, TwoItemsHandedOutExactlyOnce) {
  TwoItemDrain m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// Three threads: owner pops, two rival thieves race for the same top slot.
// Tighter preemption bound to keep the exhaustive run small; the rival-CAS
// arbitration this targets needs only one context switch.
struct RivalThieves : Model {
  std::optional<WorkStealingDeque<int>> dq;
  std::optional<int> got[3];

  int num_threads() const override { return 3; }
  void reset() override {
    dq.emplace(2);
    dq->push_bottom(1);
    dq->push_bottom(2);
    for (auto& g : got) g.reset();
  }
  void thread(int tid) override {
    got[tid] = tid == 0 ? dq->pop_bottom() : dq->steal();
  }
  void finally() override {
    int count[3] = {0, 0, 0};
    for (const auto& g : got) {
      if (g.has_value()) {
        MC_REQUIRE(*g == 1 || *g == 2);
        ++count[*g];
      }
    }
    MC_REQUIRE(count[1] <= 1 && count[2] <= 1);  // never duplicated
    // The owner's pop has no rival for the bottom item, so at least one
    // item is always handed out.
    MC_REQUIRE(count[1] + count[2] >= 1);
  }
};

TEST(McDeque, RivalThievesNeverDuplicate) {
  RivalThieves m;
  Options opts;
  opts.preemption_bound = 2;
  const Result r = check(m, opts);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

}  // namespace
