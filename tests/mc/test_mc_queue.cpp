// Model checks of the PRODUCTION batching job queue
// (svc/detail/batch_queue.hpp, compiled with GCG_MC_MODEL so its
// sync::mutex / sync::condition_variable resolve to the modeled
// primitives — no forked copy; svc::JobQueue is the same template bound
// to JobPtr). Certified here, under every schedule within the bound:
// FIFO per producer, batches never mix keys, a blocked consumer is woken
// by close() (the cv handoff has no lost wakeup), and backpressure never
// loses or duplicates a job.

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "mc/checker.hpp"
#include "svc/detail/batch_queue.hpp"

namespace {

using gcg::mc::Model;
using gcg::mc::Options;
using gcg::mc::Result;
using gcg::svc::detail::BasicBatchQueue;

// Minimal job for the models: producer/seq identify it, `key` batches it.
// A default-constructed MiniJob (producer < 0) is the "not found" value
// remove()/remove_front() return.
struct MiniJob {
  int producer = -1;
  int seq = 0;
  int key = 0;

  explicit operator bool() const { return producer >= 0; }
};

struct MiniTraits {
  static int key(const MiniJob& j) { return j.key; }
  static int id(const MiniJob& j) { return j.producer * 100 + j.seq; }
};

using MiniQueue = BasicBatchQueue<MiniJob, MiniTraits>;

// Two producers (one pushes two same-key jobs, one pushes one) and a
// consumer that drains in batches: every job arrives exactly once, each
// producer's jobs arrive in push order, and no batch mixes keys.
struct FifoPerProducer : Model {
  std::optional<MiniQueue> q;
  std::vector<MiniJob> got;

  int num_threads() const override { return 3; }
  void reset() override {
    q.emplace(4);
    got.clear();
  }
  void thread(int tid) override {
    if (tid == 0) {
      MC_REQUIRE(q->try_push(MiniJob{0, 0, /*key=*/1}));
      MC_REQUIRE(q->try_push(MiniJob{0, 1, /*key=*/1}));
    } else if (tid == 1) {
      MC_REQUIRE(q->try_push(MiniJob{1, 0, /*key=*/2}));
    } else {
      while (got.size() < 3) {
        const std::vector<MiniJob> batch = q->pop_batch(8);
        MC_REQUIRE(!batch.empty());  // producers push exactly 3
        for (std::size_t i = 1; i < batch.size(); ++i) {
          MC_REQUIRE(MiniTraits::key(batch[i]) == MiniTraits::key(batch[0]));
        }
        got.insert(got.end(), batch.begin(), batch.end());
      }
    }
  }
  void finally() override {
    MC_REQUIRE(got.size() == 3);
    int last_seq0 = -1;
    int count0 = 0, count1 = 0;
    for (const MiniJob& j : got) {
      if (j.producer == 0) {
        MC_REQUIRE(j.seq > last_seq0);  // FIFO per producer
        last_seq0 = j.seq;
        ++count0;
      } else {
        MC_REQUIRE(j.producer == 1 && j.seq == 0);
        ++count1;
      }
    }
    MC_REQUIRE(count0 == 2 && count1 == 1);
  }
};

TEST(McQueue, FifoPerProducerAndKeyPureBatches) {
  FifoPerProducer m;
  Options opts;
  opts.preemption_bound = 2;
  const Result r = check(m, opts);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
  EXPECT_GT(r.executions, 1);
}

// A consumer blocked on an empty queue must be released by close() — the
// close/notify handoff has no window where the waiter misses the wakeup
// (the modeled cv has no spurious wakeups to mask one, so a lost wakeup
// would surface as a deadlock here).
struct CloseWakesBlockedConsumer : Model {
  std::optional<MiniQueue> q;
  bool drained = false;

  int num_threads() const override { return 2; }
  void reset() override {
    q.emplace(2);
    drained = false;
  }
  void thread(int tid) override {
    if (tid == 0) {
      const std::vector<MiniJob> batch = q->pop_batch(4);
      MC_REQUIRE(batch.empty());  // woken by close, nothing was pushed
      drained = true;
    } else {
      q->close();
    }
  }
  void finally() override { MC_REQUIRE(drained); }
};

TEST(McQueue, CloseWakesBlockedConsumer) {
  CloseWakesBlockedConsumer m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// Push racing close: whatever the interleaving, an accepted job is
// delivered (close drains) and a rejected one is not — never both, never
// neither.
struct PushVsClose : Model {
  std::optional<MiniQueue> q;
  bool accepted = false;
  std::size_t delivered = 0;

  int num_threads() const override { return 2; }
  void reset() override {
    q.emplace(2);
    accepted = false;
    delivered = 0;
  }
  void thread(int tid) override {
    if (tid == 0) {
      accepted = q->try_push(MiniJob{0, 0, 1});
    } else {
      q->close();
      // After close, pop_batch never blocks: it drains then reports empty.
      std::vector<MiniJob> batch = q->pop_batch(4);
      delivered = batch.size();
      if (!batch.empty()) {
        MC_REQUIRE(q->pop_batch(4).empty());
      }
    }
  }
  void finally() override {
    MC_REQUIRE(delivered == (accepted ? 1U : 0U));
  }
};

TEST(McQueue, PushVsCloseNeverLosesOrDuplicates) {
  PushVsClose m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

// Backpressure under contention: capacity 1, two racing pushers — exactly
// one wins, and the loser's job is gone without a trace. remove() then
// retires the winner's job by id.
struct FullQueueRejects : Model {
  std::optional<MiniQueue> q;
  bool ok0 = false, ok1 = false;

  int num_threads() const override { return 2; }
  void reset() override {
    q.emplace(1);
    ok0 = ok1 = false;
  }
  void thread(int tid) override {
    (tid == 0 ? ok0 : ok1) = q->try_push(MiniJob{tid, 0, 1});
  }
  void finally() override {
    MC_REQUIRE(ok0 != ok1);  // exactly one fit
    MC_REQUIRE(q->size() == 1);
    const int winner = ok0 ? 0 : 1;
    MC_REQUIRE(!q->remove(/*id=*/(1 - winner) * 100));  // loser not queued
    const MiniJob j = q->remove(winner * 100);
    MC_REQUIRE(j && j.producer == winner);
    MC_REQUIRE(q->size() == 0);
  }
};

TEST(McQueue, FullQueueRejectsExactlyOne) {
  FullQueueRejects m;
  const Result r = check(m);
  EXPECT_TRUE(r.ok) << r.trace;
  EXPECT_TRUE(r.complete);
}

}  // namespace
