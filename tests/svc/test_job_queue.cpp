#include "svc/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace gcg::svc {
namespace {

JobPtr make_job(std::uint64_t id, const std::string& key) {
  JobSpec spec;
  spec.graph = key;
  return std::make_shared<JobRecord>(id, spec, key,
                                     std::chrono::steady_clock::now());
}

TEST(JobQueue, RejectsWhenFull) {
  JobQueue q(2);
  EXPECT_TRUE(q.try_push(make_job(1, "a")));
  EXPECT_TRUE(q.try_push(make_job(2, "a")));
  EXPECT_FALSE(q.try_push(make_job(3, "a"))) << "bounded queue must reject";
  EXPECT_EQ(q.size(), 2u);

  // Draining frees capacity again.
  EXPECT_EQ(q.pop_batch(8).size(), 2u);
  EXPECT_TRUE(q.try_push(make_job(4, "a")));
}

TEST(JobQueue, PopBatchGroupsSameGraph) {
  JobQueue q(16);
  q.try_push(make_job(1, "g1"));
  q.try_push(make_job(2, "g2"));
  q.try_push(make_job(3, "g1"));
  q.try_push(make_job(4, "g1"));
  q.try_push(make_job(5, "g2"));

  const auto batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 3u) << "all g1 jobs ride the first batch";
  EXPECT_EQ(batch[0]->id, 1u);
  EXPECT_EQ(batch[1]->id, 3u);
  EXPECT_EQ(batch[2]->id, 4u);

  const auto rest = q.pop_batch(8);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->id, 2u);
  EXPECT_EQ(rest[1]->id, 5u);
}

TEST(JobQueue, BatchLimitCaps) {
  JobQueue q(16);
  for (std::uint64_t i = 1; i <= 6; ++i) q.try_push(make_job(i, "g"));
  EXPECT_EQ(q.pop_batch(4).size(), 4u);
  EXPECT_EQ(q.pop_batch(4).size(), 2u);
}

TEST(JobQueue, RemoveById) {
  JobQueue q(8);
  q.try_push(make_job(1, "a"));
  q.try_push(make_job(2, "a"));
  const JobPtr removed = q.remove(1);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->id, 1u);
  EXPECT_EQ(q.remove(1), nullptr);
  EXPECT_EQ(q.size(), 1u);
}

TEST(JobQueue, CloseUnblocksConsumers) {
  JobQueue q(8);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    const auto batch = q.pop_batch(8);
    EXPECT_TRUE(batch.empty());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  q.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(q.try_push(make_job(9, "a"))) << "closed queue rejects";
}

TEST(JobQueue, CloseDrainsBacklogFirst) {
  JobQueue q(8);
  q.try_push(make_job(1, "a"));
  q.close();
  EXPECT_EQ(q.pop_batch(8).size(), 1u) << "backlog still served after close";
  EXPECT_TRUE(q.pop_batch(8).empty());
}

TEST(JobQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4, kConsumers = 3, kPerProducer = 200;
  JobQueue q(64);
  std::atomic<int> accepted{0}, popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        const auto batch = q.pop_batch(4);
        if (batch.empty()) return;
        popped.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto id =
            static_cast<std::uint64_t>(p * kPerProducer + i + 1);
        // Back off on backpressure instead of dropping, so the count
        // below is deterministic.
        while (!q.try_push(make_job(id, p % 2 ? "even" : "odd"))) {
          std::this_thread::yield();
        }
        accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace gcg::svc
