#include "svc/json.hpp"

#include <gtest/gtest.h>

namespace gcg::svc {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse("true").dump(), "true");
  EXPECT_EQ(Json::parse("false").dump(), "false");
  EXPECT_EQ(Json::parse("42").dump(), "42");
  EXPECT_EQ(Json::parse("-7").dump(), "-7");
  EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
}

TEST(Json, IntegersStayExact) {
  const Json j = Json::parse("9007199254740993");  // 2^53 + 1
  ASSERT_TRUE(j.is_int());
  EXPECT_EQ(j.as_int(), 9007199254740993LL);
}

TEST(Json, DoublesParse) {
  const Json j = Json::parse("1.5e2");
  ASSERT_TRUE(j.is_double());
  EXPECT_DOUBLE_EQ(j.as_double(), 150.0);
  EXPECT_EQ(Json::parse("42").as_double(), 42.0);  // int widens
}

TEST(Json, ObjectRoundTrip) {
  const std::string line =
      "{\"algorithm\":\"steal\",\"ok\":true,\"seed\":7,\"x\":1.5}";
  const Json j = Json::parse(line);
  EXPECT_EQ(j.get_string("algorithm", ""), "steal");
  EXPECT_TRUE(j.get_bool("ok", false));
  EXPECT_EQ(j.get_int("seed", 0), 7);
  EXPECT_DOUBLE_EQ(j.get_double("x", 0.0), 1.5);
  EXPECT_EQ(j.dump(), line);  // keys already sorted
}

TEST(Json, NestedStructures) {
  const Json j = Json::parse(
      "{\"a\":[1,2,{\"b\":[]}],\"c\":{\"d\":null}}");
  ASSERT_TRUE(j.find("a")->is_array());
  EXPECT_EQ(j.find("a")->as_array().size(), 3u);
  EXPECT_TRUE(j.find("c")->find("d")->is_null());
}

TEST(Json, StringEscapes) {
  const Json j = Json::parse("\"line\\nbreak\\ttab \\\"q\\\" \\u0041\"");
  EXPECT_EQ(j.as_string(), "line\nbreak\ttab \"q\" A");
  // dump() never emits raw newlines: one value == one protocol line.
  EXPECT_EQ(Json(std::string("a\nb")).dump().find('\n'), std::string::npos);
}

TEST(Json, MalformedInputsThrow) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1.2.3", "\"unterm",
        "{\"a\":1}extra", "[1 2]", "nan", "'single'"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\":1}");
  EXPECT_THROW(j.as_array(), std::runtime_error);
  EXPECT_THROW(j.find("a")->as_string(), std::runtime_error);
  EXPECT_THROW(Json::parse("1.5").as_int(), std::runtime_error);
}

TEST(Json, IntOutOfInt64RangeThrows) {
  // Integral-valued doubles beyond int64 (clients can send these as ids)
  // must throw the type error, not invoke an undefined cast.
  for (const char* bad : {"1e300", "-1e300", "9223372036854775808",
                          "1e19", "-1e19"}) {
    const Json j = Json::parse(bad);
    ASSERT_TRUE(j.is_double()) << bad;  // int64 parse overflowed to double
    EXPECT_THROW(j.as_int(), std::runtime_error) << bad;
  }
  // -2^63 is exactly representable and in range.
  EXPECT_EQ(Json(-9223372036854775808.0).as_int(), INT64_MIN);
}

TEST(Json, DeepNestingRejected) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(Json::parse(deep), std::runtime_error);
}

}  // namespace
}  // namespace gcg::svc
