// End-to-end acceptance test: a real color_server-equivalent (in-process
// svc::Server over a Unix-domain socket) serving concurrent svc::Clients.
// Covers the PR's acceptance criterion: N concurrent clients submitting
// jobs with mixed algorithms against >= 3 distinct graphs; every returned
// coloring verifies valid; the registry reports cache hits; and the
// bounded queue rejects with a distinct machine-readable error once
// offered load exceeds capacity.
#include "svc/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "check/coloring.hpp"
#include "svc/client.hpp"
#include "svc/graph_registry.hpp"
#include "svc/protocol.hpp"

namespace gcg::svc {
namespace {

constexpr const char* kGraphs[] = {
    "gen:ecology-like?scale=0.02&seed=1",
    "gen:kron-like?scale=0.02&seed=1",
    "gen:road-like?scale=0.02&seed=1",
};
constexpr const char* kAlgorithms[] = {"speculative", "jpl", "steal"};

std::string unique_socket_path(const char* tag) {
  // Keep it short: sockaddr_un caps paths at ~107 bytes.
  return "/tmp/gcg_e2e_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".sock";
}

ServerOptions small_server(const std::string& socket_path) {
  ServerOptions opts;
  opts.socket_path = socket_path;
  opts.scheduler.dispatchers = 2;
  opts.scheduler.threads_per_job = 2;
  opts.scheduler.queue_capacity = 128;
  return opts;
}

std::vector<color_t> colors_from_reply(const Json& reply) {
  const Json* result = reply.find("result");
  if (!result) return {};
  const Json* colors = result->find("colors");
  if (!colors) return {};
  std::vector<color_t> out;
  out.reserve(colors->as_array().size());
  for (const Json& c : colors->as_array()) {
    out.push_back(static_cast<color_t>(c.as_int()));
  }
  return out;
}

TEST(ServerE2E, PingStatsAndSingleJob) {
  Server server(small_server(unique_socket_path("ping")));
  Client client(server.socket_path());
  EXPECT_TRUE(client.ping());

  JobSpec spec;
  spec.graph = kGraphs[0];
  const Json reply = client.submit(spec, /*wait=*/true);
  ASSERT_TRUE(reply.get_bool("ok", false)) << reply.dump();
  EXPECT_EQ(reply.get_string("status", ""), "done");
  ASSERT_NE(reply.find("result"), nullptr);
  EXPECT_GT(reply.find("result")->get_int("num_colors", 0), 0);
  EXPECT_TRUE(reply.find("result")->get_bool("verified", false));

  const Json stats = client.stats();
  EXPECT_TRUE(stats.get_bool("ok", false));
  EXPECT_EQ(stats.get_int("completed", 0), 1);
  server.stop();
}

// The acceptance test proper.
TEST(ServerE2E, ConcurrentMixedLoadAllColoringsValid) {
  constexpr int kClients = 6;
  constexpr int kJobsPerClient = 6;
  Server server(small_server(unique_socket_path("load")));

  std::atomic<int> ok_jobs{0};
  std::atomic<int> invalid_colorings{0};
  std::atomic<int> failures{0};

  // Each client thread verifies its colorings against its own locally
  // loaded copy of the (deterministic) generated graph.
  std::vector<std::thread> team;
  for (int c = 0; c < kClients; ++c) {
    team.emplace_back([&, c] {
      GraphRegistry local;
      Client client(server.socket_path());
      for (int j = 0; j < kJobsPerClient; ++j) {
        JobSpec spec;
        spec.graph = kGraphs[(c + j) % 3];
        spec.algorithm = kAlgorithms[j % 3];
        spec.seed = static_cast<std::uint64_t>(c * 100 + j + 1);
        spec.keep_colors = true;
        const Json reply = client.submit(spec, /*wait=*/true);
        if (!reply.get_bool("ok", false) ||
            reply.get_string("status", "") != "done") {
          failures.fetch_add(1);
          continue;
        }
        const auto colors = colors_from_reply(reply);
        const auto g = local.acquire(spec.graph);
        if (colors.size() != g->num_vertices() ||
            check::verify_coloring(*g, colors).has_value()) {
          invalid_colorings.fetch_add(1);
          continue;
        }
        ok_jobs.fetch_add(1);
      }
    });
  }
  for (auto& t : team) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(invalid_colorings.load(), 0);
  EXPECT_EQ(ok_jobs.load(), kClients * kJobsPerClient);

  Client client(server.socket_path());
  const Json stats = client.stats();
  EXPECT_EQ(stats.get_int("completed", 0), kClients * kJobsPerClient);
  const Json* registry = stats.find("registry");
  ASSERT_NE(registry, nullptr);
  // 36 jobs over 3 graphs: the registry must have served from cache.
  EXPECT_EQ(registry->get_int("misses", -1), 3);
  EXPECT_GT(registry->get_int("hits", 0) + stats.get_int("batched_jobs", 0),
            0);
  server.stop();
}

TEST(ServerE2E, BoundedQueueRejectsWithDistinctError) {
  ServerOptions opts = small_server(unique_socket_path("full"));
  opts.scheduler.dispatchers = 1;
  opts.scheduler.threads_per_job = 1;
  opts.scheduler.queue_capacity = 2;
  Server server(opts);

  Client client(server.socket_path());
  bool saw_queue_full = false;
  std::vector<std::uint64_t> accepted;
  JobSpec spec;
  spec.graph = kGraphs[1];
  for (int i = 0; i < 64 && !saw_queue_full; ++i) {
    const Json reply = client.submit(spec, /*wait=*/false);
    if (reply.get_bool("ok", false)) {
      accepted.push_back(
          static_cast<std::uint64_t>(reply.get_int("id", 0)));
    } else {
      EXPECT_EQ(reply.get_string("error", ""), kErrQueueFull);
      EXPECT_FALSE(reply.get_string("detail", "").empty());
      saw_queue_full = true;
    }
  }
  EXPECT_TRUE(saw_queue_full)
      << "a 2-deep queue on one dispatcher must overflow";
  // Accepted jobs still complete fine after the rejection.
  for (const auto id : accepted) {
    const Json reply = client.result(id);
    EXPECT_TRUE(reply.get_bool("ok", false)) << reply.dump();
    EXPECT_EQ(reply.get_string("status", ""), "done");
  }
  server.stop();
}

TEST(ServerE2E, StatusCancelAndErrorVerbs) {
  Server server(small_server(unique_socket_path("verbs")));
  Client client(server.socket_path());

  // Unknown id -> unknown_id on both status and result.
  Json reply = client.status(424242);
  EXPECT_FALSE(reply.get_bool("ok", true));
  EXPECT_EQ(reply.get_string("error", ""), kErrUnknownId);
  EXPECT_FALSE(client.cancel(424242).get_bool("cancelled", true));

  // Unknown op -> unknown_op.
  Json bad_op{JsonObject{}};
  bad_op["op"] = Json(std::string("frobnicate"));
  reply = client.request(bad_op);
  EXPECT_EQ(reply.get_string("error", ""), kErrUnknownOp);

  // Bad submit -> bad_request, connection stays usable. The overflow
  // specs exercise the parse-time hardening: an over-limit or non-finite
  // scale and a seed past uint64 must map to the same stable error as a
  // plain malformed spec, never reach a generator.
  for (const char* bad_graph : {"gen:ecology-like?bogus=1",
                                "gen:ecology-like?scale=100",
                                "gen:ecology-like?scale=inf",
                                "gen:ecology-like?scale=nan",
                                "gen:ecology-like?scale=1e300",
                                "gen:ecology-like?seed=18446744073709551616"}) {
    Json bad_submit{JsonObject{}};
    bad_submit["op"] = Json(std::string("submit"));
    bad_submit["graph"] = Json(std::string(bad_graph));
    reply = client.request(bad_submit);
    EXPECT_EQ(reply.get_string("error", ""), kErrBadRequest) << bad_graph;
    EXPECT_TRUE(client.ping()) << bad_graph;
  }
  server.stop();
}

TEST(ServerE2E, MalformedLineYieldsProtocolError) {
  Server server(small_server(unique_socket_path("proto")));

  // Raw socket: svc::Client can't send malformed JSON by construction.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.socket_path().c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string line = "this is not json\n";
  ASSERT_EQ(::write(fd, line.data(), line.size()),
            static_cast<ssize_t>(line.size()));
  std::string got;
  char ch = 0;
  while (::read(fd, &ch, 1) == 1 && ch != '\n') got.push_back(ch);
  ::close(fd);

  const Json reply = Json::parse(got);
  EXPECT_FALSE(reply.get_bool("ok", true));
  EXPECT_EQ(reply.get_string("error", ""), kErrProtocol);
  server.stop();
}

TEST(ServerE2E, ClientDisconnectBeforeReplyDoesNotKillServer) {
  Server server(small_server(unique_socket_path("gone")));

  // Raw sockets that fire a blocking submit+wait and hang up immediately:
  // the server's reply lands on a closed peer. Without MSG_NOSIGNAL in
  // write_line that raises SIGPIPE and terminates this whole process.
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server.socket_path().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const std::string line =
        "{\"op\":\"submit\",\"graph\":\"" + std::string(kGraphs[0]) +
        "\",\"wait\":true}\n";
    ASSERT_EQ(::write(fd, line.data(), line.size()),
              static_cast<ssize_t>(line.size()));
    ::close(fd);  // gone before the reply
  }

  // The daemon must still be alive and serving.
  Client client(server.socket_path());
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(ServerE2E, ShutdownVerbStopsServer) {
  Server server(small_server(unique_socket_path("shut")));
  {
    Client client(server.socket_path());
    EXPECT_TRUE(client.shutdown_server());
  }
  // The shutdown verb flags the server; wait() returns promptly.
  EXPECT_TRUE(server.wait_for(5000.0));
  server.stop();
  // Socket is unlinked: a fresh connect attempt fails.
  EXPECT_THROW(Client{server.socket_path()}, std::runtime_error);
}

TEST(ServerE2E, ProtocolVersionNegotiation) {
  Server server(small_server(unique_socket_path("ver")));
  Client client(server.socket_path());

  // The Client stamps protocol_version into requests that lack it; the
  // server accepts its own version (and, for compatibility, requests
  // from pre-versioning peers that omit the field entirely).
  Json ping{JsonObject{}};
  ping["op"] = Json("ping");
  EXPECT_TRUE(client.request(ping).get_bool("ok", false));

  // A future version is rejected with a stable code naming the version
  // this server speaks — that is what lets an old server and a new
  // client negotiate instead of mis-parsing each other.
  Json future{JsonObject{}};
  future["op"] = Json("ping");
  future["protocol_version"] = Json(std::int64_t{99});
  const Json reply = client.request(future);
  EXPECT_FALSE(reply.get_bool("ok", true));
  EXPECT_EQ(reply.get_string("error", ""), kErrUnsupportedVersion);
  EXPECT_EQ(reply.get_int("protocol_version", 0), kProtocolVersion);

  // The connection survives the rejection.
  EXPECT_TRUE(client.ping());
  server.stop();
}

TEST(ServerE2E, ClientConnectRetryRidesOutLateServerStart) {
  const std::string path = unique_socket_path("late");
  std::thread late_start([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    Server server(small_server(path));
    server.wait_for(10000.0);  // until the client's shutdown verb
    server.stop();
  });

  ClientOptions copts;
  copts.connect_timeout_ms = 5000.0;
  copts.backoff_initial_ms = 5.0;
  Client client(path, copts);  // no socket yet: must retry, not throw
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.shutdown_server());
  late_start.join();
}

TEST(ServerE2E, ClientConnectTimeoutEventuallyThrows) {
  ClientOptions copts;
  copts.connect_timeout_ms = 150.0;
  copts.backoff_initial_ms = 10.0;
  EXPECT_THROW(Client(unique_socket_path("never"), copts),
               std::runtime_error);
}

TEST(ServerE2E, RequestTimeoutAgainstSlowHandler) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("slow");
  Server server(opts, [](const Json&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1000));
    Json out{JsonObject{}};
    out["ok"] = Json(true);
    return out;
  });

  ClientOptions copts;
  copts.request_timeout_ms = 100.0;
  Client client(server.socket_path(), copts);
  Json ping{JsonObject{}};
  ping["op"] = Json("ping");
  EXPECT_THROW(client.request(ping), std::runtime_error);
  server.stop();
}

TEST(ServerE2E, HandlerModeServesCustomReplies) {
  ServerOptions opts;
  opts.socket_path = unique_socket_path("hand");
  Server server(opts, [](const Json& req) {
    Json out{JsonObject{}};
    out["ok"] = Json(true);
    out["echo"] = Json(req.get_string("op", ""));
    return out;
  });

  Client client(server.socket_path());
  Json req{JsonObject{}};
  req["op"] = Json("anything");
  EXPECT_EQ(client.request(req).get_string("echo", ""), "anything");
  // The shutdown verb is intercepted before the handler in both modes.
  EXPECT_TRUE(client.shutdown_server());
  EXPECT_TRUE(server.wait_for(5000.0));
  server.stop();
}

TEST(ServerE2E, StopUnblocksIdleConnections) {
  auto server = std::make_unique<Server>(
      small_server(unique_socket_path("idle")));
  Client idle(server->socket_path());  // connected, never sends
  EXPECT_TRUE(idle.ping());
  server->stop();  // must not hang on the idle connection's blocked read
  SUCCEED();
}

}  // namespace
}  // namespace gcg::svc
